//! Weak representatives: zero-vote caches on workstations.
//!
//! A workstation keeps a weak (zero-vote) representative of a read-mostly
//! suite. Reads validate the cache against a one-vote quorum and are
//! served locally on a hit; writes invalidate it; read-through refills it.
//! The example prints the latency of every access so the hit/miss pattern
//! is visible.
//!
//! ```text
//! cargo run --example workstation_cache
//! ```

use weighted_voting::prelude::*;

fn main() {
    // Site 0: the file server (1 vote, 75 ms access).
    // Site 1: the workstation — client plus weak representative (65 ms).
    let mut net = NetConfig::uniform(
        2,
        LatencyModel::Constant(SimDuration::from_millis_f64(37.5)),
    );
    net.set_link(
        SiteId(1),
        SiteId(1),
        LatencyModel::Constant(SimDuration::from_millis_f64(32.5)),
    );
    let mut cluster = HarnessBuilder::new()
        .seed(99)
        .site(SiteSpec::server(1))
        .site(SiteSpec::client_with_weak())
        .quorum(QuorumSpec::new(1, 1))
        .net(net)
        .build()
        .expect("legal");
    let suite = cluster.suite_id();
    let ws = SiteId(1);

    println!("write v1 to the server...");
    cluster
        .write_from(ws, suite, b"document v1".to_vec())
        .expect("write");
    cluster.advance(SimDuration::from_secs(1));

    println!("\nfour reads; watch the cache warm up:");
    for i in 1..=4 {
        let r = cluster.read_from(ws, suite).expect("read");
        let state = if r.latency <= SimDuration::from_millis(80) {
            "HIT  (served by the weak representative)"
        } else {
            "MISS (fetched from the server, cache refilled)"
        };
        println!("  read {i}: {:>9}  {}", format!("{}", r.latency), state);
        cluster.advance(SimDuration::from_secs(1));
    }

    println!("\na write invalidates the cache...");
    cluster
        .write_from(ws, suite, b"document v2".to_vec())
        .expect("write");
    cluster.advance(SimDuration::from_secs(1));
    let r = cluster.read_from(ws, suite).expect("read");
    println!(
        "  next read: {} — a miss again, and it returns v2: {:?}",
        r.latency,
        String::from_utf8_lossy(&r.value)
    );
    cluster.advance(SimDuration::from_secs(1));
    let r = cluster.read_from(ws, suite).expect("read");
    println!("  and after refill: {} — hits again", r.latency);

    println!(
        "\nNote the safety property: a hit still cost one version-number\n\
         inquiry to the voting representative (75 ms round trip); the weak\n\
         representative never serves data that a quorum has not vouched for."
    );
}
