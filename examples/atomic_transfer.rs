//! Multi-suite transactions: an atomic transfer between two accounts.
//!
//! The paper's suites live inside a general transaction system (Violet);
//! this example shows the reproduction's version of that: a transfer
//! debits one suite and credits another with a single commit decision —
//! either both balances change or neither does, even if a representative
//! crashes mid-protocol.
//!
//! ```text
//! cargo run --example atomic_transfer
//! ```

use weighted_voting::prelude::*;

const CHECKING: ObjectId = ObjectId(1);
const SAVINGS: ObjectId = ObjectId(2);

fn balance(value: &[u8]) -> i64 {
    let mut buf = [0u8; 8];
    buf.copy_from_slice(value);
    i64::from_le_bytes(buf)
}

fn read_balances(cluster: &mut Harness) -> (i64, i64) {
    let c = cluster.read(CHECKING).expect("read checking");
    let s = cluster.read(SAVINGS).expect("read savings");
    (balance(&c.value), balance(&s.value))
}

fn main() {
    let mut cluster = HarnessBuilder::new()
        .seed(2026)
        .site(SiteSpec::server(1))
        .site(SiteSpec::server(1))
        .site(SiteSpec::server(1))
        .client()
        .quorum(QuorumSpec::majority(3))
        .suites([CHECKING, SAVINGS])
        .build()
        .expect("legal");
    let client = cluster.default_client();

    // Open the accounts.
    cluster
        .transaction(
            client,
            vec![
                (CHECKING, 1000i64.to_le_bytes().to_vec()),
                (SAVINGS, 250i64.to_le_bytes().to_vec()),
            ],
        )
        .expect("initial deposit");
    let (c, s) = read_balances(&mut cluster);
    println!(
        "opening balances: checking {c}, savings {s}  (total {})",
        c + s
    );

    // Transfer 400 from checking to savings — one atomic commit.
    let t = cluster
        .transaction(
            client,
            vec![
                (CHECKING, (c - 400).to_le_bytes().to_vec()),
                (SAVINGS, (s + 400).to_le_bytes().to_vec()),
            ],
        )
        .expect("transfer");
    println!(
        "transferred 400 in {} ({} suites committed together)",
        t.latency,
        t.versions.len()
    );
    let (c2, s2) = read_balances(&mut cluster);
    println!(
        "after transfer:   checking {c2}, savings {s2}  (total {})",
        c2 + s2
    );
    assert_eq!(c + s, c2 + s2, "money is conserved");

    // Now with a representative down: the quorum machinery doesn't care.
    cluster.crash(SiteId(2));
    println!("\ncrashed one representative; transferring 100 more...");
    let (c2, s2) = read_balances(&mut cluster);
    cluster
        .transaction(
            client,
            vec![
                (CHECKING, (c2 - 100).to_le_bytes().to_vec()),
                (SAVINGS, (s2 + 100).to_le_bytes().to_vec()),
            ],
        )
        .expect("transfer with one site down");
    let (c3, s3) = read_balances(&mut cluster);
    println!(
        "after transfer:   checking {c3}, savings {s3}  (total {})",
        c3 + s3
    );
    assert_eq!(c3 + s3, 1250);

    // Per-server atomicity: no server ever holds a torn pair.
    cluster.recover(SiteId(2));
    for site in SiteId::all(3) {
        let vc = cluster.version_at(site, CHECKING).expect("server");
        let vs = cluster.version_at(site, SAVINGS).expect("server");
        println!("server {site}: checking {vc}, savings {vs} — always in lockstep");
        assert_eq!(vc, vs);
    }
}
