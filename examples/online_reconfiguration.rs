//! Turning the knob online: vote and quorum changes without downtime.
//!
//! A suite starts tuned for balanced traffic (majority quorums), then the
//! workload turns read-heavy and the operator reconfigures it to
//! read-one/write-all — as one ordinary write under the *old* quorum,
//! while reads and writes keep flowing.
//!
//! ```text
//! cargo run --example online_reconfiguration
//! ```

use weighted_voting::prelude::*;

fn report(label: &str, h: &mut Harness, suite: ObjectId) {
    let w = h
        .write(suite, format!("payload for {label}").into_bytes())
        .expect("write");
    h.advance(SimDuration::from_secs(1));
    let r = h.read(suite).expect("read");
    println!(
        "  [{label}] write {} in {}, read {} in {}",
        w.version, w.latency, r.version, r.latency
    );
    h.advance(SimDuration::from_secs(1));
}

fn main() {
    // Costs 75 / 100 / 750 ms — Example 2's geography with equal votes.
    let mut net = NetConfig::uniform(4, LatencyModel::Constant(SimDuration::from_millis(50)));
    for (i, a) in [75.0, 100.0, 750.0].into_iter().enumerate() {
        net.set_link_symmetric(
            SiteId(3),
            SiteId::from(i),
            LatencyModel::Constant(SimDuration::from_millis_f64(a / 2.0)),
        );
    }
    let mut cluster = HarnessBuilder::new()
        .seed(4)
        .site(SiteSpec::server(1))
        .site(SiteSpec::server(1))
        .site(SiteSpec::server(1))
        .client()
        .quorum(QuorumSpec::majority(3))
        .net(net)
        .build()
        .expect("legal");
    let suite = cluster.suite_id();

    println!("phase 1 — majority quorums (r=2, w=2): balanced costs");
    for _ in 0..3 {
        report("majority", &mut cluster, suite);
    }

    println!("\nreconfiguring online to read-one/write-all (r=1, w=3)...");
    let rec = cluster
        .reconfigure_from(
            cluster.default_client(),
            suite,
            VoteAssignment::equal(3),
            QuorumSpec::new(1, 3),
        )
        .expect("reconfiguration is just a write under the old quorum");
    println!(
        "  installed configuration generation {} in {}",
        rec.version, rec.latency
    );

    println!("\nphase 2 — r=1, w=3: reads hit the cheap site, writes pay for all");
    for _ in 0..3 {
        report("read-one", &mut cluster, suite);
    }

    println!("\nper-server configuration generations now:");
    for s in SiteId::all(3) {
        println!(
            "  {s}: generation {:?}",
            cluster.generation_at(s, suite).expect("server")
        );
    }
    println!(
        "\nA server still on generation 1 is harmless: any quorum its stale\n\
         clients assemble intersects the configuration write quorum, so they\n\
         discover generation 2 and refresh before acting — the paper's rule."
    );
}
