//! The paper's three example file suites, live.
//!
//! Builds each of Gifford's example configurations on its published
//! topology, runs reads and writes, and prints the measured latencies next
//! to the numbers from the paper — the interactive version of experiment
//! E1.
//!
//! ```text
//! cargo run --example tuned_file_suites
//! ```

use weighted_voting::prelude::*;

struct Example {
    name: &'static str,
    story: &'static str,
    votes: Vec<(SiteId, u32)>,
    quorum: QuorumSpec,
    /// Round-trip access cost from the client to each representative site.
    access: Vec<f64>,
    /// Self-access cost when the client co-hosts a weak representative.
    self_access: Option<f64>,
    paper_read: f64,
    paper_write: f64,
}

fn examples() -> Vec<Example> {
    vec![
        Example {
            name: "Example 1 — read-mostly file on one workstation",
            story: "one voting representative on the file server, a weak\n\
                    representative cached on the workstation; r = w = 1",
            votes: vec![(SiteId(0), 1), (SiteId(1), 0)],
            quorum: QuorumSpec::new(1, 1),
            access: vec![75.0],
            self_access: Some(65.0),
            paper_read: 65.0,
            paper_write: 75.0,
        },
        Example {
            name: "Example 2 — moderate read/write from one local network",
            story: "votes ⟨2,1,1⟩: the local server dominates; r = 2, w = 3",
            votes: vec![(SiteId(0), 2), (SiteId(1), 1), (SiteId(2), 1)],
            quorum: QuorumSpec::new(2, 3),
            access: vec![75.0, 100.0, 750.0],
            self_access: None,
            paper_read: 75.0,
            paper_write: 100.0,
        },
        Example {
            name: "Example 3 — read-mostly file used from many networks",
            story: "votes ⟨1,1,1⟩ across distant servers; r = 1, w = 3",
            votes: vec![(SiteId(0), 1), (SiteId(1), 1), (SiteId(2), 1)],
            quorum: QuorumSpec::new(1, 3),
            access: vec![75.0, 750.0, 750.0],
            self_access: None,
            paper_read: 75.0,
            paper_write: 750.0,
        },
    ]
}

fn build(ex: &Example, seed: u64) -> Harness {
    let reps = ex.access.len();
    // The client is always the site after the remote representatives; when
    // it co-hosts a weak representative, that rep shares the client's site.
    let client = SiteId::from(reps);
    let sites = reps + 1;
    let mut net = NetConfig::uniform(sites, LatencyModel::Constant(SimDuration::from_millis(50)));
    for (i, &a) in ex.access.iter().enumerate() {
        net.set_link_symmetric(
            client,
            SiteId::from(i),
            LatencyModel::Constant(SimDuration::from_millis_f64(a / 2.0)),
        );
    }
    if let Some(a) = ex.self_access {
        net.set_link(
            client,
            client,
            LatencyModel::Constant(SimDuration::from_millis_f64(a / 2.0)),
        );
    }
    let mut b = HarnessBuilder::new().seed(seed).quorum(ex.quorum);
    for (site, votes) in &ex.votes {
        if *site == client {
            continue;
        }
        b = b.site(SiteSpec::server(*votes));
    }
    // The client site hosts a weak representative when the example says so.
    b = if ex.self_access.is_some() {
        b.site(SiteSpec::client_with_weak())
    } else {
        b.client()
    };
    b.net(net).build().expect("paper examples are legal")
}

fn main() {
    for (i, ex) in examples().iter().enumerate() {
        println!("\n=== {} ===", ex.name);
        println!("{}", ex.story);
        let mut h = build(ex, 7 + i as u64);
        let suite = h.suite_id();

        let w = h.write(suite, b"v1".to_vec()).expect("write");
        h.advance(SimDuration::from_secs(2));
        // First read may miss the cache; the second demonstrates the
        // steady state the paper's table describes.
        let _ = h.read(suite).expect("read");
        h.advance(SimDuration::from_secs(2));
        let r = h.read(suite).expect("read");

        println!(
            "  write: {:>7}   (paper: {} ms per quorum access; ours pays 3 rounds)",
            format!("{}", w.latency),
            ex.paper_write
        );
        println!(
            "  read : {:>7}   (paper: {} ms; ours verifies the version, hence ≥ 75 ms)",
            format!("{}", r.latency),
            ex.paper_read
        );
    }
    println!("\nRun `cargo run -p wv-bench --bin e1_example_suites` for the full table.");
}
