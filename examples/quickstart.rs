//! Quickstart: a three-representative suite with majority quorums.
//!
//! Builds the smallest interesting cluster, writes, reads, survives a
//! crash, and shows where the current version actually lives.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use weighted_voting::prelude::*;

fn main() {
    // Three voting representatives, one client, r = w = 2.
    let mut cluster = HarnessBuilder::new()
        .seed(2026)
        .site(SiteSpec::server(1))
        .site(SiteSpec::server(1))
        .site(SiteSpec::server(1))
        .client()
        .quorum(QuorumSpec::majority(3))
        .build()
        .expect("3 sites with r = w = 2 is a legal configuration");
    let suite = cluster.suite_id();

    println!("== write/read round trip ==");
    let w = cluster
        .write(suite, b"the first committed value".to_vec())
        .expect("write reaches a quorum");
    println!("write committed as {} in {}", w.version, w.latency);

    let r = cluster.read(suite).expect("read assembles a quorum");
    println!(
        "read returned {:?} at {} in {}",
        String::from_utf8_lossy(&r.value),
        r.version,
        r.latency
    );

    println!("\n== where did the write land? ==");
    for site in SiteId::all(3) {
        println!(
            "  representative at {site}: {}",
            cluster.version_at(site, suite).expect("server site")
        );
    }
    println!(
        "(w = 2 of 3: one representative may lag; quorum intersection\n\
         guarantees every read still sees the newest version)"
    );

    println!("\n== surviving a crash ==");
    cluster.crash(SiteId(0));
    println!("crashed s0");
    let w2 = cluster
        .write(suite, b"written with one site down".to_vec())
        .expect("two of three sites still form both quorums");
    println!("write committed as {} in {}", w2.version, w2.latency);
    let r2 = cluster.read(suite).expect("read");
    assert_eq!(&r2.value[..], b"written with one site down");
    println!("read sees it: {:?}", String::from_utf8_lossy(&r2.value));

    cluster.crash(SiteId(1));
    println!("crashed s1 (only one site left)");
    match cluster.write(suite, b"doomed".to_vec()) {
        Err(OpError::Unavailable { kind }) => {
            println!("write blocked as expected: {kind:?} quorum unavailable")
        }
        other => panic!("expected unavailability, got {other:?}"),
    }

    cluster.recover(SiteId(0));
    println!("recovered s0 — service resumes");
    let w3 = cluster
        .write(suite, b"back in business".to_vec())
        .expect("write");
    println!("write committed as {} after recovery", w3.version);
}
