//! Partitions: why quorum intersection prevents split brain.
//!
//! Five equal-vote representatives with majority quorums. The network
//! splits 3/2; only the majority side keeps writing, the minority side
//! blocks (instead of diverging), and after healing everyone agrees on the
//! one true history.
//!
//! ```text
//! cargo run --example partition_survivor
//! ```

use weighted_voting::prelude::*;

fn main() {
    // Five servers; two clients, one destined for each side of the split.
    let mut cluster = HarnessBuilder::new()
        .seed(13)
        .site(SiteSpec::server(1)) // s0
        .site(SiteSpec::server(1)) // s1
        .site(SiteSpec::server(1)) // s2
        .site(SiteSpec::server(1)) // s3
        .site(SiteSpec::server(1)) // s4
        .client() // s5: majority-side client
        .client() // s6: minority-side client
        .quorum(QuorumSpec::majority(5))
        .build()
        .expect("legal");
    let suite = cluster.suite_id();
    let majority_client = SiteId(5);
    let minority_client = SiteId(6);

    let w = cluster
        .write_from(majority_client, suite, b"before the storm".to_vec())
        .expect("healthy write");
    println!("pre-partition write committed as {}", w.version);

    println!("\n-- the network splits: {{s0,s1,s2,s5}} vs {{s3,s4,s6}} --");
    cluster.partition(Partition::split(
        7,
        &[
            &[SiteId(0), SiteId(1), SiteId(2), SiteId(5)],
            &[SiteId(3), SiteId(4), SiteId(6)],
        ],
    ));

    let w2 = cluster
        .write_from(majority_client, suite, b"majority side moves on".to_vec())
        .expect("3 of 5 votes reachable: quorum");
    println!("majority-side write committed as {}", w2.version);

    match cluster.write_from(minority_client, suite, b"minority split brain?".to_vec()) {
        Err(OpError::Unavailable { .. }) => {
            println!("minority-side write BLOCKED — two votes can never make a quorum")
        }
        other => panic!("safety violation: {other:?}"),
    }
    match cluster.read_from(minority_client, suite) {
        Err(OpError::Unavailable { .. }) => {
            println!("minority-side read BLOCKED — stale data is never served as current")
        }
        other => panic!("safety violation: {other:?}"),
    }

    println!("\n-- the partition heals --");
    cluster.heal();
    let r = cluster
        .read_from(minority_client, suite)
        .expect("healed network serves everyone");
    println!(
        "minority client now reads {:?} at {}",
        String::from_utf8_lossy(&r.value),
        r.version
    );
    assert_eq!(&r.value[..], b"majority side moves on");
    assert_eq!(r.version, w2.version);
    println!("single history, no lost updates, no split brain.");
}
