//! A minimal, dependency-free stand-in for the `bytes` crate.
//!
//! The workspace uses `Bytes` purely as a cheaply clonable immutable byte
//! buffer (replica payloads travel through the simulated network many times),
//! so this local version keeps just that: reference-counted heap storage with
//! a zero-allocation path for `'static` data, dereferencing to `[u8]`.

#![warn(missing_docs)]

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::Deref;
use std::sync::Arc;

/// A cheaply clonable, immutable slice of bytes.
///
/// Cloning is O(1): heap-backed buffers share one reference-counted
/// allocation, and buffers created from `'static` data never allocate.
#[derive(Clone)]
pub struct Bytes {
    inner: Inner,
}

#[derive(Clone)]
enum Inner {
    Static(&'static [u8]),
    Shared(Arc<[u8]>),
}

impl Bytes {
    /// Creates an empty buffer without allocating.
    pub const fn new() -> Bytes {
        Bytes {
            inner: Inner::Static(&[]),
        }
    }

    /// Wraps a `'static` slice without copying or allocating.
    pub const fn from_static(bytes: &'static [u8]) -> Bytes {
        Bytes {
            inner: Inner::Static(bytes),
        }
    }

    /// Copies `data` into a new shared buffer.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes {
            inner: Inner::Shared(Arc::from(data)),
        }
    }

    /// The number of bytes in the buffer.
    pub fn len(&self) -> usize {
        self.as_slice().len()
    }

    /// True when the buffer holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.as_slice().is_empty()
    }

    /// The contents as a plain slice.
    pub fn as_slice(&self) -> &[u8] {
        match &self.inner {
            Inner::Static(s) => s,
            Inner::Shared(s) => s,
        }
    }

    /// Copies the contents into an owned `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }
}

impl Default for Bytes {
    fn default() -> Bytes {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes {
            inner: Inner::Shared(Arc::from(v)),
        }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Bytes {
        Bytes::from_static(s)
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Bytes {
        Bytes::from_static(s.as_bytes())
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Bytes {
        Bytes::from(s.into_bytes())
    }
}

impl From<Box<[u8]>> for Bytes {
    fn from(b: Box<[u8]>) -> Bytes {
        Bytes {
            inner: Inner::Shared(Arc::from(b)),
        }
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Bytes) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Bytes) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialEq<Bytes> for Vec<u8> {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<const N: usize> PartialEq<[u8; N]> for Bytes {
    fn eq(&self, other: &[u8; N]) -> bool {
        self.as_slice() == other
    }
}

impl<const N: usize> PartialEq<&[u8; N]> for Bytes {
    fn eq(&self, other: &&[u8; N]) -> bool {
        self.as_slice() == *other
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            match b {
                b'"' => write!(f, "\\\"")?,
                b'\\' => write!(f, "\\\\")?,
                b'\n' => write!(f, "\\n")?,
                b'\r' => write!(f, "\\r")?,
                b'\t' => write!(f, "\\t")?,
                0x20..=0x7e => write!(f, "{}", b as char)?,
                _ => write!(f, "\\x{b:02x}")?,
            }
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_and_owned_compare_equal() {
        let a = Bytes::from_static(b"hello");
        let b = Bytes::from(b"hello".to_vec());
        assert_eq!(a, b);
        assert_eq!(a, b"hello");
        assert_eq!(a.len(), 5);
        assert!(!a.is_empty());
    }

    #[test]
    fn clones_share_storage() {
        let a = Bytes::from(vec![1, 2, 3]);
        let b = a.clone();
        assert_eq!(&*a as *const [u8], &*b as *const [u8]);
    }

    #[test]
    fn deref_reaches_slice_methods() {
        let a = Bytes::from_static(b"abc");
        assert_eq!(a.first(), Some(&b'a'));
        assert_eq!(&a[1..], b"bc");
    }

    #[test]
    fn debug_escapes_non_printables() {
        let a = Bytes::from(vec![b'x', 0, b'\n']);
        assert_eq!(format!("{a:?}"), "b\"x\\x00\\n\"");
    }
}
