//! A minimal, dependency-free stand-in for the `criterion` bench harness.
//!
//! Supports the subset the workspace's `[[bench]]` targets use: benchmark
//! groups, `bench_function` / `bench_with_input`, `BenchmarkId`, `black_box`,
//! and the `criterion_group!` / `criterion_main!` macros. Each benchmark is
//! warmed up, then timed over a calibrated iteration count; the mean
//! per-iteration wall time is printed in a compact one-line report.
//!
//! It does no statistics beyond the mean — the point is a stable smoke-check
//! of relative hot-path cost that runs offline, not publication-grade
//! confidence intervals.

#![warn(missing_docs)]

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier: prevents the optimizer from deleting benchmarked
/// work. Forwards to [`std::hint::black_box`].
pub fn black_box<T>(value: T) -> T {
    hint::black_box(value)
}

/// Top-level harness handle, passed to every `criterion_group!` target.
pub struct Criterion {
    /// Time spent running warm-up iterations per benchmark.
    warm_up: Duration,
    /// Target measurement time per benchmark.
    measure: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            warm_up: Duration::from_millis(50),
            measure: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group: {name}");
        BenchmarkGroup {
            criterion: self,
            name,
        }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        let report = run_bench(self.warm_up, self.measure, f);
        println!("  {name}: {report}");
        self
    }
}

/// A named collection of benchmarks sharing the group's settings.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark in this group.
    pub fn bench_function(&mut self, id: impl IntoBenchmarkId, mut f: impl FnMut(&mut Bencher)) {
        let report = run_bench(self.criterion.warm_up, self.criterion.measure, &mut f);
        println!("  {}/{}: {report}", self.name, id.into_benchmark_id());
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) {
        let report = run_bench(self.criterion.warm_up, self.criterion.measure, |b| {
            f(b, input);
        });
        println!("  {}/{}: {report}", self.name, id.into_benchmark_id());
    }

    /// Ends the group. Present for API compatibility; reporting is
    /// incremental so there is nothing to flush.
    pub fn finish(self) {}
}

/// Identifies one benchmark: a function name plus a parameter rendering.
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// Builds an id like `"{name}/{parameter}"`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            text: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Builds an id from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.text)
    }
}

/// Conversion into a printable benchmark id (allows `&str` or
/// [`BenchmarkId`] wherever an id is expected).
pub trait IntoBenchmarkId {
    /// The printable id.
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.text
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

/// Per-benchmark timing driver handed to the closure.
pub struct Bencher {
    mode: Mode,
    /// Total time spent inside `iter` routines.
    elapsed: Duration,
    /// Iterations executed during measurement.
    iters: u64,
}

enum Mode {
    /// Run a fixed number of iterations, accumulating elapsed time.
    Measure(u64),
}

impl Bencher {
    /// Times `routine`, running it as many times as the calibration decided.
    pub fn iter<T>(&mut self, mut routine: impl FnMut() -> T) {
        let Mode::Measure(n) = self.mode;
        let start = Instant::now();
        for _ in 0..n {
            black_box(routine());
        }
        self.elapsed += start.elapsed();
        self.iters += n;
    }
}

fn time_once(f: &mut impl FnMut(&mut Bencher)) -> Duration {
    let mut b = Bencher {
        mode: Mode::Measure(1),
        elapsed: Duration::ZERO,
        iters: 0,
    };
    f(&mut b);
    if b.iters == 0 {
        // The closure never called `iter`; charge zero.
        Duration::ZERO
    } else {
        b.elapsed / u32::try_from(b.iters).unwrap_or(u32::MAX)
    }
}

fn run_bench(warm_up: Duration, measure: Duration, mut f: impl FnMut(&mut Bencher)) -> String {
    // Warm-up: run single iterations until the warm-up budget is spent,
    // and learn the approximate cost of one iteration.
    let warm_start = Instant::now();
    let mut per_iter = time_once(&mut f);
    while warm_start.elapsed() < warm_up {
        per_iter = (per_iter + time_once(&mut f)) / 2;
    }
    // Calibrate an iteration count that fills the measurement budget.
    let per_iter_nanos = per_iter.as_nanos().max(1);
    let n = (measure.as_nanos() / per_iter_nanos).clamp(10, 1_000_000) as u64;
    let mut b = Bencher {
        mode: Mode::Measure(n),
        elapsed: Duration::ZERO,
        iters: 0,
    };
    f(&mut b);
    if b.iters == 0 {
        return "no iterations (closure never called iter)".to_string();
    }
    let mean_nanos = b.elapsed.as_nanos() as f64 / b.iters as f64;
    format!("{} / iter ({} iters)", fmt_nanos(mean_nanos), b.iters)
}

fn fmt_nanos(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Declares a benchmark group function that runs each listed target.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running each listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion {
            warm_up: Duration::from_millis(1),
            measure: Duration::from_millis(5),
        };
        let mut group = c.benchmark_group("t");
        let mut count = 0u64;
        group.bench_function("incr", |b| b.iter(|| count += 1));
        group.bench_with_input(BenchmarkId::new("add", 3), &3u64, |b, &x| {
            b.iter(|| black_box(x + 1))
        });
        group.finish();
        assert!(count > 0);
    }

    #[test]
    fn formatting_scales_units() {
        assert!(fmt_nanos(5.0).ends_with("ns"));
        assert!(fmt_nanos(5_000.0).ends_with("µs"));
        assert!(fmt_nanos(5_000_000.0).ends_with("ms"));
        assert!(fmt_nanos(5_000_000_000.0).ends_with("s"));
    }
}
