//! Cross-crate integration: online reconfiguration edge cases.
//!
//! The paper's rule is that vote changes are installed under the *old*
//! configuration's write quorum; the subtle part is granting votes to a
//! representative whose copy is stale (e.g. promoting a weak cache). The
//! reconfiguration transaction must bring such members current, or a
//! new-config read quorum containing only them would serve stale data.

use weighted_voting::prelude::*;

#[test]
fn promoting_a_weak_representative_brings_it_current() {
    // Site 0: voting server. Site 1: weak representative. Site 2: client.
    let mut h = HarnessBuilder::new()
        .seed(91)
        .site(SiteSpec::server(1))
        .site(SiteSpec::server(0))
        .client()
        .quorum(QuorumSpec::new(1, 1))
        .client_options(weighted_voting::core::client::ClientOptions {
            // No cache fills: the weak representative must be brought
            // current by the reconfiguration itself, not by read traffic.
            update_local_weak: false,
            optimistic_fetch: false,
            ..Default::default()
        })
        .build()
        .expect("legal");
    let suite = h.suite_id();
    let client = h.default_client();
    for i in 1..=3u64 {
        h.write(suite, format!("gen{i}").into_bytes())
            .expect("write");
    }
    // The weak representative never saw any of it.
    assert_eq!(h.version_at(SiteId(1), suite), Some(Version(0)));
    // Promote it: both sites get one vote, r = 1, w = 2.
    h.reconfigure_from(
        client,
        suite,
        VoteAssignment::new([(SiteId(0), 1), (SiteId(1), 1)]),
        QuorumSpec::new(1, 2),
    )
    .expect("reconfigure");
    // The promotion installed the current contents at the promoted site,
    // atomically with the configuration change. The copy lands one
    // version up (v4): the bump is what serialises the reconfiguration
    // against concurrent writes.
    assert_eq!(h.version_at(SiteId(1), suite), Some(Version(4)));
    assert_eq!(h.value_at(SiteId(1), suite).expect("server"), &b"gen3"[..]);
    // The acid test: crash the old sole voter. Under r = 1 the promoted
    // site alone now forms a read quorum — and it must serve fresh data.
    h.crash(SiteId(0));
    let r = h.read(suite).expect("read from the promoted site");
    assert_eq!(r.version, Version(4));
    assert_eq!(&r.value[..], b"gen3");
}

#[test]
fn reconfiguration_of_an_unwritten_suite_still_consumes_a_version() {
    let mut h = HarnessBuilder::new()
        .seed(92)
        .site(SiteSpec::server(1))
        .site(SiteSpec::server(0))
        .client()
        .quorum(QuorumSpec::new(1, 1))
        .build()
        .expect("legal");
    let suite = h.suite_id();
    let client = h.default_client();
    h.reconfigure_from(
        client,
        suite,
        VoteAssignment::new([(SiteId(0), 1), (SiteId(1), 1)]),
        QuorumSpec::majority(2),
    )
    .expect("reconfigure an empty suite");
    assert_eq!(h.generation_at(SiteId(0), suite), Some(2));
    // The re-publication bump writes the (empty) initial contents at v1
    // — even an empty suite serialises its reconfiguration against
    // concurrent first writes — so the first real write lands at v2.
    let w = h.write(suite, b"first".to_vec()).expect("write");
    assert_eq!(w.version, Version(2));
}

#[test]
fn shrinking_the_write_quorum_speeds_up_writes() {
    // Start write-all over 3 sites, shrink to majority.
    let mut h = HarnessBuilder::new()
        .seed(93)
        .site(SiteSpec::server(1))
        .site(SiteSpec::server(1))
        .site(SiteSpec::server(1))
        .client()
        .quorum(QuorumSpec::new(1, 3))
        .build()
        .expect("legal");
    let suite = h.suite_id();
    let client = h.default_client();
    h.write(suite, b"a".to_vec()).expect("write");
    // Write-all blocks when any site is down.
    h.crash(SiteId(2));
    assert!(h.write(suite, b"blocked".to_vec()).is_err());
    h.recover(SiteId(2));
    h.reconfigure_from(
        client,
        suite,
        VoteAssignment::equal(3),
        QuorumSpec::majority(3),
    )
    .expect("reconfigure");
    // Majority tolerates the same crash.
    h.crash(SiteId(2));
    let w = h.write(suite, b"tolerant".to_vec()).expect("write");
    let r = h.read(suite).expect("read");
    assert_eq!(r.version, w.version);
    assert_eq!(&r.value[..], b"tolerant");
}

#[test]
fn reconfiguration_requires_the_new_write_quorum_to_be_reachable() {
    let mut h = HarnessBuilder::new()
        .seed(94)
        .site(SiteSpec::server(1))
        .site(SiteSpec::server(1))
        .site(SiteSpec::server(1))
        .client()
        .quorum(QuorumSpec::majority(3))
        .build()
        .expect("legal");
    let suite = h.suite_id();
    let client = h.default_client();
    h.write(suite, b"x".to_vec()).expect("write");
    h.crash(SiteId(2));
    // Old majority (2 of 3) is reachable, but the requested write-all
    // configuration could never be installed safely: its data quorum
    // cannot be assembled.
    let err = h
        .reconfigure_from(
            client,
            suite,
            VoteAssignment::equal(3),
            QuorumSpec::new(1, 3),
        )
        .expect_err("new write quorum unreachable");
    assert!(matches!(err, OpError::Unavailable { .. }));
    // And nothing changed: the old configuration still serves.
    assert_eq!(h.generation_at(SiteId(0), suite), Some(1));
    assert!(h.write(suite, b"still majority".to_vec()).is_ok());
}

#[test]
fn back_to_back_reconfigurations_keep_generations_monotone() {
    let mut h = HarnessBuilder::new()
        .seed(95)
        .site(SiteSpec::server(1))
        .site(SiteSpec::server(1))
        .site(SiteSpec::server(1))
        .client()
        .quorum(QuorumSpec::majority(3))
        .build()
        .expect("legal");
    let suite = h.suite_id();
    let client = h.default_client();
    let specs = [
        QuorumSpec::new(1, 3),
        QuorumSpec::majority(3),
        QuorumSpec::new(3, 1),
        QuorumSpec::majority(3),
    ];
    for (i, q) in specs.iter().enumerate() {
        let w = h
            .reconfigure_from(client, suite, VoteAssignment::equal(3), *q)
            .expect("reconfigure");
        assert_eq!(w.version.0, i as u64 + 2, "generation chain");
        // The suite keeps serving between changes.
        h.write(suite, format!("i{i}").into_bytes()).expect("write");
        let r = h.read(suite).expect("read");
        assert_eq!(r.value, format!("i{i}").into_bytes());
    }
}
