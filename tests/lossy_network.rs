//! Cross-crate integration: the protocol under message loss and
//! duplication.
//!
//! Link loss turns into attempt timeouts and retries; duplication
//! exercises handler idempotence (duplicate prepares re-vote, duplicate
//! commits re-ack, duplicate version answers are absorbed). Neither may
//! ever produce a stale read or a torn write.

use weighted_voting::core::client::ClientOptions;
use weighted_voting::prelude::*;

fn lossy_cluster(drop: f64, duplicate: f64, seed: u64) -> Harness {
    let sites = 4;
    let mut net = NetConfig::uniform(sites, LatencyModel::constant_millis(50));
    net.set_drop_all(drop);
    net.duplicate_prob = duplicate;
    let mut b = HarnessBuilder::new()
        .seed(seed)
        .quorum(QuorumSpec::majority(3))
        .client_options(ClientOptions {
            phase_timeout: SimDuration::from_millis(1_500),
            max_attempts: 20,
            ..ClientOptions::default()
        })
        .net(net);
    for _ in 0..3 {
        b = b.site(SiteSpec::server(1));
    }
    b.client().build().expect("legal")
}

#[test]
fn operations_survive_moderate_loss() {
    let mut h = lossy_cluster(0.10, 0.0, 71);
    let suite = h.suite_id();
    let mut last = Version(0);
    let mut ok_writes = 0;
    for i in 0..10u32 {
        if let Ok(w) = h.write(suite, format!("w{i}").into_bytes()) {
            assert!(w.version > last, "version regressed under loss");
            last = w.version;
            ok_writes += 1;
        }
        if let Ok(r) = h.read(suite) {
            assert!(r.version >= last, "stale read under loss");
        }
    }
    assert!(
        ok_writes >= 8,
        "10% loss with retries should commit most writes, got {ok_writes}"
    );
}

#[test]
fn operations_survive_heavy_duplication() {
    let mut h = lossy_cluster(0.0, 0.5, 72);
    let suite = h.suite_id();
    for i in 0..8u32 {
        let w = h
            .write(suite, format!("dup{i}").into_bytes())
            .expect("no loss, only duplicates: writes must commit");
        assert_eq!(
            w.version,
            Version(u64::from(i) + 1),
            "duplicates double-applied"
        );
        let r = h.read(suite).expect("read");
        assert_eq!(r.version, w.version);
        assert_eq!(r.value, format!("dup{i}").into_bytes());
    }
    let dup = h.net_stats().duplicated;
    assert!(dup > 20, "duplication was actually exercised: {dup}");
}

#[test]
fn duplication_dialed_in_mid_run_never_double_applies_a_write() {
    // Exactly-once under at-least-once delivery, end to end: run clean,
    // then turn heavy duplication on with the runtime dial (the chaos
    // campaign's `Duplication` event) while writes are in flight, then
    // off again. Every acknowledged write must consume exactly one
    // version — a double-applied prepare or commit would show up as a
    // version skip — and the final contents must be the last payload.
    let mut h = lossy_cluster(0.0, 0.0, 74);
    let suite = h.suite_id();
    let client = h.default_client();
    let mut expected = 0u64;
    for phase in 0..3u32 {
        h.set_duplicate_prob(if phase == 1 { 0.6 } else { 0.0 });
        // Overlapping traffic: enqueue a burst without waiting in between,
        // so duplicated prepares and commits interleave with live ones.
        let start = h.now();
        for i in 0..4u32 {
            let at = start + SimDuration::from_millis(u64::from(i) * 40);
            h.enqueue_write(client, suite, payload(phase, i), at);
        }
        h.run_until_quiet(2_000_000);
        for op in h.drain_completed(client) {
            let ok = op.outcome.expect("no loss: writes must commit");
            expected += 1;
            assert_eq!(
                ok.version,
                Version(expected),
                "phase {phase}: a duplicate was applied twice or a write was lost"
            );
        }
    }
    let dup = h.net_stats().duplicated;
    assert!(dup > 20, "duplication was actually exercised: {dup}");
    let r = h.read(suite).expect("final read");
    assert_eq!(r.version, Version(expected));
    assert_eq!(r.value, payload(2, 3));
}

fn payload(phase: u32, i: u32) -> Vec<u8> {
    format!("p{phase}i{i}").into_bytes()
}

#[test]
fn loss_and_duplication_together_stay_consistent() {
    let mut h = lossy_cluster(0.08, 0.3, 73);
    let suite = h.suite_id();
    let mut committed = Vec::new();
    for i in 0..12u32 {
        if let Ok(w) = h.write(suite, format!("x{i}").into_bytes()) {
            committed.push(w.version.0);
        }
    }
    // Committed versions are strictly increasing and gap-free: retries and
    // duplicate deliveries never double-commit or skip.
    for pair in committed.windows(2) {
        assert_eq!(pair[1], pair[0] + 1, "gap or repeat in {committed:?}");
    }
    let r = h.read(suite).expect("final read");
    assert_eq!(
        r.version.0,
        *committed.last().expect("some writes committed")
    );
}
