//! Cross-crate property tests: the running system obeys the quorum math.
//!
//! For random legal configurations (votes, quorum sizes) and random crash
//! subsets, the live protocol's behaviour must match the pure arithmetic:
//! an operation succeeds exactly when the surviving sites carry enough
//! votes — no hidden liveness dependencies, no hidden safety holes.

use proptest::prelude::*;
use weighted_voting::prelude::*;

/// A random legal configuration of up to 5 voting sites.
#[derive(Clone, Debug)]
struct Config {
    votes: Vec<u32>,
    r: u32,
    w: u32,
    crashed: Vec<bool>,
}

fn config_strategy() -> impl Strategy<Value = Config> {
    (2usize..=5)
        .prop_flat_map(|n| {
            (
                proptest::collection::vec(1u32..=3, n),
                proptest::collection::vec(any::<bool>(), n),
            )
        })
        .prop_flat_map(|(votes, crashed)| {
            let total: u32 = votes.iter().sum();
            (Just(votes), Just(crashed), 1u32..=total)
        })
        .prop_map(|(votes, crashed, r)| {
            let total: u32 = votes.iter().sum();
            let w = total + 1 - r;
            Config {
                votes,
                r,
                w,
                crashed,
            }
        })
}

fn build(cfg: &Config, seed: u64) -> Harness {
    let mut b = HarnessBuilder::new()
        .seed(seed)
        .quorum(QuorumSpec::new(cfg.r, cfg.w));
    for &v in &cfg.votes {
        b = b.site(SiteSpec::server(v));
    }
    b.client().build().expect("constructed legal by strategy")
}

fn surviving_votes(cfg: &Config) -> u32 {
    cfg.votes
        .iter()
        .zip(&cfg.crashed)
        .filter(|(_, dead)| !**dead)
        .map(|(v, _)| *v)
        .sum()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Writes succeed iff the surviving votes reach the write quorum
    /// (which, with r + w = N + 1, also covers the inquiry).
    #[test]
    fn write_availability_matches_vote_arithmetic(cfg in config_strategy(), seed in 0u64..1000) {
        let mut h = build(&cfg, seed);
        let suite = h.suite_id();
        // Prime while healthy.
        h.write(suite, b"primed".to_vec()).expect("healthy write");
        for (i, &dead) in cfg.crashed.iter().enumerate() {
            if dead {
                h.crash(SiteId::from(i));
            }
        }
        let alive = surviving_votes(&cfg);
        let should_work = alive >= cfg.w.max(cfg.r);
        let outcome = h.write(suite, b"probe".to_vec());
        prop_assert_eq!(
            outcome.is_ok(),
            should_work,
            "votes alive {} vs r={} w={}; outcome {:?}",
            alive,
            cfg.r,
            cfg.w,
            outcome.err()
        );
    }

    /// Reads succeed iff the surviving votes reach the read quorum, and
    /// when they succeed they always return the newest committed version.
    #[test]
    fn read_availability_and_freshness(cfg in config_strategy(), seed in 0u64..1000) {
        let mut h = build(&cfg, seed);
        let suite = h.suite_id();
        let w1 = h.write(suite, b"one".to_vec()).expect("healthy write");
        let w2 = h.write(suite, b"two".to_vec()).expect("healthy write");
        prop_assert!(w2.version > w1.version);
        for (i, &dead) in cfg.crashed.iter().enumerate() {
            if dead {
                h.crash(SiteId::from(i));
            }
        }
        let alive = surviving_votes(&cfg);
        let should_work = alive >= cfg.r;
        match h.read(suite) {
            Ok(r) => {
                prop_assert!(should_work, "read succeeded with only {alive} votes");
                prop_assert_eq!(r.version, w2.version, "read missed the newest write");
                prop_assert_eq!(&r.value[..], b"two");
            }
            Err(_) => prop_assert!(!should_work, "read blocked despite {alive} votes"),
        }
    }

    /// After crashing everything and recovering everything, all committed
    /// state survives and service resumes.
    #[test]
    fn full_recovery_is_lossless(cfg in config_strategy(), seed in 0u64..1000) {
        let mut h = build(&cfg, seed);
        let suite = h.suite_id();
        let w = h.write(suite, b"durable".to_vec()).expect("write");
        for i in 0..cfg.votes.len() {
            h.crash(SiteId::from(i));
        }
        h.advance(SimDuration::from_secs(2));
        for i in 0..cfg.votes.len() {
            h.recover(SiteId::from(i));
        }
        let r = h.read(suite).expect("read after full recovery");
        prop_assert_eq!(r.version, w.version);
        prop_assert_eq!(&r.value[..], b"durable");
    }
}
