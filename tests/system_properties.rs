//! Cross-crate property tests: the running system obeys the quorum math.
//!
//! For random legal configurations (votes, quorum sizes) and random crash
//! subsets, the live protocol's behaviour must match the pure arithmetic:
//! an operation succeeds exactly when the surviving sites carry enough
//! votes — no hidden liveness dependencies, no hidden safety holes.
//!
//! Cases are generated from seeded [`DetRng`] streams (an offline stand-in
//! for the old proptest strategies): every case index reproduces exactly.

use weighted_voting::prelude::*;

/// A random legal configuration of up to 5 voting sites.
#[derive(Clone, Debug)]
struct Config {
    votes: Vec<u32>,
    r: u32,
    w: u32,
    crashed: Vec<bool>,
}

/// Draws a legal configuration: 2..=5 sites with 1..=3 votes each, a read
/// quorum in `1..=total`, the tight write quorum `w = total + 1 - r`, and an
/// arbitrary crash subset.
fn random_config(rng: &mut DetRng) -> Config {
    let n = 2 + rng.below(4) as usize;
    let votes: Vec<u32> = (0..n).map(|_| 1 + rng.below(3) as u32).collect();
    let crashed: Vec<bool> = (0..n).map(|_| rng.chance(0.5)).collect();
    let total: u32 = votes.iter().sum();
    let r = 1 + rng.below(u64::from(total)) as u32;
    let w = total + 1 - r;
    Config {
        votes,
        r,
        w,
        crashed,
    }
}

fn build(cfg: &Config, seed: u64) -> Harness {
    let mut b = HarnessBuilder::new()
        .seed(seed)
        .quorum(QuorumSpec::new(cfg.r, cfg.w));
    for &v in &cfg.votes {
        b = b.site(SiteSpec::server(v));
    }
    b.client().build().expect("constructed legal by strategy")
}

fn surviving_votes(cfg: &Config) -> u32 {
    cfg.votes
        .iter()
        .zip(&cfg.crashed)
        .filter(|(_, dead)| !**dead)
        .map(|(v, _)| *v)
        .sum()
}

const CASES: u64 = 48;

/// Writes succeed iff the surviving votes reach the write quorum
/// (which, with r + w = N + 1, also covers the inquiry).
#[test]
fn write_availability_matches_vote_arithmetic() {
    for case in 0..CASES {
        let mut rng = DetRng::new(0x11ab ^ case);
        let cfg = random_config(&mut rng);
        let seed = rng.below(1000);
        let mut h = build(&cfg, seed);
        let suite = h.suite_id();
        // Prime while healthy.
        h.write(suite, b"primed".to_vec()).expect("healthy write");
        for (i, &dead) in cfg.crashed.iter().enumerate() {
            if dead {
                h.crash(SiteId::from(i));
            }
        }
        let alive = surviving_votes(&cfg);
        let should_work = alive >= cfg.w.max(cfg.r);
        let outcome = h.write(suite, b"probe".to_vec());
        assert_eq!(
            outcome.is_ok(),
            should_work,
            "case {}: votes alive {} vs r={} w={}; outcome {:?}",
            case,
            alive,
            cfg.r,
            cfg.w,
            outcome.err()
        );
    }
}

/// Reads succeed iff the surviving votes reach the read quorum, and
/// when they succeed they always return the newest committed version.
#[test]
fn read_availability_and_freshness() {
    for case in 0..CASES {
        let mut rng = DetRng::new(0x22cd ^ case);
        let cfg = random_config(&mut rng);
        let seed = rng.below(1000);
        let mut h = build(&cfg, seed);
        let suite = h.suite_id();
        let w1 = h.write(suite, b"one".to_vec()).expect("healthy write");
        let w2 = h.write(suite, b"two".to_vec()).expect("healthy write");
        assert!(w2.version > w1.version);
        for (i, &dead) in cfg.crashed.iter().enumerate() {
            if dead {
                h.crash(SiteId::from(i));
            }
        }
        let alive = surviving_votes(&cfg);
        let should_work = alive >= cfg.r;
        match h.read(suite) {
            Ok(r) => {
                assert!(
                    should_work,
                    "case {case}: read succeeded with only {alive} votes"
                );
                assert_eq!(
                    r.version, w2.version,
                    "case {case}: read missed the newest write"
                );
                assert_eq!(&r.value[..], b"two");
            }
            Err(_) => assert!(
                !should_work,
                "case {case}: read blocked despite {alive} votes"
            ),
        }
    }
}

/// After crashing everything and recovering everything, all committed
/// state survives and service resumes.
#[test]
fn full_recovery_is_lossless() {
    for case in 0..CASES {
        let mut rng = DetRng::new(0x33ef ^ case);
        let cfg = random_config(&mut rng);
        let seed = rng.below(1000);
        let mut h = build(&cfg, seed);
        let suite = h.suite_id();
        let w = h.write(suite, b"durable".to_vec()).expect("write");
        for i in 0..cfg.votes.len() {
            h.crash(SiteId::from(i));
        }
        h.advance(SimDuration::from_secs(2));
        for i in 0..cfg.votes.len() {
            h.recover(SiteId::from(i));
        }
        let r = h.read(suite).expect("read after full recovery");
        assert_eq!(r.version, w.version, "case {case}");
        assert_eq!(&r.value[..], b"durable", "case {case}");
    }
}
