//! Cross-crate integration: multi-suite atomic transactions under
//! failures.
//!
//! A transaction staging writes at several suites must be all-or-nothing
//! *at every representative* (one container transaction per site) and
//! *across the cluster* (one coordinator decision), even when a
//! participant crashes between prepare and commit.

use weighted_voting::core::error::OpKind;
use weighted_voting::prelude::*;

fn cluster(seed: u64) -> Harness {
    HarnessBuilder::new()
        .seed(seed)
        .site(SiteSpec::server(1))
        .site(SiteSpec::server(1))
        .site(SiteSpec::server(1))
        .client()
        .quorum(QuorumSpec::majority(3))
        .suites([ObjectId(1), ObjectId(2)])
        .build()
        .expect("legal")
}

#[test]
fn committed_transactions_are_atomic_at_every_server() {
    let mut h = cluster(1);
    let client = h.default_client();
    for round in 1..=4u64 {
        h.transaction(
            client,
            vec![
                (ObjectId(1), format!("a{round}").into_bytes()),
                (ObjectId(2), format!("b{round}").into_bytes()),
            ],
        )
        .expect("transaction");
        // Per-server atomicity: at every server, the two suites are
        // either both at `round` or both at an older (but equal-height)
        // state — a server in the write quorum got both, one outside got
        // neither.
        for s in SiteId::all(3) {
            let v1 = h.version_at(s, ObjectId(1)).expect("server");
            let v2 = h.version_at(s, ObjectId(2)).expect("server");
            assert_eq!(
                v1, v2,
                "server {s} torn between suites: {v1} vs {v2} at round {round}"
            );
        }
    }
    assert_eq!(h.read(ObjectId(1)).expect("read").version, Version(4));
    assert_eq!(h.read(ObjectId(2)).expect("read").version, Version(4));
}

#[test]
fn participant_crash_between_prepare_and_commit_stays_atomic() {
    // Try a spread of crash instants inside the transaction's protocol
    // window (inquiry completes ~200 ms, prepares land ~300 ms, commits
    // ~500 ms with the default 100 ms one-way links).
    for crash_at_ms in [150u64, 250, 350, 450] {
        let mut h = cluster(2 + crash_at_ms);
        let client = h.default_client();
        h.transaction(
            client,
            vec![(ObjectId(1), b"a0".to_vec()), (ObjectId(2), b"b0".to_vec())],
        )
        .expect("base transaction");
        let start = h.now();
        h.enqueue_transaction(
            client,
            vec![(ObjectId(1), b"a1".to_vec()), (ObjectId(2), b"b1".to_vec())],
            start,
        );
        h.advance(SimDuration::from_millis(crash_at_ms));
        h.crash(SiteId(0));
        h.advance(SimDuration::from_secs(40));
        h.recover(SiteId(0));
        h.run_until_quiet(3_000_000);
        let ops = h.drain_completed(client);
        let outcome_ok = ops
            .iter()
            .any(|o| o.kind == OpKind::Transaction && o.outcome.is_ok());
        // Per-server atomicity regardless of outcome.
        for s in SiteId::all(3) {
            let v1 = h.version_at(s, ObjectId(1)).expect("server");
            let v2 = h.version_at(s, ObjectId(2)).expect("server");
            assert_eq!(
                v1, v2,
                "crash at {crash_at_ms}ms: server {s} torn ({v1} vs {v2})"
            );
        }
        // Cluster-level atomicity: reads of the two suites agree.
        let r1 = h.read(ObjectId(1)).expect("read");
        let r2 = h.read(ObjectId(2)).expect("read");
        assert_eq!(
            r1.version, r2.version,
            "crash at {crash_at_ms}ms: suites diverged"
        );
        if outcome_ok {
            assert_eq!(r1.version, Version(2), "acked transaction must be visible");
            assert_eq!(&r1.value[..], b"a1");
            assert_eq!(&r2.value[..], b"b1");
        }
    }
}

#[test]
fn transaction_versions_advance_in_lockstep_with_single_writes() {
    let mut h = cluster(3);
    let client = h.default_client();
    h.write(ObjectId(1), b"solo".to_vec()).expect("write");
    let t = h
        .transaction(
            client,
            vec![
                (ObjectId(1), b"tx-a".to_vec()),
                (ObjectId(2), b"tx-b".to_vec()),
            ],
        )
        .expect("transaction");
    // Suite 1 had one prior write, so the transaction installs v2 there
    // and v1 at suite 2 — versions are per-suite chains.
    let versions: std::collections::HashMap<_, _> = t.versions.into_iter().collect();
    assert_eq!(versions[&ObjectId(1)], Version(2));
    assert_eq!(versions[&ObjectId(2)], Version(1));
}
