//! Cross-crate integration: two-phase-commit crash windows.
//!
//! Crashes are injected at chosen instants inside a write's protocol
//! window (between prepare and commit), and the invariants checked are the
//! paper's: committed writes survive, uncommitted writes vanish entirely,
//! and a recovering participant resolves its in-doubt transaction by
//! asking the coordinator — never unilaterally.

use weighted_voting::core::error::OpKind;
use weighted_voting::prelude::*;

fn three_site_cluster(seed: u64) -> Harness {
    HarnessBuilder::new()
        .seed(seed)
        .site(SiteSpec::server(1))
        .site(SiteSpec::server(1))
        .site(SiteSpec::server(1))
        .client()
        .quorum(QuorumSpec::majority(3))
        .build()
        .expect("legal")
}

/// Crashes one quorum participant `at_ms` into an in-flight write and
/// reports `(write outcome ok?, final read version, versions per site)`.
fn crash_during_write(at_ms: u64, recover_after_ms: u64, seed: u64) -> (bool, u64, Vec<u64>) {
    let mut h = three_site_cluster(seed);
    let suite = h.suite_id();
    h.write(suite, b"base".to_vec()).expect("base write");
    let client = h.default_client();
    let start = h.now();
    h.enqueue_write(client, suite, b"in flight".to_vec(), start);
    // Let the write progress partway, then crash a participant. With
    // 100 ms links (50 ms one-way), inquiry completes ~100 ms, prepares
    // land ~200 ms, commits ~300 ms.
    h.advance(SimDuration::from_millis(at_ms));
    h.crash(SiteId(0));
    h.advance(SimDuration::from_millis(recover_after_ms));
    h.recover(SiteId(0));
    h.run_until_quiet(2_000_000);
    let ops = h.drain_completed(client);
    let write_ok = ops
        .iter()
        .any(|o| o.kind == OpKind::Write && o.outcome.is_ok());
    let read = h.read(suite).expect("final read");
    let versions = SiteId::all(3)
        .map(|s| h.version_at(s, suite).expect("server").0)
        .collect();
    (write_ok, read.version.0, versions)
}

#[test]
fn crash_before_prepare_lands_is_retried_or_fails_clean() {
    for at in [60u64, 120, 180] {
        let (write_ok, read_v, versions) = crash_during_write(at, 20_000, 1000 + at);
        // Whatever happened, the final state is consistent: the read sees
        // the highest committed version, and at least a quorum holds it.
        let max = *versions.iter().max().expect("non-empty");
        assert_eq!(
            read_v, max,
            "read missed the newest version (crash at {at}ms)"
        );
        let holders = versions.iter().filter(|v| **v == max).count();
        assert!(holders >= 2, "committed version must live at a quorum");
        if write_ok {
            assert_eq!(max, 2, "acked write must be durable");
        }
    }
}

#[test]
fn crash_between_prepare_and_commit_resolves_via_decision_probe() {
    // Crash right as prepares land (~210 ms): the crashed site holds a
    // prepared-in-doubt transaction. On recovery it probes the client,
    // which answers from its durable decision log.
    let (write_ok, read_v, versions) = crash_during_write(210, 30_000, 77);
    // The client retried against the remaining sites, so the write should
    // eventually commit (two healthy sites form a quorum).
    assert!(write_ok, "write should commit via the surviving quorum");
    assert_eq!(read_v, 2);
    // After recovery + resolution, nothing is left in doubt anywhere and
    // the recovered site either has the value (it committed its in-doubt
    // txn) or cleanly aborted it (version stays 1 or reaches 2 via the
    // retry quorum).
    for v in versions {
        assert!(v == 1 || v == 2, "impossible version {v}");
    }
}

#[test]
fn client_crash_loses_in_flight_ops_but_not_decisions() {
    let mut h = three_site_cluster(11);
    let suite = h.suite_id();
    h.write(suite, b"one".to_vec()).expect("write");
    let client = h.default_client();
    // Start a write and kill the client mid-flight.
    let start = h.now();
    h.enqueue_write(client, suite, b"doomed?".to_vec(), start);
    h.advance(SimDuration::from_millis(220));
    h.crash(client);
    h.advance(SimDuration::from_secs(30));
    h.recover(client);
    h.run_until_quiet(2_000_000);
    // The servers' decision probes got answered (presumed abort or the
    // durable commit), so no server is stuck holding locks: a fresh write
    // succeeds.
    let w = h
        .write(suite, b"after client crash".to_vec())
        .expect("write");
    let r = h.read(suite).expect("read");
    assert_eq!(r.version, w.version);
    assert_eq!(&r.value[..], b"after client crash");
}

#[test]
fn full_cluster_power_cycle_preserves_committed_state() {
    let mut h = three_site_cluster(13);
    let suite = h.suite_id();
    for i in 1..=3u64 {
        let w = h
            .write(suite, format!("gen {i}").into_bytes())
            .expect("write");
        assert_eq!(w.version.0, i);
    }
    for s in SiteId::all(3) {
        h.crash(s);
    }
    h.advance(SimDuration::from_secs(5));
    for s in SiteId::all(3) {
        h.recover(s);
    }
    let r = h.read(suite).expect("read after full restart");
    assert_eq!(r.version, Version(3));
    assert_eq!(&r.value[..], b"gen 3");
    // And the system still accepts writes.
    let w = h.write(suite, b"gen 4".to_vec()).expect("write");
    assert_eq!(w.version, Version(4));
}

#[test]
fn repeated_crash_recover_cycles_never_regress_versions() {
    let mut h = three_site_cluster(17);
    let suite = h.suite_id();
    let mut last = 0u64;
    for round in 0..6u64 {
        let victim = SiteId((round % 3) as u16);
        h.crash(victim);
        let w = h
            .write(suite, format!("round {round}").into_bytes())
            .expect("quorum of two suffices");
        assert!(w.version.0 > last, "version regressed");
        last = w.version.0;
        h.recover(victim);
        h.advance(SimDuration::from_secs(1));
        let r = h.read(suite).expect("read");
        assert_eq!(r.version.0, last);
    }
}
