//! Cross-crate integration: the protocol on real threads.
//!
//! The identical `SuiteServer` and `ClientNode` state machines that
//! regenerate the paper's tables under the deterministic simulator here
//! run on OS threads over std::sync::mpsc channels, with a router imposing
//! (scaled-down) link latencies — evidence that nothing in the protocol
//! depends on simulator bookkeeping.

use std::sync::mpsc;
use std::time::Duration;

use weighted_voting::core::client::{ClientNode, ClientOptions, CompletedOp};
use weighted_voting::core::msg::Msg;
use weighted_voting::core::node::SystemNode;
use weighted_voting::core::server::SuiteServer;
use weighted_voting::core::suite::SuiteConfig;
use weighted_voting::net::runner::NodeRunner;
use weighted_voting::net::thread_net::ThreadNet;
use weighted_voting::prelude::*;
use weighted_voting::txn::lock::DeadlockPolicy;

/// 20 ms virtual links compressed 10x: 2 ms real.
const SCALE: f64 = 0.1;

fn start_cluster() -> (Vec<NodeRunner<SystemNode>>, NodeRunner<SystemNode>) {
    let suite = ObjectId(1);
    let assignment = VoteAssignment::new([(SiteId(0), 1), (SiteId(1), 1), (SiteId(2), 1)]);
    let config = SuiteConfig::new(suite, assignment, QuorumSpec::majority(3)).expect("legal");
    let net_cfg = NetConfig::uniform(4, LatencyModel::Constant(SimDuration::from_millis(20)));
    let mut net = ThreadNet::<Msg>::start(net_cfg, 5, SCALE);
    let client_ep = net.endpoints.pop().expect("client endpoint");
    let mut servers = Vec::new();
    for (i, ep) in net.endpoints.drain(..).enumerate() {
        let node = SystemNode::Server(SuiteServer::new(
            SiteId::from(i),
            vec![config.clone()],
            DeadlockPolicy::WaitDie,
        ));
        servers.push(NodeRunner::spawn(node, ep, 10 + i as u64, SCALE));
    }
    let client = SystemNode::Client(ClientNode::new(
        SiteId(3),
        vec![config],
        vec![20.0; 4],
        ClientOptions {
            phase_timeout: SimDuration::from_secs(2),
            ..ClientOptions::default()
        },
    ));
    let client = NodeRunner::spawn(client, client_ep, 99, SCALE);
    // Keep the network alive for the runners' lifetime by leaking the
    // handle-bearing struct: runners hold endpoints; ThreadNet's drop
    // would stop the router, so forget it.
    std::mem::forget(net);
    (servers, client)
}

/// Waits (in real time) until the client has `n` completed ops, then
/// returns them.
fn await_completed(client: &NodeRunner<SystemNode>, n: usize) -> Vec<CompletedOp> {
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        let (tx, rx) = mpsc::channel();
        client.invoke(move |node, _ctx| {
            let c = node.as_client_mut().expect("client node");
            let _ = tx.send(c.completed.clone());
        });
        let snapshot = rx
            .recv_timeout(Duration::from_secs(5))
            .expect("client thread alive");
        if snapshot.len() >= n {
            return snapshot;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "timed out waiting for {n} ops; have {}",
            snapshot.len()
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

#[test]
fn write_then_read_over_real_threads() {
    let (servers, client) = start_cluster();
    let suite = ObjectId(1);
    client.invoke(move |node, ctx| {
        let c = node.as_client_mut().expect("client");
        c.start_write(suite, &b"threaded"[..], ctx);
    });
    let ops = await_completed(&client, 1);
    let w = ops[0].outcome.as_ref().expect("write committed");
    assert_eq!(w.version, Version(1));

    client.invoke(move |node, ctx| {
        let c = node.as_client_mut().expect("client");
        c.start_read(suite, ctx);
    });
    let ops = await_completed(&client, 2);
    let r = ops[1].outcome.as_ref().expect("read succeeded");
    assert_eq!(r.version, Version(1));
    assert_eq!(r.value.as_deref(), Some(&b"threaded"[..]));

    // Check at least a quorum of servers durably hold version 1.
    let mut held = 0;
    for s in servers {
        let node = s.stop();
        let srv = node.as_server().expect("server node");
        if srv.data_version(suite) == Version(1) {
            held += 1;
        }
    }
    assert!(
        held >= 2,
        "committed version must live at a quorum, held={held}"
    );
    client.stop();
}

#[test]
fn sequential_writes_serialise_over_real_threads() {
    let (servers, client) = start_cluster();
    let suite = ObjectId(1);
    for i in 0..5u32 {
        client.invoke(move |node, ctx| {
            let c = node.as_client_mut().expect("client");
            c.start_write(suite, format!("v{i}").into_bytes(), ctx);
        });
        // Wait for this write before issuing the next, so versions are
        // deterministic.
        let ops = await_completed(&client, i as usize + 1);
        let ok = ops[i as usize].outcome.as_ref().expect("committed");
        assert_eq!(ok.version, Version(u64::from(i) + 1));
    }
    client.invoke(move |node, ctx| {
        let c = node.as_client_mut().expect("client");
        c.start_read(suite, ctx);
    });
    let ops = await_completed(&client, 6);
    let r = ops[5].outcome.as_ref().expect("read");
    assert_eq!(r.version, Version(5));
    assert_eq!(r.value.as_deref(), Some(&b"v4"[..]));
    for s in servers {
        s.stop();
    }
    client.stop();
}
