//! Chaos testing: randomized operation + fault schedules, checked against
//! the invariants that must hold *regardless* of which quorums were
//! reachable:
//!
//! 1. every successful read returns a value some write actually sent
//!    (or the initial empty value);
//! 2. two reads of the same version always see the same bytes — replicas
//!    never diverge;
//! 3. no successful read is stale: it reflects at least the newest write
//!    whose acknowledgement preceded the read's start;
//! 4. successful writes all carry distinct versions;
//! 5. after healing and recovering everything, all clients converge on
//!    one final state that includes every acknowledged write.
//!
//! The schedule (operations, crashes, recoveries, partitions) is drawn
//! from a seeded generator, so failures replay exactly.

use std::collections::{BTreeMap, HashMap, HashSet};

use weighted_voting::core::client::CompletedOp;
use weighted_voting::core::error::OpKind;
use weighted_voting::prelude::*;
use weighted_voting::sim::DetRng;

const SERVERS: usize = 5;
const CLIENTS: usize = 2;

fn build(seed: u64) -> Harness {
    let mut b = HarnessBuilder::new()
        .seed(seed)
        .quorum(QuorumSpec::majority(SERVERS as u32));
    for _ in 0..SERVERS {
        b = b.site(SiteSpec::server(1));
    }
    for _ in 0..CLIENTS {
        b = b.client();
    }
    b.build().expect("legal chaos cluster")
}

fn random_partition(rng: &mut DetRng) -> Partition {
    let sites = SERVERS + CLIENTS;
    let mut group_a = Vec::new();
    let mut group_b = Vec::new();
    for s in SiteId::all(sites) {
        if rng.chance(0.5) {
            group_a.push(s);
        } else {
            group_b.push(s);
        }
    }
    Partition::split(sites, &[&group_a, &group_b])
}

fn run_chaos(seed: u64) {
    let mut h = build(seed);
    let suite = h.suite_id();
    let mut rng = DetRng::new(seed ^ 0xC4A0_5AAA);
    let clients = h.clients().to_vec();
    let mut down: HashSet<SiteId> = HashSet::new();
    let mut payload_counter = 0u64;
    let mut sent_payloads: HashSet<Vec<u8>> = HashSet::new();

    for step in 0..70u64 {
        let at = h.now() + SimDuration::from_millis(rng.below(400) + 1);
        match rng.below(10) {
            // Operations dominate the schedule.
            0..=4 => {
                let c = *rng.choose(&clients).expect("clients");
                if rng.chance(0.45) {
                    payload_counter += 1;
                    let payload = format!("chaos-{seed}-{payload_counter}").into_bytes();
                    sent_payloads.insert(payload.clone());
                    h.enqueue_write(c, suite, payload, at);
                } else {
                    h.enqueue_read(c, suite, at);
                }
            }
            5..=6 => {
                // Crash a random up server.
                let candidates: Vec<SiteId> =
                    SiteId::all(SERVERS).filter(|s| !down.contains(s)).collect();
                if let Some(&victim) = rng.choose(&candidates) {
                    down.insert(victim);
                    h.crash(victim);
                }
            }
            7 => {
                // Recover a random down server.
                let candidates: Vec<SiteId> = down.iter().copied().collect();
                if let Some(&back) = rng.choose(&candidates) {
                    down.remove(&back);
                    h.recover(back);
                }
            }
            8 => h.partition(random_partition(&mut rng)),
            _ => h.heal(),
        }
        // Let some of the backlog execute between schedule steps.
        h.advance(SimDuration::from_millis(rng.below(800) + 100));
        let _ = step;
    }
    // Quiesce: heal, recover everyone, drain.
    h.heal();
    for s in down.drain() {
        h.recover(s);
    }
    h.run_until_quiet(5_000_000);

    // Collect and check the histories.
    let mut all: Vec<CompletedOp> = Vec::new();
    for &c in &clients {
        all.extend(h.drain_completed(c));
    }
    check_invariants(seed, &sent_payloads, &all);

    // Convergence: every client reads the same final state, at least as
    // new as every acknowledged write.
    let max_acked = all
        .iter()
        .filter(|o| o.kind == OpKind::Write)
        .filter_map(|o| o.outcome.as_ref().ok())
        .map(|ok| ok.version)
        .max()
        .unwrap_or(Version(0));
    let mut finals = Vec::new();
    for &c in &clients {
        let r = h
            .read_from(c, suite)
            .expect("healed full cluster must serve reads");
        assert!(
            r.version >= max_acked,
            "seed {seed}: final read {} misses acked write {max_acked}",
            r.version
        );
        finals.push((r.version, r.value));
    }
    for pair in finals.windows(2) {
        assert_eq!(
            pair[0], pair[1],
            "seed {seed}: clients disagree on the final state"
        );
    }
}

fn check_invariants(seed: u64, sent: &HashSet<Vec<u8>>, ops: &[CompletedOp]) {
    // 4: committed writes carry distinct versions.
    let mut write_versions = HashSet::new();
    let mut committed_at: BTreeMap<u64, SimTime> = BTreeMap::new();
    for o in ops.iter().filter(|o| o.kind == OpKind::Write) {
        if let Ok(okk) = &o.outcome {
            assert!(
                write_versions.insert(okk.version),
                "seed {seed}: duplicate committed version {}",
                okk.version
            );
            committed_at.insert(okk.version.0, o.finished);
        }
    }
    // 1, 2, 3: reads.
    let mut seen_at_version: HashMap<u64, Vec<u8>> = HashMap::new();
    for o in ops.iter().filter(|o| o.kind == OpKind::Read) {
        let Ok(okk) = &o.outcome else { continue };
        let value = okk.value.clone().expect("reads carry values").to_vec();
        // 1: value provenance.
        assert!(
            value.is_empty() || sent.contains(&value),
            "seed {seed}: read returned bytes nobody wrote"
        );
        // 2: same version, same bytes.
        if let Some(prev) = seen_at_version.insert(okk.version.0, value.clone()) {
            assert_eq!(
                prev, value,
                "seed {seed}: divergent contents at version {}",
                okk.version
            );
        }
        // 3: freshness against acknowledged writes.
        let floor = committed_at
            .iter()
            .filter(|(_, fin)| **fin <= o.started)
            .map(|(v, _)| *v)
            .max()
            .unwrap_or(0);
        assert!(
            okk.version.0 >= floor,
            "seed {seed}: stale read v{} after v{floor} was acknowledged",
            okk.version
        );
    }
}

#[test]
fn chaos_seed_batch_one() {
    for seed in [1u64, 2, 3, 4] {
        run_chaos(seed);
    }
}

#[test]
fn chaos_seed_batch_two() {
    for seed in [5u64, 6, 7, 8] {
        run_chaos(seed);
    }
}

#[test]
fn chaos_seed_batch_three() {
    for seed in [100u64, 2026, 0xDEAD, 0xBEEF] {
        run_chaos(seed);
    }
}
