//! Chaos testing: randomized operation + fault schedules, judged by the
//! shared history oracle.
//!
//! The schedule generator, the executor, and the invariant checks all
//! live in `wv-chaos` (re-exported here as `weighted_voting::chaos`) —
//! the same code the E9 campaign fans over thousands of seeds. These
//! tests pin a batch of seeds so the tier-1 suite exercises the full
//! fault surface (crashes, partitions, loss bursts, delay spikes,
//! duplication, live reconfigurations) on every run, and demonstrate the
//! oracle catching a planted bug when quorum intersection is broken.

use weighted_voting::chaos::oracle::check_trial;
use weighted_voting::chaos::schedule::{ClusterSpec, ScheduleParams};
use weighted_voting::chaos::{generate, run_schedule, Violation};

const SERVERS: usize = 5;
const CLIENTS: usize = 2;

fn run_chaos(seed: u64) {
    let spec = ClusterSpec::majority(SERVERS, CLIENTS);
    let schedule = generate(&spec, &ScheduleParams::default(), seed);
    let run = run_schedule(&spec, &schedule);
    let violations = check_trial(&run, false);
    assert!(
        violations.is_empty(),
        "seed {seed:#x}: {} event(s), violations: {violations:?}",
        schedule.events.len()
    );
    assert!(run.quiesced, "seed {seed:#x}: run failed to quiesce");
}

#[test]
fn chaos_seed_batch_one() {
    for seed in [1u64, 2, 3, 4] {
        run_chaos(seed);
    }
}

#[test]
fn chaos_seed_batch_two() {
    for seed in [5u64, 6, 7, 8] {
        run_chaos(seed);
    }
}

#[test]
fn chaos_seed_batch_three() {
    for seed in [100u64, 2026, 0xDEAD, 0xBEEF] {
        run_chaos(seed);
    }
}

#[test]
fn the_oracle_catches_non_intersecting_quorums() {
    // r + w = N: read and write quorums need not share a representative,
    // so some seed quickly produces a stale read or a version fork. The
    // oracle — not a lucky assertion — must be what reports it.
    let spec = ClusterSpec::broken(SERVERS, CLIENTS, 2);
    let params = ScheduleParams {
        reconfigure: false,
        ..ScheduleParams::default()
    };
    let caught = (0..24u64).any(|i| {
        let schedule = generate(&spec, &params, 0xBAD5EED ^ i);
        let run = run_schedule(&spec, &schedule);
        !check_trial(&run, false).is_empty()
    });
    assert!(caught, "24 seeds against r + w = N found no violation");
}

#[test]
fn violations_carry_structured_context() {
    // The oracle returns data, not panics: campaign code counts tags and
    // the shrinker compares violation sets across replays.
    let v = Violation::StaleRead {
        returned: 1,
        floor: 2,
    };
    assert_eq!(v.tag(), "stale_read");
    assert_eq!(
        v.to_string(),
        "stale read: returned v1 after v2 was acknowledged"
    );
}
