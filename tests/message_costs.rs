//! Cross-crate integration: the transport's counters match the analytic
//! message-cost model.

use weighted_voting::analysis::{read_messages_bounds, read_messages_sequential, write_messages};
use weighted_voting::core::client::ClientOptions;
use weighted_voting::prelude::*;

fn cluster(servers: usize, quorum: QuorumSpec, optimistic: bool, seed: u64) -> Harness {
    let mut b = HarnessBuilder::new()
        .seed(seed)
        .quorum(quorum)
        .client_options(ClientOptions {
            optimistic_fetch: optimistic,
            ..ClientOptions::default()
        });
    for _ in 0..servers {
        b = b.site(SiteSpec::server(1));
    }
    b.client().build().expect("legal")
}

#[test]
fn write_message_count_is_exact() {
    for (servers, r, w) in [(3usize, 2u32, 2u32), (5, 3, 3), (3, 1, 3), (5, 1, 5)] {
        let mut h = cluster(servers, QuorumSpec::new(r, w), true, 7);
        let suite = h.suite_id();
        let before = h.net_stats().sent;
        h.write(suite, b"count me".to_vec()).expect("write");
        let sent = h.net_stats().sent - before;
        // Equal votes: the write quorum has exactly w sites.
        assert_eq!(
            sent,
            write_messages(servers, w as usize),
            "servers={servers} r={r} w={w}"
        );
    }
}

#[test]
fn optimistic_read_message_count_is_within_bounds() {
    for servers in [3usize, 5] {
        let mut h = cluster(servers, QuorumSpec::majority(servers as u32), true, 9);
        let suite = h.suite_id();
        h.write(suite, b"x".to_vec()).expect("prime");
        h.advance(SimDuration::from_secs(1));
        let before = h.net_stats().sent;
        h.read(suite).expect("read");
        let sent = h.net_stats().sent - before;
        let (lo, hi) = read_messages_bounds(servers);
        assert!(
            (lo..=hi).contains(&sent),
            "servers={servers}: sent {sent}, expected {lo}..={hi}"
        );
    }
}

#[test]
fn sequential_read_message_count_is_exact() {
    for servers in [3usize, 5] {
        let mut h = cluster(servers, QuorumSpec::majority(servers as u32), false, 11);
        let suite = h.suite_id();
        h.write(suite, b"x".to_vec()).expect("prime");
        h.advance(SimDuration::from_secs(1));
        let before = h.net_stats().sent;
        h.read(suite).expect("read");
        let sent = h.net_stats().sent - before;
        assert_eq!(sent, read_messages_sequential(servers), "servers={servers}");
    }
}

#[test]
fn weak_representative_adds_one_host_and_cache_fill() {
    // 1 voting server + 1 workstation (client + weak rep): h = 2 hosts.
    let mut h = HarnessBuilder::new()
        .seed(13)
        .site(SiteSpec::server(1))
        .site(SiteSpec::client_with_weak())
        .quorum(QuorumSpec::new(1, 1))
        .build()
        .expect("legal");
    let suite = h.suite_id();
    h.write(suite, b"x".to_vec()).expect("prime");
    h.advance(SimDuration::from_secs(1));
    // Miss: inquiry pair ×2 hosts + optimistic fetch pair (stale) +
    // explicit fetch pair + one UpdateWeak cache fill.
    let before = h.net_stats().sent;
    h.read(suite).expect("read miss");
    let miss_sent = h.net_stats().sent - before;
    assert_eq!(miss_sent, 2 * 2 + 2 + 2 + 1, "miss path");
    h.advance(SimDuration::from_secs(1));
    // Hit: inquiry pairs + optimistic fetch pair only.
    let before = h.net_stats().sent;
    h.read(suite).expect("read hit");
    let hit_sent = h.net_stats().sent - before;
    assert_eq!(hit_sent, 2 * 2 + 2, "hit path");
}
