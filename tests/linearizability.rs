//! Cross-crate integration: single-object linearizability under
//! concurrency, crashes, and partitions.
//!
//! Concurrent clients issue reads and writes against one suite. After the
//! run, the completion log is handed to the shared history oracle
//! (`wv-chaos`) in *strict* mode — these clusters never drop or delay
//! messages, so acknowledgement order must agree with version order on
//! top of the usual invariants (uniqueness, gap-freedom, no phantom or
//! stale reads).

use weighted_voting::chaos::check_log;
use weighted_voting::core::client::CompletedOp;
use weighted_voting::core::error::OpKind;
use weighted_voting::prelude::*;

fn cluster(servers: usize, clients: usize, quorum: QuorumSpec, seed: u64) -> Harness {
    let mut b = HarnessBuilder::new().seed(seed).quorum(quorum);
    for _ in 0..servers {
        b = b.site(SiteSpec::server(1));
    }
    for _ in 0..clients {
        b = b.client();
    }
    b.build().expect("legal cluster")
}

/// Checks the real-time consistency conditions over a completion log.
fn check_history(ops: &[CompletedOp]) {
    let violations = check_log(ops, None, true);
    assert!(
        violations.is_empty(),
        "history violations: {violations:?}\nops: {ops:#?}"
    );
}

#[test]
fn concurrent_clients_keep_a_single_history() {
    let mut h = cluster(3, 4, QuorumSpec::majority(3), 101);
    let suite = h.suite_id();
    let clients = h.clients().to_vec();
    // Interleave writes and reads from all clients at staggered times.
    for round in 0..12u64 {
        for (k, &c) in clients.iter().enumerate() {
            let at = SimTime::from_millis(round * 900 + k as u64 * 40);
            if (round + k as u64).is_multiple_of(3) {
                h.enqueue_write(c, suite, format!("r{round}k{k}").into_bytes(), at);
            } else {
                h.enqueue_read(c, suite, at);
            }
        }
    }
    h.run_until_quiet(2_000_000);
    let mut all = Vec::new();
    for &c in &clients {
        all.extend(h.drain_completed(c));
    }
    assert!(
        all.iter().filter(|o| o.outcome.is_ok()).count() > 20,
        "most operations should succeed on a healthy cluster"
    );
    check_history(&all);
}

#[test]
fn history_stays_single_under_crashes_and_recoveries() {
    let mut h = cluster(5, 3, QuorumSpec::majority(5), 202);
    let suite = h.suite_id();
    let clients = h.clients().to_vec();
    for round in 0..10u64 {
        for (k, &c) in clients.iter().enumerate() {
            let at = SimTime::from_millis(round * 1_500 + k as u64 * 70);
            if k == 0 {
                h.enqueue_write(c, suite, format!("w{round}").into_bytes(), at);
            } else {
                h.enqueue_read(c, suite, at);
            }
        }
    }
    // A rolling outage: two different servers bounce during the run.
    h.advance(SimDuration::from_millis(2_000));
    h.crash(SiteId(0));
    h.advance(SimDuration::from_millis(3_000));
    h.crash(SiteId(1));
    h.advance(SimDuration::from_millis(3_000));
    h.recover(SiteId(0));
    h.advance(SimDuration::from_millis(2_000));
    h.recover(SiteId(1));
    h.run_until_quiet(3_000_000);
    let mut all = Vec::new();
    for &c in &clients {
        all.extend(h.drain_completed(c));
    }
    check_history(&all);
    // The cluster still works afterwards.
    let w = h.write(suite, b"after the storm".to_vec()).expect("write");
    let r = h.read(suite).expect("read");
    assert_eq!(r.version, w.version);
}

#[test]
fn history_stays_single_across_a_partition() {
    let mut h = cluster(3, 2, QuorumSpec::majority(3), 303);
    let suite = h.suite_id();
    let clients = h.clients().to_vec();
    // Enqueue (rather than block on) the base write so its completion
    // record stays in the log the oracle checks — gap-freedom needs v1.
    h.enqueue_write(clients[0], suite, b"base".to_vec(), h.now());
    h.run_until_quiet(1_000_000);
    // Client 0 with the majority, client 1 with the minority.
    h.partition(Partition::split(
        5,
        &[&[SiteId(0), SiteId(1), SiteId(3)], &[SiteId(2), SiteId(4)]],
    ));
    for round in 0..6u64 {
        let at = h.now() + SimDuration::from_millis(round * 1_000);
        h.enqueue_write(clients[0], suite, format!("maj{round}").into_bytes(), at);
        h.enqueue_read(clients[1], suite, at);
    }
    h.run_until_quiet(2_000_000);
    h.heal();
    let mut all = Vec::new();
    for &c in &clients {
        all.extend(h.drain_completed(c));
    }
    // Minority reads must have failed rather than returned stale data.
    let minority_reads_ok = all
        .iter()
        .filter(|o| o.kind == OpKind::Read && o.outcome.is_ok())
        .count();
    assert_eq!(minority_reads_ok, 0, "minority reads must block");
    check_history(&all);
    // After healing the minority client sees the majority's history.
    let r = h.read_from(clients[1], suite).expect("read after heal");
    assert!(
        r.version >= Version(7),
        "expected base + 6 writes, got {}",
        r.version
    );
}
