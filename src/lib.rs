//! Weighted voting for replicated data — a full reproduction of Gifford's
//! SOSP 1979 system in Rust.
//!
//! This facade crate re-exports the workspace's public API:
//!
//! * [`core`] (`wv-core`) — file suites, vote assignments, quorums,
//!   version numbers, weak representatives, online reconfiguration, and
//!   the [`core::harness::Harness`] that runs it all on a deterministic
//!   simulated cluster.
//! * [`sim`] (`wv-sim`) — the discrete-event kernel.
//! * [`net`] (`wv-net`) — simulated and thread transports.
//! * [`storage`] (`wv-storage`) — write-ahead-logged containers.
//! * [`txn`] (`wv-txn`) — locking and two-phase commit.
//! * [`baselines`] (`wv-baselines`) — ROWA, primary copy, majority
//!   consensus.
//! * [`analysis`] (`wv-analysis`) — closed-form latency and availability
//!   models, and the optimal-vote-assignment search.
//! * [`chaos`] (`wv-chaos`) — the chaos campaign engine: seeded fault
//!   schedules, the history oracle, parallel seed campaigns, and the
//!   delta-debugging failure shrinker.
//!
//! # Examples
//!
//! ```
//! use weighted_voting::prelude::*;
//!
//! let mut cluster = HarnessBuilder::new()
//!     .seed(1)
//!     .site(SiteSpec::server(1))
//!     .site(SiteSpec::server(1))
//!     .site(SiteSpec::server(1))
//!     .client()
//!     .quorum(QuorumSpec::majority(3))
//!     .build()
//!     .expect("legal configuration");
//! let suite = cluster.suite_id();
//! cluster.write(suite, b"hello".to_vec()).expect("write");
//! let read = cluster.read(suite).expect("read");
//! assert_eq!(&read.value[..], b"hello");
//! ```
//!
//! The runnable binaries in `examples/` walk through the paper's
//! scenarios; `crates/bench/src/bin/` regenerates every table and figure
//! (see `DESIGN.md` and `EXPERIMENTS.md`).

#![warn(missing_docs)]

pub use wv_analysis as analysis;
pub use wv_baselines as baselines;
pub use wv_chaos as chaos;
pub use wv_core as core;
pub use wv_net as net;
pub use wv_sim as sim;
pub use wv_storage as storage;
pub use wv_txn as txn;

/// The names most programs need.
pub mod prelude {
    pub use wv_core::client::{ClientOptions, QuorumPolicy};
    pub use wv_core::harness::{Harness, HarnessBuilder, ReadResult, SiteSpec, WriteResult};
    pub use wv_core::quorum::QuorumSpec;
    pub use wv_core::votes::VoteAssignment;
    pub use wv_core::{OpError, OpKind};
    pub use wv_net::{NetConfig, Partition, SiteId};
    pub use wv_sim::{DetRng, LatencyModel, SimDuration, SimTime};
    pub use wv_storage::{ObjectId, Version};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_round_trip() {
        let mut h = HarnessBuilder::new()
            .seed(9)
            .site(SiteSpec::server(1))
            .site(SiteSpec::server(1))
            .site(SiteSpec::server(1))
            .client()
            .quorum(QuorumSpec::majority(3))
            .build()
            .expect("legal");
        let suite = h.suite_id();
        let w = h.write(suite, b"facade".to_vec()).expect("write");
        assert_eq!(w.version, Version(1));
        assert_eq!(&h.read(suite).expect("read").value[..], b"facade");
    }
}
