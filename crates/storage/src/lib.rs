//! Stable storage substrate — the stand-in for Violet's stable file system.
//!
//! Gifford's weighted-voting algorithm assumes representatives live in
//! *containers* that provide atomic, durable updates of `(version number,
//! contents)` pairs, plus enough transaction support that a write can
//! install the new version at several containers atomically. This crate
//! provides exactly that contract:
//!
//! * [`ObjectId`] / [`Version`] / [`VersionedValue`] — the unit of storage:
//!   a value tagged with the paper's version number.
//! * [`Wal`] — a write-ahead log with an explicit durability horizon, so
//!   tests can crash a container at any record boundary and observe
//!   recovery.
//! * [`Container`] — a recoverable object store with local transactions
//!   (begin / stage / commit / abort) and participant-side two-phase commit
//!   (prepare / resolve), built by replaying the log.
//!
//! Everything is in-memory by design: the experiments need *crash
//! semantics*, not persistence across OS processes, and an in-memory log
//! makes failure injection exact and deterministic.

#![warn(missing_docs)]

pub mod container;
pub mod error;
pub mod faults;
pub mod frame;
pub mod object;
pub mod wal;

pub use container::{Container, RecoveryOutcome, TxId, TxPhase};
pub use error::StorageError;
pub use faults::DiskFaults;
pub use object::{ObjectId, Version, VersionedValue};
pub use wal::{Record, ScanReport, Wal};
