//! Objects, version numbers, and versioned values.

use std::fmt;

use bytes::Bytes;

/// Identifies a stored object within a container.
///
/// In the paper each file suite has one logical file; a container may hold
/// representatives of many suites, so representatives are addressed by the
/// suite's object id.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ObjectId(pub u64);

impl fmt::Debug for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "obj{}", self.0)
    }
}

impl fmt::Display for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl From<u64> for ObjectId {
    fn from(v: u64) -> Self {
        ObjectId(v)
    }
}

/// The paper's *version number*: a monotonically increasing counter kept
/// with every representative. Current representatives are exactly those
/// holding the highest version number in a read quorum.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Version(pub u64);

impl Version {
    /// The version of a representative that has never been written.
    pub const INITIAL: Version = Version(0);

    /// The version produced by one more committed write.
    pub fn next(self) -> Version {
        Version(self.0.checked_add(1).expect("version counter overflow"))
    }

    /// True if this version strictly supersedes `other`.
    pub fn is_newer_than(self, other: Version) -> bool {
        self.0 > other.0
    }
}

impl fmt::Debug for Version {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl fmt::Display for Version {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// A value paired with the version number under which it was committed.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct VersionedValue {
    /// The version number.
    pub version: Version,
    /// The object contents as of that version.
    pub value: Bytes,
}

impl VersionedValue {
    /// Creates a versioned value.
    pub fn new(version: Version, value: impl Into<Bytes>) -> Self {
        VersionedValue {
            version,
            value: value.into(),
        }
    }

    /// The empty value at [`Version::INITIAL`] — the state of a
    /// representative that has never been written.
    pub fn initial() -> Self {
        VersionedValue {
            version: Version::INITIAL,
            value: Bytes::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn version_ordering_and_next() {
        let v0 = Version::INITIAL;
        let v1 = v0.next();
        let v2 = v1.next();
        assert!(v1.is_newer_than(v0));
        assert!(v2.is_newer_than(v1));
        assert!(!v1.is_newer_than(v1));
        assert!(!v0.is_newer_than(v2));
        assert_eq!(v2, Version(2));
        assert!(v0 < v1 && v1 < v2);
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn version_overflow_is_detected() {
        let _ = Version(u64::MAX).next();
    }

    #[test]
    fn versioned_value_initial() {
        let v = VersionedValue::initial();
        assert_eq!(v.version, Version(0));
        assert!(v.value.is_empty());
    }

    #[test]
    fn display_forms() {
        assert_eq!(format!("{}", ObjectId(3)), "obj3");
        assert_eq!(format!("{}", Version(9)), "v9");
    }

    #[test]
    fn versioned_value_from_static() {
        let v = VersionedValue::new(Version(1), &b"hello"[..]);
        assert_eq!(&v.value[..], b"hello");
    }
}
