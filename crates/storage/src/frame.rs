//! Checksummed on-disk framing for WAL records.
//!
//! Each [`Record`](crate::Record) is encoded as one frame:
//!
//! ```text
//! +-------+---------+------------+------------+----------------+
//! | magic | version | len u32 LE | crc u32 LE | payload (len)  |
//! +-------+---------+------------+------------+----------------+
//! ```
//!
//! The CRC covers the payload only, so the two damage classes a real disk
//! produces stay distinguishable at scan time:
//!
//! * **Torn tail** — the image ends before a frame completes (header or
//!   payload cut short). This is what a power cut does to the write that
//!   was in flight: the record was never acknowledged as durable, so
//!   truncating it is safe and normal.
//! * **Corruption** — a frame is complete but its magic, version, CRC, or
//!   payload decoding is wrong. A fully written record never shortens on
//!   its own, so damage inside a complete frame means the medium lied
//!   about something that *was* acknowledged — the caller must assume any
//!   suffix of the log is untrustworthy and quarantine the replica.
//!
//! The scan accepts the longest valid prefix and stops at the first bad
//! frame; bytes past the stop point are never decoded, which is what makes
//! the "no poisoned read" oracle invariant hold by construction.

use bytes::Bytes;

use crate::object::{ObjectId, Version};
use crate::wal::Record;

/// First byte of every frame.
pub const MAGIC: u8 = 0xA5;
/// Framing format version.
pub const FORMAT_VERSION: u8 = 1;
/// Bytes before the payload: magic, version, len, crc.
pub const HEADER_LEN: usize = 10;

/// CRC-32 (IEEE 802.3 polynomial, reflected), table-driven.
static CRC_TABLE: [u32; 256] = crc_table();

const fn crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

/// The CRC-32 checksum of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

// Payload tags, one per record variant.
const TAG_CHECKPOINT: u8 = 0;
const TAG_BEGIN: u8 = 1;
const TAG_PUT: u8 = 2;
const TAG_PREPARE: u8 = 3;
const TAG_COMMIT: u8 = 4;
const TAG_ABORT: u8 = 5;

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_bytes(buf: &mut Vec<u8>, b: &[u8]) {
    buf.extend_from_slice(&(b.len() as u32).to_le_bytes());
    buf.extend_from_slice(b);
}

fn encode_payload(buf: &mut Vec<u8>, r: &Record) {
    match r {
        Record::Checkpoint { state, next_tx } => {
            buf.push(TAG_CHECKPOINT);
            put_u64(buf, *next_tx);
            buf.extend_from_slice(&(state.len() as u32).to_le_bytes());
            for (object, version, value) in state {
                put_u64(buf, object.0);
                put_u64(buf, version.0);
                put_bytes(buf, value);
            }
        }
        Record::Begin { tx } => {
            buf.push(TAG_BEGIN);
            put_u64(buf, tx.0);
        }
        Record::Put {
            tx,
            object,
            version,
            value,
        } => {
            buf.push(TAG_PUT);
            put_u64(buf, tx.0);
            put_u64(buf, object.0);
            put_u64(buf, version.0);
            put_bytes(buf, value);
        }
        Record::Prepare { tx, note } => {
            buf.push(TAG_PREPARE);
            put_u64(buf, tx.0);
            put_u64(buf, *note);
        }
        Record::Commit { tx } => {
            buf.push(TAG_COMMIT);
            put_u64(buf, tx.0);
        }
        Record::Abort { tx } => {
            buf.push(TAG_ABORT);
            put_u64(buf, tx.0);
        }
    }
}

/// Appends the frame for `r` to `buf` and returns the frame's length.
pub fn encode_into(buf: &mut Vec<u8>, r: &Record) -> usize {
    let mut payload = Vec::new();
    encode_payload(&mut payload, r);
    let frame_len = HEADER_LEN + payload.len();
    buf.reserve(frame_len);
    buf.push(MAGIC);
    buf.push(FORMAT_VERSION);
    buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    buf.extend_from_slice(&crc32(&payload).to_le_bytes());
    buf.extend_from_slice(&payload);
    frame_len
}

/// A byte reader over one payload; every accessor fails soft so a
/// truncated or garbage payload decodes to `None`, never panics.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn u8(&mut self) -> Option<u8> {
        let b = *self.buf.get(self.pos)?;
        self.pos += 1;
        Some(b)
    }

    fn u32(&mut self) -> Option<u32> {
        let raw = self.buf.get(self.pos..self.pos + 4)?;
        self.pos += 4;
        Some(u32::from_le_bytes(raw.try_into().unwrap()))
    }

    fn u64(&mut self) -> Option<u64> {
        let raw = self.buf.get(self.pos..self.pos + 8)?;
        self.pos += 8;
        Some(u64::from_le_bytes(raw.try_into().unwrap()))
    }

    fn bytes(&mut self) -> Option<Bytes> {
        let len = self.u32()? as usize;
        let raw = self.buf.get(self.pos..self.pos + len)?;
        self.pos += len;
        Some(Bytes::copy_from_slice(raw))
    }

    fn done(&self) -> bool {
        self.pos == self.buf.len()
    }
}

fn decode_payload(payload: &[u8]) -> Option<Record> {
    let mut r = Reader {
        buf: payload,
        pos: 0,
    };
    let record = match r.u8()? {
        TAG_CHECKPOINT => {
            let next_tx = r.u64()?;
            let count = r.u32()? as usize;
            let mut state = Vec::with_capacity(count.min(1024));
            for _ in 0..count {
                let object = ObjectId(r.u64()?);
                let version = Version(r.u64()?);
                let value = r.bytes()?;
                state.push((object, version, value));
            }
            Record::Checkpoint { state, next_tx }
        }
        TAG_BEGIN => Record::Begin {
            tx: crate::container::TxId(r.u64()?),
        },
        TAG_PUT => Record::Put {
            tx: crate::container::TxId(r.u64()?),
            object: ObjectId(r.u64()?),
            version: Version(r.u64()?),
            value: r.bytes()?,
        },
        TAG_PREPARE => Record::Prepare {
            tx: crate::container::TxId(r.u64()?),
            note: r.u64()?,
        },
        TAG_COMMIT => Record::Commit {
            tx: crate::container::TxId(r.u64()?),
        },
        TAG_ABORT => Record::Abort {
            tx: crate::container::TxId(r.u64()?),
        },
        _ => return None,
    };
    // Trailing garbage inside a checksummed payload cannot happen unless
    // the encoder and decoder disagree; treat it as corruption.
    r.done().then_some(record)
}

/// Why a scan stopped.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ScanEnd {
    /// The image ended exactly on a frame boundary.
    Clean,
    /// The final frame was incomplete — a torn write. Truncating it is
    /// safe: an unfinished frame was never acknowledged as durable.
    Torn,
    /// A complete frame failed its checksum (or decoded to garbage).
    /// Acknowledged bytes are damaged; nothing after the stop point can
    /// be trusted.
    Corrupt,
}

/// The result of scanning a byte image back into records.
#[derive(Clone, Debug)]
pub struct Scan {
    /// The records of the longest valid prefix, in order.
    pub records: Vec<Record>,
    /// Why the scan stopped.
    pub end: ScanEnd,
    /// Bytes covered by the accepted records.
    pub accepted_bytes: usize,
}

/// Scans `image`, accepting the longest prefix of valid frames.
pub fn scan(image: &[u8]) -> Scan {
    let mut records = Vec::new();
    let mut pos = 0usize;
    let end = loop {
        if pos == image.len() {
            break ScanEnd::Clean;
        }
        let remaining = &image[pos..];
        if remaining.len() < HEADER_LEN {
            break ScanEnd::Torn;
        }
        if remaining[0] != MAGIC || remaining[1] != FORMAT_VERSION {
            break ScanEnd::Corrupt;
        }
        let len = u32::from_le_bytes(remaining[2..6].try_into().unwrap()) as usize;
        let Some(frame) = remaining.get(..HEADER_LEN + len) else {
            break ScanEnd::Torn;
        };
        let crc = u32::from_le_bytes(frame[6..10].try_into().unwrap());
        let payload = &frame[HEADER_LEN..];
        if crc32(payload) != crc {
            break ScanEnd::Corrupt;
        }
        let Some(record) = decode_payload(payload) else {
            break ScanEnd::Corrupt;
        };
        records.push(record);
        pos += HEADER_LEN + len;
    };
    Scan {
        records,
        end,
        accepted_bytes: pos,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::container::TxId;

    fn sample_records() -> Vec<Record> {
        vec![
            Record::Checkpoint {
                state: vec![
                    (ObjectId(1), Version(3), Bytes::from_static(b"alpha")),
                    (ObjectId(2), Version(0), Bytes::new()),
                ],
                next_tx: 7,
            },
            Record::Begin { tx: TxId(7) },
            Record::Put {
                tx: TxId(7),
                object: ObjectId(1),
                version: Version(4),
                value: Bytes::from_static(b"beta"),
            },
            Record::Prepare {
                tx: TxId(7),
                note: 42,
            },
            Record::Commit { tx: TxId(7) },
            Record::Abort { tx: TxId(8) },
        ]
    }

    fn encode_all(records: &[Record]) -> Vec<u8> {
        let mut image = Vec::new();
        for r in records {
            encode_into(&mut image, r);
        }
        image
    }

    #[test]
    fn crc32_matches_known_vector() {
        // The canonical IEEE check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn every_record_variant_round_trips() {
        let records = sample_records();
        let scan = scan(&encode_all(&records));
        assert_eq!(scan.end, ScanEnd::Clean);
        assert_eq!(scan.records, records);
    }

    #[test]
    fn empty_image_scans_clean() {
        let s = scan(&[]);
        assert_eq!(s.end, ScanEnd::Clean);
        assert!(s.records.is_empty());
        assert_eq!(s.accepted_bytes, 0);
    }

    #[test]
    fn any_truncation_inside_the_last_frame_is_torn() {
        let records = sample_records();
        let image = encode_all(&records);
        let mut boundaries = vec![0usize];
        let mut probe = Vec::new();
        for r in &records {
            encode_into(&mut probe, r);
            boundaries.push(probe.len());
        }
        for cut in 1..image.len() {
            let s = scan(&image[..cut]);
            if boundaries.contains(&cut) {
                assert_eq!(s.end, ScanEnd::Clean, "cut at frame boundary {cut}");
            } else {
                assert_eq!(s.end, ScanEnd::Torn, "cut mid-frame at {cut}");
            }
            // Either way the accepted prefix is exactly the complete frames.
            let complete = boundaries.iter().filter(|&&b| b <= cut).count() - 1;
            assert_eq!(s.records.len(), complete);
        }
    }

    #[test]
    fn a_flipped_payload_bit_is_corrupt_and_stops_the_scan() {
        let records = sample_records();
        let image = encode_all(&records);
        let mut boundaries = vec![0usize];
        let mut probe = Vec::new();
        for r in &records {
            encode_into(&mut probe, r);
            boundaries.push(probe.len());
        }
        // Flip one bit in every crc/payload byte of every frame; the scan
        // must stop exactly at that frame, never accept past it.
        for frame_idx in 0..records.len() {
            let (start, end) = (boundaries[frame_idx], boundaries[frame_idx + 1]);
            for byte in start + 6..end {
                let mut damaged = image.clone();
                damaged[byte] ^= 0x10;
                let s = scan(&damaged);
                assert_eq!(s.end, ScanEnd::Corrupt, "flip at byte {byte}");
                assert_eq!(s.records.len(), frame_idx);
                assert!(s.accepted_bytes <= start);
            }
        }
    }

    #[test]
    fn bad_magic_is_corrupt() {
        let mut image = encode_all(&sample_records());
        image[0] = 0x00;
        let s = scan(&image);
        assert_eq!(s.end, ScanEnd::Corrupt);
        assert!(s.records.is_empty());
    }

    #[test]
    fn unknown_format_version_is_corrupt() {
        let mut image = Vec::new();
        encode_into(&mut image, &Record::Commit { tx: TxId(1) });
        image[1] = FORMAT_VERSION + 1;
        assert_eq!(scan(&image).end, ScanEnd::Corrupt);
    }
}
