//! The write-ahead log with an explicit durability horizon.
//!
//! The log is the container's source of truth: container state is always
//! reconstructible by replaying the durable prefix. Appends go into a
//! buffered tail; [`Wal::flush`] moves the durability horizon to the end;
//! [`Wal::crash`] discards the unflushed tail — exactly the failure model
//! of a disk with a volatile write cache and explicit fsync.
//!
//! Alongside the typed record list the log maintains the *byte image* the
//! records would occupy on a real platter, framed and checksummed by
//! [`crate::frame`]. The image is what disk faults damage: a torn write
//! persists a partial prefix of the volatile tail, a bit flip corrupts a
//! durable byte. Damage is reconciled by [`Wal::rescan`], which accepts
//! the longest valid frame prefix and reports what was lost — the scanning
//! recovery `Container::recover_from` is built on.
//!
//! Property tests in `crate::container` crash the log at *every* record
//! boundary and assert recovery yields a prefix-consistent state.

use bytes::Bytes;

use crate::container::TxId;
use crate::frame::{self, ScanEnd};
use crate::object::{ObjectId, Version};

/// One log record.
#[derive(Clone, Debug, PartialEq)]
pub enum Record {
    /// A compaction point: the complete committed state as of this record.
    /// Replay starts from the latest durable checkpoint. Carries no
    /// transaction id.
    Checkpoint {
        /// Every committed `(object, version, contents)` triple.
        state: Vec<(ObjectId, Version, Bytes)>,
        /// The transaction-id counter at checkpoint time, so recovery
        /// never reissues an id used before the compaction.
        next_tx: u64,
    },
    /// A transaction began.
    Begin {
        /// The transaction.
        tx: TxId,
    },
    /// A staged write of `(object, version, value)` by `tx`. Takes effect
    /// only if a matching `Commit` follows.
    Put {
        /// The staging transaction.
        tx: TxId,
        /// Target object.
        object: ObjectId,
        /// Version to install.
        version: Version,
        /// Contents to install.
        value: Bytes,
    },
    /// The participant promised to commit `tx` if told to (two-phase
    /// commit's prepared state). After a crash, a prepared transaction is
    /// *in doubt* and must be resolved by its coordinator. `note` is an
    /// opaque caller tag (the suite servers store the coordinating request
    /// id here so recovery knows whom to ask).
    Prepare {
        /// The promising transaction.
        tx: TxId,
        /// Opaque caller tag reported back by recovery.
        note: u64,
    },
    /// `tx`'s staged writes take effect atomically.
    Commit {
        /// The committing transaction.
        tx: TxId,
    },
    /// `tx`'s staged writes are discarded.
    Abort {
        /// The aborting transaction.
        tx: TxId,
    },
}

impl Record {
    /// The transaction this record belongs to, if any (checkpoints belong
    /// to none).
    pub fn tx(&self) -> Option<TxId> {
        match self {
            Record::Checkpoint { .. } => None,
            Record::Begin { tx }
            | Record::Put { tx, .. }
            | Record::Prepare { tx, .. }
            | Record::Commit { tx }
            | Record::Abort { tx } => Some(*tx),
        }
    }
}

/// What [`Wal::rescan`] found while reconciling the byte image.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ScanReport {
    /// Records accepted by the scan (the new log length).
    pub recovered: usize,
    /// Durable records dropped because a complete frame failed its
    /// checksum. Non-zero only under interior corruption.
    pub lost_durable: usize,
    /// Volatile records a torn write happened to persist completely —
    /// work that was in flight at the crash but never acknowledged.
    pub recovered_volatile: usize,
    /// The image ended in an incomplete frame (normal torn tail).
    pub torn_tail: bool,
    /// A complete frame was damaged — acknowledged bytes are gone.
    pub corrupt: bool,
    /// Bytes examined by the scan.
    pub bytes_scanned: usize,
    /// True if the scan accepted bytes at or past a fault-injected
    /// corruption point — a checksum collision. Must never happen; the
    /// chaos oracle turns this into an invariant violation.
    pub poison_escaped: bool,
}

/// An in-memory write-ahead log with fsync semantics.
#[derive(Clone, Debug, Default)]
pub struct Wal {
    records: Vec<Record>,
    durable_len: usize,
    flushes: u64,
    /// The framed byte image of `records`, damage and all.
    image: Vec<u8>,
    /// Byte offset where each record's frame starts in `image`.
    offsets: Vec<usize>,
    /// Lowest image byte damaged by fault injection since the last
    /// rescan/replace — the poison line for the escape tripwire.
    corrupted_from: Option<usize>,
}

impl Wal {
    /// An empty log.
    pub fn new() -> Self {
        Wal::default()
    }

    /// Appends a record to the volatile tail.
    pub fn append(&mut self, r: Record) {
        self.offsets.push(self.image.len());
        frame::encode_into(&mut self.image, &r);
        self.records.push(r);
    }

    /// Makes everything appended so far durable (fsync).
    pub fn flush(&mut self) {
        if self.durable_len != self.records.len() {
            self.durable_len = self.records.len();
            self.flushes += 1;
        }
    }

    /// Simulates a clean crash: the volatile tail is lost.
    pub fn crash(&mut self) {
        self.crash_with_faults(None, &[]);
    }

    /// Simulates a crash with disk faults applied.
    ///
    /// * `tear` — if set, a prefix of the volatile tail's *bytes* persists
    ///   (the write in flight at power-cut made it partway to the
    ///   platter), usually ending mid-frame. The draw picks how many.
    /// * `flips` — each draw flips one bit inside a durable frame's
    ///   crc/payload region, so the damage always fails the checksum
    ///   instead of masquerading as a short frame.
    ///
    /// The typed view (`records`/`durable`) still shows the pre-damage
    /// durable prefix; only [`Wal::rescan`] reconciles it with the image.
    pub(crate) fn crash_with_faults(&mut self, tear: Option<u64>, flips: &[u64]) {
        for &draw in flips {
            self.flip_durable_bit(draw);
        }
        let durable_bytes = self.frame_start(self.durable_len);
        let volatile_bytes = self.image.len() - durable_bytes;
        let keep = match tear {
            Some(draw) if volatile_bytes > 0 => (draw as usize) % volatile_bytes,
            _ => 0,
        };
        self.image.truncate(durable_bytes + keep);
        self.records.truncate(self.durable_len);
        self.offsets.truncate(self.durable_len);
    }

    /// Byte offset where frame `n` starts (== total image length for the
    /// one-past-the-end index when no damage is outstanding).
    fn frame_start(&self, n: usize) -> usize {
        self.offsets.get(n).copied().unwrap_or(self.image.len())
    }

    /// Flips one bit in the checksummed region of a durable frame.
    fn flip_durable_bit(&mut self, draw: u64) {
        if self.durable_len == 0 {
            return;
        }
        let idx = (draw as usize) % self.durable_len;
        let start = self.offsets[idx];
        let end = self.frame_start(idx + 1);
        // Skip magic/version/len (6 bytes): damage lands in crc or payload
        // where the checksum is guaranteed to catch it.
        let region = end - start - 6;
        debug_assert!(region > 0, "frame too small to damage");
        let bit = ((draw >> 16) as usize) % (region * 8);
        let byte = start + 6 + bit / 8;
        self.image[byte] ^= 1 << (bit % 8);
        self.corrupted_from = Some(self.corrupted_from.map_or(byte, |c| c.min(byte)));
    }

    /// Scanning recovery over the byte image: accepts the longest valid
    /// frame prefix, rebuilds the typed view from it, and reports what was
    /// lost and why. After a rescan the log is clean (all accepted records
    /// durable, damage markers cleared).
    pub(crate) fn rescan(&mut self) -> ScanReport {
        let pre_durable = self.durable_len;
        let bytes_scanned = self.image.len();
        let scan = frame::scan(&self.image);
        let recovered = scan.records.len();
        let report = ScanReport {
            recovered,
            lost_durable: pre_durable.saturating_sub(recovered),
            recovered_volatile: recovered.saturating_sub(pre_durable),
            torn_tail: scan.end == ScanEnd::Torn,
            corrupt: scan.end == ScanEnd::Corrupt,
            bytes_scanned,
            poison_escaped: self.corrupted_from.is_some_and(|c| scan.accepted_bytes > c),
        };
        self.records = scan.records;
        self.durable_len = self.records.len();
        self.rebuild_image();
        self.corrupted_from = None;
        report
    }

    fn rebuild_image(&mut self) {
        self.image.clear();
        self.offsets.clear();
        let records = std::mem::take(&mut self.records);
        for r in &records {
            self.offsets.push(self.image.len());
            frame::encode_into(&mut self.image, r);
        }
        self.records = records;
    }

    /// All records, durable and volatile.
    pub fn records(&self) -> &[Record] {
        &self.records
    }

    /// The durable prefix.
    pub fn durable(&self) -> &[Record] {
        &self.records[..self.durable_len]
    }

    /// Total records appended (including the volatile tail).
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True if no records have been appended.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Size of the framed byte image, damage included.
    pub fn image_bytes(&self) -> usize {
        self.image.len()
    }

    /// How many times the durability horizon advanced — the "fsync count",
    /// the dominant cost of a commit on 1979 hardware and still the number
    /// a storage benchmark cares about.
    pub fn flushes(&self) -> u64 {
        self.flushes
    }

    /// Replaces the whole log (compaction). The first `durable` records
    /// are made durable immediately; the rest form the volatile tail.
    ///
    /// # Panics
    ///
    /// Panics if `durable` exceeds the record count.
    pub fn replace(&mut self, records: Vec<Record>, durable: usize) {
        assert!(durable <= records.len(), "durable prefix exceeds log");
        self.records = records;
        self.durable_len = durable;
        self.flushes += 1;
        self.rebuild_image();
        self.corrupted_from = None;
    }

    /// A copy of the log truncated to its first `n` records, all durable —
    /// the state an independent observer would recover from if the machine
    /// died right after record `n` hit the disk. Used by crash-point
    /// property tests.
    pub fn durable_prefix(&self, n: usize) -> Wal {
        let n = n.min(self.records.len());
        let mut w = Wal {
            records: self.records[..n].to_vec(),
            durable_len: n,
            ..Wal::default()
        };
        w.rebuild_image();
        w
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn put(tx: u64, obj: u64, ver: u64) -> Record {
        Record::Put {
            tx: TxId(tx),
            object: ObjectId(obj),
            version: Version(ver),
            value: Bytes::from_static(b"x"),
        }
    }

    #[test]
    fn crash_discards_unflushed_tail() {
        let mut w = Wal::new();
        w.append(Record::Begin { tx: TxId(1) });
        w.append(put(1, 7, 1));
        w.flush();
        w.append(Record::Commit { tx: TxId(1) });
        assert_eq!(w.len(), 3);
        assert_eq!(w.durable().len(), 2);
        w.crash();
        assert_eq!(w.len(), 2);
        assert_eq!(w.records().last(), Some(&put(1, 7, 1)));
    }

    #[test]
    fn flush_counts_only_real_advances() {
        let mut w = Wal::new();
        w.flush();
        assert_eq!(w.flushes(), 0);
        w.append(Record::Begin { tx: TxId(1) });
        w.flush();
        w.flush();
        assert_eq!(w.flushes(), 1);
    }

    #[test]
    fn durable_prefix_is_independent() {
        let mut w = Wal::new();
        for i in 0..5 {
            w.append(Record::Begin { tx: TxId(i) });
        }
        w.flush();
        let p = w.durable_prefix(3);
        assert_eq!(p.len(), 3);
        assert_eq!(p.durable().len(), 3);
        // Prefix longer than the log clamps.
        assert_eq!(w.durable_prefix(99).len(), 5);
    }

    #[test]
    fn record_tx_accessor() {
        assert_eq!(put(9, 1, 1).tx(), Some(TxId(9)));
        assert_eq!(Record::Abort { tx: TxId(2) }.tx(), Some(TxId(2)));
        assert_eq!(
            Record::Prepare {
                tx: TxId(3),
                note: 0
            }
            .tx(),
            Some(TxId(3))
        );
        assert_eq!(
            Record::Checkpoint {
                state: Vec::new(),
                next_tx: 0
            }
            .tx(),
            None
        );
    }

    #[test]
    fn replace_compacts_and_flushes() {
        let mut w = Wal::new();
        for i in 0..5 {
            w.append(Record::Begin { tx: TxId(i) });
        }
        w.flush();
        w.replace(
            vec![Record::Checkpoint {
                state: Vec::new(),
                next_tx: 0,
            }],
            1,
        );
        assert_eq!(w.len(), 1);
        assert_eq!(w.durable().len(), 1);
        // The volatile tail rule still applies after a replace.
        w.append(Record::Begin { tx: TxId(9) });
        w.crash();
        assert_eq!(w.len(), 1);
    }

    #[test]
    #[should_panic(expected = "durable prefix exceeds log")]
    fn replace_rejects_oversized_durable_prefix() {
        let mut w = Wal::new();
        w.replace(Vec::new(), 1);
    }

    #[test]
    fn empty_log() {
        let w = Wal::new();
        assert!(w.is_empty());
        assert_eq!(w.durable().len(), 0);
        assert_eq!(w.image_bytes(), 0);
    }

    #[test]
    fn clean_rescan_is_a_no_op() {
        let mut w = Wal::new();
        w.append(Record::Begin { tx: TxId(1) });
        w.append(put(1, 7, 1));
        w.flush();
        let before = w.records().to_vec();
        w.crash();
        let report = w.rescan();
        assert_eq!(w.records(), &before[..]);
        assert_eq!(
            report,
            ScanReport {
                recovered: 2,
                bytes_scanned: w.image_bytes(),
                ..ScanReport::default()
            }
        );
    }

    #[test]
    fn torn_crash_persists_a_partial_tail_and_rescan_truncates_it() {
        let mut w = Wal::new();
        w.append(Record::Begin { tx: TxId(1) });
        w.flush();
        let durable_bytes = w.image_bytes();
        w.append(put(1, 7, 1));
        w.append(Record::Commit { tx: TxId(1) });
        // A draw landing mid-frame: keep a handful of volatile bytes.
        w.crash_with_faults(Some(durable_bytes as u64 + 5), &[]);
        assert!(w.image_bytes() > durable_bytes, "some torn bytes persisted");
        let report = w.rescan();
        assert!(report.torn_tail);
        assert!(!report.corrupt);
        assert_eq!(report.lost_durable, 0, "torn tails never lose acked data");
        assert!(!w.is_empty(), "durable prefix survives");
        assert_eq!(w.durable().first(), Some(&Record::Begin { tx: TxId(1) }));
    }

    #[test]
    fn a_tear_can_persist_whole_volatile_records() {
        let mut w = Wal::new();
        w.append(Record::Begin { tx: TxId(1) });
        w.flush();
        w.append(put(1, 7, 1));
        let full = w.image_bytes();
        w.append(Record::Commit { tx: TxId(1) });
        // Keep exactly through the end of the Put frame plus 3 bytes of
        // the Commit frame: the Put becomes durable, the Commit is torn.
        let durable_bytes = {
            let p = w.durable_prefix(1);
            p.image_bytes()
        };
        let volatile = w.image_bytes() - durable_bytes;
        let keep = full - durable_bytes + 3;
        assert!(keep < volatile);
        w.crash_with_faults(Some(keep as u64), &[]);
        let report = w.rescan();
        assert!(report.torn_tail);
        assert_eq!(report.recovered_volatile, 1, "the Put frame persisted");
        assert_eq!(w.len(), 2);
    }

    #[test]
    fn a_bit_flip_corrupts_a_durable_record_and_rescan_detects_it() {
        let mut w = Wal::new();
        for i in 0..4 {
            w.append(Record::Begin { tx: TxId(i) });
        }
        w.flush();
        // Draw 1 targets frame 1 of 4; the scan must stop there.
        w.crash_with_faults(None, &[1]);
        let report = w.rescan();
        assert!(report.corrupt);
        assert!(!report.poison_escaped, "checksum must catch the flip");
        assert_eq!(report.recovered, 1);
        assert_eq!(report.lost_durable, 3, "everything after the damage goes");
        assert_eq!(w.len(), 1);
    }

    #[test]
    fn rescan_leaves_a_clean_log_behind() {
        let mut w = Wal::new();
        for i in 0..4 {
            w.append(Record::Begin { tx: TxId(i) });
        }
        w.flush();
        w.crash_with_faults(None, &[2]);
        let first = w.rescan();
        assert!(first.corrupt);
        // A second crash/rescan cycle sees no damage at all.
        w.crash();
        let second = w.rescan();
        assert!(!second.corrupt && !second.torn_tail);
        assert_eq!(second.recovered, first.recovered);
        assert_eq!(second.lost_durable, 0);
    }
}
