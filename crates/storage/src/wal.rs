//! The write-ahead log with an explicit durability horizon.
//!
//! The log is the container's source of truth: container state is always
//! reconstructible by replaying the durable prefix. Appends go into a
//! buffered tail; [`Wal::flush`] moves the durability horizon to the end;
//! [`Wal::crash`] discards the unflushed tail — exactly the failure model
//! of a disk with a volatile write cache and explicit fsync.
//!
//! Property tests in `crate::container` crash the log at *every* record
//! boundary and assert recovery yields a prefix-consistent state.

use bytes::Bytes;

use crate::container::TxId;
use crate::object::{ObjectId, Version};

/// One log record.
#[derive(Clone, Debug, PartialEq)]
pub enum Record {
    /// A compaction point: the complete committed state as of this record.
    /// Replay starts from the latest durable checkpoint. Carries no
    /// transaction id.
    Checkpoint {
        /// Every committed `(object, version, contents)` triple.
        state: Vec<(ObjectId, Version, Bytes)>,
        /// The transaction-id counter at checkpoint time, so recovery
        /// never reissues an id used before the compaction.
        next_tx: u64,
    },
    /// A transaction began.
    Begin {
        /// The transaction.
        tx: TxId,
    },
    /// A staged write of `(object, version, value)` by `tx`. Takes effect
    /// only if a matching `Commit` follows.
    Put {
        /// The staging transaction.
        tx: TxId,
        /// Target object.
        object: ObjectId,
        /// Version to install.
        version: Version,
        /// Contents to install.
        value: Bytes,
    },
    /// The participant promised to commit `tx` if told to (two-phase
    /// commit's prepared state). After a crash, a prepared transaction is
    /// *in doubt* and must be resolved by its coordinator. `note` is an
    /// opaque caller tag (the suite servers store the coordinating request
    /// id here so recovery knows whom to ask).
    Prepare {
        /// The promising transaction.
        tx: TxId,
        /// Opaque caller tag reported back by recovery.
        note: u64,
    },
    /// `tx`'s staged writes take effect atomically.
    Commit {
        /// The committing transaction.
        tx: TxId,
    },
    /// `tx`'s staged writes are discarded.
    Abort {
        /// The aborting transaction.
        tx: TxId,
    },
}

impl Record {
    /// The transaction this record belongs to, if any (checkpoints belong
    /// to none).
    pub fn tx(&self) -> Option<TxId> {
        match self {
            Record::Checkpoint { .. } => None,
            Record::Begin { tx }
            | Record::Put { tx, .. }
            | Record::Prepare { tx, .. }
            | Record::Commit { tx }
            | Record::Abort { tx } => Some(*tx),
        }
    }
}

/// An in-memory write-ahead log with fsync semantics.
#[derive(Clone, Debug, Default)]
pub struct Wal {
    records: Vec<Record>,
    durable_len: usize,
    flushes: u64,
}

impl Wal {
    /// An empty log.
    pub fn new() -> Self {
        Wal::default()
    }

    /// Appends a record to the volatile tail.
    pub fn append(&mut self, r: Record) {
        self.records.push(r);
    }

    /// Makes everything appended so far durable (fsync).
    pub fn flush(&mut self) {
        if self.durable_len != self.records.len() {
            self.durable_len = self.records.len();
            self.flushes += 1;
        }
    }

    /// Simulates a crash: the volatile tail is lost.
    pub fn crash(&mut self) {
        self.records.truncate(self.durable_len);
    }

    /// All records, durable and volatile.
    pub fn records(&self) -> &[Record] {
        &self.records
    }

    /// The durable prefix.
    pub fn durable(&self) -> &[Record] {
        &self.records[..self.durable_len]
    }

    /// Total records appended (including the volatile tail).
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True if no records have been appended.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// How many times the durability horizon advanced — the "fsync count",
    /// the dominant cost of a commit on 1979 hardware and still the number
    /// a storage benchmark cares about.
    pub fn flushes(&self) -> u64 {
        self.flushes
    }

    /// Replaces the whole log (compaction). The first `durable` records
    /// are made durable immediately; the rest form the volatile tail.
    ///
    /// # Panics
    ///
    /// Panics if `durable` exceeds the record count.
    pub fn replace(&mut self, records: Vec<Record>, durable: usize) {
        assert!(durable <= records.len(), "durable prefix exceeds log");
        self.records = records;
        self.durable_len = durable;
        self.flushes += 1;
    }

    /// A copy of the log truncated to its first `n` records, all durable —
    /// the state an independent observer would recover from if the machine
    /// died right after record `n` hit the disk. Used by crash-point
    /// property tests.
    pub fn durable_prefix(&self, n: usize) -> Wal {
        let n = n.min(self.records.len());
        Wal {
            records: self.records[..n].to_vec(),
            durable_len: n,
            flushes: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn put(tx: u64, obj: u64, ver: u64) -> Record {
        Record::Put {
            tx: TxId(tx),
            object: ObjectId(obj),
            version: Version(ver),
            value: Bytes::from_static(b"x"),
        }
    }

    #[test]
    fn crash_discards_unflushed_tail() {
        let mut w = Wal::new();
        w.append(Record::Begin { tx: TxId(1) });
        w.append(put(1, 7, 1));
        w.flush();
        w.append(Record::Commit { tx: TxId(1) });
        assert_eq!(w.len(), 3);
        assert_eq!(w.durable().len(), 2);
        w.crash();
        assert_eq!(w.len(), 2);
        assert_eq!(w.records().last(), Some(&put(1, 7, 1)));
    }

    #[test]
    fn flush_counts_only_real_advances() {
        let mut w = Wal::new();
        w.flush();
        assert_eq!(w.flushes(), 0);
        w.append(Record::Begin { tx: TxId(1) });
        w.flush();
        w.flush();
        assert_eq!(w.flushes(), 1);
    }

    #[test]
    fn durable_prefix_is_independent() {
        let mut w = Wal::new();
        for i in 0..5 {
            w.append(Record::Begin { tx: TxId(i) });
        }
        w.flush();
        let p = w.durable_prefix(3);
        assert_eq!(p.len(), 3);
        assert_eq!(p.durable().len(), 3);
        // Prefix longer than the log clamps.
        assert_eq!(w.durable_prefix(99).len(), 5);
    }

    #[test]
    fn record_tx_accessor() {
        assert_eq!(put(9, 1, 1).tx(), Some(TxId(9)));
        assert_eq!(Record::Abort { tx: TxId(2) }.tx(), Some(TxId(2)));
        assert_eq!(
            Record::Prepare {
                tx: TxId(3),
                note: 0
            }
            .tx(),
            Some(TxId(3))
        );
        assert_eq!(
            Record::Checkpoint {
                state: Vec::new(),
                next_tx: 0
            }
            .tx(),
            None
        );
    }

    #[test]
    fn replace_compacts_and_flushes() {
        let mut w = Wal::new();
        for i in 0..5 {
            w.append(Record::Begin { tx: TxId(i) });
        }
        w.flush();
        w.replace(
            vec![Record::Checkpoint {
                state: Vec::new(),
                next_tx: 0,
            }],
            1,
        );
        assert_eq!(w.len(), 1);
        assert_eq!(w.durable().len(), 1);
        // The volatile tail rule still applies after a replace.
        w.append(Record::Begin { tx: TxId(9) });
        w.crash();
        assert_eq!(w.len(), 1);
    }

    #[test]
    #[should_panic(expected = "durable prefix exceeds log")]
    fn replace_rejects_oversized_durable_prefix() {
        let mut w = Wal::new();
        w.replace(Vec::new(), 1);
    }

    #[test]
    fn empty_log() {
        let w = Wal::new();
        assert!(w.is_empty());
        assert_eq!(w.durable().len(), 0);
    }
}
