//! The recoverable object container.
//!
//! A [`Container`] is the paper's *container*: the stable home of
//! representatives at one site. It supports local atomic transactions and
//! the participant half of two-phase commit:
//!
//! ```text
//! begin -> stage_put* -> commit            (local atomic update)
//! begin -> stage_put* -> prepare -> commit (participant in 2PC)
//!                                \-> abort
//! ```
//!
//! All mutations go through the write-ahead log; committed state is always
//! reconstructible by replay, and [`Container::crash`] +
//! [`Container::recover`] exercise exactly that path.

use std::collections::BTreeMap;
use std::fmt;

use bytes::Bytes;

use crate::error::StorageError;
use crate::faults::DiskFaults;
use crate::object::{ObjectId, Version, VersionedValue};
use crate::wal::{Record, Wal};

/// A container-local transaction id.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TxId(pub u64);

impl fmt::Debug for TxId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tx{}", self.0)
    }
}

/// Where a live transaction stands.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TxPhase {
    /// Accepting staged writes; will vanish on crash.
    Active,
    /// Promised to commit; survives crashes as an in-doubt transaction.
    Prepared,
}

#[derive(Clone, Debug)]
struct TxState {
    phase: TxPhase,
    // Later writes to the same object win, so keep them keyed.
    writes: BTreeMap<ObjectId, VersionedValue>,
    // Caller tag recorded at prepare time (0 until prepared).
    note: u64,
}

/// What a scanning recovery found and decided.
///
/// The caller (a suite server) uses this to distinguish the two damage
/// classes: a torn tail is business as usual, interior corruption means
/// acknowledged state regressed and the replica must be quarantined until
/// repair restores it.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RecoveryOutcome {
    /// Records replayed into the recovered state.
    pub replayed_records: u64,
    /// The log ended in an incomplete frame (torn write) — truncated,
    /// nothing acknowledged was lost.
    pub torn_tail: bool,
    /// A complete, acknowledged record failed its checksum — the log was
    /// truncated at the damage and the suffix (`lost_records` of them) is
    /// gone. The replica's committed state may have regressed.
    pub corrupt_interior: bool,
    /// Durable records lost to interior corruption.
    pub lost_records: u64,
    /// In-flight (never-flushed) records a torn write happened to persist;
    /// they replay normally — prepares among them surface as in-doubt.
    pub recovered_volatile: u64,
    /// Bytes the recovery scan examined.
    pub bytes_scanned: u64,
    /// The scan accepted bytes past a fault-injected corruption point (a
    /// checksum collision). Must never be true; the chaos oracle turns it
    /// into an invariant violation.
    pub poison_escaped: bool,
    /// Prepared-but-undecided transactions restored by the scan, with the
    /// notes recorded at prepare time — the coordinator request ids the
    /// decision-probe path must resolve.
    pub in_doubt: Vec<(TxId, u64)>,
}

/// A crash-recoverable versioned object store.
#[derive(Clone, Debug, Default)]
pub struct Container {
    wal: Wal,
    committed: BTreeMap<ObjectId, VersionedValue>,
    live: BTreeMap<TxId, TxState>,
    next_tx: u64,
    crashed: bool,
    faults: DiskFaults,
}

impl Container {
    /// An empty container with an empty log.
    pub fn new() -> Self {
        Container::default()
    }

    /// Rebuilds a container from a log — the recovery procedure.
    ///
    /// Only the durable prefix of `wal` is replayed (anything after the
    /// durability horizon did not survive the crash by definition).
    /// Transactions with a durable `Prepare` but no outcome record are
    /// restored as in-doubt ([`TxPhase::Prepared`]); everything else that
    /// didn't commit is implicitly aborted.
    pub fn recover_from(wal: Wal) -> Self {
        Container::recover_from_scan(wal).0
    }

    /// Scanning recovery: like [`Container::recover_from`], but first
    /// reconciles the log's byte image — truncating at the first torn or
    /// bad-checksum frame — and reports what the scan found alongside the
    /// recovered container.
    pub fn recover_from_scan(mut wal: Wal) -> (Self, RecoveryOutcome) {
        wal.crash(); // drop any volatile tail (keeps injected damage)
        let report = wal.rescan();
        let mut committed = BTreeMap::new();
        let mut live: BTreeMap<TxId, TxState> = BTreeMap::new();
        let mut next_tx = 0u64;
        for r in wal.records() {
            if let Some(tx) = r.tx() {
                next_tx = next_tx.max(tx.0 + 1);
            }
            match r.clone() {
                Record::Checkpoint {
                    state,
                    next_tx: hint,
                } => {
                    // A checkpoint is the full committed state at that
                    // point; anything replayed earlier is superseded.
                    committed = state
                        .into_iter()
                        .map(|(o, v, val)| (o, VersionedValue::new(v, val)))
                        .collect();
                    next_tx = next_tx.max(hint);
                }
                Record::Begin { tx } => {
                    live.insert(
                        tx,
                        TxState {
                            phase: TxPhase::Active,
                            writes: BTreeMap::new(),
                            note: 0,
                        },
                    );
                }
                Record::Put {
                    tx,
                    object,
                    version,
                    value,
                } => {
                    if let Some(st) = live.get_mut(&tx) {
                        st.writes
                            .insert(object, VersionedValue::new(version, value));
                    }
                }
                Record::Prepare { tx, note } => {
                    if let Some(st) = live.get_mut(&tx) {
                        st.phase = TxPhase::Prepared;
                        st.note = note;
                    }
                }
                Record::Commit { tx } => {
                    if let Some(st) = live.remove(&tx) {
                        for (obj, vv) in st.writes {
                            committed.insert(obj, vv);
                        }
                    }
                }
                Record::Abort { tx } => {
                    live.remove(&tx);
                }
            }
        }
        // Unprepared work does not survive a crash.
        live.retain(|_, st| st.phase == TxPhase::Prepared);
        let container = Container {
            wal,
            committed,
            live,
            next_tx,
            crashed: false,
            faults: DiskFaults::default(),
        };
        let outcome = RecoveryOutcome {
            replayed_records: report.recovered as u64,
            torn_tail: report.torn_tail,
            corrupt_interior: report.corrupt,
            lost_records: report.lost_durable as u64,
            recovered_volatile: report.recovered_volatile as u64,
            bytes_scanned: report.bytes_scanned as u64,
            poison_escaped: report.poison_escaped,
            in_doubt: container.in_doubt_notes(),
        };
        (container, outcome)
    }

    fn check_up(&self) -> Result<(), StorageError> {
        if self.crashed {
            Err(StorageError::Crashed)
        } else {
            Ok(())
        }
    }

    /// Starts a transaction.
    ///
    /// This is where injected transient I/O errors surface: new work is
    /// refused at admission with [`StorageError::Io`], while decided
    /// outcomes (commit/abort of an already-prepared transaction) always
    /// apply — a participant never half-fails a promise it made.
    pub fn begin(&mut self) -> Result<TxId, StorageError> {
        self.check_up()?;
        if self.faults.take_io_error() {
            return Err(StorageError::Io);
        }
        let tx = TxId(self.next_tx);
        self.next_tx += 1;
        self.wal.append(Record::Begin { tx });
        self.live.insert(
            tx,
            TxState {
                phase: TxPhase::Active,
                writes: BTreeMap::new(),
                note: 0,
            },
        );
        Ok(tx)
    }

    /// Stages a write of `(object, version, value)` into `tx`.
    ///
    /// The write is invisible to reads until `tx` commits. A second staged
    /// write to the same object replaces the first.
    pub fn stage_put(
        &mut self,
        tx: TxId,
        object: ObjectId,
        version: Version,
        value: impl Into<Bytes>,
    ) -> Result<(), StorageError> {
        self.check_up()?;
        let st = self.live.get_mut(&tx).ok_or(StorageError::UnknownTx(tx))?;
        if st.phase != TxPhase::Active {
            return Err(StorageError::WrongPhase {
                tx,
                op: "stage_put",
            });
        }
        let value = value.into();
        st.writes
            .insert(object, VersionedValue::new(version, value.clone()));
        self.wal.append(Record::Put {
            tx,
            object,
            version,
            value,
        });
        Ok(())
    }

    /// Moves `tx` to the prepared state (participant vote in 2PC).
    ///
    /// The promise is flushed: after this returns, a crash leaves `tx`
    /// in doubt rather than aborted.
    pub fn prepare(&mut self, tx: TxId) -> Result<(), StorageError> {
        self.prepare_with_note(tx, 0)
    }

    /// Like [`Container::prepare`], tagging the promise with an opaque
    /// `note` that recovery reports back via [`Container::in_doubt_notes`]
    /// (suite servers store the coordinating request id there).
    pub fn prepare_with_note(&mut self, tx: TxId, note: u64) -> Result<(), StorageError> {
        self.check_up()?;
        let st = self.live.get_mut(&tx).ok_or(StorageError::UnknownTx(tx))?;
        if st.phase != TxPhase::Active {
            return Err(StorageError::WrongPhase { tx, op: "prepare" });
        }
        st.phase = TxPhase::Prepared;
        st.note = note;
        self.wal.append(Record::Prepare { tx, note });
        self.wal.flush();
        Ok(())
    }

    /// Like [`Container::prepare_with_note`] but *without* the durability
    /// flush: the promise sits in the volatile log tail until the caller
    /// flushes (group commit). Until then a crash aborts the transaction —
    /// which is safe exactly as long as no vote has left the site.
    pub fn prepare_with_note_unflushed(&mut self, tx: TxId, note: u64) -> Result<(), StorageError> {
        self.check_up()?;
        let st = self.live.get_mut(&tx).ok_or(StorageError::UnknownTx(tx))?;
        if st.phase != TxPhase::Active {
            return Err(StorageError::WrongPhase { tx, op: "prepare" });
        }
        st.phase = TxPhase::Prepared;
        st.note = note;
        self.wal.append(Record::Prepare { tx, note });
        Ok(())
    }

    /// Commits `tx`: its staged writes become visible atomically and
    /// durably (the log is flushed through the commit record).
    ///
    /// Works from both phases — committing an unprepared transaction is the
    /// local one-phase path.
    pub fn commit(&mut self, tx: TxId) -> Result<(), StorageError> {
        self.check_up()?;
        let st = self.live.remove(&tx).ok_or(StorageError::UnknownTx(tx))?;
        self.wal.append(Record::Commit { tx });
        self.wal.flush();
        for (obj, vv) in st.writes {
            self.committed.insert(obj, vv);
        }
        Ok(())
    }

    /// Like [`Container::commit`] but *without* the durability flush: the
    /// commit record sits in the volatile tail until the caller flushes
    /// (group commit), and many such records can ride one [`Container::
    /// flush`]. The in-memory state is installed immediately; the caller
    /// must not acknowledge the commit until after the flush.
    pub fn commit_unflushed(&mut self, tx: TxId) -> Result<(), StorageError> {
        self.check_up()?;
        let st = self.live.remove(&tx).ok_or(StorageError::UnknownTx(tx))?;
        self.wal.append(Record::Commit { tx });
        for (obj, vv) in st.writes {
            self.committed.insert(obj, vv);
        }
        Ok(())
    }

    /// Advances the log's durability horizon over everything appended so
    /// far — the single durable write a group-commit batch rides on.
    pub fn flush(&mut self) -> Result<(), StorageError> {
        self.check_up()?;
        self.wal.flush();
        Ok(())
    }

    /// Aborts `tx`: staged writes are discarded.
    pub fn abort(&mut self, tx: TxId) -> Result<(), StorageError> {
        self.check_up()?;
        self.live.remove(&tx).ok_or(StorageError::UnknownTx(tx))?;
        self.wal.append(Record::Abort { tx });
        self.wal.flush();
        Ok(())
    }

    /// The committed state of `object`; [`VersionedValue::initial`] if it
    /// has never been written.
    pub fn read(&self, object: ObjectId) -> Result<VersionedValue, StorageError> {
        self.check_up()?;
        Ok(self
            .committed
            .get(&object)
            .cloned()
            .unwrap_or_else(VersionedValue::initial))
    }

    /// Just the committed version number of `object` — the paper's
    /// *version number inquiry*, much cheaper than shipping contents.
    pub fn read_version(&self, object: ObjectId) -> Result<Version, StorageError> {
        Ok(self.read(object)?.version)
    }

    /// The phase of a live transaction, if it is live.
    pub fn phase(&self, tx: TxId) -> Option<TxPhase> {
        self.live.get(&tx).map(|st| st.phase)
    }

    /// Transactions that are prepared but unresolved — after recovery,
    /// these are the in-doubt transactions the coordinator must decide.
    pub fn in_doubt(&self) -> Vec<TxId> {
        self.live
            .iter()
            .filter(|(_, st)| st.phase == TxPhase::Prepared)
            .map(|(tx, _)| *tx)
            .collect()
    }

    /// In-doubt transactions with the notes recorded at prepare time.
    pub fn in_doubt_notes(&self) -> Vec<(TxId, u64)> {
        self.live
            .iter()
            .filter(|(_, st)| st.phase == TxPhase::Prepared)
            .map(|(tx, st)| (*tx, st.note))
            .collect()
    }

    /// The staged writes of a live transaction (for recovery inspection).
    pub fn staged_objects(&self, tx: TxId) -> Vec<ObjectId> {
        self.live
            .get(&tx)
            .map(|st| st.writes.keys().copied().collect())
            .unwrap_or_default()
    }

    /// Ids of all committed objects.
    pub fn objects(&self) -> impl Iterator<Item = ObjectId> + '_ {
        self.committed.keys().copied()
    }

    /// Number of committed objects.
    pub fn len(&self) -> usize {
        self.committed.len()
    }

    /// True if nothing has ever committed.
    pub fn is_empty(&self) -> bool {
        self.committed.is_empty()
    }

    /// Simulates a machine crash: the volatile log tail and all unprepared
    /// transaction state are lost; every operation fails until
    /// [`Container::recover`] runs. Any armed disk damage (torn write,
    /// bit flips) materializes now — this is the instant the write cache
    /// and the platter part ways.
    pub fn crash(&mut self) {
        let (tear, flips) = self.faults.take_crash_damage();
        self.wal.crash_with_faults(tear, &flips);
        self.crashed = true;
    }

    /// Recovers from a crash by scanning and replaying the durable log,
    /// reporting what the scan found. The fault injector (with its seed
    /// and any pending I/O errors) survives recovery.
    pub fn recover(&mut self) -> RecoveryOutcome {
        let wal = std::mem::take(&mut self.wal);
        let faults = std::mem::take(&mut self.faults);
        let (mut fresh, outcome) = Container::recover_from_scan(wal);
        fresh.faults = faults;
        *self = fresh;
        outcome
    }

    /// The disk-fault injector for this container.
    pub fn disk_faults(&mut self) -> &mut DiskFaults {
        &mut self.faults
    }

    /// True while crashed (between [`Container::crash`] and recovery).
    pub fn is_crashed(&self) -> bool {
        self.crashed
    }

    /// Compacts the log: committed state collapses into one durable
    /// checkpoint record, prepared transactions are re-journalled durably
    /// (their promise must survive), and active transactions are
    /// re-journalled in the volatile tail (they would not survive a crash
    /// anyway). Recovery time becomes proportional to live state instead
    /// of history length.
    pub fn checkpoint(&mut self) -> Result<(), StorageError> {
        self.check_up()?;
        let mut records = Vec::with_capacity(1 + self.live.len() * 3);
        records.push(Record::Checkpoint {
            state: self
                .committed
                .iter()
                .map(|(o, vv)| (*o, vv.version, vv.value.clone()))
                .collect(),
            next_tx: self.next_tx,
        });
        // Prepared first: they belong in the durable prefix.
        let mut durable = 1;
        for (tx, st) in self
            .live
            .iter()
            .filter(|(_, st)| st.phase == TxPhase::Prepared)
        {
            records.push(Record::Begin { tx: *tx });
            durable += 1;
            for (obj, vv) in &st.writes {
                records.push(Record::Put {
                    tx: *tx,
                    object: *obj,
                    version: vv.version,
                    value: vv.value.clone(),
                });
                durable += 1;
            }
            records.push(Record::Prepare {
                tx: *tx,
                note: st.note,
            });
            durable += 1;
        }
        for (tx, st) in self
            .live
            .iter()
            .filter(|(_, st)| st.phase == TxPhase::Active)
        {
            records.push(Record::Begin { tx: *tx });
            for (obj, vv) in &st.writes {
                records.push(Record::Put {
                    tx: *tx,
                    object: *obj,
                    version: vv.version,
                    value: vv.value.clone(),
                });
            }
        }
        self.wal.replace(records, durable);
        Ok(())
    }

    /// Read-only access to the log (for tests and benches).
    pub fn wal(&self) -> &Wal {
        &self.wal
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(s: &str) -> Bytes {
        Bytes::copy_from_slice(s.as_bytes())
    }

    // (Checkpoint tests below reuse `b` for payload literals.)

    #[test]
    fn commit_makes_writes_visible() {
        let mut c = Container::new();
        let tx = c.begin().expect("begin");
        c.stage_put(tx, ObjectId(1), Version(1), b("alpha"))
            .expect("stage");
        // Invisible until commit.
        assert_eq!(
            c.read(ObjectId(1)).expect("read"),
            VersionedValue::initial()
        );
        c.commit(tx).expect("commit");
        let vv = c.read(ObjectId(1)).expect("read");
        assert_eq!(vv.version, Version(1));
        assert_eq!(vv.value, b("alpha"));
        assert_eq!(c.read_version(ObjectId(1)).expect("ver"), Version(1));
    }

    #[test]
    fn abort_discards_writes() {
        let mut c = Container::new();
        let tx = c.begin().expect("begin");
        c.stage_put(tx, ObjectId(1), Version(1), b("alpha"))
            .expect("stage");
        c.abort(tx).expect("abort");
        assert_eq!(
            c.read(ObjectId(1)).expect("read"),
            VersionedValue::initial()
        );
        assert!(c.is_empty());
    }

    #[test]
    fn later_staged_write_wins() {
        let mut c = Container::new();
        let tx = c.begin().expect("begin");
        c.stage_put(tx, ObjectId(1), Version(1), b("first"))
            .expect("stage");
        c.stage_put(tx, ObjectId(1), Version(2), b("second"))
            .expect("stage");
        c.commit(tx).expect("commit");
        let vv = c.read(ObjectId(1)).expect("read");
        assert_eq!(vv.version, Version(2));
        assert_eq!(vv.value, b("second"));
    }

    #[test]
    fn transactions_are_isolated_until_commit() {
        let mut c = Container::new();
        let t1 = c.begin().expect("begin");
        let t2 = c.begin().expect("begin");
        c.stage_put(t1, ObjectId(1), Version(1), b("one"))
            .expect("stage");
        c.stage_put(t2, ObjectId(2), Version(1), b("two"))
            .expect("stage");
        c.commit(t1).expect("commit");
        assert_eq!(c.read(ObjectId(1)).expect("r").value, b("one"));
        assert_eq!(c.read(ObjectId(2)).expect("r"), VersionedValue::initial());
        c.commit(t2).expect("commit");
        assert_eq!(c.read(ObjectId(2)).expect("r").value, b("two"));
    }

    #[test]
    fn unknown_tx_is_rejected() {
        let mut c = Container::new();
        assert_eq!(
            c.commit(TxId(9)).unwrap_err(),
            StorageError::UnknownTx(TxId(9))
        );
        assert_eq!(
            c.stage_put(TxId(9), ObjectId(1), Version(1), b("x"))
                .unwrap_err(),
            StorageError::UnknownTx(TxId(9))
        );
        assert_eq!(
            c.abort(TxId(9)).unwrap_err(),
            StorageError::UnknownTx(TxId(9))
        );
    }

    #[test]
    fn prepared_tx_rejects_new_writes_and_double_prepare() {
        let mut c = Container::new();
        let tx = c.begin().expect("begin");
        c.stage_put(tx, ObjectId(1), Version(1), b("x"))
            .expect("stage");
        c.prepare(tx).expect("prepare");
        assert_eq!(c.phase(tx), Some(TxPhase::Prepared));
        assert!(matches!(
            c.stage_put(tx, ObjectId(2), Version(1), b("y")),
            Err(StorageError::WrongPhase { .. })
        ));
        assert!(matches!(
            c.prepare(tx),
            Err(StorageError::WrongPhase { .. })
        ));
        c.commit(tx).expect("commit");
        assert_eq!(c.read(ObjectId(1)).expect("r").value, b("x"));
    }

    #[test]
    fn crash_loses_uncommitted_and_unflushed() {
        let mut c = Container::new();
        let t1 = c.begin().expect("begin");
        c.stage_put(t1, ObjectId(1), Version(1), b("durable"))
            .expect("stage");
        c.commit(t1).expect("commit"); // flushed
        let t2 = c.begin().expect("begin");
        c.stage_put(t2, ObjectId(2), Version(1), b("volatile"))
            .expect("stage");
        // No commit for t2.
        c.crash();
        assert_eq!(c.read(ObjectId(1)).unwrap_err(), StorageError::Crashed);
        assert!(c.is_crashed());
        c.recover();
        assert!(!c.is_crashed());
        assert_eq!(c.read(ObjectId(1)).expect("r").value, b("durable"));
        assert_eq!(c.read(ObjectId(2)).expect("r"), VersionedValue::initial());
        assert!(c.in_doubt().is_empty());
    }

    #[test]
    fn prepared_survives_crash_as_in_doubt() {
        let mut c = Container::new();
        let tx = c.begin().expect("begin");
        c.stage_put(tx, ObjectId(1), Version(3), b("promise"))
            .expect("stage");
        c.prepare(tx).expect("prepare");
        c.crash();
        c.recover();
        assert_eq!(c.in_doubt(), vec![tx]);
        // Still invisible until the coordinator resolves it...
        assert_eq!(c.read(ObjectId(1)).expect("r"), VersionedValue::initial());
        // ...and commits it.
        c.commit(tx).expect("commit");
        assert_eq!(c.read(ObjectId(1)).expect("r").version, Version(3));
        assert!(c.in_doubt().is_empty());
    }

    #[test]
    fn prepared_can_be_aborted_after_recovery() {
        let mut c = Container::new();
        let tx = c.begin().expect("begin");
        c.stage_put(tx, ObjectId(1), Version(3), b("promise"))
            .expect("stage");
        c.prepare(tx).expect("prepare");
        c.crash();
        c.recover();
        c.abort(tx).expect("abort");
        assert_eq!(c.read(ObjectId(1)).expect("r"), VersionedValue::initial());
        assert!(c.in_doubt().is_empty());
    }

    #[test]
    fn operations_fail_while_crashed() {
        let mut c = Container::new();
        c.crash();
        assert_eq!(c.begin().unwrap_err(), StorageError::Crashed);
        assert_eq!(c.read(ObjectId(1)).unwrap_err(), StorageError::Crashed);
    }

    #[test]
    fn tx_ids_do_not_repeat_after_recovery() {
        let mut c = Container::new();
        let t1 = c.begin().expect("begin");
        c.commit(t1).expect("commit");
        c.crash();
        c.recover();
        let t2 = c.begin().expect("begin");
        assert!(t2.0 > t1.0, "recycled tx id {t2:?} after {t1:?}");
    }

    #[test]
    fn recovery_replays_multiple_objects_and_overwrites() {
        let mut c = Container::new();
        for (ver, val) in [(1u64, "a"), (2, "b"), (3, "c")] {
            let tx = c.begin().expect("begin");
            c.stage_put(tx, ObjectId(7), Version(ver), b(val))
                .expect("stage");
            c.stage_put(tx, ObjectId(ver), Version(1), b("side"))
                .expect("stage");
            c.commit(tx).expect("commit");
        }
        let recovered = Container::recover_from(c.wal().clone());
        assert_eq!(recovered.read(ObjectId(7)).expect("r").value, b("c"));
        assert_eq!(recovered.read(ObjectId(7)).expect("r").version, Version(3));
        assert_eq!(recovered.len(), 4); // obj7 + obj1..3
        assert_eq!(recovered.objects().count(), 4);
    }

    #[test]
    fn checkpoint_shrinks_the_log_and_preserves_state() {
        let mut c = Container::new();
        for i in 0..20u64 {
            let tx = c.begin().expect("begin");
            c.stage_put(tx, ObjectId(i % 3), Version(i + 1), b(&format!("v{i}")))
                .expect("stage");
            c.commit(tx).expect("commit");
        }
        let before_len = c.wal().len();
        let state_before: Vec<_> = c.objects().map(|o| (o, c.read(o).expect("read"))).collect();
        c.checkpoint().expect("checkpoint");
        assert!(c.wal().len() < before_len, "log must shrink");
        // State unchanged in place.
        for (o, vv) in &state_before {
            assert_eq!(&c.read(*o).expect("read"), vv);
        }
        // And after a crash + recovery from the compacted log.
        c.crash();
        c.recover();
        for (o, vv) in &state_before {
            assert_eq!(&c.read(*o).expect("read"), vv);
        }
    }

    #[test]
    fn checkpoint_preserves_prepared_transactions_across_crash() {
        let mut c = Container::new();
        let setup = c.begin().expect("begin");
        c.stage_put(setup, ObjectId(1), Version(1), b("base"))
            .expect("stage");
        c.commit(setup).expect("commit");
        let pending = c.begin().expect("begin");
        c.stage_put(pending, ObjectId(1), Version(2), b("promised"))
            .expect("stage");
        c.prepare_with_note(pending, 77).expect("prepare");
        c.checkpoint().expect("checkpoint");
        c.crash();
        c.recover();
        assert_eq!(c.in_doubt_notes(), vec![(pending, 77)]);
        assert_eq!(c.read(ObjectId(1)).expect("read").version, Version(1));
        c.commit(pending).expect("commit resolved in-doubt");
        assert_eq!(c.read(ObjectId(1)).expect("read").version, Version(2));
    }

    #[test]
    fn checkpoint_drops_active_transactions_on_crash_but_not_live() {
        let mut c = Container::new();
        let active = c.begin().expect("begin");
        c.stage_put(active, ObjectId(5), Version(1), b("maybe"))
            .expect("stage");
        c.checkpoint().expect("checkpoint");
        // Still usable while alive...
        c.commit(active)
            .expect("active tx survives checkpoint in memory");
        assert_eq!(c.read(ObjectId(5)).expect("read").version, Version(1));
        // ...but an *unresolved* active transaction would not survive a
        // crash, same as without checkpointing.
        let doomed = c.begin().expect("begin");
        c.stage_put(doomed, ObjectId(6), Version(1), b("gone"))
            .expect("stage");
        c.checkpoint().expect("checkpoint");
        c.crash();
        c.recover();
        assert_eq!(
            c.read(ObjectId(6)).expect("read"),
            VersionedValue::initial()
        );
        assert_eq!(c.read(ObjectId(5)).expect("read").version, Version(1));
    }

    #[test]
    fn tx_ids_do_not_repeat_after_checkpointed_recovery() {
        let mut c = Container::new();
        let t1 = c.begin().expect("begin");
        c.commit(t1).expect("commit");
        c.checkpoint().expect("checkpoint");
        c.crash();
        c.recover();
        let t2 = c.begin().expect("begin");
        assert!(t2.0 > t1.0, "tx id {t2:?} reused after checkpoint");
    }

    #[test]
    fn unflushed_commit_is_lost_to_a_crash_until_flushed() {
        let mut c = Container::new();
        let tx = c.begin().expect("begin");
        c.stage_put(tx, ObjectId(1), Version(1), b("batched"))
            .expect("stage");
        c.commit_unflushed(tx).expect("commit");
        // Visible in memory immediately...
        assert_eq!(c.read(ObjectId(1)).expect("r").version, Version(1));
        // ...but a crash before the flush loses it.
        let mut lost = c.clone();
        lost.crash();
        lost.recover();
        assert_eq!(
            lost.read(ObjectId(1)).expect("r"),
            VersionedValue::initial()
        );
        // After the flush it survives.
        c.flush().expect("flush");
        c.crash();
        c.recover();
        assert_eq!(c.read(ObjectId(1)).expect("r").value, b("batched"));
    }

    #[test]
    fn unflushed_prepare_aborts_on_crash_until_flushed() {
        let mut c = Container::new();
        let tx = c.begin().expect("begin");
        c.stage_put(tx, ObjectId(1), Version(2), b("promise"))
            .expect("stage");
        c.prepare_with_note_unflushed(tx, 42).expect("prepare");
        assert_eq!(c.phase(tx), Some(TxPhase::Prepared));
        let mut lost = c.clone();
        lost.crash();
        lost.recover();
        assert!(
            lost.in_doubt().is_empty(),
            "unflushed promise must not bind"
        );
        c.flush().expect("flush");
        c.crash();
        c.recover();
        assert_eq!(c.in_doubt_notes(), vec![(tx, 42)]);
    }

    #[test]
    fn many_unflushed_commits_ride_one_flush() {
        let mut c = Container::new();
        for i in 0..8u64 {
            let tx = c.begin().expect("begin");
            c.stage_put(tx, ObjectId(i), Version(1), b("v"))
                .expect("stage");
            c.commit_unflushed(tx).expect("commit");
        }
        assert_eq!(c.wal().flushes(), 0);
        c.flush().expect("flush");
        assert_eq!(c.wal().flushes(), 1, "eight commits, one durable write");
        c.crash();
        c.recover();
        assert_eq!(c.len(), 8);
    }

    #[test]
    fn flush_counting_shows_group_commit() {
        let mut c = Container::new();
        let tx = c.begin().expect("begin");
        for i in 0..10 {
            c.stage_put(tx, ObjectId(i), Version(1), b("v"))
                .expect("stage");
        }
        c.commit(tx).expect("commit");
        // Begin and all ten puts ride on the single commit flush.
        assert_eq!(c.wal().flushes(), 1);
    }
}

#[cfg(test)]
mod disk_fault_tests {
    //! WAL framing and scan-recovery edge cases under injected faults:
    //! empty logs, checkpoint boundaries, corruption inside the
    //! checkpoint itself, and a seeded randomized
    //! append/flush/crash/recover round-trip.

    use super::*;
    use wv_sim::derive_seed;

    fn b(s: &str) -> Bytes {
        Bytes::copy_from_slice(s.as_bytes())
    }

    fn commit_one(c: &mut Container, obj: u64, ver: u64, val: &str) {
        let tx = c.begin().expect("begin");
        c.stage_put(tx, ObjectId(obj), Version(ver), b(val))
            .expect("stage");
        c.commit(tx).expect("commit");
    }

    #[test]
    fn empty_log_recovers_clean_even_with_faults_armed() {
        let mut c = Container::new();
        c.disk_faults().seed(derive_seed(0xD15C, 1));
        c.disk_faults().arm_torn_write();
        c.disk_faults().arm_bit_flip();
        c.crash();
        let outcome = c.recover();
        assert_eq!(outcome, RecoveryOutcome::default());
        assert!(c.is_empty());
        assert!(!c.is_crashed());
    }

    #[test]
    fn torn_tail_after_a_checkpoint_boundary_keeps_the_checkpoint() {
        let mut c = Container::new();
        commit_one(&mut c, 1, 1, "alpha");
        commit_one(&mut c, 2, 1, "beta");
        c.checkpoint().expect("checkpoint");
        // An in-flight (unflushed) commit rides the volatile tail when the
        // torn crash hits.
        let tx = c.begin().expect("begin");
        c.stage_put(tx, ObjectId(3), Version(1), b("inflight"))
            .expect("stage");
        c.commit_unflushed(tx).expect("commit");
        c.disk_faults().seed(derive_seed(0xD15C, 2));
        c.disk_faults().arm_torn_write();
        c.crash();
        let outcome = c.recover();
        assert!(!outcome.corrupt_interior, "a torn tail is not corruption");
        assert_eq!(outcome.lost_records, 0);
        // The checkpointed state is intact whatever the tear kept.
        assert_eq!(c.read(ObjectId(1)).expect("r").value, b("alpha"));
        assert_eq!(c.read(ObjectId(2)).expect("r").value, b("beta"));
    }

    #[test]
    fn corruption_inside_the_checkpoint_record_loses_everything_loudly() {
        let mut c = Container::new();
        commit_one(&mut c, 1, 1, "alpha");
        commit_one(&mut c, 2, 1, "beta");
        c.checkpoint().expect("checkpoint");
        // The compacted log is a single checkpoint frame; every bit flip
        // lands inside it.
        assert_eq!(c.wal().len(), 1);
        c.disk_faults().seed(derive_seed(0xD15C, 3));
        c.disk_faults().arm_bit_flip();
        c.crash();
        let outcome = c.recover();
        assert!(outcome.corrupt_interior, "damage must be detected");
        assert!(!outcome.poison_escaped);
        assert_eq!(outcome.lost_records, 1);
        assert_eq!(outcome.replayed_records, 0);
        assert!(c.is_empty(), "nothing valid precedes the checkpoint");
    }

    #[test]
    fn torn_tail_can_surface_new_in_doubt_transactions() {
        // A prepare that was appended but never flushed can persist via a
        // torn write — recovery must surface it as in-doubt so the
        // decision-probe path can resolve it (the PR 2 bug class).
        // Hunt a seed whose tear keeps the whole prepare frame.
        let mut found = false;
        for salt in 0..64u64 {
            let mut c = Container::new();
            commit_one(&mut c, 1, 1, "base");
            let tx = c.begin().expect("begin");
            c.stage_put(tx, ObjectId(1), Version(2), b("promised"))
                .expect("stage");
            c.prepare_with_note_unflushed(tx, 99).expect("prepare");
            // A later append gives the tear room to land *after* the
            // complete prepare frame (a tear always loses at least one
            // byte of the in-flight write).
            c.begin().expect("begin trailing");
            c.disk_faults().seed(derive_seed(0xD15C ^ salt, 4));
            c.disk_faults().arm_torn_write();
            c.crash();
            let outcome = c.recover();
            assert!(!outcome.corrupt_interior);
            if outcome.in_doubt == vec![(tx, 99)] {
                assert!(outcome.recovered_volatile >= 3, "begin+put+prepare");
                assert_eq!(c.in_doubt_notes(), vec![(tx, 99)]);
                // The coordinator's decision still resolves it.
                c.abort(tx).expect("abort in-doubt");
                assert_eq!(c.read(ObjectId(1)).expect("r").version, Version(1));
                found = true;
                break;
            }
            // Otherwise the tear cut the prepare frame short: the
            // transaction must have vanished entirely, never half-applied.
            assert!(outcome.in_doubt.is_empty());
        }
        assert!(found, "no tear in 64 seeds persisted the prepare frame");
    }

    #[test]
    fn randomized_append_flush_crash_recover_round_trip() {
        // Random mixed histories under random faults: recovery must always
        // terminate with a consistent, poison-free container whose
        // committed state is a prefix of the honest one.
        for case in 0..64u64 {
            let seed = derive_seed(0xF4417, case);
            let mut c = Container::new();
            c.disk_faults().seed(seed);
            let mut draw = seed | 1;
            let mut next = || {
                draw = draw.wrapping_mul(6364136223846793005).wrapping_add(1);
                draw >> 33
            };
            for step in 0..40 {
                match next() % 10 {
                    0..=5 => {
                        let tx = match c.begin() {
                            Ok(tx) => tx,
                            Err(StorageError::Io) => continue,
                            Err(e) => panic!("case {case} step {step}: {e}"),
                        };
                        c.stage_put(tx, ObjectId(next() % 4), Version(step + 1), b("v"))
                            .expect("stage");
                        if next() % 3 == 0 {
                            c.commit_unflushed(tx).expect("commit");
                        } else {
                            c.commit(tx).expect("commit");
                        }
                    }
                    6 => c.flush().expect("flush"),
                    7 => c.checkpoint().expect("checkpoint"),
                    8 => {
                        if next() % 2 == 0 {
                            c.disk_faults().arm_torn_write();
                        } else {
                            c.disk_faults().arm_bit_flip();
                        }
                        if next() % 4 == 0 {
                            c.disk_faults().inject_io_errors(2);
                        }
                    }
                    _ => {
                        c.crash();
                        let outcome = c.recover();
                        assert!(!outcome.poison_escaped, "case {case} step {step}");
                        assert!(
                            !outcome.corrupt_interior || outcome.lost_records > 0,
                            "case {case}: corruption must lose something"
                        );
                        // A recovered log always re-recovers cleanly.
                        let (again, second) = Container::recover_from_scan(c.wal().clone());
                        assert!(!second.torn_tail && !second.corrupt_interior);
                        assert_eq!(again.len(), c.len(), "case {case}");
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod crash_point_props {
    //! Crash-point property tests: for a random committed history, recovery
    //! from *any* durable prefix yields a state equal to replaying some
    //! prefix of the committed transactions, in order.

    use super::*;

    /// A scripted transaction: object writes, and whether it commits.
    #[derive(Clone, Debug)]
    struct Script {
        writes: Vec<(u64, String)>,
        commits: bool,
        prepares: bool,
    }

    /// Tiny SplitMix64 stream for dependency-free randomized tests.
    struct TestRng(u64);

    impl TestRng {
        fn next(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        fn below(&mut self, n: u64) -> u64 {
            self.next() % n
        }

        fn flip(&mut self) -> bool {
            self.next() & 1 == 1
        }
    }

    /// Generates a random history of 1..8 transactions, each with 1..4
    /// writes of short lowercase strings (the seeded stand-in for the old
    /// proptest strategy).
    fn random_scripts(seed: u64) -> Vec<Script> {
        let mut rng = TestRng(0x5c2197 ^ seed);
        let n_tx = 1 + rng.below(7) as usize;
        (0..n_tx)
            .map(|_| {
                let n_writes = 1 + rng.below(3) as usize;
                let writes = (0..n_writes)
                    .map(|_| {
                        let obj = rng.below(4);
                        let len = 1 + rng.below(6) as usize;
                        let val: String = (0..len)
                            .map(|_| (b'a' + rng.below(26) as u8) as char)
                            .collect();
                        (obj, val)
                    })
                    .collect();
                Script {
                    writes,
                    commits: rng.flip(),
                    prepares: rng.flip(),
                }
            })
            .collect()
    }

    fn run_scripts(scripts: &[Script]) -> Container {
        let mut c = Container::new();
        for s in scripts {
            let tx = c.begin().expect("begin");
            for (i, (obj, val)) in s.writes.iter().enumerate() {
                c.stage_put(
                    tx,
                    ObjectId(*obj),
                    Version(i as u64 + 1),
                    Bytes::copy_from_slice(val.as_bytes()),
                )
                .expect("stage");
            }
            if s.prepares {
                c.prepare(tx).expect("prepare");
            }
            if s.commits {
                c.commit(tx).expect("commit");
            } else if !s.prepares {
                c.abort(tx).expect("abort");
            }
            // Prepared-but-unresolved transactions are left dangling on
            // purpose: they model a coordinator that hasn't decided yet.
        }
        c
    }

    /// The expected committed map after the first `n_records` log records.
    fn expected_state(wal: &Wal) -> BTreeMap<ObjectId, VersionedValue> {
        Container::recover_from(wal.clone())
            .objects()
            .map(|o| {
                let vv = Container::recover_from(wal.clone()).read(o).expect("read");
                (o, vv)
            })
            .collect()
    }

    #[test]
    fn recovery_from_any_crash_point_is_prefix_consistent() {
        for seed in 0..48u64 {
            let scripts = random_scripts(seed);
            let full = run_scripts(&scripts);
            let wal = full.wal().clone();
            // Committed-transaction effects, in commit order, as successive
            // states; recovery from any prefix must equal one of them.
            let mut legal_states: Vec<BTreeMap<ObjectId, VersionedValue>> = Vec::new();
            {
                let mut c = Container::new();
                legal_states.push(BTreeMap::new());
                for s in &scripts {
                    let tx = c.begin().expect("begin");
                    for (i, (obj, val)) in s.writes.iter().enumerate() {
                        c.stage_put(
                            tx,
                            ObjectId(*obj),
                            Version(i as u64 + 1),
                            Bytes::copy_from_slice(val.as_bytes()),
                        )
                        .expect("stage");
                    }
                    if s.commits {
                        c.commit(tx).expect("commit");
                        legal_states
                            .push(c.objects().map(|o| (o, c.read(o).expect("read"))).collect());
                    } else {
                        c.abort(tx).expect("abort");
                    }
                }
            }
            for n in 0..=wal.len() {
                let recovered = Container::recover_from(wal.durable_prefix(n));
                let state: BTreeMap<ObjectId, VersionedValue> = recovered
                    .objects()
                    .map(|o| (o, recovered.read(o).expect("read")))
                    .collect();
                assert!(
                    legal_states.contains(&state),
                    "seed {seed}: crash at record {n} produced a non-prefix state {state:?}"
                );
            }
        }
    }

    #[test]
    fn committed_data_survives_any_later_crash() {
        for seed in 0..48u64 {
            let scripts = random_scripts(seed.wrapping_add(1000));
            let full = run_scripts(&scripts);
            let wal = full.wal().clone();
            // Recovery from the full durable log must show every committed
            // transaction's final effects.
            let recovered = Container::recover_from(wal);
            for o in full.objects() {
                assert_eq!(
                    recovered.read(o).expect("read"),
                    full.read(o).expect("read"),
                    "seed {seed}"
                );
            }
            assert_eq!(recovered.len(), full.len(), "seed {seed}");
        }
    }

    #[test]
    fn in_doubt_exactly_matches_unresolved_prepares() {
        for seed in 0..48u64 {
            let scripts = random_scripts(seed.wrapping_add(2000));
            let full = run_scripts(&scripts);
            let expected: Vec<TxId> = scripts
                .iter()
                .enumerate()
                .filter(|(_, s)| s.prepares && !s.commits)
                .map(|(i, _)| TxId(i as u64))
                .collect();
            let recovered = Container::recover_from(full.wal().clone());
            assert_eq!(recovered.in_doubt(), expected, "seed {seed}");
        }
    }

    #[test]
    fn recovery_reports_clean_scans_for_honest_crashes() {
        // The scanning recovery must be invisible on the fault-free path:
        // no torn tails, no corruption, no in-doubt surprises.
        for seed in 0..16u64 {
            let scripts = random_scripts(seed.wrapping_add(3000));
            let full = run_scripts(&scripts);
            let (recovered, outcome) = Container::recover_from_scan(full.wal().clone());
            assert!(!outcome.torn_tail, "seed {seed}");
            assert!(!outcome.corrupt_interior, "seed {seed}");
            assert!(!outcome.poison_escaped, "seed {seed}");
            assert_eq!(outcome.lost_records, 0, "seed {seed}");
            assert_eq!(
                outcome.replayed_records,
                full.wal().durable().len() as u64,
                "seed {seed}"
            );
            assert_eq!(outcome.in_doubt, recovered.in_doubt_notes(), "seed {seed}");
        }
    }

    #[test]
    fn expected_state_helper_compiles_out() {
        // Keep the helper exercised so it can't rot silently.
        let c = run_scripts(&[Script {
            writes: vec![(1, "x".into())],
            commits: true,
            prepares: false,
        }]);
        let st = expected_state(c.wal());
        assert_eq!(st.len(), 1);
    }
}
