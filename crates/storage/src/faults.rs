//! Deterministic disk-fault injection.
//!
//! [`DiskFaults`] is the per-container hook the chaos layer arms. Faults
//! are *latent*: arming a torn write or bit flip records intent, and the
//! damage materializes at the next crash — exactly when a real disk's
//! write cache and platter part ways. I/O errors are a countdown consumed
//! by the next mutating operations.
//!
//! All randomness comes from an internal splitmix64 stream seeded by the
//! caller (the harness derives the seed via `wv_sim::derive_seed`, one
//! stream per site), so campaigns stay bit-identical at any worker count.
//! This crate deliberately has no dependency on the simulation kernel.

/// Latent disk damage, armed by the fault injector and applied at crash.
#[derive(Clone, Debug, Default)]
pub struct DiskFaults {
    /// Splitmix64 state for damage placement draws.
    rng: u64,
    /// The next crash tears the in-flight write (partial final record).
    torn_write: bool,
    /// Bit flips to apply to durable bytes at the next crash.
    bit_flips: u32,
    /// Mutating operations left to fail with [`crate::StorageError::Io`].
    io_errors: u32,
}

impl DiskFaults {
    /// Seeds the damage-placement stream. Arming methods before the first
    /// `seed` call draw from a zero state — deterministic but shared, so
    /// harnesses should seed every container at construction.
    pub fn seed(&mut self, seed: u64) {
        self.rng = seed;
    }

    /// Arms a torn write: the next crash persists a partial prefix of the
    /// volatile tail instead of dropping it cleanly.
    pub fn arm_torn_write(&mut self) {
        self.torn_write = true;
    }

    /// Arms one bit flip of durable bytes, applied at the next crash.
    pub fn arm_bit_flip(&mut self) {
        self.bit_flips += 1;
    }

    /// The next `n` mutating operations fail with an I/O error.
    pub fn inject_io_errors(&mut self, n: u32) {
        self.io_errors = self.io_errors.saturating_add(n);
    }

    /// True if anything is armed or pending.
    pub fn is_armed(&self) -> bool {
        self.torn_write || self.bit_flips > 0 || self.io_errors > 0
    }

    /// Consumes one pending I/O error, if any.
    pub(crate) fn take_io_error(&mut self) -> bool {
        if self.io_errors > 0 {
            self.io_errors -= 1;
            true
        } else {
            false
        }
    }

    /// Takes the armed crash damage as draws for `Wal::crash_with_faults`:
    /// an optional tear draw and one draw per bit flip.
    pub(crate) fn take_crash_damage(&mut self) -> (Option<u64>, Vec<u64>) {
        let tear = self.torn_write.then(|| self.next());
        self.torn_write = false;
        let flips = (0..self.bit_flips).map(|_| self.next()).collect();
        self.bit_flips = 0;
        (tear, flips)
    }

    /// Splitmix64 — the same generator the crash-point property tests use.
    fn next(&mut self) -> u64 {
        self.rng = self.rng.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.rng;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn io_errors_count_down() {
        let mut f = DiskFaults::default();
        f.inject_io_errors(2);
        assert!(f.is_armed());
        assert!(f.take_io_error());
        assert!(f.take_io_error());
        assert!(!f.take_io_error());
        assert!(!f.is_armed());
    }

    #[test]
    fn crash_damage_is_taken_once() {
        let mut f = DiskFaults::default();
        f.seed(42);
        f.arm_torn_write();
        f.arm_bit_flip();
        f.arm_bit_flip();
        let (tear, flips) = f.take_crash_damage();
        assert!(tear.is_some());
        assert_eq!(flips.len(), 2);
        let (tear, flips) = f.take_crash_damage();
        assert!(tear.is_none());
        assert!(flips.is_empty());
    }

    #[test]
    fn same_seed_same_draws() {
        let draws = |seed: u64| {
            let mut f = DiskFaults::default();
            f.seed(seed);
            f.arm_torn_write();
            f.arm_bit_flip();
            f.take_crash_damage()
        };
        assert_eq!(draws(7), draws(7));
        assert_ne!(draws(7), draws(8));
    }
}
