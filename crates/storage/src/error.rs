//! Storage-layer errors.

use std::fmt;

use crate::container::TxId;

/// Errors returned by [`crate::Container`] operations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StorageError {
    /// The transaction id is not active in this container.
    UnknownTx(TxId),
    /// The operation is illegal in the transaction's current phase
    /// (e.g. staging a write into a prepared transaction).
    WrongPhase {
        /// The offending transaction.
        tx: TxId,
        /// What the caller tried to do.
        op: &'static str,
    },
    /// The container is simulating a crash; all operations fail until
    /// recovery runs.
    Crashed,
    /// The disk returned an I/O error (injected by
    /// [`crate::DiskFaults`]). Transient by construction: the fault
    /// injector arms a countdown, and operations succeed again once it
    /// drains.
    Io,
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::UnknownTx(tx) => write!(f, "unknown transaction {tx:?}"),
            StorageError::WrongPhase { tx, op } => {
                write!(f, "operation `{op}` illegal in current phase of {tx:?}")
            }
            StorageError::Crashed => write!(f, "container is crashed"),
            StorageError::Io => write!(f, "disk i/o error"),
        }
    }
}

impl std::error::Error for StorageError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = StorageError::UnknownTx(TxId(4));
        assert!(e.to_string().contains("unknown transaction"));
        let e = StorageError::WrongPhase {
            tx: TxId(1),
            op: "stage_put",
        };
        assert!(e.to_string().contains("stage_put"));
        assert!(StorageError::Crashed.to_string().contains("crashed"));
        assert!(StorageError::Io.to_string().contains("i/o"));
    }
}
