//! CI replay of the committed E9 reproducer artifact.
//!
//! `results/e9_repro.json` is the shrunk schedule demonstrating the
//! r + w = N quorum-intersection bug. Replaying the committed bytes must
//! keep reproducing the known violation: if a protocol change ever
//! silently masks it (or an oracle change reclassifies it), this test
//! flags the artifact as stale instead of letting the report drift from
//! what the repository actually ships.

use wv_chaos::schedule::Schedule;
use wv_chaos::{check_trial, run_schedule, run_schedule_instrumented};

#[test]
fn the_committed_e9_artifact_still_reproduces_its_violation() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../results/e9_repro.json");
    let text = std::fs::read_to_string(path).expect("results/e9_repro.json is committed");
    let (spec, schedule) = Schedule::from_json(&text).expect("the committed artifact parses");
    // Pre-repair artifacts omit the `repair` key; replay must default off.
    assert!(!spec.repair, "the committed reproducer predates repair");
    let violations = check_trial(&run_schedule(&spec, &schedule), false);
    assert_eq!(
        violations.len(),
        1,
        "the artifact must reproduce exactly the one violation the report \
         promises; got: {violations:?}"
    );
}

/// The artifact's embedded analytics — trace, quorum audit log, and
/// critical-path profile — must match what an instrumented replay of the
/// committed schedule computes today. A drift here means the protocol's
/// decision-making (not just its outcomes) changed under the reproducer,
/// and the artifact needs regenerating.
#[test]
fn the_committed_e9_analytics_match_a_fresh_instrumented_replay() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../results/e9_repro.json");
    let text = std::fs::read_to_string(path).expect("results/e9_repro.json is committed");
    let (spec, schedule) = Schedule::from_json(&text).expect("the committed artifact parses");

    let embedded = wv_bench::inspect::ingest(&text).expect("artifact carries analytics");
    assert!(!embedded.spans.is_empty(), "artifact embeds a trace");
    assert!(!embedded.audit.is_empty(), "artifact embeds an audit log");

    let (_, trace, audit) = run_schedule_instrumented(&spec, &schedule);
    assert_eq!(embedded.spans, trace, "embedded trace drifted from replay");
    assert_eq!(
        embedded.audit, audit,
        "embedded audit log drifted from replay"
    );

    // The embedded folded-stack critical path is recomputable from the
    // embedded trace.
    let doc = wv_chaos::json::parse(&text).expect("artifact is json");
    let embedded_critpath: Vec<String> = doc
        .get("critpath")
        .and_then(wv_chaos::json::Value::as_array)
        .expect("artifact embeds a critpath profile")
        .iter()
        .map(|v| v.as_str().expect("critpath frames are strings").to_string())
        .collect();
    let recomputed: Vec<String> = wv_analysis::critpath::extract(&trace)
        .folded()
        .lines()
        .map(str::to_string)
        .collect();
    assert_eq!(
        embedded_critpath, recomputed,
        "embedded critical path drifted from replay"
    );
}
