//! CI replay of the committed E9 reproducer artifact.
//!
//! `results/e9_repro.json` is the shrunk schedule demonstrating the
//! r + w = N quorum-intersection bug. Replaying the committed bytes must
//! keep reproducing the known violation: if a protocol change ever
//! silently masks it (or an oracle change reclassifies it), this test
//! flags the artifact as stale instead of letting the report drift from
//! what the repository actually ships.

use wv_chaos::schedule::Schedule;
use wv_chaos::{check_trial, run_schedule};

#[test]
fn the_committed_e9_artifact_still_reproduces_its_violation() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../results/e9_repro.json");
    let text = std::fs::read_to_string(path).expect("results/e9_repro.json is committed");
    let (spec, schedule) = Schedule::from_json(&text).expect("the committed artifact parses");
    // Pre-repair artifacts omit the `repair` key; replay must default off.
    assert!(!spec.repair, "the committed reproducer predates repair");
    let violations = check_trial(&run_schedule(&spec, &schedule), false);
    assert_eq!(
        violations.len(),
        1,
        "the artifact must reproduce exactly the one violation the report \
         promises; got: {violations:?}"
    );
}
