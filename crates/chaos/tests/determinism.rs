//! Worker-count invariance of the chaos campaign.
//!
//! A campaign fans seeds over `wv_bench::runner::run_trials`, whose
//! contract is bit-identical output at any worker count. These tests pin
//! that contract at the campaign level — failures, coverage counters, and
//! the rendered E9 report — in a single `#[test]` per sweep, because the
//! worker override is a process-global environment variable and the test
//! harness runs `#[test]` functions concurrently.

use wv_chaos::schedule::ClusterSpec;
use wv_chaos::{run_campaign, CampaignConfig};

fn with_workers<T>(workers: usize, f: impl FnOnce() -> T) -> T {
    std::env::set_var("WV_TRIAL_THREADS", workers.to_string());
    let out = f();
    std::env::remove_var("WV_TRIAL_THREADS");
    out
}

#[test]
fn a_broken_campaign_is_bit_identical_at_1_2_and_8_workers() {
    // The broken spec guarantees a mix of clean and violating trials, so
    // the comparison covers failure collection order, not just counters.
    let run = || {
        let cfg = CampaignConfig {
            master_seed: 0xBAD,
            trials: 64,
            spec: ClusterSpec::broken(5, 2, 2),
            params: Default::default(),
        };
        let report = run_campaign(&cfg);
        (
            report.failures.clone(),
            report.coverage,
            report.violation_histogram(),
        )
    };
    let one = with_workers(1, run);
    let two = with_workers(2, run);
    let eight = with_workers(8, run);
    assert_eq!(one, two, "2 workers diverged from sequential");
    assert_eq!(one, eight, "8 workers diverged from sequential");
    assert!(!one.0.is_empty(), "sanity: the broken spec found failures");
}

#[test]
fn the_e9_report_bytes_are_identical_at_1_and_4_workers() {
    let one = with_workers(1, || wv_chaos::report::run(16));
    let four = with_workers(4, || wv_chaos::report::run(16));
    assert_eq!(one.report, four.report);
    assert_eq!(one.artifact, four.artifact);
}

#[test]
fn the_e14_report_bytes_are_identical_at_1_2_and_8_workers() {
    // The disk-fault sweep carries per-trial latency samples as well as
    // counters, so this also pins the sample-aggregation order.
    let one = with_workers(1, || wv_chaos::e14::run_with(3));
    let two = with_workers(2, || wv_chaos::e14::run_with(3));
    let eight = with_workers(8, || wv_chaos::e14::run_with(3));
    assert_eq!(one, two, "2 workers diverged from sequential");
    assert_eq!(one, eight, "8 workers diverged from sequential");
}
