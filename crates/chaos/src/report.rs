//! E9 — the chaos campaign report.
//!
//! Seven campaigns back to back:
//!
//! 1. **Shipped protocol** — a majority-quorum cluster under the full
//!    fault repertoire for `trials` seeds. Expected verdict: zero
//!    violations, with the coverage table proving the faults actually
//!    fired.
//! 2. **Self-healing arm** — the same trials (identical fault
//!    timelines; the repair flag never reaches the schedule generator)
//!    with anti-entropy repair and health-tracked clients on. Expected
//!    verdict: still zero violations, including the repair-specific
//!    invariants (provenance, version bounds), with the activity table
//!    proving repair actually ran.
//! 3. **Group-commit arm** — the same trials with batched WAL syncs;
//!    still zero violations over the batched durability path.
//! 4. **Cache-tier arm** — the same trials with a validated-mode weak
//!    representative attached to every client. The oracle adds the
//!    staleness-bound invariant (every cache-served read returns a
//!    version at least as new as the floor its lease permits; validated
//!    mode means a zero-length lease, i.e. exact freshness); expected
//!    verdict: still zero violations, with the activity table proving
//!    reads actually came from cache.
//! 5. **Faulty-disk arm** — the same trials with the schedule's disk
//!    faults injected (torn writes at crash, one bit flip per schedule,
//!    transient I/O errors, sync stalls) and self-healing on. The oracle
//!    adds the no-poisoned-read invariant: corrupt durable state must
//!    never reach a client, replicas that detect interior corruption
//!    quarantine themselves (votes surrendered) until anti-entropy pulls
//!    full state from every peer. Expected verdict: zero violations,
//!    with the activity table proving damage was injected and detected.
//! 6. **Multi-suite arm** — the same trials with the keyspace sharded
//!    across four suites: writes route by payload tag, reads round-robin,
//!    and every fifth write tag becomes a cross-suite atomic transaction.
//!    The oracle runs its log and convergence invariants per suite and
//!    adds cross-suite atomicity (no suite commits while a sibling
//!    aborts). Expected verdict: zero violations, with the activity
//!    table proving transactions actually spanned suites.
//! 7. **Deliberately broken protocol** — `r + w = N`, so quorums need
//!    not intersect. The campaign finds a violation, the shrinker
//!    delta-debugs it to a handful of events, and the minimal schedule is
//!    emitted as a replayable JSON artifact.
//!
//! The report is a pure function of the seeds: regenerating it at any
//! worker count produces identical bytes.

use wv_bench::table::Table;

use crate::campaign::{run_campaign, trial_schedule, CampaignConfig};
use crate::exec::run_schedule_instrumented;
use crate::oracle::check_trial;
use crate::schedule::{ClusterSpec, EventKind, Schedule, ScheduleParams};
use crate::shrink::{shrink, DEFAULT_BUDGET};

/// Master seed for the healthy campaign.
pub const HEALTHY_SEED: u64 = 0xE9;
/// Master seed for the broken-quorum campaign.
pub const BROKEN_SEED: u64 = 0xBAD;
/// Trials for the broken-quorum campaign (it only needs one failure).
pub const BROKEN_TRIALS: usize = 64;

/// Everything E9 produced: the rendered report plus the replay artifact.
#[derive(Clone, Debug)]
pub struct E9Output {
    /// The markdown report.
    pub report: String,
    /// The shrunk reproducer artifact (JSON), when the broken campaign
    /// failed as expected.
    pub artifact: Option<String>,
}

fn describe_event(e: &EventKind) -> String {
    match e {
        EventKind::Write { client, payload } => {
            format!("client {client} writes payload #{payload}")
        }
        EventKind::Read { client } => format!("client {client} reads"),
        EventKind::Crash { site } => format!("server {site} crashes"),
        EventKind::Recover { site } => format!("server {site} recovers"),
        EventKind::Partition { group_a } => format!("partition: {group_a:?} vs the rest"),
        EventKind::Heal => "all partitions heal".to_string(),
        EventKind::LossBurst { permille } => {
            if *permille == 0 {
                "loss burst ends".to_string()
            } else {
                format!("loss burst: {}% per link", *permille as f64 / 10.0)
            }
        }
        EventKind::DelaySpike { extra_ms } => {
            if *extra_ms == 0 {
                "delay spike ends".to_string()
            } else {
                format!("delay spike: +{extra_ms} ms per hop")
            }
        }
        EventKind::Duplication { permille } => {
            if *permille == 0 {
                "duplication ends".to_string()
            } else {
                format!("duplication: {}% of deliveries", *permille as f64 / 10.0)
            }
        }
        EventKind::Reconfigure {
            client,
            read_quorum,
            write_quorum,
        } => format!("client {client} reconfigures to r={read_quorum}, w={write_quorum}"),
        EventKind::TornWrite { site } => {
            format!("server {site}'s next crash tears the unsynced WAL tail")
        }
        EventKind::BitFlip { site } => {
            format!("server {site}'s next crash flips a durable WAL bit")
        }
        EventKind::IoError { site, count } => {
            format!("server {site}'s next {count} WAL begin(s) fail with I/O errors")
        }
        EventKind::DiskStall { site, ms } => format!("server {site}'s disk stalls for {ms} ms"),
    }
}

/// Runs both campaigns and renders the report.
pub fn run(trials: usize) -> E9Output {
    let mut out = String::new();
    out.push_str("## E9 — Chaos campaign: deterministic fault schedules at scale\n\n");

    // Campaign 1: the shipped protocol.
    let healthy = CampaignConfig {
        master_seed: HEALTHY_SEED,
        trials,
        spec: ClusterSpec::majority(5, 2),
        params: ScheduleParams::default(),
    };
    let report = run_campaign(&healthy);
    out.push_str(&format!(
        "### Shipped protocol: {} seeded trials, 5 servers (majority quorums), 2 clients\n\n",
        report.trials
    ));
    out.push_str(&format!(
        "Invariant violations: **{}**.\n\n",
        report.failures.len()
    ));
    if !report.clean() {
        let mut t = Table::new("Violations", &["trial seed", "violation"]);
        for f in &report.failures {
            for v in &f.violations {
                t.row(&[format!("0x{:016x}", f.seed), v.to_string()]);
            }
        }
        out.push_str(&t.to_markdown());
        out.push('\n');
    }
    let c = report.coverage;
    let mut t = Table::new(
        "Fault coverage (a green run only counts if the faults actually fired)",
        &["counter", "value"],
    );
    t.row(&[
        "trials with a server crash".into(),
        c.trials_with_crash.to_string(),
    ]);
    t.row(&[
        "trials with a mid-run recovery".into(),
        c.trials_with_recovery.to_string(),
    ]);
    t.row(&[
        "trials with a partition".into(),
        c.trials_with_partition.to_string(),
    ]);
    t.row(&[
        "trials with a link-loss burst".into(),
        c.trials_with_loss.to_string(),
    ]);
    t.row(&[
        "trials with a delay spike".into(),
        c.trials_with_delay.to_string(),
    ]);
    t.row(&[
        "trials with message duplication".into(),
        c.trials_with_duplication.to_string(),
    ]);
    t.row(&[
        "trials with a live reconfiguration".into(),
        c.trials_with_reconfigure.to_string(),
    ]);
    t.row(&[
        "trials with a quorum-blocked operation".into(),
        c.trials_with_quorum_block.to_string(),
    ]);
    t.row(&["operations attempted".into(), c.ops_total.to_string()]);
    t.row(&["operations committed".into(), c.ops_ok.to_string()]);
    t.row(&[
        "operations quorum-blocked".into(),
        c.quorum_blocked.to_string(),
    ]);
    t.row(&[
        "operations ending in doubt".into(),
        c.indeterminate.to_string(),
    ]);
    t.row(&["phase timeouts".into(), c.timeouts.to_string()]);
    t.row(&["attempt retries".into(), c.retries.to_string()]);
    t.row(&[
        "attempt budgets exhausted".into(),
        c.attempts_exhausted.to_string(),
    ]);
    t.row(&[
        "messages dropped by link loss".into(),
        c.dropped_link.to_string(),
    ]);
    t.row(&["messages duplicated".into(), c.duplicated_msgs.to_string()]);
    out.push_str(&t.to_markdown());
    out.push('\n');
    out.push_str(&format!(
        "Every fault kind exercised: **{}**.\n\n",
        if c.all_fault_kinds_exercised() {
            "yes"
        } else {
            "no"
        }
    ));

    // Campaign 1b: the same trials with the self-healing layer on. The
    // repair flag never reaches the schedule generator, so both arms
    // replay identical fault timelines — any difference is the layer.
    let healing = CampaignConfig {
        spec: ClusterSpec::majority(5, 2).with_repair(),
        ..healthy
    };
    let report = run_campaign(&healing);
    out.push_str(&format!(
        "### Self-healing arm: the same {} trials with anti-entropy repair and health-tracked clients\n\n",
        report.trials
    ));
    out.push_str(&format!(
        "Invariant violations: **{}**.\n\n",
        report.failures.len()
    ));
    if !report.clean() {
        let mut t = Table::new("Violations", &["trial seed", "violation"]);
        for f in &report.failures {
            for v in &f.violations {
                t.row(&[format!("0x{:016x}", f.seed), v.to_string()]);
            }
        }
        out.push_str(&t.to_markdown());
        out.push('\n');
    }
    let h = report.coverage;
    let mut t = Table::new(
        "Self-healing activity (oracle also checks repair provenance + version bounds)",
        &["counter", "value"],
    );
    t.row(&[
        "anti-entropy repairs completed".into(),
        h.repairs_completed.to_string(),
    ]);
    t.row(&["suspicions raised".into(), h.suspicions_raised.to_string()]);
    t.row(&[
        "quorum plans rerouted around suspects".into(),
        h.reroutes.to_string(),
    ]);
    t.row(&["hedged fetches fired".into(), h.hedges_fired.to_string()]);
    t.row(&["hedged fetches won".into(), h.hedge_wins.to_string()]);
    t.row(&["phase timeouts".into(), h.timeouts.to_string()]);
    t.row(&["operations committed".into(), h.ops_ok.to_string()]);
    out.push_str(&t.to_markdown());
    out.push('\n');
    out.push_str(&format!(
        "Operations committed, healing off → on: {} → {}. Adaptive timeouts \
         fail fast when a quorum is genuinely unreachable (partitions), so \
         the healing arm trades commits-after-long-waits for latency; the \
         invariants hold either way, and E10 measures the flip side — \
         availability and latency under pure crash/recovery churn.\n\n",
        c.ops_ok, h.ops_ok
    ));

    // Campaign 1c: the same trials again with WAL group commit on. The
    // flag never reaches the schedule generator either, so the fault
    // timelines are identical; the oracle must stay clean over the
    // batched durability path.
    let batched = CampaignConfig {
        spec: ClusterSpec::majority(5, 2).with_group_commit(),
        ..healthy
    };
    let report = run_campaign(&batched);
    out.push_str(&format!(
        "### Group-commit arm: the same {} trials with batched WAL syncs on every server\n\n",
        report.trials
    ));
    out.push_str(&format!(
        "Invariant violations: **{}**.\n\n",
        report.failures.len()
    ));
    if !report.clean() {
        let mut t = Table::new("Violations", &["trial seed", "violation"]);
        for f in &report.failures {
            for v in &f.violations {
                t.row(&[format!("0x{:016x}", f.seed), v.to_string()]);
            }
        }
        out.push_str(&t.to_markdown());
        out.push('\n');
    }
    let g = report.coverage;
    let mut t = Table::new(
        "Group-commit activity (votes and acks leave only after their records are durable)",
        &["counter", "value"],
    );
    t.row(&["WAL sync batches".into(), g.wal_batches.to_string()]);
    t.row(&[
        "records made durable by those batches".into(),
        g.wal_batched_records.to_string(),
    ]);
    t.row(&["operations committed".into(), g.ops_ok.to_string()]);
    t.row(&["phase timeouts".into(), g.timeouts.to_string()]);
    out.push_str(&t.to_markdown());
    out.push('\n');
    out.push_str(&format!(
        "Batched syncs covered {} records in {} flushes across the \
         campaign; crash-recovery semantics are unchanged because a \
         response never leaves before its records hit the durable \
         prefix, and a crash mid-window loses only records nobody was \
         promised.\n\n",
        g.wal_batched_records, g.wal_batches
    ));

    // Campaign 1d: the same trials once more with a validated-mode weak
    // representative on every client. The flag never reaches the
    // schedule generator, so the fault timelines are identical; the
    // oracle adds the staleness-bound invariant for this arm (validated
    // mode = zero-length lease, so cache serves must be exactly fresh).
    let cached = CampaignConfig {
        spec: ClusterSpec::majority(5, 2).with_cache_tier(),
        ..healthy
    };
    let report = run_campaign(&cached);
    out.push_str(&format!(
        "### Cache-tier arm: the same {} trials with a validated weak representative on every client\n\n",
        report.trials
    ));
    out.push_str(&format!(
        "Invariant violations: **{}**.\n\n",
        report.failures.len()
    ));
    if !report.clean() {
        let mut t = Table::new("Violations", &["trial seed", "violation"]);
        for f in &report.failures {
            for v in &f.violations {
                t.row(&[format!("0x{:016x}", f.seed), v.to_string()]);
            }
        }
        out.push_str(&t.to_markdown());
        out.push('\n');
    }
    let w = report.coverage;
    let mut t = Table::new(
        "Cache-tier activity (oracle also checks the staleness bound on every cache serve)",
        &["counter", "value"],
    );
    t.row(&["cache hits".into(), w.cache_hits.to_string()]);
    t.row(&["cache misses".into(), w.cache_misses.to_string()]);
    t.row(&[
        "piggybacked inquiries".into(),
        w.piggybacked_inquiries.to_string(),
    ]);
    t.row(&["operations committed".into(), w.ops_ok.to_string()]);
    t.row(&["phase timeouts".into(), w.timeouts.to_string()]);
    out.push_str(&t.to_markdown());
    out.push('\n');
    out.push_str(&format!(
        "Of the arm's successful reads, {} were served from the local \
         weak representative after a version-inquiry quorum confirmed \
         currency and {} fell through to a data fetch; every cache serve \
         satisfied the staleness bound (validated mode: exactly as fresh \
         as a classic read).\n\n",
        w.cache_hits, w.cache_misses
    ));

    // Campaign 1e: the same trials with the schedule's disk faults
    // actually injected, plus self-healing so quarantined replicas can
    // come back. Every schedule already carries the disk-fault timeline;
    // the arm flag decides whether the executor applies it, so this arm
    // and the four above replay byte-identical schedules.
    let faulty = CampaignConfig {
        spec: ClusterSpec::majority(5, 2).with_repair().with_disk_faults(),
        ..healthy
    };
    let report = run_campaign(&faulty);
    out.push_str(&format!(
        "### Faulty-disk arm: the same {} trials with torn writes, bit flips, I/O errors, and stalls injected\n\n",
        report.trials
    ));
    out.push_str(&format!(
        "Invariant violations: **{}**.\n\n",
        report.failures.len()
    ));
    if !report.clean() {
        let mut t = Table::new("Violations", &["trial seed", "violation"]);
        for f in &report.failures {
            for v in &f.violations {
                t.row(&[format!("0x{:016x}", f.seed), v.to_string()]);
            }
        }
        out.push_str(&t.to_markdown());
        out.push('\n');
    }
    let d = report.coverage;
    let mut t = Table::new(
        "Faulty-disk activity (oracle also checks the no-poisoned-read tripwires)",
        &["counter", "value"],
    );
    t.row(&[
        "trials with a disk fault".into(),
        d.trials_with_disk_fault.to_string(),
    ]);
    t.row(&["torn writes injected".into(), d.torn_writes.to_string()]);
    t.row(&["bit flips injected".into(), d.bit_flips.to_string()]);
    t.row(&["I/O errors injected".into(), d.io_errors.to_string()]);
    t.row(&["disk stalls injected".into(), d.disk_stalls.to_string()]);
    t.row(&[
        "torn tails truncated at recovery".into(),
        d.torn_truncations.to_string(),
    ]);
    t.row(&[
        "corrupt records detected".into(),
        d.corrupt_records_detected.to_string(),
    ]);
    t.row(&["replicas quarantined".into(), d.quarantines.to_string()]);
    t.row(&[
        "quarantines healed by full pulls".into(),
        d.requarantine_repairs.to_string(),
    ]);
    t.row(&[
        "poison escapes (tripwire)".into(),
        d.poison_escapes.to_string(),
    ]);
    t.row(&[
        "served while quarantined (tripwire)".into(),
        d.served_while_quarantined.to_string(),
    ]);
    t.row(&["operations committed".into(), d.ops_ok.to_string()]);
    out.push_str(&t.to_markdown());
    out.push('\n');
    out.push_str(&format!(
        "Every detected interior corruption quarantined its replica \
         ({} detected, {} quarantines across the campaign); both \
         no-poisoned-read tripwires stayed at zero, so no corrupt frame \
         survived the checksum scan and no quarantined replica answered \
         a request before anti-entropy rebuilt it from its peers.\n\n",
        d.corrupt_records_detected, d.quarantines
    ));

    // Campaign 1f: the same trials with the keyspace sharded across four
    // suites. The suites flag never reaches the schedule generator, so
    // the fault timelines are identical; the executor routes writes by
    // payload tag, round-robins reads, and turns every fifth write tag
    // into a cross-suite atomic transaction. The oracle judges each
    // suite's history separately and adds the atomicity invariant.
    let sharded = CampaignConfig {
        spec: ClusterSpec::majority(5, 2).with_suites(4),
        ..healthy
    };
    let report = run_campaign(&sharded);
    out.push_str(&format!(
        "### Multi-suite arm: the same {} trials sharded across 4 suites with cross-suite transactions\n\n",
        report.trials
    ));
    out.push_str(&format!(
        "Invariant violations: **{}**.\n\n",
        report.failures.len()
    ));
    if !report.clean() {
        let mut t = Table::new("Violations", &["trial seed", "violation"]);
        for f in &report.failures {
            for v in &f.violations {
                t.row(&[format!("0x{:016x}", f.seed), v.to_string()]);
            }
        }
        out.push_str(&t.to_markdown());
        out.push('\n');
    }
    let m = report.coverage;
    let mut t = Table::new(
        "Multi-suite activity (oracle judges every suite separately, plus cross-suite atomicity)",
        &["counter", "value"],
    );
    t.row(&[
        "trials with a cross-suite transaction".into(),
        m.trials_with_cross_suite_txn.to_string(),
    ]);
    t.row(&[
        "cross-suite transactions started".into(),
        m.cross_suite_txns.to_string(),
    ]);
    t.row(&["operations committed".into(), m.ops_ok.to_string()]);
    t.row(&[
        "operations ending in doubt".into(),
        m.indeterminate.to_string(),
    ]);
    t.row(&["phase timeouts".into(), m.timeouts.to_string()]);
    out.push_str(&t.to_markdown());
    out.push('\n');
    out.push_str(&format!(
        "Disjoint suites never contend on a shared lock table, so the \
         sharded arm replays the identical fault timelines with per-suite \
         version counters; {} cross-suite transaction(s) rode the \
         existing two-phase commit with locks acquired in global suite \
         order, and no suite committed a branch whose sibling aborted.\n\n",
        m.cross_suite_txns
    ));

    // Campaign 2: break quorum intersection, find it, shrink it.
    out.push_str(
        "### Broken protocol: r = 2, w = 3 on 5 servers (r + w = N, quorums need not intersect)\n\n",
    );
    let broken = CampaignConfig {
        master_seed: BROKEN_SEED,
        trials: BROKEN_TRIALS,
        spec: ClusterSpec::broken(5, 2, 2),
        params: ScheduleParams {
            reconfigure: false,
            ..ScheduleParams::default()
        },
    };
    let report = run_campaign(&broken);
    out.push_str(&format!(
        "{} of {} trials violated an invariant. ",
        report.failures.len(),
        report.trials
    ));
    let mut artifact = None;
    match report.failures.first() {
        None => out.push_str("No failure to shrink — unexpected for this configuration.\n"),
        Some(first) => {
            let trial = (0..broken.trials as u64)
                .find(|&i| wv_bench::runner::trial_seed(broken.master_seed, i) == first.seed)
                .expect("failure seed maps back to a trial index");
            let schedule = trial_schedule(&broken, trial);
            let shrunk = shrink(&broken.spec, &schedule, DEFAULT_BUDGET)
                .expect("a campaign failure must fail when replayed");
            out.push_str(&format!(
                "First failure (trial seed 0x{:016x}) shrunk from {} events to **{}** in {} replays.\n\n",
                first.seed,
                shrunk.original_events,
                shrunk.schedule.events.len(),
                shrunk.evaluations
            ));
            let mut t = Table::new("Minimal reproducer", &["t (ms)", "event"]);
            for e in &shrunk.schedule.events {
                t.row(&[e.at_ms.to_string(), describe_event(&e.kind)]);
            }
            out.push_str(&t.to_markdown());
            out.push('\n');
            let mut t = Table::new("Violations it reproduces", &["violation"]);
            for v in &shrunk.violations {
                t.row(&[v.to_string()]);
            }
            out.push_str(&t.to_markdown());
            out.push('\n');

            // Prove the artifact replays before shipping it. The replay
            // runs with span recording on: after shrinking, every event
            // left is necessary to reproduce the violation, so the ops in
            // this trace are exactly the ops involved — the trace is the
            // violation's evidence and ships inside the artifact.
            let text = shrunk.schedule.to_json(&broken.spec);
            let (spec2, schedule2) = Schedule::from_json(&text).expect("artifact round-trips");
            let (rerun, trace, audit) = run_schedule_instrumented(&spec2, &schedule2);
            let replayed = check_trial(&rerun, false);
            let span_objs: Vec<String> = wv_sim::trace::to_jsonl(&trace)
                .lines()
                .map(str::to_string)
                .collect();
            let audit_objs: Vec<String> = wv_sim::audit::to_jsonl(&audit)
                .lines()
                .map(str::to_string)
                .collect();
            // The critical-path profile of the reproducer, folded-stack
            // form: which site and phase each microsecond of the
            // violating ops waited on.
            let profile = wv_analysis::critpath::extract(&trace);
            let critpath_objs: Vec<String> = profile
                .folded()
                .lines()
                .map(|l| format!("{:?}", l))
                .collect();
            let mut with_trace = text.trim_end().to_string();
            with_trace.pop(); // drop the closing brace
            with_trace.push_str(&format!(
                ",\"trace\":[{}],\"audit\":[{}],\"critpath\":[{}]}}\n",
                span_objs.join(","),
                audit_objs.join(","),
                critpath_objs.join(","),
            ));
            // The extra keys are ignored by the parser: the artifact must
            // still round-trip.
            assert!(
                Schedule::from_json(&with_trace).is_some(),
                "trace-bearing artifact must stay parseable"
            );
            out.push_str(&format!(
                "Replay artifact: `results/e9_repro.json` ({} bytes); parsing and replaying it reproduces the same {} violation(s): **{}**. The artifact embeds the replay's {}-span operation trace (render with `trace2txt`), its {}-decision quorum audit log (render with `wv-inspect explain`), and its {}-frame critical-path profile.\n",
                with_trace.len(),
                shrunk.violations.len(),
                if replayed == shrunk.violations { "yes" } else { "NO" },
                span_objs.len(),
                audit_objs.len(),
                critpath_objs.len(),
            ));

            // Critical-path + explain sections: the analytics view of the
            // reproducer, straight from the same instrumented replay.
            out.push_str("\n### Critical path of the reproducer\n\n```text\n");
            out.push_str(&profile.render_ops());
            out.push_str(&profile.render_blame());
            out.push_str("```\n");
            out.push_str("\n### Quorum decisions of the reproducer\n\n```text\n");
            out.push_str(&wv_bench::inspect::explain_report(&audit, None));
            out.push_str("```\n");
            artifact = Some(with_trace);
        }
    }

    E9Output {
        report: out,
        artifact,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e9_report_is_deterministic_and_finds_the_planted_bug() {
        // Small trial count: this is the smoke version of the full run.
        let a = run(16);
        let b = run(16);
        assert_eq!(a.report, b.report);
        assert_eq!(a.artifact, b.artifact);
        assert!(a.artifact.is_some(), "broken campaign yields an artifact");
        assert!(a.report.contains("Minimal reproducer"));
        // The artifact carries the traced replay of the shrunk schedule
        // and still parses (the replayer ignores the extra key).
        let artifact = a.artifact.as_deref().unwrap();
        assert!(artifact.contains("\"trace\":["), "artifact embeds trace");
        assert!(artifact.contains("\"kind\":"), "trace has span records");
        assert!(Schedule::from_json(artifact).is_some());
        // The plain, self-healing, group-commit, cache-tier, faulty-disk,
        // and multi-suite arms all come back clean.
        assert!(a.report.contains("### Self-healing arm"));
        assert!(a.report.contains("### Group-commit arm"));
        assert!(a.report.contains("### Cache-tier arm"));
        assert!(a.report.contains("### Faulty-disk arm"));
        assert!(a.report.contains("### Multi-suite arm"));
        assert_eq!(
            a.report.matches("Invariant violations: **0**").count(),
            6,
            "all six healthy arms must be violation-free"
        );
    }
}
