//! Campaign fan-out: thousands of seeded chaos trials, judged in parallel.
//!
//! A campaign draws one schedule per trial seed (via
//! [`crate::schedule::generate`]), replays it ([`crate::exec`]), and
//! judges the history ([`crate::oracle`]). Trials fan out over
//! [`wv_bench::runner::run_trials`], so the report is bit-identical at
//! any worker count: results come back in trial order and each trial's
//! randomness derives only from its own seed.
//!
//! Besides violations, a campaign reports *fault coverage* — how many
//! trials actually exercised each fault kind, how often operations were
//! quorum-blocked, how many recoveries and in-doubt resolutions ran. A
//! green campaign is only evidence if the faults really happened.

use wv_bench::runner;

use crate::exec::{run_schedule, TrialCoverage};
use crate::oracle::{check_trial, Violation};
use crate::schedule::{generate, ClusterSpec, Schedule, ScheduleParams};

/// What to run: cluster shape, schedule tunables, and how many trials.
#[derive(Clone, Copy, Debug)]
pub struct CampaignConfig {
    /// Master seed; trial `i` runs with `runner::trial_seed(master, i)`.
    pub master_seed: u64,
    /// Number of trials.
    pub trials: usize,
    /// Cluster shape for every trial.
    pub spec: ClusterSpec,
    /// Schedule generation tunables.
    pub params: ScheduleParams,
}

/// One failing trial: its seed and what the oracle found.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TrialFailure {
    /// The trial seed (regenerate the schedule with it to replay).
    pub seed: u64,
    /// Every violated invariant.
    pub violations: Vec<Violation>,
}

/// Fleet-wide coverage: per-kind trial counts and protocol totals.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Coverage {
    /// Trials whose schedule crashed at least one server.
    pub trials_with_crash: u64,
    /// Trials that recovered at least one server mid-run.
    pub trials_with_recovery: u64,
    /// Trials that partitioned the network.
    pub trials_with_partition: u64,
    /// Trials that opened a link-loss burst.
    pub trials_with_loss: u64,
    /// Trials that opened a delay spike.
    pub trials_with_delay: u64,
    /// Trials that opened a duplication window.
    pub trials_with_duplication: u64,
    /// Trials that ran a mid-run reconfiguration.
    pub trials_with_reconfigure: u64,
    /// Trials that started at least one cross-suite transaction
    /// (multi-suite arms only).
    pub trials_with_cross_suite_txn: u64,
    /// Cross-suite transactions started across all trials.
    pub cross_suite_txns: u64,
    /// Trials where at least one operation was quorum-blocked.
    pub trials_with_quorum_block: u64,
    /// Operations attempted across all trials.
    pub ops_total: u64,
    /// Operations that succeeded.
    pub ops_ok: u64,
    /// Operations that failed `Unavailable` (quorum-blocked).
    pub quorum_blocked: u64,
    /// Operations that ended in doubt.
    pub indeterminate: u64,
    /// Phase timeouts across all clients and trials.
    pub timeouts: u64,
    /// Attempt retries across all clients and trials.
    pub retries: u64,
    /// Operations abandoned after exhausting the attempt budget.
    pub attempts_exhausted: u64,
    /// Messages dropped by link loss.
    pub dropped_link: u64,
    /// Extra deliveries caused by duplication.
    pub duplicated_msgs: u64,
    /// Suspicion-threshold crossings across all clients and trials.
    pub suspicions_raised: u64,
    /// Quorum plans reordered around suspected sites.
    pub reroutes: u64,
    /// Hedged fetches launched.
    pub hedges_fired: u64,
    /// Reads won by the hedge target.
    pub hedge_wins: u64,
    /// Anti-entropy repairs installed across all servers and trials.
    pub repairs_completed: u64,
    /// Group-commit WAL sync batches flushed across all servers and trials.
    pub wal_batches: u64,
    /// WAL records made durable by those batched syncs.
    pub wal_batched_records: u64,
    /// Reads served from an attached weak representative.
    pub cache_hits: u64,
    /// Cache-tier reads that fell through to a data fetch.
    pub cache_misses: u64,
    /// Lease-mode reads that found their lease expired.
    pub lease_expiries: u64,
    /// Version inquiries answered by piggybacking on an in-flight one.
    pub piggybacked_inquiries: u64,
    /// Trials that injected at least one disk fault (any kind).
    pub trials_with_disk_fault: u64,
    /// Torn-write arms injected across all trials.
    pub torn_writes: u64,
    /// Bit-flip arms injected.
    pub bit_flips: u64,
    /// Transient I/O error injections.
    pub io_errors: u64,
    /// Disk-stall injections.
    pub disk_stalls: u64,
    /// Torn tails truncated during recovery.
    pub torn_truncations: u64,
    /// WAL records lost to detected interior corruption.
    pub corrupt_records_detected: u64,
    /// Replicas quarantined after detecting corruption.
    pub quarantines: u64,
    /// Quarantined replicas healed via full anti-entropy pulls.
    pub requarantine_repairs: u64,
    /// CRC-collision tripwire (stays zero).
    pub poison_escapes: u64,
    /// Served-while-quarantined tripwire (stays zero).
    pub served_while_quarantined: u64,
}

impl Coverage {
    fn absorb(&mut self, c: &TrialCoverage) {
        self.trials_with_crash += u64::from(c.crashes > 0);
        self.trials_with_recovery += u64::from(c.recoveries > 0);
        self.trials_with_partition += u64::from(c.partitions > 0);
        self.trials_with_loss += u64::from(c.loss_bursts > 0);
        self.trials_with_delay += u64::from(c.delay_spikes > 0);
        self.trials_with_duplication += u64::from(c.duplications > 0);
        self.trials_with_reconfigure += u64::from(c.reconfigures > 0);
        self.trials_with_cross_suite_txn += u64::from(c.cross_suite_txns > 0);
        self.cross_suite_txns += c.cross_suite_txns;
        self.trials_with_quorum_block += u64::from(c.quorum_blocked > 0);
        self.ops_total += c.ops_ok + c.ops_failed;
        self.ops_ok += c.ops_ok;
        self.quorum_blocked += c.quorum_blocked;
        self.indeterminate += c.indeterminate;
        self.timeouts += c.timeouts;
        self.retries += c.retries;
        self.attempts_exhausted += c.attempts_exhausted;
        self.dropped_link += c.dropped_link;
        self.duplicated_msgs += c.duplicated_msgs;
        self.suspicions_raised += c.suspicions_raised;
        self.reroutes += c.reroutes;
        self.hedges_fired += c.hedges_fired;
        self.hedge_wins += c.hedge_wins;
        self.repairs_completed += c.repairs_completed;
        self.wal_batches += c.wal_batches;
        self.wal_batched_records += c.wal_batched_records;
        self.cache_hits += c.cache_hits;
        self.cache_misses += c.cache_misses;
        self.lease_expiries += c.lease_expiries;
        self.piggybacked_inquiries += c.piggybacked_inquiries;
        self.trials_with_disk_fault +=
            u64::from(c.torn_writes + c.bit_flips + c.io_errors + c.disk_stalls > 0);
        self.torn_writes += c.torn_writes;
        self.bit_flips += c.bit_flips;
        self.io_errors += c.io_errors;
        self.disk_stalls += c.disk_stalls;
        self.torn_truncations += c.torn_truncations;
        self.corrupt_records_detected += c.corrupt_records_detected;
        self.quarantines += c.quarantines;
        self.requarantine_repairs += c.requarantine_repairs;
        self.poison_escapes += c.poison_escapes;
        self.served_while_quarantined += c.served_while_quarantined;
    }

    /// True when every fault kind fired in at least one trial — the bar a
    /// campaign must clear before "zero violations" means anything.
    pub fn all_fault_kinds_exercised(&self) -> bool {
        self.trials_with_crash > 0
            && self.trials_with_recovery > 0
            && self.trials_with_partition > 0
            && self.trials_with_loss > 0
            && self.trials_with_delay > 0
            && self.trials_with_duplication > 0
            && self.trials_with_quorum_block > 0
    }
}

/// The campaign's verdict.
#[derive(Clone, Debug)]
pub struct CampaignReport {
    /// Trials run.
    pub trials: usize,
    /// Failing trials, in trial order (deterministic at any worker
    /// count).
    pub failures: Vec<TrialFailure>,
    /// Aggregated fault coverage.
    pub coverage: Coverage,
}

impl CampaignReport {
    /// True when no trial violated any invariant.
    pub fn clean(&self) -> bool {
        self.failures.is_empty()
    }

    /// Violation counts grouped by tag, in tag order.
    pub fn violation_histogram(&self) -> Vec<(&'static str, u64)> {
        let mut counts: std::collections::BTreeMap<&'static str, u64> =
            std::collections::BTreeMap::new();
        for failure in &self.failures {
            for v in &failure.violations {
                *counts.entry(v.tag()).or_insert(0) += 1;
            }
        }
        counts.into_iter().collect()
    }
}

/// The schedule trial `i` of a campaign runs (useful for replaying a
/// reported seed outside the campaign).
pub fn trial_schedule(cfg: &CampaignConfig, trial: u64) -> Schedule {
    generate(
        &cfg.spec,
        &cfg.params,
        runner::trial_seed(cfg.master_seed, trial),
    )
}

/// Runs the whole campaign, fanning trials over the deterministic
/// parallel runner. Generated schedules contain loss and delay dials, so
/// histories are judged in lossy (non-strict) mode.
pub fn run_campaign(cfg: &CampaignConfig) -> CampaignReport {
    let spec = cfg.spec;
    let params = cfg.params;
    let results = runner::run_trials(cfg.master_seed, cfg.trials, |seed| {
        let schedule = generate(&spec, &params, seed);
        let run = run_schedule(&spec, &schedule);
        let violations = check_trial(&run, false);
        (seed, violations, run.coverage)
    });
    let mut coverage = Coverage::default();
    let mut failures = Vec::new();
    for (seed, violations, trial_coverage) in results {
        coverage.absorb(&trial_coverage);
        if !violations.is_empty() {
            failures.push(TrialFailure { seed, violations });
        }
    }
    CampaignReport {
        trials: cfg.trials,
        failures,
        coverage,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_small_healthy_campaign_is_clean_and_deterministic() {
        let cfg = CampaignConfig {
            master_seed: 0xC0FFEE,
            trials: 8,
            spec: ClusterSpec::majority(5, 2),
            params: ScheduleParams::default(),
        };
        let a = run_campaign(&cfg);
        let b = run_campaign(&cfg);
        assert!(
            a.clean(),
            "healthy protocol must survive chaos; failures: {:?}",
            a.failures
                .iter()
                .map(|f| (f.seed, f.violations.clone()))
                .collect::<Vec<_>>()
        );
        assert_eq!(a.coverage, b.coverage, "campaigns replay exactly");
        assert!(a.coverage.ops_total > 0);
    }

    #[test]
    fn a_repair_enabled_campaign_is_clean_and_actually_repairs() {
        // Same seeds as the healthy campaign, but with the self-healing
        // layer on: anti-entropy plus health-tracked clients must not
        // introduce violations — and must actually repair something, or
        // "repair survived chaos" is vacuous.
        let cfg = CampaignConfig {
            master_seed: 0xC0FFEE,
            trials: 8,
            spec: ClusterSpec::majority(5, 2).with_repair(),
            params: ScheduleParams::default(),
        };
        let report = run_campaign(&cfg);
        assert!(
            report.clean(),
            "self-healing must not break invariants; failures: {:?}",
            report
                .failures
                .iter()
                .map(|f| (f.seed, f.violations.clone()))
                .collect::<Vec<_>>()
        );
        assert!(
            report.coverage.repairs_completed > 0,
            "eight chaotic trials with crashes and recoveries must trigger repair"
        );
    }

    #[test]
    fn a_cache_tier_campaign_is_clean_and_actually_serves_from_cache() {
        // Same seeds again, with a validated-mode weak representative on
        // every client: quorum-confirmed cache serves must not introduce
        // violations — including the staleness-bound invariant the arm
        // switches on — and must actually serve something from cache.
        let cfg = CampaignConfig {
            master_seed: 0xC0FFEE,
            trials: 8,
            spec: ClusterSpec::majority(5, 2).with_cache_tier(),
            params: ScheduleParams::default(),
        };
        let report = run_campaign(&cfg);
        assert!(
            report.clean(),
            "cache tier must not break invariants; failures: {:?}",
            report
                .failures
                .iter()
                .map(|f| (f.seed, f.violations.clone()))
                .collect::<Vec<_>>()
        );
        assert!(
            report.coverage.cache_hits > 0,
            "read-bearing chaos trials must land at least one cache hit"
        );
        assert!(
            report.coverage.cache_misses > 0,
            "cold caches mean the first fetch per suite is a miss"
        );
    }

    #[test]
    fn a_faulty_disk_campaign_is_clean_and_actually_injects() {
        // Same seeds once more with disks faulty: torn writes, one bit
        // flip per schedule, transient I/O errors, and sync stalls ride
        // the identical timelines. Checksummed recovery plus quarantine
        // must keep every invariant — and the tripwires must stay zero.
        let cfg = CampaignConfig {
            master_seed: 0xC0FFEE,
            trials: 8,
            spec: ClusterSpec::majority(5, 2).with_repair().with_disk_faults(),
            params: ScheduleParams::default(),
        };
        let report = run_campaign(&cfg);
        assert!(
            report.clean(),
            "faulty disks must not break invariants; failures: {:?}",
            report
                .failures
                .iter()
                .map(|f| (f.seed, f.violations.clone()))
                .collect::<Vec<_>>()
        );
        assert!(
            report.coverage.trials_with_disk_fault > 0,
            "eight chaotic trials must inject at least one disk fault"
        );
        assert_eq!(report.coverage.poison_escapes, 0);
        assert_eq!(report.coverage.served_while_quarantined, 0);
    }

    #[test]
    fn a_multi_suite_campaign_is_clean_and_actually_crosses_suites() {
        // Same seeds, keyspace sharded four ways: per-suite traffic plus
        // cross-suite transactions ride identical fault timelines. The
        // per-suite oracle and the atomicity invariant must stay clean.
        let cfg = CampaignConfig {
            master_seed: 0xC0FFEE,
            trials: 8,
            spec: ClusterSpec::majority(5, 2).with_suites(4),
            params: ScheduleParams::default(),
        };
        let report = run_campaign(&cfg);
        assert!(
            report.clean(),
            "sharding must not break invariants; failures: {:?}",
            report
                .failures
                .iter()
                .map(|f| (f.seed, f.violations.clone()))
                .collect::<Vec<_>>()
        );
        assert!(
            report.coverage.cross_suite_txns > 0,
            "eight trials must start at least one cross-suite transaction"
        );
        assert!(report.coverage.trials_with_cross_suite_txn > 0);
    }

    #[test]
    fn a_broken_quorum_campaign_finds_violations() {
        // r + w = N: read and write quorums need not intersect, so once
        // crashes or partitions steer readers away from the writers'
        // replicas, stale reads surface.
        let cfg = CampaignConfig {
            master_seed: 0xBAD,
            trials: 24,
            spec: ClusterSpec::broken(5, 2, 2),
            params: ScheduleParams {
                reconfigure: false,
                ..ScheduleParams::default()
            },
        };
        let report = run_campaign(&cfg);
        assert!(
            !report.clean(),
            "non-intersecting quorums must eventually violate an invariant"
        );
        // Failures identify their seed so the shrinker can take over.
        assert!(report.failures.iter().all(|f| !f.violations.is_empty()));
    }
}
