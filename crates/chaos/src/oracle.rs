//! The history oracle: invariant checks over completed-operation logs.
//!
//! These are the consistency conditions weighted voting promises
//! *regardless* of which quorums were reachable — extracted from the
//! integration tests so campaigns, the shrinker, and the test-suite all
//! judge histories with one implementation. Unlike an `assert!`, every
//! check returns structured [`Violation`] values: a campaign can count
//! them, the shrinker can use "still violates" as its predicate, and a
//! test can still unwrap them into a panic.
//!
//! # The invariants
//!
//! Over the raw log ([`check_log`]):
//!
//! 1. **Version uniqueness** — two committed writes never share a version.
//!    Committed reconfigurations consume a data version too (the
//!    re-publication bump, reported via `OpSuccess::multi`) and take part
//!    in every version-based check below.
//! 2. **Real-time version order** — if write X *started* after write Y
//!    *finished*, X's version is higher. In `strict` mode (no message
//!    loss, so acknowledgements are never delayed past a later write) the
//!    stronger completion-order check applies: versions are strictly
//!    increasing in completion order.
//! 3. **Gap-freedom** — committed versions are consecutive from 1, with
//!    at most one missing slot per `Indeterminate` write (an in-doubt
//!    write may have committed without its client learning so).
//! 4. **No phantom reads** — a read never returns a version no write
//!    committed (checked only when no write ended in-doubt).
//! 5. **Value provenance** — a read never returns bytes nobody wrote.
//! 6. **Read agreement** — two reads of the same version see the same
//!    bytes.
//! 7. **Freshness** — a read that starts after a write's acknowledgement
//!    returns that write's version or newer.
//!
//! Over the post-quiesce state ([`check_convergence`]):
//!
//! 8. **Convergence** — after healing and recovering everything, every
//!    client reads one final state at least as new as every acknowledged
//!    write, and replicas holding the same version hold the same bytes.
//! 9. **Repair provenance** — a replica never holds bytes nobody wrote;
//!    anti-entropy repair copies committed state, it does not fabricate
//!    or resurrect data.
//! 10. **Repair version bound** — a replica's version is explicable by
//!     acknowledged plus in-doubt writes; repair never mints versions,
//!     so gap-freedom reasoning survives it.
//!
//! With the client cache tier on ([`check_staleness_bound`]):
//!
//! 11. **Staleness bound** — every successful read returns a version at
//!     least as new as anything acknowledged `lease` or more before the
//!     read began. Validated mode runs with a zero bound: a cache serve
//!     carries quorum evidence, so it must be exactly as fresh as a
//!     classic quorum read.
//!
//! Under disk faults ([`check_no_poison`]):
//!
//! 12. **No poisoned read** — corrupt durable state never reaches a
//!     client. Two server-side tripwires enforce it: a corrupt frame
//!     whose checksum still matched (a CRC collision slipping past
//!     recovery), and any request served while quarantined (suspect
//!     state escaping the quarantine fence). Both must stay zero in
//!     every trial; the scan-stop-at-first-bad-frame rule makes the
//!     invariant hold by construction, so a nonzero counter is a bug in
//!     the recovery path itself.
//!
//! Over sharded (multi-suite) trials ([`check_cross_suite`]):
//!
//! 13. **Cross-suite atomicity** — a cross-suite transaction commits in
//!     every suite it wrote or in none: a committed outcome must report
//!     a version for each branch, and a definitely-aborted transaction's
//!     payload must never surface in any suite's reads, final states, or
//!     replicas. In-doubt transactions are exempt (they may have
//!     committed without their client learning so) but count against
//!     each touched suite's version-gap and replica-bound budgets.
//!
//! Multi-suite trials run invariants 1–11 *per suite*: versions are
//! per-suite counters, so the log is partitioned by suite first, with
//! committed cross-suite transactions exploded into one synthetic write
//! per branch (the version each branch installed) and in-doubt ones
//! surfacing as one in-doubt write per touched suite.

use std::collections::{BTreeMap, HashMap, HashSet};
use std::fmt;

use wv_core::client::{CompletedOp, OpSuccess};
use wv_core::msg::ReqId;
use wv_core::{OpError, OpKind};
use wv_sim::{SimDuration, SimTime};
use wv_storage::ObjectId;

use crate::exec::TrialRun;

/// One broken invariant, with enough context to report it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Violation {
    /// Two committed writes carried the same version.
    DuplicateVersion {
        /// The shared version.
        version: u64,
    },
    /// A write that started after another finished committed a version
    /// that is not higher.
    VersionOrderInversion {
        /// Version of the earlier-finishing write.
        earlier: u64,
        /// Version of the later-starting write.
        later: u64,
    },
    /// Committed versions have more holes than in-doubt writes can
    /// explain.
    VersionGap {
        /// How many versions up to the maximum never committed.
        missing: u64,
        /// How many holes the in-doubt writes could account for.
        allowed: u64,
    },
    /// A read returned a version no write committed.
    PhantomRead {
        /// The version the read returned.
        version: u64,
    },
    /// A read returned bytes that no write in the schedule sent.
    ForeignValue {
        /// The version the read returned.
        version: u64,
    },
    /// Two reads of the same version saw different bytes.
    DivergentRead {
        /// The version with conflicting contents.
        version: u64,
    },
    /// A read missed a write acknowledged before the read began.
    StaleRead {
        /// The version the read returned.
        returned: u64,
        /// The newest version acknowledged before the read started.
        floor: u64,
    },
    /// With the cache tier on, a read exceeded the staleness bound: it
    /// missed a write acknowledged at least the lease before it began.
    StaleCachedRead {
        /// The version the read returned.
        returned: u64,
        /// The newest version acknowledged `lease` or more before the
        /// read started.
        floor: u64,
    },
    /// After quiesce, a client's final read missed an acknowledged write.
    MissedAckedWrite {
        /// Which client (0-based).
        client: usize,
        /// The version its final read returned.
        final_version: u64,
        /// The newest acknowledged version.
        max_acked: u64,
    },
    /// After quiesce, clients disagreed on the final state.
    FinalStateDivergence,
    /// After quiesce (everything healed and recovered), a client's final
    /// read still failed.
    PostHealUnavailable {
        /// Which client (0-based).
        client: usize,
    },
    /// Two replicas held the same version with different bytes.
    ReplicaDivergence {
        /// The version with conflicting replica contents.
        version: u64,
    },
    /// After quiesce, a replica held bytes no client ever sent — the
    /// repair path fabricated or resurrected data nobody wrote.
    ReplicaForeignValue {
        /// The replica slot (server index) holding the foreign bytes.
        site: usize,
        /// The version the foreign bytes were stored under.
        version: u64,
    },
    /// After quiesce, a replica sat beyond every version acknowledged or
    /// in-doubt writes could have committed — repair minted a version
    /// instead of copying one.
    ReplicaBeyondCommit {
        /// The replica slot (server index).
        site: usize,
        /// The version the replica reached.
        version: u64,
        /// The largest version explicable by acked + in-doubt writes.
        bound: u64,
    },
    /// A corrupt WAL frame's checksum matched anyway: recovery replayed
    /// poisoned bytes (CRC collision).
    PoisonEscaped {
        /// How many corrupt frames slipped past the checksum.
        count: u64,
    },
    /// A quarantined replica answered a request instead of refusing —
    /// suspect state escaped the quarantine fence.
    QuarantineServed {
        /// How many requests it served.
        count: u64,
    },
    /// A cross-suite transaction reported success but committed no
    /// version in one of its suites — a branch silently vanished.
    CrossSuitePartialCommit {
        /// The suite the committed outcome skipped.
        suite: u64,
    },
    /// A definitely-aborted cross-suite transaction's payload surfaced
    /// in a suite's reads, final state, or replicas — one branch
    /// committed while its sibling aborted.
    CrossSuiteAbortLeak {
        /// The suite where the aborted payload surfaced.
        suite: u64,
    },
    /// The run failed to drain its event queue within the quiesce budget.
    NoQuiesce,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::DuplicateVersion { version } => {
                write!(f, "duplicate committed version v{version}")
            }
            Violation::VersionOrderInversion { earlier, later } => write!(
                f,
                "real-time order inverted: v{later} started after v{earlier} finished"
            ),
            Violation::VersionGap { missing, allowed } => write!(
                f,
                "{missing} committed version(s) missing but only {allowed} write(s) in doubt"
            ),
            Violation::PhantomRead { version } => {
                write!(f, "read returned v{version}, which no write committed")
            }
            Violation::ForeignValue { version } => {
                write!(f, "read at v{version} returned bytes nobody wrote")
            }
            Violation::DivergentRead { version } => {
                write!(f, "two reads of v{version} saw different bytes")
            }
            Violation::StaleRead { returned, floor } => write!(
                f,
                "stale read: returned v{returned} after v{floor} was acknowledged"
            ),
            Violation::StaleCachedRead { returned, floor } => write!(
                f,
                "cache-tier read returned v{returned}, beyond the staleness bound (floor v{floor})"
            ),
            Violation::MissedAckedWrite {
                client,
                final_version,
                max_acked,
            } => write!(
                f,
                "client {client}'s final read v{final_version} misses acked write v{max_acked}"
            ),
            Violation::FinalStateDivergence => {
                write!(f, "clients disagree on the final state after quiesce")
            }
            Violation::PostHealUnavailable { client } => write!(
                f,
                "client {client} cannot read after everything healed and recovered"
            ),
            Violation::ReplicaDivergence { version } => {
                write!(f, "replicas diverge at v{version}")
            }
            Violation::ReplicaForeignValue { site, version } => write!(
                f,
                "replica {site} holds bytes nobody wrote at v{version} (repair resurrected data)"
            ),
            Violation::ReplicaBeyondCommit {
                site,
                version,
                bound,
            } => write!(
                f,
                "replica {site} reached v{version}, beyond anything committed or in doubt (v{bound})"
            ),
            Violation::PoisonEscaped { count } => write!(
                f,
                "{count} corrupt WAL frame(s) passed the checksum and replayed"
            ),
            Violation::QuarantineServed { count } => write!(
                f,
                "a quarantined replica served {count} request(s) instead of refusing"
            ),
            Violation::CrossSuitePartialCommit { suite } => write!(
                f,
                "cross-suite transaction committed without a version in suite {suite}"
            ),
            Violation::CrossSuiteAbortLeak { suite } => write!(
                f,
                "aborted cross-suite transaction's payload surfaced in suite {suite}"
            ),
            Violation::NoQuiesce => {
                write!(f, "event queue failed to drain within the quiesce budget")
            }
        }
    }
}

impl Violation {
    /// A short stable tag for grouping violations in reports.
    pub fn tag(&self) -> &'static str {
        match self {
            Violation::DuplicateVersion { .. } => "duplicate_version",
            Violation::VersionOrderInversion { .. } => "version_order_inversion",
            Violation::VersionGap { .. } => "version_gap",
            Violation::PhantomRead { .. } => "phantom_read",
            Violation::ForeignValue { .. } => "foreign_value",
            Violation::DivergentRead { .. } => "divergent_read",
            Violation::StaleRead { .. } => "stale_read",
            Violation::StaleCachedRead { .. } => "stale_cached_read",
            Violation::MissedAckedWrite { .. } => "missed_acked_write",
            Violation::FinalStateDivergence => "final_state_divergence",
            Violation::PostHealUnavailable { .. } => "post_heal_unavailable",
            Violation::ReplicaDivergence { .. } => "replica_divergence",
            Violation::ReplicaForeignValue { .. } => "replica_foreign_value",
            Violation::ReplicaBeyondCommit { .. } => "replica_beyond_commit",
            Violation::PoisonEscaped { .. } => "poison_escaped",
            Violation::QuarantineServed { .. } => "quarantine_served",
            Violation::CrossSuitePartialCommit { .. } => "cross_suite_partial_commit",
            Violation::CrossSuiteAbortLeak { .. } => "cross_suite_abort_leak",
            Violation::NoQuiesce => "no_quiesce",
        }
    }
}

/// Checks invariants 1–7 over a completion log.
///
/// `sent` enables the provenance check (5) when the caller tracked every
/// payload written; pass `None` when the log's writes came from elsewhere.
/// `strict` upgrades the real-time order check (2) to completion-order
/// monotonicity — valid only when the network never drops or delays
/// acknowledgements past a later write (no loss bursts, no delay spikes).
pub fn check_log(
    ops: &[CompletedOp],
    sent: Option<&HashSet<Vec<u8>>>,
    strict: bool,
) -> Vec<Violation> {
    let mut violations = Vec::new();

    // Everything that consumes a data version: committed writes, plus
    // committed reconfigurations — a reconfiguration re-publishes the
    // contents one version up to serialise against concurrent writes,
    // and reports the version its bump consumed via `multi`.
    let mut committed: Vec<(SimTime, SimTime, u64)> = Vec::new();
    for o in ops {
        match (o.kind, &o.outcome) {
            (OpKind::Write, Ok(okk)) => {
                committed.push((o.started, o.finished, okk.version.0));
            }
            (OpKind::Reconfigure, Ok(okk)) => {
                for (_, bump) in &okk.multi {
                    committed.push((o.started, o.finished, bump.0));
                }
            }
            _ => {}
        }
    }
    let in_doubt = ops
        .iter()
        .filter(|o| {
            matches!(o.kind, OpKind::Write | OpKind::Reconfigure)
                && matches!(o.outcome, Err(OpError::Indeterminate))
        })
        .count() as u64;

    // 1: version uniqueness.
    let mut versions_seen: HashSet<u64> = HashSet::new();
    let mut committed_at: BTreeMap<u64, SimTime> = BTreeMap::new();
    for &(_, finished, v) in &committed {
        if !versions_seen.insert(v) {
            violations.push(Violation::DuplicateVersion { version: v });
        }
        let fin = committed_at.entry(v).or_insert(finished);
        if finished < *fin {
            *fin = finished;
        }
    }

    // 2: real-time version order.
    if strict {
        let mut by_finish: Vec<&(SimTime, SimTime, u64)> = committed.iter().collect();
        by_finish.sort_by_key(|e| e.1);
        for pair in by_finish.windows(2) {
            let a = pair[0].2;
            let b = pair[1].2;
            if a >= b {
                violations.push(Violation::VersionOrderInversion {
                    earlier: a,
                    later: b,
                });
            }
        }
    } else {
        // Pairwise: X started after Y finished => vX > vY. Valid even
        // when lost acknowledgements delay a commit's completion record.
        for &(x_started, _, vx) in &committed {
            for &(_, y_finished, vy) in &committed {
                if x_started > y_finished && vx <= vy {
                    violations.push(Violation::VersionOrderInversion {
                        earlier: vy,
                        later: vx,
                    });
                }
            }
        }
    }

    // 3: gap-freedom, modulo in-doubt writes.
    if let Some(&max) = versions_seen.iter().max() {
        let missing = max - versions_seen.len() as u64;
        if missing > in_doubt {
            violations.push(Violation::VersionGap {
                missing,
                allowed: in_doubt,
            });
        }
    }

    // 4–7: reads.
    let mut seen_at_version: HashMap<u64, Vec<u8>> = HashMap::new();
    for o in ops.iter().filter(|o| o.kind == OpKind::Read) {
        let Ok(okk) = &o.outcome else { continue };
        let v = okk.version.0;
        // 4: phantom reads — only decidable when nothing is in doubt (an
        // in-doubt write may have committed a version we cannot see).
        if in_doubt == 0 && v != 0 && !versions_seen.contains(&v) {
            violations.push(Violation::PhantomRead { version: v });
        }
        // 5: provenance.
        if let Some(sent) = sent {
            let value = okk.value.as_ref().map(|b| b.to_vec()).unwrap_or_default();
            if !value.is_empty() && !sent.contains(&value) {
                violations.push(Violation::ForeignValue { version: v });
            }
        }
        // 6: read agreement.
        if let Some(bytes) = okk.value.as_ref().map(|b| b.to_vec()) {
            if let Some(prev) = seen_at_version.insert(v, bytes.clone()) {
                if prev != bytes {
                    violations.push(Violation::DivergentRead { version: v });
                }
            }
        }
        // 7: freshness.
        let floor = committed_at
            .iter()
            .filter(|(_, fin)| **fin <= o.started)
            .map(|(ver, _)| *ver)
            .max()
            .unwrap_or(0);
        if v < floor {
            violations.push(Violation::StaleRead { returned: v, floor });
        }
    }

    violations
}

/// Checks invariant 11, the cache tier's staleness bound: every
/// successful read returns a version at least as new as anything
/// acknowledged `lease` or more before the read began.
///
/// With `lease == 0` this floor coincides with invariant 7's, so a
/// validated-mode arm asserts that serving from the attached weak
/// representative is exactly as fresh as a classic quorum read; a lease
/// arm relaxes the floor by precisely its configured TTL and nothing more.
pub fn check_staleness_bound(ops: &[CompletedOp], lease: SimDuration) -> Vec<Violation> {
    let mut violations = Vec::new();
    // Earliest acknowledgement per committed version, as in `check_log`.
    let mut committed_at: BTreeMap<u64, SimTime> = BTreeMap::new();
    for o in ops {
        let acked: Vec<u64> = match (o.kind, &o.outcome) {
            (OpKind::Write, Ok(okk)) => vec![okk.version.0],
            (OpKind::Reconfigure, Ok(okk)) => okk.multi.iter().map(|(_, v)| v.0).collect(),
            _ => Vec::new(),
        };
        for v in acked {
            let fin = committed_at.entry(v).or_insert(o.finished);
            if o.finished < *fin {
                *fin = o.finished;
            }
        }
    }
    for o in ops.iter().filter(|o| o.kind == OpKind::Read) {
        let Ok(okk) = &o.outcome else { continue };
        let floor = committed_at
            .iter()
            .filter(|(_, fin)| **fin + lease <= o.started)
            .map(|(v, _)| *v)
            .max()
            .unwrap_or(0);
        if okk.version.0 < floor {
            violations.push(Violation::StaleCachedRead {
                returned: okk.version.0,
                floor,
            });
        }
    }
    violations
}

/// Checks invariant 8 over a quiesced trial's final state (the first
/// suite's view — multi-suite trials run the same checks per suite via
/// [`check_trial`]).
pub fn check_convergence(run: &TrialRun) -> Vec<Violation> {
    check_convergence_of(&run.ops, &run.sent_payloads, &run.finals, &run.replicas)
}

/// Invariants 8–10 over one suite's completion log and final state.
fn check_convergence_of(
    ops: &[CompletedOp],
    sent: &HashSet<Vec<u8>>,
    finals: &[Option<(wv_storage::Version, Vec<u8>)>],
    replicas: &[Option<(wv_storage::Version, Vec<u8>)>],
) -> Vec<Violation> {
    let mut violations = Vec::new();
    let max_acked = ops
        .iter()
        .filter_map(|o| match (o.kind, &o.outcome) {
            (OpKind::Write, Ok(okk)) => Some(okk.version.0),
            // A committed reconfiguration consumed the data version its
            // re-publication bump reports via `multi`.
            (OpKind::Reconfigure, Ok(okk)) => okk.multi.iter().map(|(_, v)| v.0).max(),
            _ => None,
        })
        .max()
        .unwrap_or(0);
    for (client, outcome) in finals.iter().enumerate() {
        match outcome {
            Some((v, _)) => {
                if v.0 < max_acked {
                    violations.push(Violation::MissedAckedWrite {
                        client,
                        final_version: v.0,
                        max_acked,
                    });
                }
            }
            None => violations.push(Violation::PostHealUnavailable { client }),
        }
    }
    let states: Vec<&(wv_storage::Version, Vec<u8>)> = finals.iter().flatten().collect();
    if states.windows(2).any(|p| p[0] != p[1]) {
        violations.push(Violation::FinalStateDivergence);
    }
    let mut replica_at: HashMap<u64, &Vec<u8>> = HashMap::new();
    for state in replicas.iter().flatten() {
        let (v, bytes) = state;
        if let Some(prev) = replica_at.insert(v.0, bytes) {
            if prev != bytes {
                violations.push(Violation::ReplicaDivergence { version: v.0 });
            }
        }
    }
    // 9 + 10: repair may only move committed state between replicas. Any
    // bytes a replica holds must have been sent by some client, and its
    // version must be explicable by acked plus in-doubt writes — only an
    // in-doubt write can commit a version the log never acknowledged, so
    // `max_acked + in_doubt` bounds every legitimate replica.
    let in_doubt = ops
        .iter()
        .filter(|o| {
            matches!(o.kind, OpKind::Write | OpKind::Reconfigure)
                && matches!(o.outcome, Err(OpError::Indeterminate))
        })
        .count() as u64;
    let bound = max_acked + in_doubt;
    for (site, state) in replicas.iter().enumerate() {
        let Some((v, bytes)) = state else { continue };
        if !bytes.is_empty() && !sent.contains(bytes) {
            violations.push(Violation::ReplicaForeignValue { site, version: v.0 });
        }
        if v.0 > bound {
            violations.push(Violation::ReplicaBeyondCommit {
                site,
                version: v.0,
                bound,
            });
        }
    }
    violations
}

/// One suite's completion log: plain operations filtered by suite,
/// committed cross-suite transactions exploded into synthetic per-suite
/// writes (each branch at the version it installed), and in-doubt
/// transactions surfaced as one synthetic in-doubt write per touched
/// suite (any branch may have committed without the client learning so).
/// Definitely-aborted transactions consume no version anywhere and are
/// dropped; invariant 13 separately proves their payloads never surface.
fn suite_log(run: &TrialRun, suite: ObjectId) -> Vec<CompletedOp> {
    let mut out: Vec<CompletedOp> = Vec::new();
    for o in &run.ops {
        if o.kind == OpKind::Transaction {
            if let Ok(okk) = &o.outcome {
                if let Some(&(_, v)) = okk.multi.iter().find(|(s, _)| *s == suite) {
                    let mut w = o.clone();
                    w.kind = OpKind::Write;
                    w.suite = suite;
                    w.outcome = Ok(OpSuccess {
                        version: v,
                        value: None,
                        multi: Vec::new(),
                    });
                    out.push(w);
                }
            }
        } else if o.suite == suite {
            out.push(o.clone());
        }
    }
    for t in &run.txns {
        let in_doubt = matches!(t.outcome, Some(Err(OpError::Indeterminate)) | None);
        if in_doubt && t.suites.contains(&suite) {
            out.push(CompletedOp {
                req: ReqId(0),
                kind: OpKind::Write,
                suite,
                outcome: Err(OpError::Indeterminate),
                started: t.started,
                finished: t.finished,
                attempts: 1,
            });
        }
    }
    out
}

/// Checks invariant 13, cross-suite atomicity: a committed transaction
/// reports a version for every suite it wrote, and a definitely-aborted
/// transaction's payload never surfaces in any suite's reads, final
/// states, or replicas.
pub fn check_cross_suite(run: &TrialRun) -> Vec<Violation> {
    let mut violations = Vec::new();
    for t in &run.txns {
        match &t.outcome {
            Some(Ok(multi)) => {
                let committed: HashSet<u64> = multi.iter().map(|(s, _)| s.0).collect();
                for s in &t.suites {
                    if !committed.contains(&s.0) {
                        violations.push(Violation::CrossSuitePartialCommit { suite: s.0 });
                    }
                }
            }
            // An in-doubt (or never-reported) transaction may have gone
            // either way; the per-suite logs already budget for it.
            Some(Err(OpError::Indeterminate)) | None => {}
            Some(Err(_)) => {
                // Definitely aborted: payload tags are unique per
                // schedule, so this payload appearing anywhere means a
                // branch committed while its sibling aborted.
                for (idx, suite) in run.suites.iter().enumerate() {
                    let in_reads = run.ops.iter().any(|o| {
                        o.kind == OpKind::Read
                            && o.suite == *suite
                            && matches!(
                                &o.outcome,
                                Ok(okk) if okk.value.as_deref() == Some(t.payload.as_slice())
                            )
                    });
                    let in_finals = run
                        .suite_finals
                        .get(idx)
                        .is_some_and(|f| f.iter().flatten().any(|(_, b)| *b == t.payload));
                    let in_replicas = run
                        .suite_replicas
                        .get(idx)
                        .is_some_and(|r| r.iter().flatten().any(|(_, b)| *b == t.payload));
                    if in_reads || in_finals || in_replicas {
                        violations.push(Violation::CrossSuiteAbortLeak { suite: suite.0 });
                    }
                }
            }
        }
    }
    violations
}

/// Checks invariant 12, "no poisoned read", from the trial's server-side
/// tripwire counters. Cheap and unconditional: both counters are zero by
/// construction on clean disks, so running it everywhere costs nothing
/// and catches a recovery-path regression wherever it surfaces.
pub fn check_no_poison(run: &TrialRun) -> Vec<Violation> {
    let mut violations = Vec::new();
    if run.coverage.poison_escapes > 0 {
        violations.push(Violation::PoisonEscaped {
            count: run.coverage.poison_escapes,
        });
    }
    if run.coverage.served_while_quarantined > 0 {
        violations.push(Violation::QuarantineServed {
            count: run.coverage.served_while_quarantined,
        });
    }
    violations
}

/// Runs every applicable check over a finished trial.
///
/// Single-suite trials (and hand-built runs that never fill the suite
/// dimension) judge the flat log exactly as before. Multi-suite trials
/// partition the evidence by suite — versions are per-suite counters —
/// run invariants 1–11 over each partition, and add the cross-suite
/// atomicity check (13).
///
/// A run that failed to quiesce yields [`Violation::NoQuiesce`] and skips
/// the convergence checks (there is no settled final state to judge).
pub fn check_trial(run: &TrialRun, strict: bool) -> Vec<Violation> {
    if run.suites.len() <= 1 && run.txns.is_empty() {
        let mut violations = check_log(&run.ops, Some(&run.sent_payloads), strict);
        if let Some(lease) = run.cache_lease {
            violations.extend(check_staleness_bound(&run.ops, lease));
        }
        violations.extend(check_no_poison(run));
        if run.quiesced {
            violations.extend(check_convergence(run));
        } else {
            violations.push(Violation::NoQuiesce);
        }
        return violations;
    }
    let mut violations = Vec::new();
    for (idx, &suite) in run.suites.iter().enumerate() {
        let log = suite_log(run, suite);
        violations.extend(check_log(&log, Some(&run.sent_payloads), strict));
        if let Some(lease) = run.cache_lease {
            violations.extend(check_staleness_bound(&log, lease));
        }
        if run.quiesced {
            let empty = Vec::new();
            violations.extend(check_convergence_of(
                &log,
                &run.sent_payloads,
                run.suite_finals.get(idx).unwrap_or(&empty),
                run.suite_replicas.get(idx).unwrap_or(&empty),
            ));
        }
    }
    violations.extend(check_no_poison(run));
    violations.extend(check_cross_suite(run));
    if !run.quiesced {
        violations.push(Violation::NoQuiesce);
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use wv_core::client::OpSuccess;
    use wv_core::msg::ReqId;
    use wv_storage::{ObjectId, Version};

    fn write_ok(version: u64, started_ms: u64, finished_ms: u64) -> CompletedOp {
        CompletedOp {
            req: ReqId(version),
            kind: OpKind::Write,
            suite: ObjectId(7),
            outcome: Ok(OpSuccess {
                version: Version(version),
                value: None,
                multi: Vec::new(),
            }),
            started: SimTime::from_millis(started_ms),
            finished: SimTime::from_millis(finished_ms),
            attempts: 1,
        }
    }

    fn write_in_doubt(started_ms: u64, finished_ms: u64) -> CompletedOp {
        CompletedOp {
            req: ReqId(999),
            kind: OpKind::Write,
            suite: ObjectId(7),
            outcome: Err(OpError::Indeterminate),
            started: SimTime::from_millis(started_ms),
            finished: SimTime::from_millis(finished_ms),
            attempts: 3,
        }
    }

    fn read_ok(version: u64, value: &[u8], started_ms: u64, finished_ms: u64) -> CompletedOp {
        CompletedOp {
            req: ReqId(10_000 + started_ms),
            kind: OpKind::Read,
            suite: ObjectId(7),
            outcome: Ok(OpSuccess {
                version: Version(version),
                value: Some(Bytes::from(value.to_vec())),
                multi: Vec::new(),
            }),
            started: SimTime::from_millis(started_ms),
            finished: SimTime::from_millis(finished_ms),
            attempts: 1,
        }
    }

    #[test]
    fn a_clean_history_passes() {
        let ops = vec![
            write_ok(1, 0, 100),
            write_ok(2, 150, 250),
            read_ok(2, b"x", 300, 400),
            read_ok(2, b"x", 300, 420),
        ];
        let mut sent = HashSet::new();
        sent.insert(b"x".to_vec());
        assert!(check_log(&ops, Some(&sent), true).is_empty());
    }

    #[test]
    fn duplicate_versions_are_flagged() {
        let ops = vec![write_ok(1, 0, 100), write_ok(1, 150, 250)];
        let v = check_log(&ops, None, false);
        assert!(v.contains(&Violation::DuplicateVersion { version: 1 }));
    }

    #[test]
    fn real_time_order_inversion_is_flagged() {
        // v1 starts (300) strictly after v2 finished (250): inverted.
        let ops = vec![write_ok(2, 150, 250), write_ok(1, 300, 400)];
        let v = check_log(&ops, None, false);
        assert!(v
            .iter()
            .any(|x| matches!(x, Violation::VersionOrderInversion { .. })));
    }

    #[test]
    fn overlapping_writes_may_commit_out_of_completion_order_when_lossy() {
        // v1's ack was delayed past v2's completion even though both
        // overlap. Legal in lossy mode, flagged in strict mode.
        let ops = vec![write_ok(2, 0, 100), write_ok(1, 10, 500)];
        assert!(check_log(&ops, None, false).is_empty());
        assert!(!check_log(&ops, None, true).is_empty());
    }

    #[test]
    fn version_gaps_are_flagged_unless_explained_by_in_doubt_writes() {
        // v1 and v3 committed, v2 missing, nothing in doubt.
        let ops = vec![write_ok(1, 0, 100), write_ok(3, 150, 250)];
        let v = check_log(&ops, None, false);
        assert!(v.contains(&Violation::VersionGap {
            missing: 1,
            allowed: 0
        }));
        // Same history plus one in-doubt write: the gap is explained.
        let ops = vec![
            write_ok(1, 0, 100),
            write_in_doubt(110, 140),
            write_ok(3, 150, 250),
        ];
        assert!(check_log(&ops, None, false).is_empty());
    }

    #[test]
    fn phantom_reads_are_flagged_only_when_nothing_is_in_doubt() {
        let ops = vec![write_ok(1, 0, 100), read_ok(5, b"", 200, 300)];
        let v = check_log(&ops, None, false);
        assert!(v.contains(&Violation::PhantomRead { version: 5 }));
        let ops = vec![
            write_ok(1, 0, 100),
            write_in_doubt(110, 140),
            read_ok(2, b"", 200, 300),
        ];
        assert!(!check_log(&ops, None, false)
            .iter()
            .any(|x| matches!(x, Violation::PhantomRead { .. })));
    }

    #[test]
    fn stale_reads_and_foreign_values_are_flagged() {
        let mut sent = HashSet::new();
        sent.insert(b"good".to_vec());
        let ops = vec![
            write_ok(1, 0, 100),
            write_ok(2, 120, 220),
            // Started at 300, after v2's ack at 220, but returned v1.
            read_ok(1, b"good", 300, 400),
            // Bytes nobody wrote.
            read_ok(2, b"evil", 500, 600),
        ];
        let v = check_log(&ops, Some(&sent), true);
        assert!(v.contains(&Violation::StaleRead {
            returned: 1,
            floor: 2
        }));
        assert!(v.contains(&Violation::ForeignValue { version: 2 }));
    }

    #[test]
    fn divergent_reads_are_flagged() {
        let mut sent = HashSet::new();
        sent.insert(b"a".to_vec());
        sent.insert(b"b".to_vec());
        let ops = vec![
            write_ok(1, 0, 100),
            read_ok(1, b"a", 200, 300),
            read_ok(1, b"b", 200, 320),
        ];
        let v = check_log(&ops, Some(&sent), true);
        assert!(v.contains(&Violation::DivergentRead { version: 1 }));
    }

    #[test]
    fn the_staleness_bound_tracks_the_lease() {
        // A write acked at 100ms; a read starting at 150ms returns v0.
        let ops = vec![write_ok(1, 0, 100), read_ok(0, b"", 150, 160)];
        // Zero bound (validated mode): flagged — same floor as invariant 7.
        let v = check_staleness_bound(&ops, SimDuration::ZERO);
        assert!(v.contains(&Violation::StaleCachedRead {
            returned: 0,
            floor: 1
        }));
        // A 100ms lease forgives a read inside the bound…
        assert!(check_staleness_bound(&ops, SimDuration::from_millis(100)).is_empty());
        // …but not one starting past acknowledgement + lease.
        let ops = vec![write_ok(1, 0, 100), read_ok(0, b"", 201, 210)];
        let v = check_staleness_bound(&ops, SimDuration::from_millis(100));
        assert_eq!(
            v,
            vec![Violation::StaleCachedRead {
                returned: 0,
                floor: 1
            }]
        );
    }

    /// A quiesced run whose single client acked the given ops, read back
    /// `final_state`, and left the given per-server replicas behind.
    fn quiet_run(
        ops: Vec<CompletedOp>,
        sent: &[&[u8]],
        final_state: (u64, &[u8]),
        replicas: Vec<Option<(u64, &[u8])>>,
    ) -> crate::exec::TrialRun {
        let finals = vec![Some((Version(final_state.0), final_state.1.to_vec()))];
        let replicas: Vec<Option<(Version, Vec<u8>)>> = replicas
            .into_iter()
            .map(|r| r.map(|(v, b)| (Version(v), b.to_vec())))
            .collect();
        crate::exec::TrialRun {
            seed: 1,
            ops,
            sent_payloads: sent.iter().map(|b| b.to_vec()).collect(),
            suites: vec![ObjectId(7)],
            suite_finals: vec![finals.clone()],
            suite_replicas: vec![replicas.clone()],
            txns: Vec::new(),
            finals,
            replicas,
            quiesced: true,
            coverage: crate::exec::TrialCoverage::default(),
            net: Default::default(),
            cache_lease: None,
        }
    }

    #[test]
    fn replicas_holding_unsent_bytes_are_flagged_as_resurrected_data() {
        let run = quiet_run(
            vec![write_ok(1, 0, 100)],
            &[b"a"],
            (1, b"a"),
            vec![Some((1, b"a")), Some((1, b"forged"))],
        );
        let v = check_convergence(&run);
        assert!(v.contains(&Violation::ReplicaForeignValue {
            site: 1,
            version: 1
        }));
        // Replica 0's bytes were legitimately written: only one flag.
        assert_eq!(
            v.iter()
                .filter(|x| matches!(x, Violation::ReplicaForeignValue { .. }))
                .count(),
            1
        );
    }

    #[test]
    fn replicas_beyond_every_explicable_version_are_flagged() {
        // One acked write and nothing in doubt: no replica may sit past v1.
        let run = quiet_run(
            vec![write_ok(1, 0, 100)],
            &[b"a"],
            (1, b"a"),
            vec![Some((3, b"a")), Some((1, b"a"))],
        );
        let v = check_convergence(&run);
        assert!(v.contains(&Violation::ReplicaBeyondCommit {
            site: 0,
            version: 3,
            bound: 1
        }));
    }

    #[test]
    fn in_doubt_writes_extend_the_replica_version_bound() {
        // The in-doubt write may have committed v2, so a replica at v2
        // holding its payload is legitimate — repair copying it is fine.
        let run = quiet_run(
            vec![write_ok(1, 0, 100), write_in_doubt(150, 400)],
            &[b"a", b"maybe"],
            (2, b"maybe"),
            vec![Some((2, b"maybe")), Some((2, b"maybe"))],
        );
        assert!(check_convergence(&run).is_empty());
    }

    #[test]
    fn empty_and_unwritten_replicas_are_not_resurrections() {
        // A weak or wiped replica at v0 with empty bytes is clean state,
        // not fabricated data.
        let run = quiet_run(
            vec![write_ok(1, 0, 100)],
            &[b"a"],
            (1, b"a"),
            vec![Some((1, b"a")), Some((0, b""))],
        );
        assert!(check_convergence(&run).is_empty());
    }

    #[test]
    fn tripwire_counters_become_poison_violations() {
        let mut run = quiet_run(vec![write_ok(1, 0, 100)], &[b"a"], (1, b"a"), vec![]);
        assert!(check_no_poison(&run).is_empty());
        run.coverage.poison_escapes = 2;
        run.coverage.served_while_quarantined = 3;
        let v = check_no_poison(&run);
        assert!(v.contains(&Violation::PoisonEscaped { count: 2 }));
        assert!(v.contains(&Violation::QuarantineServed { count: 3 }));
        // And check_trial surfaces them alongside everything else.
        assert!(check_trial(&run, false).contains(&Violation::PoisonEscaped { count: 2 }));
    }

    fn write_ok_in(suite: u64, version: u64, started_ms: u64, finished_ms: u64) -> CompletedOp {
        let mut o = write_ok(version, started_ms, finished_ms);
        o.suite = ObjectId(suite);
        o
    }

    fn read_ok_in(
        suite: u64,
        version: u64,
        value: &[u8],
        started_ms: u64,
        finished_ms: u64,
    ) -> CompletedOp {
        let mut o = read_ok(version, value, started_ms, finished_ms);
        o.suite = ObjectId(suite);
        o
    }

    /// A committed cross-suite transaction's completion record: `multi`
    /// lists the `(suite, version)` each branch installed.
    fn txn_op_ok(multi: &[(u64, u64)], started_ms: u64, finished_ms: u64) -> CompletedOp {
        CompletedOp {
            req: ReqId(77),
            kind: OpKind::Transaction,
            suite: ObjectId(multi[0].0),
            outcome: Ok(OpSuccess {
                version: Version(multi[0].1),
                value: None,
                multi: multi
                    .iter()
                    .map(|&(s, v)| (ObjectId(s), Version(v)))
                    .collect(),
            }),
            started: SimTime::from_millis(started_ms),
            finished: SimTime::from_millis(finished_ms),
            attempts: 1,
        }
    }

    /// A quiesced two-suite run (suites 1 and 2, one client, one server).
    fn multi_run(
        ops: Vec<CompletedOp>,
        sent: &[&[u8]],
        txns: Vec<crate::exec::TxnOutcome>,
        suite_finals: Vec<Option<(u64, &[u8])>>,
        suite_replicas: Vec<Option<(u64, &[u8])>>,
    ) -> crate::exec::TrialRun {
        let conv = |v: Vec<Option<(u64, &[u8])>>| -> Vec<Vec<crate::exec::FinalState>> {
            v.into_iter()
                .map(|r| vec![r.map(|(v, b)| (Version(v), b.to_vec()))])
                .collect()
        };
        let suite_finals = conv(suite_finals);
        let suite_replicas = conv(suite_replicas);
        crate::exec::TrialRun {
            seed: 1,
            ops,
            sent_payloads: sent.iter().map(|b| b.to_vec()).collect(),
            suites: vec![ObjectId(1), ObjectId(2)],
            finals: suite_finals.first().cloned().unwrap_or_default(),
            replicas: suite_replicas.first().cloned().unwrap_or_default(),
            suite_finals,
            suite_replicas,
            txns,
            quiesced: true,
            coverage: crate::exec::TrialCoverage::default(),
            net: Default::default(),
            cache_lease: None,
        }
    }

    fn txn(
        payload: &[u8],
        suites: &[u64],
        outcome: Option<Result<Vec<(u64, u64)>, OpError>>,
        started_ms: u64,
        finished_ms: u64,
    ) -> crate::exec::TxnOutcome {
        crate::exec::TxnOutcome {
            payload: payload.to_vec(),
            suites: suites.iter().map(|&s| ObjectId(s)).collect(),
            started: SimTime::from_millis(started_ms),
            finished: SimTime::from_millis(finished_ms),
            outcome: outcome.map(|r| {
                r.map(|multi| {
                    multi
                        .into_iter()
                        .map(|(s, v)| (ObjectId(s), Version(v)))
                        .collect()
                })
            }),
        }
    }

    #[test]
    fn a_clean_multi_suite_trial_passes_every_per_suite_check() {
        // Each suite commits v1 on its own, then one cross-suite txn
        // installs v2 in both; a later read of suite 1 sees it.
        let ops = vec![
            write_ok_in(1, 1, 0, 100),
            write_ok_in(2, 1, 0, 100),
            txn_op_ok(&[(1, 2), (2, 2)], 200, 300),
            read_ok_in(1, 2, b"t", 400, 500),
        ];
        let run = multi_run(
            ops,
            &[b"a", b"b", b"t"],
            vec![txn(b"t", &[1, 2], Some(Ok(vec![(1, 2), (2, 2)])), 200, 300)],
            vec![Some((2, b"t")), Some((2, b"t"))],
            vec![Some((2, b"t")), Some((2, b"t"))],
        );
        assert_eq!(check_trial(&run, true), Vec::new());
    }

    #[test]
    fn a_partial_cross_suite_commit_is_flagged() {
        // The txn claims success but reports no version for suite 2.
        let run = multi_run(
            vec![txn_op_ok(&[(1, 1)], 0, 100)],
            &[b"t"],
            vec![txn(b"t", &[1, 2], Some(Ok(vec![(1, 1)])), 0, 100)],
            vec![Some((1, b"t")), None],
            vec![Some((1, b"t")), None],
        );
        let v = check_cross_suite(&run);
        assert!(v.contains(&Violation::CrossSuitePartialCommit { suite: 2 }));
    }

    #[test]
    fn an_aborted_txn_payload_surfacing_in_a_sibling_suite_is_flagged() {
        // The txn definitely aborted, yet suite 2's replica holds its
        // payload: one branch committed while the other rolled back.
        let run = multi_run(
            vec![write_ok_in(2, 1, 0, 100)],
            &[b"b", b"t"],
            vec![txn(b"t", &[1, 2], Some(Err(OpError::Conflict)), 200, 300)],
            vec![None, Some((1, b"b"))],
            vec![None, Some((1, b"t"))],
        );
        let v = check_trial(&run, false);
        assert!(v.contains(&Violation::CrossSuiteAbortLeak { suite: 2 }));
        // Suite 1 stayed clean of the payload: exactly one leak flag.
        assert_eq!(
            v.iter()
                .filter(|x| matches!(x, Violation::CrossSuiteAbortLeak { .. }))
                .count(),
            1
        );
    }

    #[test]
    fn an_in_doubt_cross_suite_txn_explains_a_version_gap_in_each_touched_suite() {
        // Both suites committed v1 and v3 with v2 missing; the in-doubt
        // txn spanning both may have installed each v2.
        let ops = vec![
            write_ok_in(1, 1, 0, 100),
            write_ok_in(2, 1, 0, 100),
            write_ok_in(1, 3, 400, 500),
            write_ok_in(2, 3, 400, 500),
        ];
        let run = multi_run(
            ops,
            &[b"a", b"b", b"c", b"d", b"t"],
            vec![txn(
                b"t",
                &[1, 2],
                Some(Err(OpError::Indeterminate)),
                200,
                300,
            )],
            vec![Some((3, b"c")), Some((3, b"d"))],
            vec![Some((3, b"c")), Some((3, b"d"))],
        );
        assert_eq!(check_trial(&run, true), Vec::new());
        // Without the in-doubt txn the same history has two gaps.
        let mut bare = run.clone();
        bare.txns.clear();
        let v = check_trial(&bare, true);
        assert_eq!(
            v.iter()
                .filter(|x| matches!(x, Violation::VersionGap { .. }))
                .count(),
            2
        );
    }

    #[test]
    fn violations_render_human_readable() {
        let v = Violation::StaleRead {
            returned: 3,
            floor: 5,
        };
        assert_eq!(
            v.to_string(),
            "stale read: returned v3 after v5 was acknowledged"
        );
        assert_eq!(v.tag(), "stale_read");
        let v = Violation::ReplicaForeignValue {
            site: 2,
            version: 4,
        };
        assert_eq!(
            v.to_string(),
            "replica 2 holds bytes nobody wrote at v4 (repair resurrected data)"
        );
        assert_eq!(v.tag(), "replica_foreign_value");
        let v = Violation::ReplicaBeyondCommit {
            site: 1,
            version: 9,
            bound: 7,
        };
        assert_eq!(
            v.to_string(),
            "replica 1 reached v9, beyond anything committed or in doubt (v7)"
        );
        assert_eq!(v.tag(), "replica_beyond_commit");
        let v = Violation::PoisonEscaped { count: 1 };
        assert_eq!(
            v.to_string(),
            "1 corrupt WAL frame(s) passed the checksum and replayed"
        );
        assert_eq!(v.tag(), "poison_escaped");
        let v = Violation::QuarantineServed { count: 4 };
        assert_eq!(
            v.to_string(),
            "a quarantined replica served 4 request(s) instead of refusing"
        );
        assert_eq!(v.tag(), "quarantine_served");
        let v = Violation::CrossSuitePartialCommit { suite: 3 };
        assert_eq!(
            v.to_string(),
            "cross-suite transaction committed without a version in suite 3"
        );
        assert_eq!(v.tag(), "cross_suite_partial_commit");
        let v = Violation::CrossSuiteAbortLeak { suite: 2 };
        assert_eq!(
            v.to_string(),
            "aborted cross-suite transaction's payload surfaced in suite 2"
        );
        assert_eq!(v.tag(), "cross_suite_abort_leak");
    }
}
