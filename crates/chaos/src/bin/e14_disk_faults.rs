//! Regenerates experiment E14 (see DESIGN.md §14): availability and
//! read tail latency under faulty disks, with and without self-healing.
//! Prints the markdown report to stdout and, when a `results/` directory
//! exists in the working tree, mirrors it into `results/e14.md`.
//!
//! `WV_E14_TRIALS` overrides the per-cell trial count (default 12);
//! `WV_TRIAL_THREADS` picks the worker count — the report bytes do not
//! depend on it.

fn main() {
    let report = match std::env::var("WV_E14_TRIALS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
    {
        Some(trials) => wv_chaos::e14::run_with(trials),
        None => wv_chaos::e14::run(),
    };
    print!("{report}");
    if std::path::Path::new("results").is_dir() {
        if let Err(e) = std::fs::write("results/e14.md", &report) {
            wv_sim::vlog::warn("chaos", &format!("could not write results/e14.md: {e}"));
        }
    }
}
