//! Regenerates experiment E9 (see DESIGN.md §9): the chaos campaign.
//! Prints the markdown report to stdout and, when a `results/` directory
//! exists in the working tree, mirrors it into `results/e9.md` and writes
//! the shrunk reproducer to `results/e9_repro.json`.
//!
//! `WV_E9_TRIALS` overrides the healthy-campaign trial count (default
//! 1200); `WV_TRIAL_THREADS` picks the worker count — the report bytes do
//! not depend on it.

fn main() {
    let trials = std::env::var("WV_E9_TRIALS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(1200);
    let out = wv_chaos::report::run(trials);
    print!("{}", out.report);
    if std::path::Path::new("results").is_dir() {
        if let Err(e) = std::fs::write("results/e9.md", &out.report) {
            wv_sim::vlog::warn("chaos", &format!("could not write results/e9.md: {e}"));
        }
        if let Some(artifact) = &out.artifact {
            if let Err(e) = std::fs::write("results/e9_repro.json", artifact) {
                wv_sim::vlog::warn(
                    "chaos",
                    &format!("could not write results/e9_repro.json: {e}"),
                );
            }
        }
    }
}
