//! The fault-schedule DSL: seeded timelines of operations and faults.
//!
//! A [`Schedule`] is a sorted list of [`FaultEvent`]s — client operations,
//! crashes and recoveries, partitions and heals, link-loss bursts, delay
//! spikes, duplication windows, disk faults (torn writes, bit flips, I/O
//! errors, sync stalls), and mid-run reconfigurations — drawn by a pure
//! function of `(cluster shape, generation parameters, seed)`. The
//! executor in [`crate::exec`] replays a schedule against a live harness;
//! because both generation and execution are deterministic, any seed
//! replays its exact failure, and the shrinker can carve events out of a
//! schedule and re-run the remainder.
//!
//! Schedules serialise to a small JSON artifact (see [`Schedule::to_json`])
//! so a shrunk reproducer survives outside the process that found it.

use std::collections::BTreeMap;
use std::collections::HashSet;

use wv_sim::{DetRng, FailureSchedule, SimDuration, SimTime};

use crate::json::{self, Value};

/// Mixed into the schedule seed so generator draws are decorrelated from
/// the harness's own streams (which consume the raw trial seed).
const GEN_SALT: u64 = 0xC4A0_5C4E_D01E_5EED;

/// The shape of the cluster a schedule runs against.
///
/// Servers occupy sites `0..servers`, each holding one vote; clients
/// occupy the next `clients` sites. The quorum sizes are in votes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ClusterSpec {
    /// Number of voting servers (one vote each).
    pub servers: usize,
    /// Number of pure client sites.
    pub clients: usize,
    /// Read quorum size, in votes.
    pub read_quorum: u32,
    /// Write quorum size, in votes.
    pub write_quorum: u32,
    /// Build the harness without the quorum intersection check
    /// (fault-injection only — lets `r + w = N` clusters exist).
    pub unchecked_quorums: bool,
    /// Run the self-healing layer: anti-entropy repair on every server
    /// plus client health tracking/hedging. Never consulted by the
    /// schedule generator, so repair-on and repair-off arms replay the
    /// exact same fault timeline.
    pub repair: bool,
    /// Run every server with WAL group commit: records arriving during a
    /// sync ride the next one in a single durable write. Like `repair`,
    /// never consulted by the schedule generator, so batched and
    /// unbatched arms replay the same fault timeline.
    pub group_commit: bool,
    /// Attach a validated-mode weak representative (the client cache
    /// tier) to every client. Like the other arm flags, never consulted
    /// by the schedule generator, so cached and uncached arms replay the
    /// same fault timeline.
    pub cache_tier: bool,
    /// Apply the schedule's disk-fault events (torn writes, bit flips,
    /// I/O errors, sync stalls). Like the other arm flags, never
    /// consulted by the schedule generator — every schedule *carries*
    /// the disk-fault timeline; this flag decides whether the executor
    /// injects it, so faulty-disk and clean-disk arms replay the same
    /// byte-identical schedule.
    pub disk_faults: bool,
    /// Number of disjoint suites hosted on the cluster (at least 1).
    /// Like the other arm flags, never consulted by the schedule
    /// generator: the executor derives each operation's target suite
    /// from fields the schedule already carries, so single-suite and
    /// multi-suite arms replay the exact same fault timeline.
    pub suites: usize,
}

impl ClusterSpec {
    /// A healthy majority-quorum cluster.
    pub fn majority(servers: usize, clients: usize) -> Self {
        let maj = (servers as u32) / 2 + 1;
        ClusterSpec {
            servers,
            clients,
            read_quorum: maj,
            write_quorum: maj,
            unchecked_quorums: false,
            repair: false,
            group_commit: false,
            cache_tier: false,
            disk_faults: false,
            suites: 1,
        }
    }

    /// The same cluster with the self-healing layer switched on.
    pub fn with_repair(mut self) -> Self {
        self.repair = true;
        self
    }

    /// The same cluster with WAL group commit switched on.
    pub fn with_group_commit(mut self) -> Self {
        self.group_commit = true;
        self
    }

    /// The same cluster with the client cache tier switched on.
    pub fn with_cache_tier(mut self) -> Self {
        self.cache_tier = true;
        self
    }

    /// The same cluster with disk-fault injection switched on.
    pub fn with_disk_faults(mut self) -> Self {
        self.disk_faults = true;
        self
    }

    /// The same cluster hosting `suites` disjoint suites (minimum 1).
    pub fn with_suites(mut self, suites: usize) -> Self {
        self.suites = suites.max(1);
        self
    }

    /// A deliberately broken cluster: `read_quorum + write_quorum ==
    /// servers`, so quorums need not intersect and stale reads become
    /// possible once faults steer readers and writers apart.
    ///
    /// # Panics
    ///
    /// Panics if `read_quorum` leaves no room for a positive write quorum.
    pub fn broken(servers: usize, clients: usize, read_quorum: u32) -> Self {
        assert!(
            read_quorum >= 1 && (read_quorum as usize) < servers,
            "need 1 <= r < N for a broken r + w = N split"
        );
        ClusterSpec {
            servers,
            clients,
            read_quorum,
            write_quorum: servers as u32 - read_quorum,
            unchecked_quorums: true,
            repair: false,
            group_commit: false,
            cache_tier: false,
            disk_faults: false,
            suites: 1,
        }
    }

    /// Total sites (servers then clients).
    pub fn total_sites(&self) -> usize {
        self.servers + self.clients
    }
}

/// One timed entry in a chaos schedule.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultEvent {
    /// When the event applies (virtual milliseconds from trial start).
    pub at_ms: u64,
    /// What happens.
    pub kind: EventKind,
}

/// What a [`FaultEvent`] does.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// Client `client` starts a write; `payload` tags the bytes written so
    /// the oracle can trace read values back to writes even after the
    /// shrinker drops neighbouring events.
    Write {
        /// Client index (0-based among clients).
        client: usize,
        /// Payload tag, unique within the schedule.
        payload: u64,
    },
    /// Client `client` starts a read.
    Read {
        /// Client index.
        client: usize,
    },
    /// Server `site` crashes (volatile state lost).
    Crash {
        /// Server index.
        site: usize,
    },
    /// Server `site` recovers.
    Recover {
        /// Server index.
        site: usize,
    },
    /// The network splits: `group_a` (site indices over servers *and*
    /// clients) on one side, everyone else on the other.
    Partition {
        /// Sites in the first group.
        group_a: Vec<usize>,
    },
    /// All partitions heal.
    Heal,
    /// Every cross-site link starts dropping messages with probability
    /// `permille / 1000` (0 closes the burst).
    LossBurst {
        /// Loss probability in thousandths.
        permille: u32,
    },
    /// Every cross-site message pays `extra_ms` on top of its sampled
    /// latency (0 clears the spike).
    DelaySpike {
        /// Extra one-way delay in milliseconds.
        extra_ms: u64,
    },
    /// Delivered messages are duplicated with probability `permille /
    /// 1000` (0 ends the window).
    Duplication {
        /// Duplication probability in thousandths.
        permille: u32,
    },
    /// Client `client` starts an online reconfiguration to the given
    /// quorum sizes (votes stay one-per-server).
    Reconfigure {
        /// Client index.
        client: usize,
        /// New read quorum.
        read_quorum: u32,
        /// New write quorum.
        write_quorum: u32,
    },
    /// Arm a torn write on server `site`'s disk: its next crash persists
    /// only a prefix of the unsynced WAL tail. The generator emits this
    /// at the same instant as (and just before) a crash of the site.
    TornWrite {
        /// Server index.
        site: usize,
    },
    /// Arm a bit flip on server `site`'s disk: its next crash corrupts
    /// one durable WAL byte, so recovery detects interior corruption and
    /// quarantines the replica. At most one per schedule — quarantine
    /// surrenders the replica's votes, and vote-safety reasoning assumes
    /// a single simultaneously-degraded disk.
    BitFlip {
        /// Server index.
        site: usize,
    },
    /// Server `site`'s next `count` transaction begins fail with a
    /// transient I/O error (prepares refuse, locks release).
    IoError {
        /// Server index.
        site: usize,
        /// How many begins fail.
        count: u32,
    },
    /// Server `site`'s disk stalls for `ms`: prepares refuse until the
    /// deadline passes (reads keep serving).
    DiskStall {
        /// Server index.
        site: usize,
        /// Stall length in milliseconds.
        ms: u64,
    },
}

impl EventKind {
    /// A short stable name, used by coverage counters and the JSON
    /// artifact.
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::Write { .. } => "write",
            EventKind::Read { .. } => "read",
            EventKind::Crash { .. } => "crash",
            EventKind::Recover { .. } => "recover",
            EventKind::Partition { .. } => "partition",
            EventKind::Heal => "heal",
            EventKind::LossBurst { .. } => "loss_burst",
            EventKind::DelaySpike { .. } => "delay_spike",
            EventKind::Duplication { .. } => "duplication",
            EventKind::Reconfigure { .. } => "reconfigure",
            EventKind::TornWrite { .. } => "torn_write",
            EventKind::BitFlip { .. } => "bit_flip",
            EventKind::IoError { .. } => "io_error",
            EventKind::DiskStall { .. } => "disk_stall",
        }
    }
}

/// A complete fault schedule: the trial seed (which also drives the
/// harness) plus the timed events.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Schedule {
    /// Seed for the harness and all execution randomness.
    pub seed: u64,
    /// Events in non-decreasing `at_ms` order.
    pub events: Vec<FaultEvent>,
}

impl Schedule {
    /// Virtual time of the last event (ms), or 0 for an empty schedule.
    pub fn duration_ms(&self) -> u64 {
        self.events.last().map_or(0, |e| e.at_ms)
    }
}

/// Tunables for the schedule generator.
#[derive(Clone, Copy, Debug)]
pub struct ScheduleParams {
    /// Number of generator draws (events before any mttf overlay).
    pub steps: usize,
    /// Maximum spacing between consecutive draws, in milliseconds.
    pub max_gap_ms: u64,
    /// Allow mid-run reconfiguration events.
    pub reconfigure: bool,
    /// Sometimes overlay an mttf/mttr crash-recovery process (drawn via
    /// [`FailureSchedule::mttf_mttr`]) on top of the discrete events.
    pub mttf_overlay: bool,
    /// Draw disk-fault events: torn writes and bit flips riding crashes,
    /// plus transient I/O errors and sync stalls. Whether the executor
    /// *applies* them is the [`ClusterSpec::disk_faults`] arm flag; this
    /// knob controls generation, so it must agree across compared arms.
    pub disk_faults: bool,
}

impl Default for ScheduleParams {
    fn default() -> Self {
        ScheduleParams {
            steps: 70,
            max_gap_ms: 400,
            reconfigure: true,
            mttf_overlay: true,
            disk_faults: true,
        }
    }
}

/// Draws a schedule: a pure function of `(spec, params, seed)`.
///
/// Operations dominate; crashes, recoveries, partitions, heals, network
/// dials (loss/delay/duplication bursts with scheduled ends), and — when
/// enabled — disk faults, reconfigurations, and an mttf/mttr outage
/// overlay fill the rest. Every generated reconfiguration is *legal*
/// (`r + w = N + 1`); the broken configurations the shrinker demo hunts
/// come from the [`ClusterSpec`], not from events.
///
/// Disk damage is latent until a crash materialises it, so torn writes
/// and bit flips ride crash draws: they land at the same instant as (and
/// sort just before) the crash they damage. At most one bit flip is armed
/// per schedule — a flip quarantines its replica on recovery, and the
/// vote-safety argument assumes one simultaneously-degraded disk.
pub fn generate(spec: &ClusterSpec, params: &ScheduleParams, seed: u64) -> Schedule {
    let mut rng = DetRng::new(seed ^ GEN_SALT);
    let mut events: Vec<FaultEvent> = Vec::with_capacity(params.steps + 8);
    let mut t_ms = 0u64;
    let mut payload = 0u64;
    let mut down: HashSet<usize> = HashSet::new();
    let mut flip_armed = false;
    let total = spec.total_sites();

    for _ in 0..params.steps {
        t_ms += 1 + rng.below(params.max_gap_ms.max(1));
        let draw = rng.below(100);
        let kind = match draw {
            // Operations dominate the schedule.
            0..=49 => {
                let client = rng.below(spec.clients.max(1) as u64) as usize;
                if rng.chance(0.45) {
                    payload += 1;
                    EventKind::Write { client, payload }
                } else {
                    EventKind::Read { client }
                }
            }
            50..=61 => {
                let up: Vec<usize> = (0..spec.servers).filter(|s| !down.contains(s)).collect();
                match rng.choose(&up) {
                    Some(&site) => {
                        down.insert(site);
                        if params.disk_faults {
                            // Both chances are drawn unconditionally so
                            // the draw stream does not depend on whether
                            // a flip was already armed.
                            let flip = rng.chance(0.2);
                            let tear = rng.chance(0.35);
                            if flip && !flip_armed {
                                flip_armed = true;
                                events.push(FaultEvent {
                                    at_ms: t_ms,
                                    kind: EventKind::BitFlip { site },
                                });
                            } else if tear {
                                events.push(FaultEvent {
                                    at_ms: t_ms,
                                    kind: EventKind::TornWrite { site },
                                });
                            }
                        }
                        EventKind::Crash { site }
                    }
                    None => EventKind::Heal,
                }
            }
            62..=71 => {
                let candidates: Vec<usize> = {
                    let mut v: Vec<usize> = down.iter().copied().collect();
                    v.sort_unstable();
                    v
                };
                match rng.choose(&candidates) {
                    Some(&site) => {
                        down.remove(&site);
                        EventKind::Recover { site }
                    }
                    None => EventKind::Heal,
                }
            }
            72..=79 => {
                let group_a: Vec<usize> = (0..total).filter(|_| rng.chance(0.5)).collect();
                EventKind::Partition { group_a }
            }
            80..=85 => EventKind::Heal,
            86..=93 => {
                // A network dial: open a burst now and schedule its end.
                let end_ms = t_ms + 300 + rng.below(2_500);
                match rng.below(3) {
                    0 => {
                        let permille = 50 + rng.below(250) as u32;
                        events.push(FaultEvent {
                            at_ms: end_ms,
                            kind: EventKind::LossBurst { permille: 0 },
                        });
                        EventKind::LossBurst { permille }
                    }
                    1 => {
                        let extra_ms = 100 + rng.below(400);
                        events.push(FaultEvent {
                            at_ms: end_ms,
                            kind: EventKind::DelaySpike { extra_ms: 0 },
                        });
                        EventKind::DelaySpike { extra_ms }
                    }
                    _ => {
                        let permille = 100 + rng.below(400) as u32;
                        events.push(FaultEvent {
                            at_ms: end_ms,
                            kind: EventKind::Duplication { permille: 0 },
                        });
                        EventKind::Duplication { permille }
                    }
                }
            }
            94..=96 => {
                // Transient disk trouble on a live server: a short run of
                // failed begins or a sync stall. Neither damages durable
                // bytes, so neither needs a crash to materialise.
                if params.disk_faults {
                    let site = rng.below(spec.servers as u64) as usize;
                    if rng.chance(0.5) {
                        EventKind::IoError {
                            site,
                            count: 1 + rng.below(3) as u32,
                        }
                    } else {
                        EventKind::DiskStall {
                            site,
                            ms: 200 + rng.below(1_800),
                        }
                    }
                } else {
                    let client = rng.below(spec.clients.max(1) as u64) as usize;
                    EventKind::Read { client }
                }
            }
            _ => {
                if params.reconfigure {
                    let client = rng.below(spec.clients.max(1) as u64) as usize;
                    let n = spec.servers as u32;
                    // Always legal (r + w = N + 1), and always with a
                    // write *majority*: concurrent writers serialise
                    // through overlapping write quorums, so schedules
                    // stay within the protocol's supported envelope
                    // (read-all/write-one is for single-writer suites).
                    let majority = n / 2 + 1;
                    let write_quorum = majority + rng.below(u64::from(n - majority + 1)) as u32;
                    EventKind::Reconfigure {
                        client,
                        read_quorum: n + 1 - write_quorum,
                        write_quorum,
                    }
                } else {
                    let client = rng.below(spec.clients.max(1) as u64) as usize;
                    EventKind::Read { client }
                }
            }
        };
        events.push(FaultEvent { at_ms: t_ms, kind });
    }

    // Sometimes overlay a continuous crash/recovery process: this is how
    // `FailureSchedule::mttf_mttr` reaches the harness in anger.
    if params.mttf_overlay && rng.chance(1.0 / 3.0) {
        let horizon_ms = t_ms + 2_000;
        let mut overlay_rng = rng.fork_named("mttf-overlay");
        let schedule = FailureSchedule::mttf_mttr(
            spec.servers,
            SimDuration::from_millis(horizon_ms / 2),
            SimDuration::from_millis(horizon_ms / 8),
            SimTime::from_millis(horizon_ms),
            &mut overlay_rng,
        );
        for site in 0..spec.servers {
            for w in schedule.windows(site) {
                events.push(FaultEvent {
                    at_ms: w.from.as_micros() / 1_000,
                    kind: EventKind::Crash { site },
                });
                events.push(FaultEvent {
                    at_ms: w.until.as_micros() / 1_000,
                    kind: EventKind::Recover { site },
                });
            }
        }
    }

    // Stable sort keeps same-instant events in insertion order.
    events.sort_by_key(|e| e.at_ms);
    Schedule { seed, events }
}

impl Schedule {
    /// Serialises the schedule plus its cluster spec into a self-contained
    /// replay artifact (schema `wv-chaos-repro/1`). Deterministic: the
    /// same schedule always produces the same bytes.
    pub fn to_json(&self, spec: &ClusterSpec) -> String {
        let mut root = BTreeMap::new();
        root.insert(
            "schema".to_string(),
            Value::Str("wv-chaos-repro/1".to_string()),
        );
        root.insert("seed".to_string(), Value::Int(self.seed));
        let mut cluster = BTreeMap::new();
        cluster.insert("servers".to_string(), Value::Int(spec.servers as u64));
        cluster.insert("clients".to_string(), Value::Int(spec.clients as u64));
        cluster.insert(
            "read_quorum".to_string(),
            Value::Int(u64::from(spec.read_quorum)),
        );
        cluster.insert(
            "write_quorum".to_string(),
            Value::Int(u64::from(spec.write_quorum)),
        );
        cluster.insert(
            "unchecked_quorums".to_string(),
            Value::Bool(spec.unchecked_quorums),
        );
        cluster.insert("repair".to_string(), Value::Bool(spec.repair));
        cluster.insert("group_commit".to_string(), Value::Bool(spec.group_commit));
        cluster.insert("cache_tier".to_string(), Value::Bool(spec.cache_tier));
        cluster.insert("disk_faults".to_string(), Value::Bool(spec.disk_faults));
        cluster.insert("suites".to_string(), Value::Int(spec.suites as u64));
        root.insert("cluster".to_string(), Value::Object(cluster));
        let events: Vec<Value> = self.events.iter().map(event_to_value).collect();
        root.insert("events".to_string(), Value::Array(events));
        let mut text = Value::Object(root).to_json();
        text.push('\n');
        text
    }

    /// Parses a replay artifact produced by [`Schedule::to_json`].
    pub fn from_json(text: &str) -> Option<(ClusterSpec, Schedule)> {
        let root = json::parse(text)?;
        if root.get("schema")?.as_str()? != "wv-chaos-repro/1" {
            return None;
        }
        let seed = root.get("seed")?.as_int()?;
        let cluster = root.get("cluster")?;
        let spec = ClusterSpec {
            servers: cluster.get("servers")?.as_int()? as usize,
            clients: cluster.get("clients")?.as_int()? as usize,
            read_quorum: cluster.get("read_quorum")?.as_int()? as u32,
            write_quorum: cluster.get("write_quorum")?.as_int()? as u32,
            unchecked_quorums: cluster.get("unchecked_quorums")?.as_bool()?,
            // Absent in pre-repair artifacts: default off for back-compat.
            repair: cluster
                .get("repair")
                .and_then(|v| v.as_bool())
                .unwrap_or(false),
            // Same back-compat rule for pre-group-commit artifacts.
            group_commit: cluster
                .get("group_commit")
                .and_then(|v| v.as_bool())
                .unwrap_or(false),
            // And for pre-cache-tier artifacts.
            cache_tier: cluster
                .get("cache_tier")
                .and_then(|v| v.as_bool())
                .unwrap_or(false),
            // And for pre-disk-fault artifacts.
            disk_faults: cluster
                .get("disk_faults")
                .and_then(|v| v.as_bool())
                .unwrap_or(false),
            // Absent in pre-multi-suite artifacts: the single default
            // suite, so committed reproducers replay unchanged.
            suites: cluster
                .get("suites")
                .and_then(|v| v.as_int())
                .map(|n| (n as usize).max(1))
                .unwrap_or(1),
        };
        let mut events = Vec::new();
        for ev in root.get("events")?.as_array()? {
            events.push(event_from_value(ev)?);
        }
        Some((spec, Schedule { seed, events }))
    }
}

fn event_to_value(e: &FaultEvent) -> Value {
    let mut map = BTreeMap::new();
    map.insert("at_ms".to_string(), Value::Int(e.at_ms));
    map.insert("kind".to_string(), Value::Str(e.kind.name().to_string()));
    match &e.kind {
        EventKind::Write { client, payload } => {
            map.insert("client".to_string(), Value::Int(*client as u64));
            map.insert("payload".to_string(), Value::Int(*payload));
        }
        EventKind::Read { client } => {
            map.insert("client".to_string(), Value::Int(*client as u64));
        }
        EventKind::Crash { site }
        | EventKind::Recover { site }
        | EventKind::TornWrite { site }
        | EventKind::BitFlip { site } => {
            map.insert("site".to_string(), Value::Int(*site as u64));
        }
        EventKind::Partition { group_a } => {
            map.insert(
                "group_a".to_string(),
                Value::Array(group_a.iter().map(|&s| Value::Int(s as u64)).collect()),
            );
        }
        EventKind::Heal => {}
        EventKind::LossBurst { permille } | EventKind::Duplication { permille } => {
            map.insert("permille".to_string(), Value::Int(u64::from(*permille)));
        }
        EventKind::DelaySpike { extra_ms } => {
            map.insert("extra_ms".to_string(), Value::Int(*extra_ms));
        }
        EventKind::Reconfigure {
            client,
            read_quorum,
            write_quorum,
        } => {
            map.insert("client".to_string(), Value::Int(*client as u64));
            map.insert(
                "read_quorum".to_string(),
                Value::Int(u64::from(*read_quorum)),
            );
            map.insert(
                "write_quorum".to_string(),
                Value::Int(u64::from(*write_quorum)),
            );
        }
        EventKind::IoError { site, count } => {
            map.insert("site".to_string(), Value::Int(*site as u64));
            map.insert("count".to_string(), Value::Int(u64::from(*count)));
        }
        EventKind::DiskStall { site, ms } => {
            map.insert("site".to_string(), Value::Int(*site as u64));
            map.insert("ms".to_string(), Value::Int(*ms));
        }
    }
    Value::Object(map)
}

fn event_from_value(v: &Value) -> Option<FaultEvent> {
    let at_ms = v.get("at_ms")?.as_int()?;
    let kind = match v.get("kind")?.as_str()? {
        "write" => EventKind::Write {
            client: v.get("client")?.as_int()? as usize,
            payload: v.get("payload")?.as_int()?,
        },
        "read" => EventKind::Read {
            client: v.get("client")?.as_int()? as usize,
        },
        "crash" => EventKind::Crash {
            site: v.get("site")?.as_int()? as usize,
        },
        "recover" => EventKind::Recover {
            site: v.get("site")?.as_int()? as usize,
        },
        "partition" => EventKind::Partition {
            group_a: v
                .get("group_a")?
                .as_array()?
                .iter()
                .map(|s| s.as_int().map(|n| n as usize))
                .collect::<Option<Vec<_>>>()?,
        },
        "heal" => EventKind::Heal,
        "loss_burst" => EventKind::LossBurst {
            permille: v.get("permille")?.as_int()? as u32,
        },
        "delay_spike" => EventKind::DelaySpike {
            extra_ms: v.get("extra_ms")?.as_int()?,
        },
        "duplication" => EventKind::Duplication {
            permille: v.get("permille")?.as_int()? as u32,
        },
        "reconfigure" => EventKind::Reconfigure {
            client: v.get("client")?.as_int()? as usize,
            read_quorum: v.get("read_quorum")?.as_int()? as u32,
            write_quorum: v.get("write_quorum")?.as_int()? as u32,
        },
        "torn_write" => EventKind::TornWrite {
            site: v.get("site")?.as_int()? as usize,
        },
        "bit_flip" => EventKind::BitFlip {
            site: v.get("site")?.as_int()? as usize,
        },
        "io_error" => EventKind::IoError {
            site: v.get("site")?.as_int()? as usize,
            count: v.get("count")?.as_int()? as u32,
        },
        "disk_stall" => EventKind::DiskStall {
            site: v.get("site")?.as_int()? as usize,
            ms: v.get("ms")?.as_int()?,
        },
        _ => return None,
    };
    Some(FaultEvent { at_ms, kind })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> ClusterSpec {
        ClusterSpec::majority(5, 2)
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate(&spec(), &ScheduleParams::default(), 42);
        let b = generate(&spec(), &ScheduleParams::default(), 42);
        assert_eq!(a, b);
        let c = generate(&spec(), &ScheduleParams::default(), 43);
        assert_ne!(a, c, "different seeds draw different schedules");
    }

    #[test]
    fn events_are_time_sorted_and_indices_in_range() {
        for seed in 0..50u64 {
            let s = generate(&spec(), &ScheduleParams::default(), seed);
            for pair in s.events.windows(2) {
                assert!(pair[0].at_ms <= pair[1].at_ms);
            }
            for e in &s.events {
                match &e.kind {
                    EventKind::Write { client, .. }
                    | EventKind::Read { client }
                    | EventKind::Reconfigure { client, .. } => assert!(*client < 2),
                    EventKind::Crash { site }
                    | EventKind::Recover { site }
                    | EventKind::TornWrite { site }
                    | EventKind::BitFlip { site }
                    | EventKind::IoError { site, .. }
                    | EventKind::DiskStall { site, .. } => assert!(*site < 5),
                    EventKind::Partition { group_a } => {
                        assert!(group_a.iter().all(|&s| s < 7));
                    }
                    _ => {}
                }
            }
        }
    }

    #[test]
    fn payload_tags_are_unique_within_a_schedule() {
        let s = generate(&spec(), &ScheduleParams::default(), 7);
        let payloads: Vec<u64> = s
            .events
            .iter()
            .filter_map(|e| match e.kind {
                EventKind::Write { payload, .. } => Some(payload),
                _ => None,
            })
            .collect();
        let mut dedup = payloads.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), payloads.len());
    }

    #[test]
    fn bursts_always_have_a_scheduled_end() {
        // Every non-zero network dial is followed (eventually) by its
        // zero-valued closer, so no schedule leaves loss on forever.
        for seed in 0..80u64 {
            let s = generate(&spec(), &ScheduleParams::default(), seed);
            let mut loss_open = 0i64;
            let mut delay_open = 0i64;
            let mut dup_open = 0i64;
            for e in &s.events {
                match e.kind {
                    EventKind::LossBurst { permille } => {
                        loss_open += if permille > 0 { 1 } else { -1 }
                    }
                    EventKind::DelaySpike { extra_ms } => {
                        delay_open += if extra_ms > 0 { 1 } else { -1 }
                    }
                    EventKind::Duplication { permille } => {
                        dup_open += if permille > 0 { 1 } else { -1 }
                    }
                    _ => {}
                }
            }
            assert_eq!(loss_open, 0, "seed {seed}: unbalanced loss bursts");
            assert_eq!(delay_open, 0, "seed {seed}: unbalanced delay spikes");
            assert_eq!(dup_open, 0, "seed {seed}: unbalanced duplication");
        }
    }

    #[test]
    fn reconfigurations_are_always_legal() {
        for seed in 0..80u64 {
            let s = generate(&spec(), &ScheduleParams::default(), seed);
            for e in &s.events {
                if let EventKind::Reconfigure {
                    read_quorum,
                    write_quorum,
                    ..
                } = e.kind
                {
                    assert_eq!(read_quorum + write_quorum, 6, "r + w = N + 1");
                }
            }
        }
    }

    #[test]
    fn some_seed_exercises_every_fault_kind() {
        let mut seen: HashSet<&'static str> = HashSet::new();
        for seed in 0..200u64 {
            let s = generate(&spec(), &ScheduleParams::default(), seed);
            for e in &s.events {
                seen.insert(e.kind.name());
            }
        }
        for kind in [
            "write",
            "read",
            "crash",
            "recover",
            "partition",
            "heal",
            "loss_burst",
            "delay_spike",
            "duplication",
            "reconfigure",
            "torn_write",
            "bit_flip",
            "io_error",
            "disk_stall",
        ] {
            assert!(seen.contains(kind), "no seed drew {kind}");
        }
    }

    #[test]
    fn at_most_one_bit_flip_per_schedule() {
        for seed in 0..200u64 {
            let s = generate(&spec(), &ScheduleParams::default(), seed);
            let flips = s
                .events
                .iter()
                .filter(|e| matches!(e.kind, EventKind::BitFlip { .. }))
                .count();
            assert!(flips <= 1, "seed {seed} armed {flips} bit flips");
        }
    }

    #[test]
    fn latent_damage_always_rides_a_crash_of_the_same_site() {
        // A torn write or bit flip is armed at the same instant as the
        // crash that materialises it, and sorts just before it.
        for seed in 0..200u64 {
            let s = generate(&spec(), &ScheduleParams::default(), seed);
            for (i, e) in s.events.iter().enumerate() {
                let (EventKind::TornWrite { site } | EventKind::BitFlip { site }) = e.kind else {
                    continue;
                };
                let crash = s.events[i + 1..]
                    .iter()
                    .take_while(|n| n.at_ms == e.at_ms)
                    .any(|n| n.kind == EventKind::Crash { site });
                assert!(
                    crash,
                    "seed {seed}: damage at {}ms without its crash",
                    e.at_ms
                );
            }
        }
    }

    #[test]
    fn disabling_disk_faults_draws_none() {
        let params = ScheduleParams {
            disk_faults: false,
            ..Default::default()
        };
        for seed in 0..50u64 {
            let s = generate(&spec(), &params, seed);
            assert!(!s.events.iter().any(|e| matches!(
                e.kind,
                EventKind::TornWrite { .. }
                    | EventKind::BitFlip { .. }
                    | EventKind::IoError { .. }
                    | EventKind::DiskStall { .. }
            )));
        }
    }

    #[test]
    fn json_round_trip_preserves_everything() {
        let spec = ClusterSpec::broken(5, 2, 2);
        let s = generate(&spec, &ScheduleParams::default(), 99);
        let text = s.to_json(&spec);
        let (spec2, s2) = Schedule::from_json(&text).expect("parses");
        assert_eq!(spec, spec2);
        assert_eq!(s, s2);
        // And the bytes themselves are stable.
        assert_eq!(text, s2.to_json(&spec2));
    }

    #[test]
    fn the_repair_flag_round_trips_through_json() {
        let spec = ClusterSpec::majority(5, 2).with_repair();
        let s = generate(&spec, &ScheduleParams::default(), 3);
        let (spec2, s2) = Schedule::from_json(&s.to_json(&spec)).expect("parses");
        assert!(spec2.repair);
        assert_eq!(s, s2);
    }

    #[test]
    fn artifacts_without_a_repair_key_replay_with_repair_off() {
        // Replay artifacts written before the self-healing layer omit the
        // key entirely; they must keep parsing, with repair defaulted off.
        let spec = ClusterSpec::majority(3, 1);
        let s = generate(&spec, &ScheduleParams::default(), 7);
        let legacy = s.to_json(&spec).replace(",\"repair\":false", "");
        assert!(!legacy.contains("repair"), "key really was stripped");
        let (spec2, s2) = Schedule::from_json(&legacy).expect("parses");
        assert!(!spec2.repair);
        assert_eq!(s, s2);
    }

    #[test]
    fn the_group_commit_flag_round_trips_through_json() {
        let spec = ClusterSpec::majority(5, 2).with_group_commit();
        let s = generate(&spec, &ScheduleParams::default(), 4);
        let (spec2, s2) = Schedule::from_json(&s.to_json(&spec)).expect("parses");
        assert!(spec2.group_commit);
        assert_eq!(s, s2);
    }

    #[test]
    fn artifacts_without_a_group_commit_key_replay_unbatched() {
        // Replay artifacts written before group commit omit the key; they
        // must keep parsing, with batching defaulted off.
        let spec = ClusterSpec::majority(3, 1);
        let s = generate(&spec, &ScheduleParams::default(), 8);
        let legacy = s.to_json(&spec).replace(",\"group_commit\":false", "");
        assert!(!legacy.contains("group_commit"), "key really was stripped");
        let (spec2, s2) = Schedule::from_json(&legacy).expect("parses");
        assert!(!spec2.group_commit);
        assert_eq!(s, s2);
    }

    #[test]
    fn the_cache_tier_flag_round_trips_through_json() {
        let spec = ClusterSpec::majority(5, 2).with_cache_tier();
        let s = generate(&spec, &ScheduleParams::default(), 4);
        let (spec2, s2) = Schedule::from_json(&s.to_json(&spec)).expect("parses");
        assert!(spec2.cache_tier);
        assert_eq!(s, s2);
    }

    #[test]
    fn artifacts_without_a_cache_tier_key_replay_uncached() {
        // Replay artifacts written before the cache tier omit the key;
        // they must keep parsing, with the tier defaulted off.
        let spec = ClusterSpec::majority(3, 1);
        let s = generate(&spec, &ScheduleParams::default(), 8);
        let legacy = s.to_json(&spec).replace("\"cache_tier\":false,", "");
        assert!(!legacy.contains("cache_tier"), "key really was stripped");
        let (spec2, s2) = Schedule::from_json(&legacy).expect("parses");
        assert!(!spec2.cache_tier);
        assert_eq!(s, s2);
    }

    #[test]
    fn the_disk_faults_flag_round_trips_through_json() {
        let spec = ClusterSpec::majority(5, 2).with_disk_faults();
        let s = generate(&spec, &ScheduleParams::default(), 4);
        let (spec2, s2) = Schedule::from_json(&s.to_json(&spec)).expect("parses");
        assert!(spec2.disk_faults);
        assert_eq!(s, s2);
    }

    #[test]
    fn artifacts_without_a_disk_faults_key_replay_with_clean_disks() {
        // Replay artifacts written before the faulty-disk model omit the
        // key; they must keep parsing, with injection defaulted off.
        let spec = ClusterSpec::majority(3, 1);
        let params = ScheduleParams {
            disk_faults: false,
            ..Default::default()
        };
        let s = generate(&spec, &params, 8);
        let legacy = s.to_json(&spec).replace(",\"disk_faults\":false", "");
        assert!(!legacy.contains("disk_faults"), "key really was stripped");
        let (spec2, s2) = Schedule::from_json(&legacy).expect("parses");
        assert!(!spec2.disk_faults);
        assert_eq!(s, s2);
    }

    #[test]
    fn the_suites_count_round_trips_through_json() {
        let spec = ClusterSpec::majority(5, 2).with_suites(4);
        let s = generate(&spec, &ScheduleParams::default(), 4);
        let (spec2, s2) = Schedule::from_json(&s.to_json(&spec)).expect("parses");
        assert_eq!(spec2.suites, 4);
        assert_eq!(s, s2);
        // And the bytes themselves are stable.
        assert_eq!(s.to_json(&spec), s2.to_json(&spec2));
    }

    #[test]
    fn artifacts_without_a_suites_key_replay_as_the_single_default_suite() {
        // Replay artifacts written before the suite dimension omit the
        // key; they must keep parsing, with exactly one suite.
        let spec = ClusterSpec::majority(3, 1);
        let s = generate(&spec, &ScheduleParams::default(), 8);
        let legacy = s.to_json(&spec).replace(",\"suites\":1", "");
        assert!(!legacy.contains("suites"), "key really was stripped");
        let (spec2, s2) = Schedule::from_json(&legacy).expect("parses");
        assert_eq!(spec2.suites, 1);
        assert_eq!(s, s2);
    }

    #[test]
    fn repair_never_influences_schedule_generation() {
        // Repair-on and repair-off arms must share identical timelines so
        // a campaign can compare them trial for trial.
        let plain = ClusterSpec::majority(5, 2);
        let healing = ClusterSpec::majority(5, 2).with_repair();
        let batched = ClusterSpec::majority(5, 2).with_group_commit();
        let cached = ClusterSpec::majority(5, 2).with_cache_tier();
        let faulty = ClusterSpec::majority(5, 2).with_disk_faults();
        let sharded = ClusterSpec::majority(5, 2).with_suites(8);
        for seed in 0..20 {
            assert_eq!(
                generate(&plain, &ScheduleParams::default(), seed),
                generate(&healing, &ScheduleParams::default(), seed),
            );
            assert_eq!(
                generate(&plain, &ScheduleParams::default(), seed),
                generate(&batched, &ScheduleParams::default(), seed),
            );
            assert_eq!(
                generate(&plain, &ScheduleParams::default(), seed),
                generate(&cached, &ScheduleParams::default(), seed),
            );
            assert_eq!(
                generate(&plain, &ScheduleParams::default(), seed),
                generate(&faulty, &ScheduleParams::default(), seed),
            );
            assert_eq!(
                generate(&plain, &ScheduleParams::default(), seed),
                generate(&sharded, &ScheduleParams::default(), seed),
            );
        }
    }

    #[test]
    fn from_json_rejects_wrong_schema() {
        assert!(Schedule::from_json("{\"schema\":\"other/1\"}").is_none());
        assert!(Schedule::from_json("not json").is_none());
    }

    #[test]
    fn broken_spec_has_non_intersecting_quorums() {
        let b = ClusterSpec::broken(5, 2, 2);
        assert_eq!(b.read_quorum + b.write_quorum, 5);
        assert!(b.unchecked_quorums);
        let m = ClusterSpec::majority(5, 2);
        assert_eq!(m.read_quorum, 3);
        assert!(!m.unchecked_quorums);
    }
}
