//! Replays a [`Schedule`] against a live harness.
//!
//! Execution is a pure function of the schedule: the harness seed is the
//! schedule seed, events apply at their virtual times, and the run ends
//! with a quiesce phase (faults cleared, everyone recovered, event queue
//! drained) so the oracle can ask convergence questions. The outcome is a
//! [`TrialRun`] — the merged operation log, final reads, replica states,
//! and coverage counters — which [`crate::oracle`] judges.

use std::collections::HashSet;

use wv_core::client::{ClientOptions, CompletedOp, HealthOptions, WeakRepOptions};
use wv_core::harness::SiteSpec;
use wv_core::{Harness, OpError, OpKind, QuorumSpec, VoteAssignment};
use wv_net::sim_net::NetStats;
use wv_net::{Partition, SiteId};
use wv_sim::{SimDuration, SimTime};
use wv_storage::{ObjectId, Version};

use crate::schedule::{ClusterSpec, EventKind, Schedule};

/// Event cap for the quiesce phase; a run that cannot drain within this
/// budget is reported with `quiesced = false` and skips convergence
/// checks rather than hanging the campaign.
const QUIESCE_CAP: u64 = 5_000_000;

/// How long the quiesce phase lets in-flight retries ride after the last
/// scheduled event before the final reads.
const SETTLE: SimDuration = SimDuration::from_secs(30);

/// Per-trial counters: which faults the schedule actually applied and
/// what the protocol did under them. The campaign aggregates these into
/// fleet-wide coverage.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TrialCoverage {
    /// Write operations started.
    pub writes: u64,
    /// Read operations started.
    pub reads: u64,
    /// Crash events applied.
    pub crashes: u64,
    /// Recover events applied.
    pub recoveries: u64,
    /// Partition events applied.
    pub partitions: u64,
    /// Heal events applied.
    pub heals: u64,
    /// Loss-burst dial changes applied (opens and closes).
    pub loss_bursts: u64,
    /// Delay-spike dial changes applied.
    pub delay_spikes: u64,
    /// Duplication dial changes applied.
    pub duplications: u64,
    /// Reconfiguration operations started.
    pub reconfigures: u64,
    /// Cross-suite transactions started (multi-suite clusters only;
    /// every fifth write tag becomes a two-suite atomic transaction).
    pub cross_suite_txns: u64,
    /// Operations that failed `Unavailable` — a quorum could not be
    /// assembled (the paper's "blocked" outcome).
    pub quorum_blocked: u64,
    /// Operations that ended `Indeterminate`.
    pub indeterminate: u64,
    /// Operations that failed for any reason.
    pub ops_failed: u64,
    /// Operations that succeeded.
    pub ops_ok: u64,
    /// Phase timeouts observed across all clients.
    pub timeouts: u64,
    /// Attempt retries across all clients.
    pub retries: u64,
    /// Operations abandoned after exhausting the attempt budget.
    pub attempts_exhausted: u64,
    /// Messages dropped by link loss (from [`NetStats`]).
    pub dropped_link: u64,
    /// Extra deliveries caused by duplication (from [`NetStats`]).
    pub duplicated_msgs: u64,
    /// Suspicion-threshold crossings across all clients (health tracking).
    pub suspicions_raised: u64,
    /// Quorum plans reordered around suspected sites.
    pub reroutes: u64,
    /// Hedged fetches launched.
    pub hedges_fired: u64,
    /// Reads won by the hedge target.
    pub hedge_wins: u64,
    /// Anti-entropy repairs installed across all servers.
    pub repairs_completed: u64,
    /// Group-commit sync batches across all servers (0 with batching off).
    pub wal_batches: u64,
    /// WAL records those batches made durable.
    pub wal_batched_records: u64,
    /// Reads served from an attached weak representative (cache tier).
    pub cache_hits: u64,
    /// Reads that fell through to a data fetch with the cache tier on.
    pub cache_misses: u64,
    /// Leases found expired at read time.
    pub lease_expiries: u64,
    /// Reads that coalesced onto another read's in-flight inquiry.
    pub piggybacked_inquiries: u64,
    /// Torn-write arms applied (only counted when the arm injects them).
    pub torn_writes: u64,
    /// Bit-flip arms applied.
    pub bit_flips: u64,
    /// Transient I/O error injections applied.
    pub io_errors: u64,
    /// Disk-stall injections applied.
    pub disk_stalls: u64,
    /// Torn tails truncated during recovery across all servers.
    pub torn_truncations: u64,
    /// WAL records lost to detected interior corruption.
    pub corrupt_records_detected: u64,
    /// Replicas that entered quarantine after detecting corruption.
    pub quarantines: u64,
    /// Quarantined replicas that healed via full anti-entropy pulls.
    pub requarantine_repairs: u64,
    /// Corrupt frames whose checksum still matched (CRC collision
    /// tripwire — stays zero).
    pub poison_escapes: u64,
    /// Requests served while quarantined (tripwire — stays zero).
    pub served_while_quarantined: u64,
}

/// The executor-side record of one cross-suite transaction: the payload
/// every branch wrote, the suites it spanned, and how it ended. The
/// oracle's atomicity invariant judges these — a definitely-aborted
/// transaction's payload must never surface in any suite.
#[derive(Clone, Debug)]
pub struct TxnOutcome {
    /// The payload bytes every branch of the transaction wrote.
    pub payload: Vec<u8>,
    /// The suites the transaction spanned, in lock-acquisition order.
    pub suites: Vec<ObjectId>,
    /// When the matched operation started (the enqueue instant when the
    /// client never completed it).
    pub started: SimTime,
    /// When the matched operation finished (the enqueue instant when the
    /// client never completed it).
    pub finished: SimTime,
    /// `Ok` with the per-suite committed versions, a definite error, or
    /// `None` when the client never reported the operation (its site was
    /// down at the enqueue instant).
    pub outcome: Option<Result<Vec<(ObjectId, Version)>, OpError>>,
}

/// One post-quiesce `(version, value)` observation — a client's final
/// read or a replica's durable state; `None` when the read failed or
/// the replica holds nothing.
pub type FinalState = Option<(Version, Vec<u8>)>;

/// Everything a finished trial leaves behind for the oracle.
#[derive(Clone, Debug)]
pub struct TrialRun {
    /// The schedule's seed (identifies the trial).
    pub seed: u64,
    /// All completed operations, across every client, in completion order
    /// per client (clients concatenated in site order).
    pub ops: Vec<CompletedOp>,
    /// Every payload the schedule wrote, for provenance checks.
    pub sent_payloads: HashSet<Vec<u8>>,
    /// The suites the cluster hosted, in id order. Single-suite clusters
    /// list exactly the default suite.
    pub suites: Vec<ObjectId>,
    /// One post-quiesce read per client *of the first suite*:
    /// `(version, value)` on success. Empty when the run failed to
    /// quiesce. The per-suite views live in
    /// [`TrialRun::suite_finals`]; this flat field keeps the
    /// single-suite call sites (and their byte-for-byte pins) unchanged.
    pub finals: Vec<FinalState>,
    /// Post-quiesce `(version, value)` per server replica, first suite.
    pub replicas: Vec<FinalState>,
    /// Post-quiesce final reads indexed `[suite][client]`, aligned with
    /// [`TrialRun::suites`]. Empty when the run failed to quiesce.
    pub suite_finals: Vec<Vec<FinalState>>,
    /// Post-quiesce replica states indexed `[suite][server]`.
    pub suite_replicas: Vec<Vec<FinalState>>,
    /// Every cross-suite transaction the schedule started, with its
    /// outcome (empty on single-suite clusters).
    pub txns: Vec<TxnOutcome>,
    /// Whether the quiesce phase drained the event queue within budget.
    pub quiesced: bool,
    /// Fault and protocol counters.
    pub coverage: TrialCoverage,
    /// Transport counters at end of run.
    pub net: NetStats,
    /// `Some(bound)` when the cluster ran the client cache tier: the
    /// oracle's staleness-bound invariant lets cache-served reads lag the
    /// committed frontier by at most this much. Validated mode's bound is
    /// zero — exactly as fresh as a classic quorum read.
    pub cache_lease: Option<SimDuration>,
}

/// The payload bytes a [`EventKind::Write`] event produces. Deterministic
/// and unique per `(seed, tag)`, so the oracle can trace any read value
/// back to the write that produced it.
pub fn payload_bytes(seed: u64, tag: u64) -> Vec<u8> {
    format!("chaos-{seed:016x}-{tag}").into_bytes()
}

/// Anti-entropy probe interval used by repair-enabled chaos and bench
/// clusters.
pub const REPAIR_INTERVAL: SimDuration = SimDuration::from_millis(500);

/// WAL sync latency used by group-commit-enabled chaos and bench
/// clusters: long enough that concurrent prepares genuinely share
/// batches, short against the 100 ms links.
pub const GROUP_COMMIT_LATENCY: SimDuration = SimDuration::from_millis(5);

/// Builds the harness a schedule runs against.
fn build_harness(spec: &ClusterSpec, seed: u64) -> Harness {
    let mut b = Harness::builder()
        .quorum(QuorumSpec::new(spec.read_quorum, spec.write_quorum))
        .seed(seed);
    if spec.suites > 1 {
        // Shard the keyspace: every suite shares the vote assignment and
        // quorum sizes but keeps its own versions, locks, and WAL records
        // (one WAL per server, interleaved and group-committed across
        // suites). `suites == 1` leaves the builder's default suite in
        // place, so single-suite replays are byte-identical to the
        // pre-sharding executor.
        b = b.suites((1..=spec.suites as u64).map(ObjectId));
    }
    for _ in 0..spec.servers {
        b = b.site(SiteSpec::server(1));
    }
    for _ in 0..spec.clients {
        b = b.client();
    }
    if spec.unchecked_quorums {
        b = b.allow_illegal_quorums();
    }
    if spec.repair {
        b = b.anti_entropy(REPAIR_INTERVAL);
    }
    let mut copts = ClientOptions::default();
    if spec.repair {
        copts.health = Some(HealthOptions::default());
    }
    if spec.cache_tier {
        copts.weak_rep = Some(WeakRepOptions::validated());
    }
    if spec.repair || spec.cache_tier {
        b = b.client_options(copts);
    }
    if spec.group_commit {
        b = b.group_commit(GROUP_COMMIT_LATENCY);
    }
    b.build()
        .expect("chaos harness build only fails on illegal quorums, which are unchecked here")
}

/// Replays `schedule` against a fresh cluster and returns the evidence.
pub fn run_schedule(spec: &ClusterSpec, schedule: &Schedule) -> TrialRun {
    run_schedule_inner(spec, schedule, false).0
}

/// [`run_schedule`] with span recording on: also returns the merged
/// operation trace. Recording never touches the protocol (the harness
/// test suite pins this), so the [`TrialRun`] is identical to the
/// untraced replay's.
pub fn run_schedule_traced(
    spec: &ClusterSpec,
    schedule: &Schedule,
) -> (TrialRun, Vec<wv_sim::SpanRecord>) {
    let (run, trace, _) = run_schedule_inner(spec, schedule, true);
    (run, trace)
}

/// [`run_schedule_traced`] plus the quorum-decision audit log: the full
/// evidence bundle for a replay artifact. Instrumentation never touches
/// the protocol, so the [`TrialRun`] is identical to the untraced
/// replay's.
pub fn run_schedule_instrumented(
    spec: &ClusterSpec,
    schedule: &Schedule,
) -> (TrialRun, Vec<wv_sim::SpanRecord>, Vec<wv_sim::AuditRecord>) {
    run_schedule_inner(spec, schedule, true)
}

fn run_schedule_inner(
    spec: &ClusterSpec,
    schedule: &Schedule,
    traced: bool,
) -> (TrialRun, Vec<wv_sim::SpanRecord>, Vec<wv_sim::AuditRecord>) {
    let mut h = build_harness(spec, schedule.seed);
    if traced {
        h.enable_tracing();
        h.enable_audit();
    }
    let mut coverage = TrialCoverage::default();
    let mut sent_payloads: HashSet<Vec<u8>> = HashSet::new();
    let clients = h.clients().to_vec();
    let suites = h.suite_ids().to_vec();
    let total = spec.total_sites();

    // Deterministic executor-side routing over fields the schedule
    // already carries: a write lands in the suite its payload tag picks,
    // reads round-robin across suites, and (multi-suite only) every
    // fifth write tag becomes a two-suite atomic transaction. With one
    // suite every rule collapses to "the suite", so the same schedule
    // replays byte-identically against a pre-sharding cluster.
    struct TxnRecord {
        client: SiteId,
        at: SimTime,
        payload: Vec<u8>,
        suites: Vec<ObjectId>,
    }
    let mut txn_records: Vec<TxnRecord> = Vec::new();
    let mut read_rr = 0usize;

    for event in &schedule.events {
        // Advance to the event's instant, letting in-flight work run.
        let target = SimTime::from_millis(event.at_ms);
        if target > h.now() {
            h.advance(target.since(h.now()));
        }
        let at = h.now();
        match &event.kind {
            EventKind::Write { client, payload } => {
                coverage.writes += 1;
                let bytes = payload_bytes(schedule.seed, *payload);
                sent_payloads.insert(bytes.clone());
                let c = clients[client % clients.len()];
                let home = suites[*payload as usize % suites.len()];
                if suites.len() > 1 && *payload % 5 == 0 {
                    // Cross-suite transaction: the home suite plus its
                    // neighbour, both branches carrying the same payload
                    // so the oracle can trace either back to this txn.
                    // Writes sorted by suite id — the deterministic
                    // global lock-acquisition order.
                    coverage.cross_suite_txns += 1;
                    let sibling = suites[(*payload as usize + 1) % suites.len()];
                    let mut span = vec![home, sibling];
                    span.sort();
                    let writes: Vec<(ObjectId, Vec<u8>)> =
                        span.iter().map(|&s| (s, bytes.clone())).collect();
                    txn_records.push(TxnRecord {
                        client: c,
                        at,
                        payload: bytes,
                        suites: span,
                    });
                    h.enqueue_transaction(c, writes, at);
                } else {
                    h.enqueue_write(c, home, bytes, at);
                }
            }
            EventKind::Read { client } => {
                coverage.reads += 1;
                let s = suites[read_rr % suites.len()];
                read_rr += 1;
                h.enqueue_read(clients[client % clients.len()], s, at);
            }
            EventKind::Crash { site } => {
                coverage.crashes += 1;
                h.crash(SiteId(*site as u16));
            }
            EventKind::Recover { site } => {
                coverage.recoveries += 1;
                h.recover(SiteId(*site as u16));
            }
            EventKind::Partition { group_a } => {
                coverage.partitions += 1;
                let a: Vec<SiteId> = group_a
                    .iter()
                    .filter(|&&s| s < total)
                    .map(|&s| SiteId(s as u16))
                    .collect();
                let b: Vec<SiteId> = (0..total)
                    .filter(|s| !group_a.contains(s))
                    .map(|s| SiteId(s as u16))
                    .collect();
                h.partition(Partition::split(total, &[&a, &b]));
            }
            EventKind::Heal => {
                coverage.heals += 1;
                h.heal();
            }
            EventKind::LossBurst { permille } => {
                coverage.loss_bursts += 1;
                h.set_drop_all(f64::from(*permille) / 1000.0);
            }
            EventKind::DelaySpike { extra_ms } => {
                coverage.delay_spikes += 1;
                h.set_extra_delay(SimDuration::from_millis(*extra_ms));
            }
            EventKind::Duplication { permille } => {
                coverage.duplications += 1;
                h.set_duplicate_prob(f64::from(*permille) / 1000.0);
            }
            EventKind::Reconfigure {
                client,
                read_quorum,
                write_quorum,
            } => {
                coverage.reconfigures += 1;
                // Reconfigurations always target the first suite: the
                // directory adopts the new generation for it and the
                // sibling suites keep their configs — exactly the
                // per-suite invalidation the directory cache promises.
                h.enqueue_reconfigure(
                    clients[client % clients.len()],
                    suites[0],
                    VoteAssignment::equal(spec.servers),
                    QuorumSpec::new(*read_quorum, *write_quorum),
                    at,
                );
            }
            // Disk faults apply only on the faulty-disk arm; the clean
            // arm replays the identical timeline with these as no-ops.
            EventKind::TornWrite { site } => {
                if spec.disk_faults {
                    coverage.torn_writes += 1;
                    h.arm_torn_write(SiteId(*site as u16));
                }
            }
            EventKind::BitFlip { site } => {
                if spec.disk_faults {
                    coverage.bit_flips += 1;
                    h.arm_bit_flip(SiteId(*site as u16));
                }
            }
            EventKind::IoError { site, count } => {
                if spec.disk_faults {
                    coverage.io_errors += 1;
                    h.inject_io_errors(SiteId(*site as u16), *count);
                }
            }
            EventKind::DiskStall { site, ms } => {
                if spec.disk_faults {
                    coverage.disk_stalls += 1;
                    h.disk_stall(SiteId(*site as u16), SimDuration::from_millis(*ms));
                }
            }
        }
    }

    // Quiesce: clear every dial, reconnect and revive everyone, let
    // in-flight retries ride, then drain.
    h.set_drop_all(0.0);
    h.set_extra_delay(SimDuration::ZERO);
    h.set_duplicate_prob(0.0);
    h.heal();
    for site in 0..spec.servers {
        if h.is_down(SiteId(site as u16)) {
            h.recover(SiteId(site as u16));
        }
    }
    // A replica quarantined by interior corruption heals only once the
    // *periodic* probe pulls full state from every peer; give it a few
    // probe rounds on the healed network before silencing the daemon.
    if spec.repair && spec.disk_faults {
        h.advance(SimDuration::from_secs(3));
    }
    // The recovery pulls above are in flight; silence the *periodic*
    // probes, which would otherwise re-arm forever and the queue would
    // never drain.
    h.stop_anti_entropy();
    h.advance(SETTLE);
    let executed = h.run_until_quiet(QUIESCE_CAP);
    let quiesced = executed < QUIESCE_CAP;

    // Drain completion logs, matching each cross-suite transaction
    // record to its completed operation (same client, same start
    // instant) so the oracle can judge atomicity without guessing which
    // op was which.
    let mut ops: Vec<CompletedOp> = Vec::new();
    let mut txns: Vec<TxnOutcome> = Vec::new();
    for &c in &clients {
        let completed = h.drain_completed(c);
        let mut taken = vec![false; completed.len()];
        for rec in txn_records.iter().filter(|r| r.client == c) {
            let mut outcome = None;
            let mut times = (rec.at, rec.at);
            for (i, o) in completed.iter().enumerate() {
                if !taken[i] && o.kind == OpKind::Transaction && o.started == rec.at {
                    taken[i] = true;
                    outcome = Some(match &o.outcome {
                        Ok(okk) => Ok(okk.multi.clone()),
                        Err(e) => Err(e.clone()),
                    });
                    times = (o.started, o.finished);
                    break;
                }
            }
            txns.push(TxnOutcome {
                payload: rec.payload.clone(),
                suites: rec.suites.clone(),
                started: times.0,
                finished: times.1,
                outcome,
            });
        }
        ops.extend(completed);
    }

    // Post-quiesce final reads, per suite then per client (only
    // meaningful if the system drained). Suite-major order keeps the
    // single-suite read sequence — and therefore its RNG draws —
    // identical to the pre-sharding executor.
    let mut suite_finals: Vec<Vec<FinalState>> = Vec::new();
    if quiesced {
        for &s in &suites {
            let mut per_client = Vec::new();
            for &c in &clients {
                let result = h.read_from(c, s).ok();
                per_client.push(result.map(|r| (r.version, r.value.to_vec())));
            }
            suite_finals.push(per_client);
        }
    }
    let finals = suite_finals.first().cloned().unwrap_or_default();

    let suite_replicas: Vec<Vec<FinalState>> = suites
        .iter()
        .map(|&su| {
            (0..spec.servers)
                .map(|s| {
                    let site = SiteId(s as u16);
                    h.version_at(site, su).map(|v| {
                        (
                            v,
                            h.value_at(site, su).map(|b| b.to_vec()).unwrap_or_default(),
                        )
                    })
                })
                .collect()
        })
        .collect();
    let replicas = suite_replicas[0].clone();

    for &c in &clients {
        if let Some(stats) = h.client_stats(c) {
            coverage.timeouts += stats.timeouts;
            coverage.retries += stats.retries;
            coverage.attempts_exhausted += stats.attempts_exhausted;
            coverage.suspicions_raised += stats.suspicions_raised;
            coverage.reroutes += stats.reroutes;
            coverage.hedges_fired += stats.hedges_fired;
            coverage.hedge_wins += stats.hedge_wins;
            coverage.cache_hits += stats.cache_hits;
            coverage.cache_misses += stats.cache_misses;
            coverage.lease_expiries += stats.lease_expiries;
            coverage.piggybacked_inquiries += stats.piggybacked_inquiries;
        }
    }
    for s in 0..spec.servers {
        if let Some(stats) = h.server_stats(SiteId(s as u16)) {
            coverage.repairs_completed += stats.repairs_completed;
            coverage.wal_batches += stats.wal_batches;
            coverage.wal_batched_records += stats.wal_batched_records;
            coverage.torn_truncations += stats.torn_truncations;
            coverage.corrupt_records_detected += stats.corrupt_records_detected;
            coverage.quarantines += stats.quarantines;
            coverage.requarantine_repairs += stats.requarantine_repairs;
            coverage.poison_escapes += stats.poison_escapes;
            coverage.served_while_quarantined += stats.served_while_quarantined;
        }
    }
    for op in &ops {
        match &op.outcome {
            Ok(_) => coverage.ops_ok += 1,
            Err(e) => {
                coverage.ops_failed += 1;
                match e {
                    OpError::Unavailable { .. } => coverage.quorum_blocked += 1,
                    OpError::Indeterminate => coverage.indeterminate += 1,
                    _ => {}
                }
            }
        }
    }
    let net = h.net_stats();
    coverage.dropped_link = net.dropped_link;
    coverage.duplicated_msgs = net.duplicated;

    let trace = if traced { h.take_trace() } else { Vec::new() };
    let audit = if traced { h.take_audit() } else { Vec::new() };
    (
        TrialRun {
            seed: schedule.seed,
            ops,
            sent_payloads,
            suites,
            finals,
            replicas,
            suite_finals,
            suite_replicas,
            txns,
            quiesced,
            coverage,
            net,
            // Validated mode: the bound is zero — a cache serve carries
            // the same quorum evidence as a classic read.
            cache_lease: spec.cache_tier.then_some(SimDuration::ZERO),
        },
        trace,
        audit,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::{generate, FaultEvent, ScheduleParams};

    #[test]
    fn replaying_a_schedule_is_deterministic() {
        let spec = ClusterSpec::majority(5, 2);
        let schedule = generate(&spec, &ScheduleParams::default(), 11);
        let a = run_schedule(&spec, &schedule);
        let b = run_schedule(&spec, &schedule);
        assert_eq!(a.coverage, b.coverage);
        assert_eq!(a.finals, b.finals);
        assert_eq!(a.replicas, b.replicas);
        assert_eq!(a.ops.len(), b.ops.len());
        for (x, y) in a.ops.iter().zip(&b.ops) {
            assert_eq!(x.outcome, y.outcome);
            assert_eq!(x.finished, y.finished);
        }
    }

    #[test]
    fn a_quiet_schedule_of_writes_and_reads_commits() {
        let spec = ClusterSpec::majority(3, 1);
        let schedule = Schedule {
            seed: 5,
            events: vec![
                FaultEvent {
                    at_ms: 100,
                    kind: EventKind::Write {
                        client: 0,
                        payload: 1,
                    },
                },
                FaultEvent {
                    at_ms: 2_000,
                    kind: EventKind::Read { client: 0 },
                },
            ],
        };
        let run = run_schedule(&spec, &schedule);
        assert!(run.quiesced);
        assert_eq!(run.coverage.ops_ok, 2);
        assert_eq!(run.coverage.ops_failed, 0);
        // The final read sees the single write.
        let (v, value) = run.finals[0].clone().expect("final read succeeds");
        assert_eq!(v, Version(1));
        assert_eq!(value, payload_bytes(5, 1));
    }

    #[test]
    fn repair_catches_up_a_crashed_replica_without_resurrecting_data() {
        // One site misses two writes while down; the anti-entropy daemon
        // must bring it back to the committed frontier — and the oracle's
        // repair invariants (provenance, version bound) must hold on the
        // result.
        let spec = ClusterSpec::majority(3, 1).with_repair();
        let schedule = Schedule {
            seed: 21,
            events: vec![
                FaultEvent {
                    at_ms: 100,
                    kind: EventKind::Write {
                        client: 0,
                        payload: 1,
                    },
                },
                FaultEvent {
                    at_ms: 1_000,
                    kind: EventKind::Crash { site: 2 },
                },
                FaultEvent {
                    at_ms: 2_000,
                    kind: EventKind::Write {
                        client: 0,
                        payload: 2,
                    },
                },
                FaultEvent {
                    at_ms: 3_000,
                    kind: EventKind::Write {
                        client: 0,
                        payload: 3,
                    },
                },
                FaultEvent {
                    at_ms: 4_000,
                    kind: EventKind::Recover { site: 2 },
                },
                FaultEvent {
                    at_ms: 20_000,
                    kind: EventKind::Read { client: 0 },
                },
            ],
        };
        let run = run_schedule(&spec, &schedule);
        assert!(run.quiesced);
        assert!(run.coverage.repairs_completed >= 1, "repair never fired");
        // Every replica converged to the newest committed state.
        for state in run.replicas.iter().flatten() {
            assert_eq!(state.0, Version(3));
            assert_eq!(state.1, payload_bytes(21, 3));
        }
        // And the full oracle — including the repair invariants — is clean.
        assert!(crate::oracle::check_trial(&run, false).is_empty());
        // Replays stay deterministic with the daemon running.
        let again = run_schedule(&spec, &schedule);
        assert_eq!(run.replicas, again.replicas);
        assert_eq!(run.coverage, again.coverage);
    }

    #[test]
    fn group_commit_trials_converge_and_satisfy_the_oracle() {
        // The same generated fault timeline, batched and unbatched. The
        // arms may commit different amounts of work (batching shifts
        // response times, so ops meet the faults differently), but each
        // must quiesce to an internally consistent state, the batched arm
        // must actually sync through the group-commit path, and the full
        // history oracle must stay clean over both.
        let plain = ClusterSpec::majority(3, 1);
        let batched = ClusterSpec::majority(3, 1).with_group_commit();
        let schedule = generate(&plain, &ScheduleParams::default(), 17);
        let a = run_schedule(&plain, &schedule);
        let b = run_schedule(&batched, &schedule);
        assert!(a.quiesced && b.quiesced);
        assert!(b.coverage.wal_batches >= 1, "no sync used the batch path");
        assert!(b.coverage.wal_batched_records >= b.coverage.wal_batches);
        assert_eq!(a.coverage.wal_batches, 0, "batching off syncs inline");
        assert!(crate::oracle::check_trial(&a, false).is_empty());
        assert!(crate::oracle::check_trial(&b, false).is_empty());
        // Replays of the batched arm stay deterministic.
        let again = run_schedule(&batched, &schedule);
        assert_eq!(b.replicas, again.replicas);
        assert_eq!(b.coverage, again.coverage);
    }

    #[test]
    fn cache_tier_trials_converge_and_satisfy_the_oracle() {
        // The same generated fault timeline, cached and uncached. The
        // cached arm carries the zero staleness bound, so `check_trial`
        // also runs invariant 11 over it — cache serves must be exactly
        // as fresh as classic quorum reads, faults and all.
        let plain = ClusterSpec::majority(3, 1);
        let cached = ClusterSpec::majority(3, 1).with_cache_tier();
        let schedule = generate(&plain, &ScheduleParams::default(), 23);
        let a = run_schedule(&plain, &schedule);
        let b = run_schedule(&cached, &schedule);
        assert!(a.quiesced && b.quiesced);
        assert!(a.cache_lease.is_none());
        assert_eq!(b.cache_lease, Some(SimDuration::ZERO));
        assert_eq!(
            a.coverage.cache_hits + a.coverage.cache_misses,
            0,
            "uncached arm never touches the tier"
        );
        assert!(crate::oracle::check_trial(&a, false).is_empty());
        assert!(crate::oracle::check_trial(&b, false).is_empty());
        // Replays of the cached arm stay deterministic.
        let again = run_schedule(&cached, &schedule);
        assert_eq!(b.replicas, again.replicas);
        assert_eq!(b.coverage, again.coverage);
    }

    #[test]
    fn disk_fault_trials_converge_and_satisfy_the_oracle() {
        // The same generated fault timeline with disks faulty and clean.
        // The clean arm replays disk events as no-ops; the faulty arm
        // must inject them, stay poison-free, and still satisfy the
        // oracle — a quarantined replica surrenders its votes instead of
        // serving suspect state.
        let clean = ClusterSpec::majority(5, 2).with_repair();
        let faulty = ClusterSpec::majority(5, 2).with_repair().with_disk_faults();
        let mut injected = false;
        for seed in 0..8u64 {
            let schedule = generate(&clean, &ScheduleParams::default(), seed);
            let a = run_schedule(&clean, &schedule);
            let b = run_schedule(&faulty, &schedule);
            assert_eq!(
                a.coverage.torn_writes
                    + a.coverage.bit_flips
                    + a.coverage.io_errors
                    + a.coverage.disk_stalls,
                0,
                "clean arm never injects"
            );
            assert_eq!(a.coverage.quarantines, 0);
            injected |= b.coverage.torn_writes
                + b.coverage.bit_flips
                + b.coverage.io_errors
                + b.coverage.disk_stalls
                > 0;
            assert_eq!(b.coverage.poison_escapes, 0, "seed {seed}: CRC collision");
            assert_eq!(
                b.coverage.served_while_quarantined, 0,
                "seed {seed}: a quarantined replica served"
            );
            assert!(
                crate::oracle::check_trial(&b, false).is_empty(),
                "seed {seed}: faulty-disk arm broke an invariant"
            );
            // Replays of the faulty arm stay deterministic.
            let again = run_schedule(&faulty, &schedule);
            assert_eq!(b.replicas, again.replicas);
            assert_eq!(b.coverage, again.coverage);
        }
        assert!(injected, "no seed in the window drew a disk fault");
    }

    #[test]
    fn a_bit_flip_quarantines_the_replica_and_repair_heals_it() {
        // Hand-crafted: write traffic makes site 2's WAL non-empty, a bit
        // flip corrupts it at the crash, recovery quarantines it, and the
        // anti-entropy daemon heals it with full pulls before quiesce.
        let spec = ClusterSpec::majority(3, 1).with_repair().with_disk_faults();
        let schedule = Schedule {
            seed: 31,
            events: vec![
                FaultEvent {
                    at_ms: 100,
                    kind: EventKind::Write {
                        client: 0,
                        payload: 1,
                    },
                },
                FaultEvent {
                    at_ms: 800,
                    kind: EventKind::Write {
                        client: 0,
                        payload: 2,
                    },
                },
                FaultEvent {
                    at_ms: 2_000,
                    kind: EventKind::BitFlip { site: 2 },
                },
                FaultEvent {
                    at_ms: 2_000,
                    kind: EventKind::Crash { site: 2 },
                },
                FaultEvent {
                    at_ms: 3_000,
                    kind: EventKind::Recover { site: 2 },
                },
                FaultEvent {
                    at_ms: 20_000,
                    kind: EventKind::Read { client: 0 },
                },
            ],
        };
        let run = run_schedule(&spec, &schedule);
        assert!(run.quiesced);
        assert_eq!(run.coverage.bit_flips, 1);
        assert!(
            run.coverage.corrupt_records_detected >= 1,
            "the flip landed in a durable frame and recovery must see it"
        );
        assert_eq!(run.coverage.quarantines, 1);
        assert_eq!(
            run.coverage.requarantine_repairs, 1,
            "full pulls from both peers must heal the quarantine"
        );
        assert_eq!(run.coverage.poison_escapes, 0);
        assert_eq!(run.coverage.served_while_quarantined, 0);
        // Healed means fully caught up: every replica at the frontier.
        for state in run.replicas.iter().flatten() {
            assert_eq!(state.0, Version(2));
            assert_eq!(state.1, payload_bytes(31, 2));
        }
        assert!(crate::oracle::check_trial(&run, false).is_empty());
    }

    #[test]
    fn a_torn_write_truncates_the_tail_without_quarantine() {
        // A tear at crash time loses only unsynced suffix records — the
        // replica recovers, truncates, and keeps its votes.
        let spec = ClusterSpec::majority(3, 1).with_disk_faults();
        let schedule = Schedule {
            seed: 12,
            events: vec![
                FaultEvent {
                    at_ms: 100,
                    kind: EventKind::Write {
                        client: 0,
                        payload: 1,
                    },
                },
                FaultEvent {
                    at_ms: 900,
                    kind: EventKind::TornWrite { site: 1 },
                },
                FaultEvent {
                    at_ms: 900,
                    kind: EventKind::Crash { site: 1 },
                },
                FaultEvent {
                    at_ms: 2_000,
                    kind: EventKind::Recover { site: 1 },
                },
                FaultEvent {
                    at_ms: 10_000,
                    kind: EventKind::Read { client: 0 },
                },
            ],
        };
        let run = run_schedule(&spec, &schedule);
        assert!(run.quiesced);
        assert_eq!(run.coverage.torn_writes, 1);
        assert_eq!(run.coverage.quarantines, 0, "a torn tail is not corruption");
        assert!(crate::oracle::check_trial(&run, false).is_empty());
    }

    #[test]
    fn multi_suite_trials_shard_traffic_and_satisfy_the_oracle() {
        // The same generated fault timeline, flat and sharded four ways.
        // The suites flag never reaches the schedule generator, so both
        // arms replay identical fault timelines; the sharded arm routes
        // writes by payload tag, round-robins reads, turns every fifth
        // write tag into a cross-suite transaction, and must satisfy the
        // per-suite oracle plus the atomicity invariant.
        let plain = ClusterSpec::majority(5, 2);
        let sharded = ClusterSpec::majority(5, 2).with_suites(4);
        let schedule = generate(&plain, &ScheduleParams::default(), 41);
        let a = run_schedule(&plain, &schedule);
        let b = run_schedule(&sharded, &schedule);
        assert!(a.quiesced && b.quiesced);
        assert_eq!(a.suites.len(), 1);
        assert_eq!(b.suites.len(), 4);
        assert_eq!(a.coverage.cross_suite_txns, 0, "flat arm never crosses");
        assert!(a.txns.is_empty());
        assert!(
            b.coverage.cross_suite_txns >= 1,
            "payload tags divisible by 5 must become transactions"
        );
        assert_eq!(b.txns.len() as u64, b.coverage.cross_suite_txns);
        assert_eq!(b.suite_finals.len(), 4);
        assert_eq!(b.suite_replicas.len(), 4);
        assert!(crate::oracle::check_trial(&a, false).is_empty());
        assert!(
            crate::oracle::check_trial(&b, false).is_empty(),
            "sharded arm broke an invariant: {:?}",
            crate::oracle::check_trial(&b, false)
        );
        // Replays of the sharded arm stay deterministic.
        let again = run_schedule(&sharded, &schedule);
        assert_eq!(b.suite_replicas, again.suite_replicas);
        assert_eq!(b.suite_finals, again.suite_finals);
        assert_eq!(b.coverage, again.coverage);
    }

    #[test]
    fn crashing_a_quorum_blocks_operations() {
        let spec = ClusterSpec::majority(3, 1);
        let schedule = Schedule {
            seed: 9,
            events: vec![
                FaultEvent {
                    at_ms: 10,
                    kind: EventKind::Crash { site: 0 },
                },
                FaultEvent {
                    at_ms: 20,
                    kind: EventKind::Crash { site: 1 },
                },
                FaultEvent {
                    at_ms: 100,
                    kind: EventKind::Write {
                        client: 0,
                        payload: 1,
                    },
                },
                // Recover one site late so the write's retries can land
                // before the quiesce phase revives everyone.
                FaultEvent {
                    at_ms: 40_000,
                    kind: EventKind::Recover { site: 0 },
                },
                FaultEvent {
                    at_ms: 40_100,
                    kind: EventKind::Recover { site: 1 },
                },
            ],
        };
        let run = run_schedule(&spec, &schedule);
        assert!(run.quiesced);
        assert!(
            run.coverage.quorum_blocked >= 1 || run.coverage.ops_ok >= 1,
            "the write either blocked (budget ran out mid-outage) or rode out the outage"
        );
        assert!(run.coverage.timeouts > 0, "phase timeouts fired");
        assert_eq!(run.coverage.crashes, 2);
        assert_eq!(run.coverage.recoveries, 2);
    }
}
