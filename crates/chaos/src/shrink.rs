//! Failure shrinking: delta-debug a failing schedule to a minimal
//! reproducer.
//!
//! A campaign failure arrives as a 70-odd-event schedule; most of those
//! events are noise. The shrinker runs classic ddmin over the event list
//! (remove chunks, keep any subset that still violates an invariant,
//! halve the chunk size when stuck) until the schedule is 1-minimal —
//! removing any single event makes the failure vanish. A second pass then
//! compresses time, pulling each event back to its predecessor's instant
//! when the failure survives, so the reproducer is short in wall-clock as
//! well as in events.
//!
//! Every candidate is judged by actually replaying it
//! ([`crate::exec::run_schedule`]) and consulting the oracle — the
//! predicate is "some invariant still breaks", not "the same invariant
//! breaks", which lets the shrinker slide between related symptoms of one
//! bug. Replays are deterministic, so the shrunk schedule fails forever.

use crate::exec::run_schedule;
use crate::oracle::check_trial;
use crate::schedule::{ClusterSpec, FaultEvent, Schedule};

/// Default cap on candidate replays; ddmin on a 70–100 event schedule
/// typically needs well under half of this.
pub const DEFAULT_BUDGET: u64 = 600;

/// A finished shrink: the minimal schedule and how hard it was to find.
#[derive(Clone, Debug)]
pub struct ShrinkResult {
    /// The minimal failing schedule (same seed as the original).
    pub schedule: Schedule,
    /// Violations the minimal schedule still produces.
    pub violations: Vec<crate::oracle::Violation>,
    /// Candidate replays spent.
    pub evaluations: u64,
    /// Event count before shrinking.
    pub original_events: usize,
}

struct Shrinker<'a> {
    spec: &'a ClusterSpec,
    seed: u64,
    evaluations: u64,
    budget: u64,
}

impl Shrinker<'_> {
    /// Replays `events` and reports whether any invariant still breaks.
    fn fails(&mut self, events: &[FaultEvent]) -> bool {
        self.evaluations += 1;
        let candidate = Schedule {
            seed: self.seed,
            events: events.to_vec(),
        };
        !check_trial(&run_schedule(self.spec, &candidate), false).is_empty()
    }

    fn exhausted(&self) -> bool {
        self.evaluations >= self.budget
    }

    /// Classic ddmin: returns a 1-minimal failing subsequence of
    /// `events` (or the best found when the budget runs out).
    fn ddmin(&mut self, mut events: Vec<FaultEvent>) -> Vec<FaultEvent> {
        let mut granularity = 2usize;
        while events.len() >= 2 && !self.exhausted() {
            let chunk = events.len().div_ceil(granularity);
            let mut reduced = false;
            let mut start = 0usize;
            while start < events.len() && !self.exhausted() {
                let end = (start + chunk).min(events.len());
                let complement: Vec<FaultEvent> = events[..start]
                    .iter()
                    .chain(&events[end..])
                    .cloned()
                    .collect();
                if complement.len() < events.len() && self.fails(&complement) {
                    events = complement;
                    granularity = granularity.saturating_sub(1).max(2);
                    reduced = true;
                    break;
                }
                start = end;
            }
            if !reduced {
                if granularity >= events.len() {
                    break;
                }
                granularity = (granularity * 2).min(events.len());
            }
        }
        events
    }

    /// Pulls events earlier in time while the failure survives. Each move
    /// sets an event's instant to its predecessor's (the first event goes
    /// to 0), preserving sortedness, and iterates to a fixpoint.
    fn compress_time(&mut self, mut events: Vec<FaultEvent>) -> Vec<FaultEvent> {
        loop {
            let mut changed = false;
            for i in 0..events.len() {
                if self.exhausted() {
                    return events;
                }
                let target = if i == 0 { 0 } else { events[i - 1].at_ms };
                if events[i].at_ms > target {
                    let mut candidate = events.clone();
                    candidate[i].at_ms = target;
                    if self.fails(&candidate) {
                        events = candidate;
                        changed = true;
                    }
                }
            }
            if !changed {
                return events;
            }
        }
    }
}

/// Shrinks a failing schedule to a minimal reproducer.
///
/// Returns `None` when the schedule does not fail in the first place.
/// `budget` caps candidate replays (see [`DEFAULT_BUDGET`]); when it runs
/// out mid-shrink, the smallest failing schedule found so far is
/// returned — still a valid reproducer, just maybe not 1-minimal.
pub fn shrink(spec: &ClusterSpec, schedule: &Schedule, budget: u64) -> Option<ShrinkResult> {
    let mut s = Shrinker {
        spec,
        seed: schedule.seed,
        evaluations: 0,
        budget,
    };
    if !s.fails(&schedule.events) {
        return None;
    }
    let minimal = s.ddmin(schedule.events.clone());
    let minimal = s.compress_time(minimal);
    let shrunk = Schedule {
        seed: schedule.seed,
        events: minimal,
    };
    let violations = check_trial(&run_schedule(spec, &shrunk), false);
    debug_assert!(!violations.is_empty(), "shrinking preserved the failure");
    Some(ShrinkResult {
        schedule: shrunk,
        violations,
        evaluations: s.evaluations,
        original_events: schedule.events.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::{run_campaign, trial_schedule, CampaignConfig};
    use crate::schedule::ScheduleParams;

    #[test]
    fn shrinking_a_passing_schedule_returns_none() {
        let spec = ClusterSpec::majority(3, 1);
        let schedule = crate::schedule::generate(&spec, &ScheduleParams::default(), 1);
        assert!(shrink(&spec, &schedule, 50).is_none());
    }

    #[test]
    fn a_broken_quorum_failure_shrinks_to_a_small_reproducer() {
        let spec = ClusterSpec::broken(5, 2, 2);
        let params = ScheduleParams {
            reconfigure: false,
            ..ScheduleParams::default()
        };
        let cfg = CampaignConfig {
            master_seed: 0xBAD,
            trials: 24,
            spec,
            params,
        };
        let report = run_campaign(&cfg);
        let failure = report.failures.first().expect("broken quorums fail");
        let trial = (0..cfg.trials as u64)
            .find(|&i| wv_bench::runner::trial_seed(cfg.master_seed, i) == failure.seed)
            .expect("failure seed maps back to a trial index");
        let schedule = trial_schedule(&cfg, trial);

        let result = shrink(&spec, &schedule, DEFAULT_BUDGET).expect("still fails");
        assert!(
            result.schedule.events.len() <= 10,
            "expected a <=10 event reproducer, got {} (from {})",
            result.schedule.events.len(),
            result.original_events
        );
        assert!(result.schedule.events.len() < result.original_events);
        assert!(!result.violations.is_empty());

        // The artifact round-trips and replays to the same violations.
        let text = result.schedule.to_json(&spec);
        let (spec2, schedule2) = Schedule::from_json(&text).expect("artifact parses");
        let replay = check_trial(&run_schedule(&spec2, &schedule2), false);
        assert_eq!(
            replay, result.violations,
            "artifact replays deterministically"
        );
    }
}
