//! Chaos campaign engine for the weighted-voting stack.
//!
//! Four pieces, layered:
//!
//! * [`schedule`] — a fault-schedule DSL: seeded, sorted timelines of
//!   operations, crashes, partitions, link-loss bursts, delay spikes,
//!   duplication windows, and reconfigurations, serialisable to a replay
//!   artifact.
//! * [`exec`] — replays a schedule against a simulated cluster and
//!   collects the evidence (operation log, final reads, replica states,
//!   coverage counters).
//! * [`oracle`] — the history oracle: the consistency invariants
//!   weighted voting promises, checked over that evidence and returned
//!   as structured [`oracle::Violation`]s.
//! * [`campaign`] + [`shrink`] — fan thousands of seeds over the
//!   deterministic parallel trial runner, then delta-debug any failure
//!   down to a minimal reproducer.
//!
//! Everything is deterministic: a campaign report is bit-identical at
//! any worker count, and a shrunk artifact replays its violation
//! forever.

#![warn(missing_docs)]

pub mod campaign;
pub mod e14;
pub mod exec;
pub mod oracle;
pub mod report;
pub mod schedule;
pub mod shrink;

// The artifact JSON implementation moved into `wv_sim` so the analysis
// and bench layers can parse replay artifacts without depending on the
// chaos engine; re-export it so `wv_chaos::json` paths keep working.
pub use wv_sim::json;

pub use campaign::{run_campaign, CampaignConfig, CampaignReport, Coverage};
pub use exec::{run_schedule, run_schedule_instrumented, TrialCoverage, TrialRun};
pub use oracle::{check_convergence, check_log, check_trial, Violation};
pub use schedule::{generate, ClusterSpec, EventKind, FaultEvent, Schedule, ScheduleParams};
pub use shrink::{shrink, ShrinkResult};
