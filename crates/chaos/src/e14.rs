//! E14 — availability and read tail latency under faulty disks.
//!
//! A sweep over disk-fault rates, two arms per rate. Each trial runs a
//! three-site majority cluster under a steady read-heavy workload while
//! disk faults fire at a controlled rate: torn writes and (at most one
//! per trial) bit flips riding crash/recover cycles, plus transient I/O
//! errors and sync stalls on live servers. The *healing off* arm runs
//! the classic stack — a replica quarantined by interior corruption
//! stays quarantined, serving nothing, until the trial ends. The
//! *healing on* arm adds anti-entropy repair and health-tracked clients,
//! so a quarantined replica rebuilds from full peer pulls and rejoins.
//!
//! Both arms of a trial replay the *same* schedule (the arm flag never
//! reaches the builder), so the comparison is paired; trials fan out
//! over [`wv_bench::runner::run_trials`], so the report is bit-identical
//! at any worker count.

use wv_core::OpKind;
use wv_sim::{derive_seed, DetRng, SampleSet};

use wv_bench::runner;
use wv_bench::table::Table;

use crate::exec::run_schedule;
use crate::schedule::{ClusterSpec, EventKind, FaultEvent, Schedule};

/// Voting representatives (one vote each, majority quorums).
const SERVERS: usize = 3;
/// Pure client sites.
const CLIENTS: usize = 1;
/// Workload horizon in milliseconds.
const HORIZON_MS: u64 = 30_000;
/// One read every `READ_EVERY_MS` — light enough that the classic
/// (no-health) arm is not queue-saturated at rate 0, so the latency
/// columns measure fault impact rather than workload backlog.
const READ_EVERY_MS: u64 = 500;
/// One write every `WRITE_EVERY_MS`.
const WRITE_EVERY_MS: u64 = 2_000;
/// Disk-fault slots: every `FAULT_SLOT_MS` the builder rolls the rate.
const FAULT_SLOT_MS: u64 = 1_500;
/// How long a damaged server stays down before its recovery.
const OUTAGE_MS: u64 = 400;
/// The swept fault rates, in permille per slot.
pub const RATES_PERMILLE: &[u32] = &[0, 150, 400, 800];
/// Trials per cell in the full report.
const TRIALS: usize = 12;
/// Seed-derivation label for the fault timeline.
const FAULT_LABEL: u64 = 0xE14_FA17;

/// Builds the schedule both arms of a trial share: the steady workload
/// plus disk faults drawn at `rate_permille` per slot. Pure function of
/// `(seed, rate_permille)` — the healing flag never reaches it.
pub fn build_schedule(seed: u64, rate_permille: u32) -> Schedule {
    let mut rng = DetRng::new(derive_seed(seed, FAULT_LABEL + u64::from(rate_permille)));
    let mut events = Vec::new();

    let mut t = READ_EVERY_MS;
    while t < HORIZON_MS {
        events.push(FaultEvent {
            at_ms: t,
            kind: EventKind::Read { client: 0 },
        });
        t += READ_EVERY_MS;
    }
    let mut t = 100;
    let mut payload = 0;
    while t < HORIZON_MS {
        payload += 1;
        events.push(FaultEvent {
            at_ms: t,
            kind: EventKind::Write { client: 0, payload },
        });
        t += WRITE_EVERY_MS;
    }

    // Fault slots: at each, with probability rate/1000, one disk fault
    // on a currently-up server. Durable damage (tears, flips) is latent,
    // so it rides a crash/recover cycle; at most one flip per trial —
    // quarantine surrenders votes, and the vote-safety argument assumes
    // a single simultaneously-degraded disk.
    let mut up_again = [0u64; SERVERS];
    let mut flip_armed = false;
    let mut slot = FAULT_SLOT_MS;
    while slot < HORIZON_MS {
        let fire = rng.below(1_000) < u64::from(rate_permille);
        let site = rng.below(SERVERS as u64) as usize;
        let kind = rng.below(4);
        // All five draws happen unconditionally so the stream is a pure
        // function of the slot index, never of what earlier slots fired.
        let at = slot + rng.below(1_000);
        let tear_jitter = rng.below(10);
        // Durable-damage crashes aim at the prepare window of the next
        // write: the prepare record reaches a server one inquiry
        // round-trip plus one hop after the write fires (~300 ms on the
        // 100 ms links) and sits volatile for the 5 ms group-commit
        // sync, so tears around that instant genuinely catch a volatile
        // tail mid-flush.
        let w = ((slot - 100) / WRITE_EVERY_MS + 1) * WRITE_EVERY_MS + 100;
        let damage_at = w + 297 + tear_jitter;
        if fire && up_again[site] <= damage_at.min(at) {
            match kind {
                0 | 1 => {
                    let damage = if kind == 0 && !flip_armed {
                        flip_armed = true;
                        EventKind::BitFlip { site }
                    } else {
                        EventKind::TornWrite { site }
                    };
                    events.push(FaultEvent {
                        at_ms: damage_at,
                        kind: damage,
                    });
                    events.push(FaultEvent {
                        at_ms: damage_at,
                        kind: EventKind::Crash { site },
                    });
                    events.push(FaultEvent {
                        at_ms: damage_at + OUTAGE_MS,
                        kind: EventKind::Recover { site },
                    });
                    up_again[site] = damage_at + OUTAGE_MS;
                }
                2 => events.push(FaultEvent {
                    at_ms: at,
                    kind: EventKind::IoError {
                        site,
                        count: 1 + rng.below(3) as u32,
                    },
                }),
                _ => events.push(FaultEvent {
                    at_ms: at,
                    kind: EventKind::DiskStall {
                        site,
                        ms: 200 + rng.below(800),
                    },
                }),
            }
        }
        slot += FAULT_SLOT_MS;
    }

    events.sort_by_key(|e| e.at_ms);
    Schedule { seed, events }
}

/// One cell's aggregate: a fault rate crossed with a healing arm.
pub struct CellSummary {
    /// The cell's fault rate (permille per slot).
    pub rate_permille: u32,
    /// Operations attempted across all trials.
    pub ops_total: u64,
    /// Operations committed.
    pub ops_ok: u64,
    /// Median read latency (ms) over committed reads.
    pub read_p50_ms: f64,
    /// 99th-percentile read latency (ms) over committed reads.
    pub read_p99_ms: f64,
    /// Torn tails truncated at recovery.
    pub torn_truncations: u64,
    /// WAL records lost to detected interior corruption.
    pub corrupt_detected: u64,
    /// Replicas quarantined.
    pub quarantines: u64,
    /// Quarantines healed by full anti-entropy pulls.
    pub heals: u64,
    /// CRC-collision tripwire (must stay zero).
    pub poison_escapes: u64,
    /// Served-while-quarantined tripwire (must stay zero).
    pub served_while_quarantined: u64,
}

impl CellSummary {
    /// Committed fraction over the cell.
    pub fn availability(&self) -> f64 {
        self.ops_ok as f64 / self.ops_total.max(1) as f64
    }
}

/// Runs one cell: `trials` paired trials at one rate, one arm.
fn run_cell(master_seed: u64, trials: usize, rate_permille: u32, healing: bool) -> CellSummary {
    // Group commit on both arms: without it every record syncs the
    // instant it is appended, so a torn write never has a volatile tail
    // to tear and the recovery-side truncation path would sit idle.
    let spec = if healing {
        ClusterSpec::majority(SERVERS, CLIENTS)
            .with_group_commit()
            .with_repair()
            .with_disk_faults()
    } else {
        ClusterSpec::majority(SERVERS, CLIENTS)
            .with_group_commit()
            .with_disk_faults()
    };
    let results = runner::run_trials(master_seed, trials, move |seed| {
        let schedule = build_schedule(seed, rate_permille);
        let run = run_schedule(&spec, &schedule);
        let mut lat = Vec::new();
        for op in &run.ops {
            if op.kind == OpKind::Read && op.outcome.is_ok() {
                lat.push(op.finished.since(op.started).as_millis_f64());
            }
        }
        (run.coverage, lat)
    });
    let mut s = CellSummary {
        rate_permille,
        ops_total: 0,
        ops_ok: 0,
        read_p50_ms: 0.0,
        read_p99_ms: 0.0,
        torn_truncations: 0,
        corrupt_detected: 0,
        quarantines: 0,
        heals: 0,
        poison_escapes: 0,
        served_while_quarantined: 0,
    };
    let mut lat = SampleSet::new();
    for (c, trial_lat) in results {
        s.ops_total += c.ops_ok + c.ops_failed;
        s.ops_ok += c.ops_ok;
        s.torn_truncations += c.torn_truncations;
        s.corrupt_detected += c.corrupt_records_detected;
        s.quarantines += c.quarantines;
        s.heals += c.requarantine_repairs;
        s.poison_escapes += c.poison_escapes;
        s.served_while_quarantined += c.served_while_quarantined;
        for x in trial_lat {
            lat.record(x);
        }
    }
    s.read_p50_ms = lat.try_quantile(0.50).unwrap_or(0.0);
    s.read_p99_ms = lat.try_quantile(0.99).unwrap_or(0.0);
    s
}

/// Runs the whole sweep: per rate, the healing-off and healing-on cells.
pub fn measure(master_seed: u64, trials: usize) -> Vec<(CellSummary, CellSummary)> {
    RATES_PERMILLE
        .iter()
        .map(|&rate| {
            (
                run_cell(master_seed, trials, rate, false),
                run_cell(master_seed, trials, rate, true),
            )
        })
        .collect()
}

fn pct(x: f64) -> String {
    format!("{:.2}%", 100.0 * x)
}

/// Builds the E14 report with an explicit per-cell trial count.
pub fn run_with(trials: usize) -> String {
    let cells = measure(0xE14, trials);
    let mut out = String::new();
    out.push_str("## E14 — Availability and read tail latency under faulty disks\n\n");
    out.push_str(&format!(
        "{trials} paired trials per cell; each runs a {SERVERS}-site \
         majority cluster for {} s of virtual time under a steady \
         workload (a read every {} ms, a write every {} s) while disk \
         faults fire at the swept rate: torn writes and at most one bit \
         flip per trial riding {} ms crash/recover cycles, plus \
         transient I/O errors and sync stalls on live servers. Both arms \
         of a trial replay the same schedule; only the self-healing \
         layer (anti-entropy repair + health-tracked clients) differs. \
         A bit flip corrupts durable WAL bytes, so the damaged replica \
         quarantines itself at recovery: with healing off it stays \
         quarantined for the rest of the trial; with healing on it \
         rebuilds from full peer pulls and rejoins.\n\n",
        HORIZON_MS / 1_000,
        READ_EVERY_MS,
        WRITE_EVERY_MS / 1_000,
        OUTAGE_MS,
    ));

    let mut t = Table::new(
        "Availability vs disk-fault rate",
        &[
            "fault rate (‰/slot)",
            "availability (healing off)",
            "availability (healing on)",
            "read p99 ms (off)",
            "read p99 ms (on)",
        ],
    );
    for (off, on) in &cells {
        t.row(&[
            off.rate_permille.to_string(),
            pct(off.availability()),
            pct(on.availability()),
            format!("{:.1}", off.read_p99_ms),
            format!("{:.1}", on.read_p99_ms),
        ]);
    }
    out.push_str(&t.to_markdown());
    out.push('\n');

    let mut t = Table::new(
        "Disk-fault pathology and repair (summed over trials)",
        &[
            "fault rate (‰/slot)",
            "torn tails truncated",
            "corrupt records detected",
            "quarantines (off / on)",
            "quarantines healed (off / on)",
        ],
    );
    for (off, on) in &cells {
        t.row(&[
            off.rate_permille.to_string(),
            format!("{}", off.torn_truncations + on.torn_truncations),
            format!("{}", off.corrupt_detected + on.corrupt_detected),
            format!("{} / {}", off.quarantines, on.quarantines),
            format!("{} / {}", off.heals, on.heals),
        ]);
    }
    out.push_str(&t.to_markdown());
    out.push('\n');

    let poison: u64 = cells
        .iter()
        .map(|(a, b)| {
            a.poison_escapes
                + b.poison_escapes
                + a.served_while_quarantined
                + b.served_while_quarantined
        })
        .sum();
    let (top_off, top_on) = cells.last().expect("at least one rate");
    out.push_str(&format!(
        "No-poisoned-read tripwires (CRC collisions, serves while \
         quarantined) across the whole sweep: **{poison}**. At the top \
         rate, availability healing off → on: **{} → {}**; a quarantined \
         replica without anti-entropy stays vote-less until the end of \
         the trial, so the healing arm holds the availability line as \
         the fault rate climbs. The non-zero p99 at rate 0 is \
         reader–writer contention, not disk damage: a read issued while \
         a write holds its prepare locks is refused busy everywhere and \
         backs off, and the health-tracked arm reroutes around the \
         locked replicas faster — that is why its tail sits lower at \
         every rate, while the climb *within* each arm is the disk-fault \
         signal.\n",
        pct(top_off.availability()),
        pct(top_on.availability()),
    ));
    out
}

/// Builds the full E14 report.
pub fn run() -> String {
    run_with(TRIALS)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedules_are_paired_and_rate_controlled() {
        // Pure function of (seed, rate): identical twice, zero faults at
        // rate zero, at most one bit flip at any rate.
        assert_eq!(build_schedule(7, 400), build_schedule(7, 400));
        let quiet = build_schedule(7, 0);
        assert!(quiet
            .events
            .iter()
            .all(|e| matches!(e.kind, EventKind::Read { .. } | EventKind::Write { .. })));
        for seed in 0..40u64 {
            let s = build_schedule(seed, 800);
            let flips = s
                .events
                .iter()
                .filter(|e| matches!(e.kind, EventKind::BitFlip { .. }))
                .count();
            assert!(flips <= 1, "seed {seed}: {flips} bit flips");
        }
    }

    #[test]
    fn healing_holds_the_availability_line_at_the_top_rate() {
        let cells = measure(0xE14, 6);
        let (base_off, base_on) = &cells[0];
        let (top_off, top_on) = cells.last().unwrap();
        // Rate zero: both arms are effectively fault-free and healthy.
        assert!(base_off.availability() > 0.99, "quiet baseline broke");
        assert!(base_on.availability() > 0.99);
        assert_eq!(base_off.quarantines + base_on.quarantines, 0);
        // Top rate: corruption happened, was detected, and only the
        // healing arm recovered its quarantined replicas.
        assert!(top_off.quarantines > 0, "no trial hit a quarantine");
        assert_eq!(top_off.heals, 0, "healing off must never heal");
        assert!(top_on.heals > 0, "healing on must heal quarantines");
        assert!(
            top_on.availability() >= top_off.availability(),
            "healing arm regressed availability: off {} vs on {}",
            top_off.availability(),
            top_on.availability()
        );
        // The tripwires stay silent everywhere.
        for (off, on) in &cells {
            assert_eq!(off.poison_escapes + on.poison_escapes, 0);
            assert_eq!(
                off.served_while_quarantined + on.served_while_quarantined,
                0
            );
        }
    }

    #[test]
    fn the_report_is_deterministic() {
        assert_eq!(run_with(2), run_with(2));
    }
}
