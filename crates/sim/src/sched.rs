//! The discrete-event engine: a virtual clock and an ordered queue of
//! actions to run against a user-supplied world value.
//!
//! Events are closures `FnOnce(&mut W, &mut Scheduler<W>)`. Running an event
//! may mutate the world and schedule further events; the engine guarantees
//! that events execute in nondecreasing time order, with ties broken by
//! scheduling order (FIFO), so a run is a deterministic function of the
//! initial world, the initial events, and any seeds captured by the
//! closures.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::{SimDuration, SimTime};

/// An action to execute at a scheduled instant.
pub type Action<W> = Box<dyn FnOnce(&mut W, &mut Scheduler<W>)>;

struct Scheduled<W> {
    at: SimTime,
    seq: u64,
    action: Action<W>,
}

impl<W> PartialEq for Scheduled<W> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<W> Eq for Scheduled<W> {}

impl<W> PartialOrd for Scheduled<W> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<W> Ord for Scheduled<W> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops
        // first. `seq` breaks ties FIFO for determinism.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// The event queue and virtual clock.
///
/// Handed to every executing action so it can read the current time and
/// schedule follow-up events.
pub struct Scheduler<W> {
    now: SimTime,
    seq: u64,
    executed: u64,
    heap: BinaryHeap<Scheduled<W>>,
}

/// Initial heap capacity: a protocol round on a small cluster keeps a few
/// dozen events in flight; pre-sizing avoids the first few heap regrowths on
/// every one of the hundreds of thousands of simulations a trial sweep runs.
const INITIAL_EVENT_CAPACITY: usize = 64;

impl<W> Scheduler<W> {
    fn new() -> Self {
        Scheduler {
            now: SimTime::ZERO,
            seq: 0,
            executed: 0,
            heap: BinaryHeap::with_capacity(INITIAL_EVENT_CAPACITY),
        }
    }

    /// The current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events executed so far.
    pub fn executed(&self) -> u64 {
        self.executed
    }

    /// Number of events currently pending.
    pub fn pending(&self) -> usize {
        self.heap.len()
    }

    /// Ensures capacity for at least `additional` more pending events.
    ///
    /// Batch schedulers (workload generators seeding thousands of arrivals,
    /// the trial runner priming a sweep) call this once up front so the hot
    /// loop never pays a heap regrowth.
    pub fn reserve(&mut self, additional: usize) {
        self.heap.reserve(additional);
    }

    /// Schedules `action` to run at absolute time `at`.
    ///
    /// An instant earlier than `now` is clamped to `now`: the action runs
    /// "immediately", after already-queued events at the current instant.
    pub fn at(&mut self, at: SimTime, action: impl FnOnce(&mut W, &mut Scheduler<W>) + 'static) {
        let at = at.max(self.now);
        self.push(at, Box::new(action));
    }

    /// Schedules `action` to run `delay` after the current instant.
    ///
    /// Fast path for the dominant schedule pattern ("this much later"): the
    /// instant `now + delay` is already `>= now`, so the clamping comparison
    /// in [`Scheduler::at`] is skipped.
    pub fn after(
        &mut self,
        delay: SimDuration,
        action: impl FnOnce(&mut W, &mut Scheduler<W>) + 'static,
    ) {
        self.push(self.now + delay, Box::new(action));
    }

    /// Schedules `action` to run at the current instant, after events
    /// already queued for this instant.
    pub fn immediately(&mut self, action: impl FnOnce(&mut W, &mut Scheduler<W>) + 'static) {
        self.push(self.now, Box::new(action));
    }

    /// Enqueues an already-boxed action at a time known to be `>= now`.
    ///
    /// Taking `Action<W>` (not `impl FnOnce`) keeps one monomorphic copy of
    /// the push path per world type instead of one per closure type.
    fn push(&mut self, at: SimTime, action: Action<W>) {
        debug_assert!(at >= self.now, "scheduling into the past");
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Scheduled { at, seq, action });
    }

    fn pop(&mut self) -> Option<Scheduled<W>> {
        self.heap.pop()
    }
}

/// A discrete-event simulation: a world plus its scheduler.
///
/// # Examples
///
/// ```
/// use wv_sim::{Sim, SimDuration, SimTime};
///
/// // Count how many pings fire in the first 100 ms of a 30 ms period.
/// let mut sim = Sim::new(0usize);
/// fn ping(count: &mut usize, sched: &mut wv_sim::Scheduler<usize>) {
///     *count += 1;
///     sched.after(SimDuration::from_millis(30), ping);
/// }
/// sim.scheduler().at(SimTime::ZERO, ping);
/// sim.run_until(SimTime::from_millis(100));
/// assert_eq!(sim.world, 4); // t = 0, 30, 60, 90
/// ```
pub struct Sim<W> {
    /// The simulated world; protocol and experiment state lives here.
    pub world: W,
    sched: Scheduler<W>,
}

impl<W> Sim<W> {
    /// Creates a simulation around an initial world.
    pub fn new(world: W) -> Self {
        Sim {
            world,
            sched: Scheduler::new(),
        }
    }

    /// The current virtual time.
    pub fn now(&self) -> SimTime {
        self.sched.now
    }

    /// Access to the scheduler, e.g. to seed initial events.
    pub fn scheduler(&mut self) -> &mut Scheduler<W> {
        &mut self.sched
    }

    /// Executes the single earliest pending event. Returns `false` if the
    /// queue was empty.
    pub fn step(&mut self) -> bool {
        match self.sched.pop() {
            None => false,
            Some(ev) => {
                debug_assert!(ev.at >= self.sched.now, "time went backwards");
                self.sched.now = ev.at;
                self.sched.executed += 1;
                (ev.action)(&mut self.world, &mut self.sched);
                true
            }
        }
    }

    /// Runs until the event queue is empty; returns the number of events
    /// executed by this call.
    pub fn run(&mut self) -> u64 {
        let before = self.sched.executed;
        while self.step() {}
        self.sched.executed - before
    }

    /// Runs events with timestamps `<= deadline`, then advances the clock to
    /// `deadline` (even if the queue drained early). Events scheduled beyond
    /// the deadline remain queued. Returns the number of events executed.
    pub fn run_until(&mut self, deadline: SimTime) -> u64 {
        let before = self.sched.executed;
        loop {
            match self.sched.heap.peek() {
                Some(ev) if ev.at <= deadline => {
                    self.step();
                }
                _ => break,
            }
        }
        if self.sched.now < deadline {
            self.sched.now = deadline;
        }
        self.sched.executed - before
    }

    /// Runs at most `max_events` events; returns how many actually ran.
    ///
    /// Useful as a runaway guard in tests of protocols that could livelock.
    pub fn run_capped(&mut self, max_events: u64) -> u64 {
        let mut n = 0;
        while n < max_events && self.step() {
            n += 1;
        }
        n
    }

    /// Consumes the simulation, returning the world.
    pub fn into_world(self) -> W {
        self.world
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_run_in_time_order() {
        let mut sim = Sim::new(Vec::<u64>::new());
        sim.scheduler()
            .at(SimTime::from_millis(30), |w: &mut Vec<u64>, _| w.push(30));
        sim.scheduler()
            .at(SimTime::from_millis(10), |w: &mut Vec<u64>, _| w.push(10));
        sim.scheduler()
            .at(SimTime::from_millis(20), |w: &mut Vec<u64>, _| w.push(20));
        assert_eq!(sim.run(), 3);
        assert_eq!(sim.world, vec![10, 20, 30]);
        assert_eq!(sim.now(), SimTime::from_millis(30));
    }

    #[test]
    fn ties_break_fifo() {
        let mut sim = Sim::new(Vec::<u32>::new());
        for i in 0..10u32 {
            sim.scheduler()
                .at(SimTime::from_millis(5), move |w: &mut Vec<u32>, _| {
                    w.push(i)
                });
        }
        sim.run();
        assert_eq!(sim.world, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn actions_can_schedule_more_actions() {
        let mut sim = Sim::new(0u64);
        fn chain(depth: u64) -> impl FnOnce(&mut u64, &mut Scheduler<u64>) {
            move |w, s| {
                *w += 1;
                if depth > 0 {
                    s.after(SimDuration::from_millis(1), chain(depth - 1));
                }
            }
        }
        sim.scheduler().immediately(chain(99));
        assert_eq!(sim.run(), 100);
        assert_eq!(sim.world, 100);
        assert_eq!(sim.now(), SimTime::from_millis(99));
    }

    #[test]
    fn past_times_clamp_to_now() {
        let mut sim = Sim::new(Vec::<&'static str>::new());
        sim.scheduler()
            .at(SimTime::from_millis(50), |w: &mut Vec<_>, s| {
                w.push("outer");
                // Scheduling "in the past" runs at the current instant instead.
                s.at(SimTime::from_millis(1), |w: &mut Vec<_>, _| {
                    w.push("clamped")
                });
            });
        sim.run();
        assert_eq!(sim.world, vec!["outer", "clamped"]);
        assert_eq!(sim.now(), SimTime::from_millis(50));
    }

    #[test]
    fn run_until_stops_at_deadline_and_advances_clock() {
        let mut sim = Sim::new(0u32);
        for t in [10u64, 20, 30, 40] {
            sim.scheduler()
                .at(SimTime::from_millis(t), |w: &mut u32, _| *w += 1);
        }
        assert_eq!(sim.run_until(SimTime::from_millis(25)), 2);
        assert_eq!(sim.world, 2);
        assert_eq!(sim.now(), SimTime::from_millis(25));
        // The rest still run later.
        assert_eq!(sim.run(), 2);
        assert_eq!(sim.world, 4);
        // Draining early still advances the clock to the deadline.
        assert_eq!(sim.run_until(SimTime::from_secs(1)), 0);
        assert_eq!(sim.now(), SimTime::from_secs(1));
    }

    #[test]
    fn run_capped_limits_execution() {
        let mut sim = Sim::new(0u64);
        fn forever(w: &mut u64, s: &mut Scheduler<u64>) {
            *w += 1;
            s.after(SimDuration::from_millis(1), forever);
        }
        sim.scheduler().immediately(forever);
        assert_eq!(sim.run_capped(500), 500);
        assert_eq!(sim.world, 500);
        assert_eq!(sim.scheduler().pending(), 1);
    }

    #[test]
    fn reserve_batches_without_changing_order() {
        let mut sim = Sim::new(Vec::<u64>::new());
        sim.scheduler().reserve(1000);
        for t in (0..1000u64).rev() {
            sim.scheduler()
                .at(SimTime::from_micros(t), move |w: &mut Vec<u64>, _| {
                    w.push(t)
                });
        }
        assert_eq!(sim.run(), 1000);
        assert!(sim.world.windows(2).all(|p| p[0] < p[1]));
    }

    #[test]
    fn executed_counts_all_events() {
        let mut sim = Sim::new(());
        sim.scheduler().immediately(|_, _| {});
        sim.scheduler().immediately(|_, _| {});
        sim.run();
        assert_eq!(sim.scheduler().executed(), 2);
    }
}
