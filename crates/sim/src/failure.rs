//! Crash/recovery schedules for availability experiments.
//!
//! The paper's blocking-probability analysis assumes each representative is
//! independently unavailable with some probability (0.01 in the example
//! table). This module provides the two ways the repository realises that
//! assumption in simulation:
//!
//! * [`FailureSchedule::bernoulli_snapshot`] — sample an up/down state per
//!   site once per trial, matching the closed-form model exactly.
//! * [`FailureSchedule::mttf_mttr`] — alternate exponentially distributed
//!   up and down intervals, giving a continuous-time process whose
//!   long-run unavailability is `mttr / (mttf + mttr)`.
//!
//! A schedule is a set of [`OutageWindow`]s per site, queried with
//! [`FailureSchedule::is_down`].

use crate::rng::DetRng;
use crate::time::{SimDuration, SimTime};

/// A half-open interval `[from, until)` during which a site is down.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OutageWindow {
    /// First instant of the outage.
    pub from: SimTime,
    /// First instant after the outage ends.
    pub until: SimTime,
}

impl OutageWindow {
    /// True if `t` falls inside the outage.
    pub fn contains(&self, t: SimTime) -> bool {
        self.from <= t && t < self.until
    }

    /// Length of the outage.
    pub fn length(&self) -> SimDuration {
        self.until.since(self.from)
    }
}

/// Per-site outage windows over a simulation horizon.
#[derive(Clone, Debug, Default)]
pub struct FailureSchedule {
    outages: Vec<Vec<OutageWindow>>,
}

impl FailureSchedule {
    /// A schedule for `sites` sites with no outages.
    pub fn none(sites: usize) -> Self {
        FailureSchedule {
            outages: vec![Vec::new(); sites],
        }
    }

    /// Number of sites covered by the schedule.
    pub fn sites(&self) -> usize {
        self.outages.len()
    }

    /// Adds an explicit outage window for `site`.
    ///
    /// # Panics
    ///
    /// Panics if `site` is out of range or the window is empty/inverted.
    pub fn add_outage(&mut self, site: usize, from: SimTime, until: SimTime) {
        assert!(site < self.outages.len(), "site {site} out of range");
        assert!(from < until, "outage window must be non-empty");
        self.outages[site].push(OutageWindow { from, until });
        self.outages[site].sort_by_key(|w| w.from);
    }

    /// A snapshot schedule: each site is down for the *entire* horizon with
    /// probability `p_down`, independently. This is the discrete model
    /// behind the paper's blocking-probability column.
    pub fn bernoulli_snapshot(
        sites: usize,
        p_down: f64,
        horizon: SimTime,
        rng: &mut DetRng,
    ) -> Self {
        let mut s = FailureSchedule::none(sites);
        for site in 0..sites {
            if rng.chance(p_down) {
                s.add_outage(site, SimTime::ZERO, horizon.max(SimTime::from_micros(1)));
            }
        }
        s
    }

    /// A continuous-time schedule: each site alternates exponentially
    /// distributed up intervals (mean `mttf`) and down intervals (mean
    /// `mttr`), independently, until `horizon`.
    pub fn mttf_mttr(
        sites: usize,
        mttf: SimDuration,
        mttr: SimDuration,
        horizon: SimTime,
        rng: &mut DetRng,
    ) -> Self {
        let mut s = FailureSchedule::none(sites);
        for site in 0..sites {
            let mut site_rng = rng.fork(site as u64 + 1);
            let mut t = SimTime::ZERO;
            loop {
                let up = SimDuration::from_millis_f64(site_rng.exponential(mttf.as_millis_f64()));
                t += up;
                if t >= horizon {
                    break;
                }
                let down_len =
                    SimDuration::from_millis_f64(site_rng.exponential(mttr.as_millis_f64()))
                        .max(SimDuration::from_micros(1));
                let end = (t + down_len).min(horizon);
                if t < end {
                    s.add_outage(site, t, end);
                }
                t = end;
                if t >= horizon {
                    break;
                }
            }
        }
        s
    }

    /// True if `site` is down at instant `t`. Sites outside the schedule
    /// are considered up.
    pub fn is_down(&self, site: usize, t: SimTime) -> bool {
        self.outages
            .get(site)
            .is_some_and(|ws| ws.iter().any(|w| w.contains(t)))
    }

    /// The outage windows recorded for `site`.
    pub fn windows(&self, site: usize) -> &[OutageWindow] {
        self.outages.get(site).map_or(&[], |v| v.as_slice())
    }

    /// Fraction of `[0, horizon)` during which `site` is down.
    pub fn downtime_fraction(&self, site: usize, horizon: SimTime) -> f64 {
        if horizon == SimTime::ZERO {
            return 0.0;
        }
        let down: u64 = self
            .windows(site)
            .iter()
            .map(|w| {
                let from = w.from.min(horizon);
                let until = w.until.min(horizon);
                until.since(from).as_micros()
            })
            .sum();
        down as f64 / horizon.as_micros() as f64
    }

    /// The next instant at or after `t` when `site`'s availability changes,
    /// or `None` if it never changes again. Lets simulations schedule
    /// crash/recover events exactly.
    pub fn next_transition(&self, site: usize, t: SimTime) -> Option<SimTime> {
        let mut best: Option<SimTime> = None;
        for w in self.windows(site) {
            for edge in [w.from, w.until] {
                if edge >= t {
                    best = Some(best.map_or(edge, |b| b.min(edge)));
                }
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn explicit_windows_answer_is_down() {
        let mut s = FailureSchedule::none(2);
        s.add_outage(0, SimTime::from_millis(10), SimTime::from_millis(20));
        assert!(!s.is_down(0, SimTime::from_millis(9)));
        assert!(s.is_down(0, SimTime::from_millis(10)));
        assert!(s.is_down(0, SimTime::from_millis(19)));
        assert!(!s.is_down(0, SimTime::from_millis(20)));
        assert!(!s.is_down(1, SimTime::from_millis(15)));
        // Unknown sites are up.
        assert!(!s.is_down(99, SimTime::from_millis(15)));
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn inverted_window_rejected() {
        let mut s = FailureSchedule::none(1);
        s.add_outage(0, SimTime::from_millis(20), SimTime::from_millis(10));
    }

    #[test]
    fn bernoulli_snapshot_matches_probability() {
        let rng = DetRng::new(77);
        let horizon = SimTime::from_secs(10);
        let trials = 5000;
        let mut down = 0;
        for t in 0..trials {
            let mut r = rng.fork(t);
            let s = FailureSchedule::bernoulli_snapshot(1, 0.3, horizon, &mut r);
            if s.is_down(0, SimTime::from_secs(5)) {
                down += 1;
            }
        }
        let frac = down as f64 / trials as f64;
        assert!((frac - 0.3).abs() < 0.03, "down fraction {frac}");
    }

    #[test]
    fn mttf_mttr_long_run_unavailability() {
        let mut rng = DetRng::new(123);
        let horizon = SimTime::from_secs(50_000);
        let mttf = SimDuration::from_secs(90);
        let mttr = SimDuration::from_secs(10);
        let s = FailureSchedule::mttf_mttr(4, mttf, mttr, horizon, &mut rng);
        for site in 0..4 {
            let frac = s.downtime_fraction(site, horizon);
            // Long-run unavailability should approach mttr/(mttf+mttr) = 0.1.
            assert!((frac - 0.1).abs() < 0.03, "site {site} downtime {frac}");
        }
    }

    #[test]
    fn mttf_mttr_empirical_interval_means_match_the_parameters() {
        // The long-run-fraction test above can pass with compensating
        // errors (e.g. doubled up AND down intervals). Pin the generator
        // down harder: the empirical means of the up and down intervals
        // themselves must match mttf and mttr. Down samples are window
        // lengths; up samples are the gaps between windows (including the
        // lead-in to the first). Intervals cut short by the horizon are
        // censored observations, not exponential draws, so they are
        // excluded.
        let mttf = SimDuration::from_secs(40);
        let mttr = SimDuration::from_secs(5);
        let horizon = SimTime::from_secs(4_000);
        let mut up_ms = Vec::new();
        let mut down_ms = Vec::new();
        for seed in 0..50u64 {
            let mut rng = DetRng::new(0x5EED ^ seed);
            let s = FailureSchedule::mttf_mttr(2, mttf, mttr, horizon, &mut rng);
            for site in 0..2 {
                let mut prev_end = SimTime::ZERO;
                for w in s.windows(site) {
                    up_ms.push(w.from.since(prev_end).as_millis_f64());
                    if w.until < horizon {
                        down_ms.push(w.length().as_millis_f64());
                    }
                    prev_end = w.until;
                }
            }
        }
        // ~90 cycles per site per seed: thousands of samples, so the
        // standard error of each mean is ~1% — a 10% band only fails on a
        // real generator bug, not on sampling noise.
        assert!(up_ms.len() > 2_000, "only {} up samples", up_ms.len());
        assert!(down_ms.len() > 2_000, "only {} down samples", down_ms.len());
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        let up_mean = mean(&up_ms);
        let down_mean = mean(&down_ms);
        let mttf_ms = mttf.as_millis_f64();
        let mttr_ms = mttr.as_millis_f64();
        assert!(
            (up_mean - mttf_ms).abs() < 0.1 * mttf_ms,
            "mean up interval {up_mean} ms vs mttf {mttf_ms} ms"
        );
        assert!(
            (down_mean - mttr_ms).abs() < 0.1 * mttr_ms,
            "mean down interval {down_mean} ms vs mttr {mttr_ms} ms"
        );
    }

    #[test]
    fn mttf_mttr_windows_are_within_horizon_and_ordered() {
        let mut rng = DetRng::new(9);
        let horizon = SimTime::from_secs(100);
        let s = FailureSchedule::mttf_mttr(
            3,
            SimDuration::from_secs(5),
            SimDuration::from_secs(1),
            horizon,
            &mut rng,
        );
        for site in 0..3 {
            let ws = s.windows(site);
            for w in ws {
                assert!(w.from < w.until);
                assert!(w.until <= horizon);
            }
            for pair in ws.windows(2) {
                assert!(pair[0].until <= pair[1].from, "overlapping outages");
            }
        }
    }

    #[test]
    fn next_transition_finds_edges() {
        let mut s = FailureSchedule::none(1);
        s.add_outage(0, SimTime::from_millis(10), SimTime::from_millis(20));
        s.add_outage(0, SimTime::from_millis(40), SimTime::from_millis(50));
        assert_eq!(
            s.next_transition(0, SimTime::ZERO),
            Some(SimTime::from_millis(10))
        );
        assert_eq!(
            s.next_transition(0, SimTime::from_millis(15)),
            Some(SimTime::from_millis(20))
        );
        assert_eq!(
            s.next_transition(0, SimTime::from_millis(25)),
            Some(SimTime::from_millis(40))
        );
        assert_eq!(s.next_transition(0, SimTime::from_millis(60)), None);
    }

    #[test]
    fn downtime_fraction_truncates_at_horizon() {
        let mut s = FailureSchedule::none(1);
        s.add_outage(0, SimTime::from_millis(50), SimTime::from_millis(150));
        let frac = s.downtime_fraction(0, SimTime::from_millis(100));
        assert!((frac - 0.5).abs() < 1e-9);
        assert_eq!(s.downtime_fraction(0, SimTime::ZERO), 0.0);
    }

    #[test]
    fn outage_window_helpers() {
        let w = OutageWindow {
            from: SimTime::from_millis(5),
            until: SimTime::from_millis(9),
        };
        assert_eq!(w.length(), SimDuration::from_millis(4));
        assert!(w.contains(SimTime::from_millis(5)));
        assert!(!w.contains(SimTime::from_millis(9)));
    }
}
