//! Statistics collection for experiment reporting.
//!
//! Two collectors cover every reporting need in the repository:
//!
//! * [`SampleSet`] keeps every observation and answers exact quantiles —
//!   right for per-operation latencies, where runs produce at most a few
//!   million points.
//! * [`Histogram`] keeps fixed log-spaced buckets with O(1) memory — right
//!   for long-running throughput simulations.
//!
//! Both produce a [`Summary`] for table printing.

/// Point statistics of an observed distribution.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Summary {
    /// Number of observations.
    pub count: u64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Minimum observation (0 if empty).
    pub min: f64,
    /// Maximum observation (0 if empty).
    pub max: f64,
    /// Median (exact for [`SampleSet`], interpolated for [`Histogram`]).
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
}

impl Summary {
    fn empty() -> Summary {
        Summary {
            count: 0,
            mean: 0.0,
            min: 0.0,
            max: 0.0,
            p50: 0.0,
            p95: 0.0,
            p99: 0.0,
        }
    }
}

/// An exact collector that retains every observation.
#[derive(Clone, Debug, Default)]
pub struct SampleSet {
    values: Vec<f64>,
    sorted: bool,
}

impl SampleSet {
    /// Creates an empty sample set.
    pub fn new() -> Self {
        SampleSet::default()
    }

    /// Records one observation. Non-finite values are ignored.
    pub fn record(&mut self, v: f64) {
        if v.is_finite() {
            self.values.push(v);
            self.sorted = false;
        }
    }

    /// Number of observations recorded.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True if no observations have been recorded.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Arithmetic mean, or 0 if empty.
    pub fn mean(&self) -> f64 {
        if self.values.is_empty() {
            0.0
        } else {
            self.values.iter().sum::<f64>() / self.values.len() as f64
        }
    }

    /// Sample standard deviation, or 0 for fewer than two observations.
    pub fn std_dev(&self) -> f64 {
        let n = self.values.len();
        if n < 2 {
            return 0.0;
        }
        let mean = self.mean();
        let var = self
            .values
            .iter()
            .map(|v| (v - mean) * (v - mean))
            .sum::<f64>()
            / (n - 1) as f64;
        var.sqrt()
    }

    /// Exact quantile by the nearest-rank method, or `None` when the series
    /// has fewer than two observations.
    ///
    /// A percentile of an empty series is undefined, and a percentile of a
    /// single sample is just that sample dressed up as a distribution —
    /// callers that would print either as a real quantile should show a
    /// blank instead. Use [`SampleSet::quantile`] when a best-effort scalar
    /// is acceptable.
    pub fn try_quantile(&mut self, q: f64) -> Option<f64> {
        if self.values.len() < 2 {
            return None;
        }
        Some(self.quantile(q))
    }

    /// Exact quantile by the nearest-rank method; `q` in `[0, 1]`.
    ///
    /// Returns 0 on an empty series; prefer [`SampleSet::try_quantile`] when
    /// the caller can distinguish "no data" from a genuine zero.
    pub fn quantile(&mut self, q: f64) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        if !self.sorted {
            self.values
                .sort_by(|a, b| a.partial_cmp(b).expect("non-finite filtered at record"));
            self.sorted = true;
        }
        let q = q.clamp(0.0, 1.0);
        let idx = ((q * self.values.len() as f64).ceil() as usize).max(1) - 1;
        self.values[idx.min(self.values.len() - 1)]
    }

    /// Produces a [`Summary`] of the recorded observations.
    pub fn summary(&mut self) -> Summary {
        if self.values.is_empty() {
            return Summary::empty();
        }
        let mean = self.mean();
        let p50 = self.quantile(0.50);
        let p95 = self.quantile(0.95);
        let p99 = self.quantile(0.99);
        // `quantile` sorted the values; min/max are the ends.
        Summary {
            count: self.values.len() as u64,
            mean,
            min: self.values[0],
            max: *self.values.last().expect("non-empty"),
            p50,
            p95,
            p99,
        }
    }

    /// Read-only view of the raw observations (unspecified order).
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Merges another sample set into this one.
    pub fn merge(&mut self, other: &SampleSet) {
        self.values.extend_from_slice(&other.values);
        self.sorted = false;
    }
}

/// A constant-memory histogram with log-spaced buckets.
///
/// Buckets span `[min_value, max_value]` geometrically; observations outside
/// the range clamp into the first/last bucket. Quantiles are answered by
/// linear interpolation inside the winning bucket, giving a relative error
/// bounded by the bucket width ratio.
#[derive(Clone, Debug)]
pub struct Histogram {
    min_value: f64,
    growth: f64,
    counts: Vec<u64>,
    total: u64,
    sum: f64,
    observed_min: f64,
    observed_max: f64,
}

impl Histogram {
    /// Creates a histogram covering `[min_value, max_value]` with
    /// `buckets` log-spaced buckets.
    ///
    /// # Panics
    ///
    /// Panics if `min_value <= 0`, `max_value <= min_value`, or
    /// `buckets == 0`; histogram geometry is a programming decision, not a
    /// runtime input.
    pub fn new(min_value: f64, max_value: f64, buckets: usize) -> Self {
        assert!(min_value > 0.0, "log-spaced buckets need min_value > 0");
        assert!(max_value > min_value, "empty histogram range");
        assert!(buckets > 0, "need at least one bucket");
        let growth = (max_value / min_value).powf(1.0 / buckets as f64);
        Histogram {
            min_value,
            growth,
            counts: vec![0; buckets],
            total: 0,
            sum: 0.0,
            observed_min: f64::INFINITY,
            observed_max: f64::NEG_INFINITY,
        }
    }

    /// A histogram suited to millisecond latencies from 0.01 ms to 100 s.
    pub fn for_latency_ms() -> Self {
        Histogram::new(0.01, 100_000.0, 280)
    }

    fn bucket_of(&self, v: f64) -> usize {
        if v <= self.min_value {
            return 0;
        }
        let idx = (v / self.min_value).ln() / self.growth.ln();
        (idx as usize).min(self.counts.len() - 1)
    }

    fn bucket_bounds(&self, idx: usize) -> (f64, f64) {
        let lo = self.min_value * self.growth.powi(idx as i32);
        (lo, lo * self.growth)
    }

    /// Records one observation. Non-finite values are ignored.
    pub fn record(&mut self, v: f64) {
        if !v.is_finite() {
            return;
        }
        let idx = self.bucket_of(v);
        self.counts[idx] += 1;
        self.total += 1;
        self.sum += v;
        self.observed_min = self.observed_min.min(v);
        self.observed_max = self.observed_max.max(v);
    }

    /// Number of observations recorded.
    pub fn len(&self) -> u64 {
        self.total
    }

    /// True if no observations have been recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Arithmetic mean, or 0 if empty.
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum / self.total as f64
        }
    }

    /// Approximate quantile, or `None` when the histogram holds fewer than
    /// two observations (see [`SampleSet::try_quantile`] for the rationale).
    pub fn try_quantile(&self, q: f64) -> Option<f64> {
        if self.total < 2 {
            return None;
        }
        Some(self.quantile(q))
    }

    /// Approximate quantile; `q` in `[0, 1]`.
    ///
    /// Returns 0 on an empty histogram; prefer [`Histogram::try_quantile`]
    /// when the caller can distinguish "no data" from a genuine zero.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = (q * self.total as f64).ceil().max(1.0) as u64;
        let mut cum = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if cum + c >= target {
                let (lo, hi) = self.bucket_bounds(idx);
                let within = (target - cum) as f64 / c as f64;
                let est = lo + (hi - lo) * within;
                // Never report outside what was actually observed.
                return est.clamp(self.observed_min, self.observed_max);
            }
            cum += c;
        }
        self.observed_max
    }

    /// Produces a [`Summary`]; quantiles are interpolated.
    pub fn summary(&self) -> Summary {
        if self.total == 0 {
            return Summary::empty();
        }
        Summary {
            count: self.total,
            mean: self.mean(),
            min: self.observed_min,
            max: self.observed_max,
            p50: self.quantile(0.50),
            p95: self.quantile(0.95),
            p99: self.quantile(0.99),
        }
    }

    /// Merges another histogram with identical geometry.
    ///
    /// # Panics
    ///
    /// Panics if the two histograms were built with different geometry.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(self.counts.len(), other.counts.len(), "geometry mismatch");
        assert!(
            (self.min_value - other.min_value).abs() < f64::EPSILON
                && (self.growth - other.growth).abs() < f64::EPSILON,
            "geometry mismatch"
        );
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.sum += other.sum;
        self.observed_min = self.observed_min.min(other.observed_min);
        self.observed_max = self.observed_max.max(other.observed_max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_set_exact_stats() {
        let mut s = SampleSet::new();
        for v in [5.0, 1.0, 3.0, 2.0, 4.0] {
            s.record(v);
        }
        assert_eq!(s.len(), 5);
        assert_eq!(s.mean(), 3.0);
        assert_eq!(s.quantile(0.5), 3.0);
        assert_eq!(s.quantile(0.0), 1.0);
        assert_eq!(s.quantile(1.0), 5.0);
        let sum = s.summary();
        assert_eq!(sum.min, 1.0);
        assert_eq!(sum.max, 5.0);
        assert_eq!(sum.count, 5);
    }

    #[test]
    fn sample_set_ignores_non_finite() {
        let mut s = SampleSet::new();
        s.record(f64::NAN);
        s.record(f64::INFINITY);
        s.record(2.0);
        assert_eq!(s.len(), 1);
        assert_eq!(s.mean(), 2.0);
    }

    #[test]
    fn sample_set_empty_summary_is_zeroed() {
        let mut s = SampleSet::new();
        let sum = s.summary();
        assert_eq!(sum.count, 0);
        assert_eq!(sum.mean, 0.0);
        assert_eq!(sum.p99, 0.0);
    }

    #[test]
    fn sample_set_std_dev() {
        let mut s = SampleSet::new();
        for v in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.record(v);
        }
        // Known dataset: population std = 2, sample std = 2.138...
        assert!((s.std_dev() - 2.138).abs() < 0.01);
    }

    #[test]
    fn sample_set_merge() {
        let mut a = SampleSet::new();
        let mut b = SampleSet::new();
        a.record(1.0);
        b.record(3.0);
        a.merge(&b);
        assert_eq!(a.len(), 2);
        assert_eq!(a.mean(), 2.0);
    }

    #[test]
    fn histogram_mean_is_exact() {
        let mut h = Histogram::for_latency_ms();
        for v in [65.0, 75.0, 100.0, 750.0] {
            h.record(v);
        }
        assert_eq!(h.len(), 4);
        assert!((h.mean() - 247.5).abs() < 1e-9);
    }

    #[test]
    fn histogram_quantiles_are_close() {
        let mut h = Histogram::for_latency_ms();
        for i in 1..=1000 {
            h.record(i as f64);
        }
        let p50 = h.quantile(0.5);
        let p99 = h.quantile(0.99);
        assert!((p50 - 500.0).abs() / 500.0 < 0.05, "p50 {p50}");
        assert!((p99 - 990.0).abs() / 990.0 < 0.05, "p99 {p99}");
        assert_eq!(h.quantile(0.0).round(), 1.0);
    }

    #[test]
    fn histogram_clamps_out_of_range() {
        let mut h = Histogram::new(1.0, 10.0, 4);
        h.record(0.001);
        h.record(1e9);
        assert_eq!(h.len(), 2);
        let s = h.summary();
        assert_eq!(s.min, 0.001);
        assert_eq!(s.max, 1e9);
        // Quantiles stay within observed bounds despite clamped buckets.
        assert!(h.quantile(0.5) >= 0.001 && h.quantile(0.5) <= 1e9);
    }

    #[test]
    fn histogram_merge() {
        let mut a = Histogram::new(1.0, 100.0, 10);
        let mut b = Histogram::new(1.0, 100.0, 10);
        a.record(2.0);
        b.record(50.0);
        a.merge(&b);
        assert_eq!(a.len(), 2);
        assert!((a.mean() - 26.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "geometry mismatch")]
    fn histogram_merge_rejects_mismatched_geometry() {
        let mut a = Histogram::new(1.0, 100.0, 10);
        let b = Histogram::new(1.0, 100.0, 20);
        a.merge(&b);
    }

    #[test]
    fn histogram_empty() {
        let h = Histogram::for_latency_ms();
        assert!(h.is_empty());
        assert_eq!(h.quantile(0.5), 0.0);
        assert_eq!(h.summary().count, 0);
    }

    #[test]
    fn merge_empty_and_nonempty_commutes() {
        // empty ⊕ nonempty and nonempty ⊕ empty must agree: trial merging
        // folds whatever the workers produced, including idle workers.
        let mut filled = SampleSet::new();
        for v in [4.0, 1.0, 9.0] {
            filled.record(v);
        }
        let mut left = SampleSet::new();
        left.merge(&filled);
        let mut right = filled.clone();
        right.merge(&SampleSet::new());
        assert_eq!(left.summary(), right.summary());
        assert_eq!(left.len(), 3);

        let mut hf = Histogram::new(1.0, 100.0, 10);
        hf.record(2.0);
        hf.record(60.0);
        let mut hl = Histogram::new(1.0, 100.0, 10);
        hl.merge(&hf);
        let mut hr = hf.clone();
        hr.merge(&Histogram::new(1.0, 100.0, 10));
        assert_eq!(hl.summary(), hr.summary());
        assert_eq!(hl.len(), 2);

        // Merging two empties stays empty and quantile-less.
        let mut ee = SampleSet::new();
        ee.merge(&SampleSet::new());
        assert!(ee.is_empty());
        assert_eq!(ee.try_quantile(0.5), None);
    }

    #[test]
    fn single_sample_quantiles_after_merge() {
        // Two single-sample sets merge into a real two-point distribution;
        // each alone still refuses to fake a percentile.
        let mut a = SampleSet::new();
        let mut b = SampleSet::new();
        a.record(10.0);
        b.record(30.0);
        assert_eq!(a.try_quantile(0.5), None);
        assert_eq!(b.try_quantile(0.5), None);
        a.merge(&b);
        assert_eq!(a.try_quantile(0.0), Some(10.0));
        assert_eq!(a.try_quantile(1.0), Some(30.0));
        assert_eq!(a.quantile(0.5), 10.0); // nearest-rank on n=2

        let mut ha = Histogram::new(1.0, 100.0, 10);
        let mut hb = Histogram::new(1.0, 100.0, 10);
        ha.record(10.0);
        hb.record(30.0);
        assert_eq!(ha.try_quantile(0.5), None);
        ha.merge(&hb);
        let q = ha.try_quantile(0.5).expect("two samples after merge");
        assert!((10.0..=30.0).contains(&q), "p50 {q} outside observed range");
    }

    #[test]
    fn merge_order_does_not_change_results() {
        // Workers may finish in any order; the runner merges in trial
        // index order, but the collectors themselves must not care.
        let chunks: [&[f64]; 3] = [&[5.0, 2.0], &[], &[8.0, 2.0, 11.0]];
        let build = |order: &[usize]| {
            let mut s = SampleSet::new();
            let mut h = Histogram::for_latency_ms();
            for &i in order {
                let mut cs = SampleSet::new();
                let mut ch = Histogram::for_latency_ms();
                for &v in chunks[i] {
                    cs.record(v);
                    ch.record(v);
                }
                s.merge(&cs);
                h.merge(&ch);
            }
            (s.summary(), h.summary())
        };
        let forward = build(&[0, 1, 2]);
        for order in [[2, 1, 0], [1, 2, 0], [2, 0, 1], [0, 2, 1], [1, 0, 2]] {
            assert_eq!(build(&order), forward, "merge order {order:?} diverged");
        }
    }

    #[test]
    fn try_quantile_is_none_on_empty_and_single_sample() {
        let mut s = SampleSet::new();
        assert_eq!(s.try_quantile(0.5), None, "empty series has no percentile");
        s.record(42.0);
        assert_eq!(s.try_quantile(0.99), None, "one sample is not a quantile");
        s.record(43.0);
        assert_eq!(s.try_quantile(0.0), Some(42.0));
        assert_eq!(s.try_quantile(1.0), Some(43.0));

        let mut h = Histogram::for_latency_ms();
        assert_eq!(h.try_quantile(0.5), None);
        h.record(10.0);
        assert_eq!(h.try_quantile(0.5), None);
        h.record(20.0);
        assert!(h.try_quantile(0.5).is_some());
    }
}
