//! Deterministic, forkable random-number streams.
//!
//! Every source of randomness in the repository flows through [`DetRng`] so
//! that an experiment is a pure function of its seed. Substreams are derived
//! with [`DetRng::fork`], which mixes a label into the parent seed; forking
//! gives each simulated site, link, and workload generator an independent
//! stream whose draws do not shift when an unrelated component consumes more
//! or fewer random numbers.
//!
//! The same mixing function is exposed as [`derive_seed`] so that batch
//! drivers (the parallel trial runner in `wv-bench`) can compute the seed of
//! trial *i* directly from `(master_seed, i)` without constructing
//! intermediate generators — the derivation is a pure function, which is what
//! makes a thread-pool fan-out bit-identical to a sequential loop.
//!
//! The generator itself is xoshiro256++ seeded through SplitMix64: small
//! state, fast, excellent statistical quality for simulation, and fully
//! self-contained (no external crates), so results are reproducible across
//! toolchains forever.

/// A seeded random stream with stable forking.
///
/// Wraps a xoshiro256++ generator (a small-state, fast, non-cryptographic
/// generator — exactly right for simulation) and remembers the seed it was
/// built from so that child streams can be derived reproducibly.
#[derive(Clone, Debug)]
pub struct DetRng {
    seed: u64,
    state: [u64; 4],
}

impl DetRng {
    /// Creates a stream from a seed.
    pub fn new(seed: u64) -> Self {
        // Expand the 64-bit seed into 256 bits of state with SplitMix64, as
        // the xoshiro authors recommend; the expansion guarantees a nonzero
        // state for every seed.
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        DetRng {
            seed,
            state: [next(), next(), next(), next()],
        }
    }

    /// The seed this stream was created from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Derives an independent child stream identified by `label`.
    ///
    /// The child's seed depends only on the parent's *seed* and the label,
    /// not on how many values the parent has produced, so the set of
    /// substreams in a simulation is fixed at construction time.
    pub fn fork(&self, label: u64) -> DetRng {
        DetRng::new(derive_seed(self.seed, label))
    }

    /// Derives a child stream from a string label.
    pub fn fork_named(&self, label: &str) -> DetRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in label.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        self.fork(h)
    }

    /// Draws a uniformly distributed `f64` in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        // 53 random mantissa bits scaled into [0, 1).
        (self.next() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Draws a uniformly distributed `u64`.
    pub fn u64(&mut self) -> u64 {
        self.next()
    }

    /// Draws a uniform integer in `[0, n)`. Panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0) is meaningless");
        // Rejection sampling on the top of the range keeps the draw unbiased
        // for every n, not just powers of two.
        let zone = u64::MAX - (u64::MAX % n);
        loop {
            let v = self.next();
            if v < zone {
                return v % n;
            }
        }
    }

    /// Draws a uniform integer in the inclusive range `[lo, hi]`.
    pub fn range_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "empty range");
        let span = hi - lo;
        if span == u64::MAX {
            return self.next();
        }
        lo + self.below(span + 1)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.f64() < p
        }
    }

    /// Draws from the exponential distribution with the given mean.
    ///
    /// Used for Poisson inter-arrival times and memoryless failure models.
    /// A non-positive mean yields zero.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        if mean <= 0.0 {
            return 0.0;
        }
        // Inverse-CDF sampling; `1 - u` keeps the argument of `ln` nonzero.
        let u: f64 = self.f64();
        -mean * (1.0_f64 - u).ln()
    }

    /// Draws from the normal distribution via the Box–Muller transform.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        if std_dev <= 0.0 {
            return mean;
        }
        let u1: f64 = 1.0 - self.f64(); // in (0, 1]
        let u2: f64 = self.f64();
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        mean + std_dev * z
    }

    /// Chooses a uniformly random element of a slice.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> Option<&'a T> {
        if items.is_empty() {
            None
        } else {
            let idx = self.below(items.len() as u64) as usize;
            Some(&items[idx])
        }
    }

    /// Produces a uniformly random permutation of `0..n` (Fisher–Yates).
    pub fn permutation(&mut self, n: usize) -> Vec<usize> {
        let mut v: Vec<usize> = (0..n).collect();
        for i in (1..n).rev() {
            let j = self.below(i as u64 + 1) as usize;
            v.swap(i, j);
        }
        v
    }

    /// Shuffles a slice in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }

    /// Advances the xoshiro256++ state and returns the next output.
    fn next(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// Derives an independent stream seed from a master seed and a label
/// (SplitMix64-style avalanche mix).
///
/// This is the pure function behind [`DetRng::fork`]: `derive_seed(m, i)`
/// equals `DetRng::new(m).fork(i).seed()` without touching a generator. A
/// trial driver can therefore hand trial *i* the seed `derive_seed(master,
/// i)` from any thread, in any order, and every trial sees exactly the
/// stream it would have seen in a sequential loop.
pub fn derive_seed(master_seed: u64, label: u64) -> u64 {
    let mut z = master_seed ^ label.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = DetRng::new(42);
        let mut b = DetRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.u64(), b.u64());
        }
    }

    #[test]
    fn forks_are_independent_of_parent_consumption() {
        let parent1 = DetRng::new(7);
        let mut parent2 = DetRng::new(7);
        // Consume from parent2 before forking; the fork must be unaffected.
        for _ in 0..50 {
            parent2.u64();
        }
        let mut c1 = parent1.fork(3);
        let mut c2 = parent2.fork(3);
        for _ in 0..20 {
            assert_eq!(c1.u64(), c2.u64());
        }
    }

    #[test]
    fn distinct_labels_give_distinct_streams() {
        let root = DetRng::new(1);
        let mut a = root.fork(1);
        let mut b = root.fork(2);
        let same = (0..32).filter(|_| a.u64() == b.u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn named_forks_are_stable() {
        let root = DetRng::new(9);
        assert_eq!(
            root.fork_named("site-0").u64(),
            root.fork_named("site-0").u64()
        );
        assert_ne!(
            root.fork_named("site-0").seed(),
            root.fork_named("site-1").seed()
        );
    }

    #[test]
    fn derive_seed_matches_fork() {
        let root = DetRng::new(0xDEAD_BEEF);
        for label in [0u64, 1, 2, 999, u64::MAX] {
            assert_eq!(derive_seed(0xDEAD_BEEF, label), root.fork(label).seed());
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = DetRng::new(5);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        assert!(!r.chance(-0.5));
        assert!(r.chance(1.5));
    }

    #[test]
    fn f64_is_in_unit_interval() {
        let mut r = DetRng::new(3);
        for _ in 0..10_000 {
            let x = r.f64();
            assert!((0.0..1.0).contains(&x), "out of range: {x}");
        }
    }

    #[test]
    fn exponential_mean_is_close() {
        let mut r = DetRng::new(11);
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| r.exponential(10.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 10.0).abs() < 0.5, "mean {mean} too far from 10");
        assert_eq!(r.exponential(0.0), 0.0);
    }

    #[test]
    fn normal_moments_are_close() {
        let mut r = DetRng::new(13);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| r.normal(5.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.3, "var {var}");
        assert_eq!(r.normal(3.0, 0.0), 3.0);
    }

    #[test]
    fn permutation_is_a_bijection() {
        let mut r = DetRng::new(17);
        let p = r.permutation(100);
        let mut seen = [false; 100];
        for &i in &p {
            assert!(!seen[i]);
            seen[i] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn below_and_range_bounds() {
        let mut r = DetRng::new(19);
        for _ in 0..1000 {
            assert!(r.below(7) < 7);
            let x = r.range_inclusive(3, 5);
            assert!((3..=5).contains(&x));
        }
    }

    #[test]
    fn below_small_n_covers_all_values() {
        let mut r = DetRng::new(29);
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[r.below(5) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "coverage: {seen:?}");
    }

    #[test]
    fn choose_empty_is_none() {
        let mut r = DetRng::new(23);
        let empty: &[u32] = &[];
        assert!(r.choose(empty).is_none());
        assert_eq!(r.choose(&[42]), Some(&42));
    }
}
