//! Deterministic, forkable random-number streams.
//!
//! Every source of randomness in the repository flows through [`DetRng`] so
//! that an experiment is a pure function of its seed. Substreams are derived
//! with [`DetRng::fork`], which mixes a label into the parent seed; forking
//! gives each simulated site, link, and workload generator an independent
//! stream whose draws do not shift when an unrelated component consumes more
//! or fewer random numbers.

use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};

/// A seeded random stream with stable forking.
///
/// Wraps [`SmallRng`] (a small-state, fast, non-cryptographic generator —
/// exactly right for simulation) and remembers the seed it was built from so
/// that child streams can be derived reproducibly.
#[derive(Clone, Debug)]
pub struct DetRng {
    seed: u64,
    inner: SmallRng,
}

impl DetRng {
    /// Creates a stream from a seed.
    pub fn new(seed: u64) -> Self {
        DetRng {
            seed,
            inner: SmallRng::seed_from_u64(seed),
        }
    }

    /// The seed this stream was created from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Derives an independent child stream identified by `label`.
    ///
    /// The child's seed depends only on the parent's *seed* and the label,
    /// not on how many values the parent has produced, so the set of
    /// substreams in a simulation is fixed at construction time.
    pub fn fork(&self, label: u64) -> DetRng {
        DetRng::new(mix(self.seed, label))
    }

    /// Derives a child stream from a string label.
    pub fn fork_named(&self, label: &str) -> DetRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in label.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        self.fork(h)
    }

    /// Draws a uniformly distributed `f64` in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Draws a uniformly distributed `u64`.
    pub fn u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Draws a uniform integer in `[0, n)`. Panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0) is meaningless");
        self.inner.gen_range(0..n)
    }

    /// Draws a uniform integer in the inclusive range `[lo, hi]`.
    pub fn range_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "empty range");
        self.inner.gen_range(lo..=hi)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.inner.gen::<f64>() < p
        }
    }

    /// Draws from the exponential distribution with the given mean.
    ///
    /// Used for Poisson inter-arrival times and memoryless failure models.
    /// A non-positive mean yields zero.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        if mean <= 0.0 {
            return 0.0;
        }
        // Inverse-CDF sampling; `1 - u` keeps the argument of `ln` nonzero.
        let u: f64 = self.inner.gen::<f64>();
        -mean * (1.0_f64 - u).ln()
    }

    /// Draws from the normal distribution via the Box–Muller transform.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        if std_dev <= 0.0 {
            return mean;
        }
        let u1: f64 = 1.0 - self.inner.gen::<f64>(); // in (0, 1]
        let u2: f64 = self.inner.gen::<f64>();
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        mean + std_dev * z
    }

    /// Chooses a uniformly random element of a slice.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> Option<&'a T> {
        if items.is_empty() {
            None
        } else {
            let idx = self.below(items.len() as u64) as usize;
            Some(&items[idx])
        }
    }

    /// Produces a uniformly random permutation of `0..n` (Fisher–Yates).
    pub fn permutation(&mut self, n: usize) -> Vec<usize> {
        let mut v: Vec<usize> = (0..n).collect();
        for i in (1..n).rev() {
            let j = self.below(i as u64 + 1) as usize;
            v.swap(i, j);
        }
        v
    }

    /// Shuffles a slice in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }
}

impl RngCore for DetRng {
    fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.inner.fill_bytes(dest)
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.inner.try_fill_bytes(dest)
    }
}

/// SplitMix64-style avalanche mix of a seed and a label.
fn mix(seed: u64, label: u64) -> u64 {
    let mut z = seed ^ label.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = DetRng::new(42);
        let mut b = DetRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.u64(), b.u64());
        }
    }

    #[test]
    fn forks_are_independent_of_parent_consumption() {
        let parent1 = DetRng::new(7);
        let mut parent2 = DetRng::new(7);
        // Consume from parent2 before forking; the fork must be unaffected.
        for _ in 0..50 {
            parent2.u64();
        }
        let mut c1 = parent1.fork(3);
        let mut c2 = parent2.fork(3);
        for _ in 0..20 {
            assert_eq!(c1.u64(), c2.u64());
        }
    }

    #[test]
    fn distinct_labels_give_distinct_streams() {
        let root = DetRng::new(1);
        let mut a = root.fork(1);
        let mut b = root.fork(2);
        let same = (0..32).filter(|_| a.u64() == b.u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn named_forks_are_stable() {
        let root = DetRng::new(9);
        assert_eq!(
            root.fork_named("site-0").u64(),
            root.fork_named("site-0").u64()
        );
        assert_ne!(
            root.fork_named("site-0").seed(),
            root.fork_named("site-1").seed()
        );
    }

    #[test]
    fn chance_extremes() {
        let mut r = DetRng::new(5);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        assert!(!r.chance(-0.5));
        assert!(r.chance(1.5));
    }

    #[test]
    fn exponential_mean_is_close() {
        let mut r = DetRng::new(11);
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| r.exponential(10.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 10.0).abs() < 0.5, "mean {mean} too far from 10");
        assert_eq!(r.exponential(0.0), 0.0);
    }

    #[test]
    fn normal_moments_are_close() {
        let mut r = DetRng::new(13);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| r.normal(5.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.3, "var {var}");
        assert_eq!(r.normal(3.0, 0.0), 3.0);
    }

    #[test]
    fn permutation_is_a_bijection() {
        let mut r = DetRng::new(17);
        let p = r.permutation(100);
        let mut seen = [false; 100];
        for &i in &p {
            assert!(!seen[i]);
            seen[i] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn below_and_range_bounds() {
        let mut r = DetRng::new(19);
        for _ in 0..1000 {
            assert!(r.below(7) < 7);
            let x = r.range_inclusive(3, 5);
            assert!((3..=5).contains(&x));
        }
    }

    #[test]
    fn choose_empty_is_none() {
        let mut r = DetRng::new(23);
        let empty: &[u32] = &[];
        assert!(r.choose(empty).is_none());
        assert_eq!(r.choose(&[42]), Some(&42));
    }
}
