//! A minimal JSON reader/writer for replay artifacts.
//!
//! The workspace builds offline with no serde, so the shrinker's replay
//! artifacts use this hand-rolled implementation instead. It covers
//! exactly what the artifact schema needs — objects, arrays, strings,
//! booleans, and *unsigned integers* — and nothing more. Floats, escapes
//! beyond the JSON basics, and non-integer numbers are out of scope; the
//! schema never produces them.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value (integers only; the artifact schema has no floats).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer.
    Int(u64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object. `BTreeMap` keeps key order deterministic.
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// The value at `key`, if this is an object that has it.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(map) => map.get(key),
            _ => None,
        }
    }

    /// This value as an integer.
    pub fn as_int(&self) -> Option<u64> {
        match self {
            Value::Int(n) => Some(*n),
            _ => None,
        }
    }

    /// This value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// This value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// This value as an array slice.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Serialises compactly (no whitespace), with object keys in
    /// `BTreeMap` order — the same input always produces the same bytes.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Int(n) => {
                let _ = write!(out, "{n}");
            }
            Value::Str(s) => write_string(s, out),
            Value::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Value::Object(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses a JSON document. Returns `None` on any syntax error or on
/// trailing garbage after the top-level value.
pub fn parse(input: &str) -> Option<Value> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos == p.bytes.len() {
        Some(v)
    } else {
        None
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> Option<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Some(())
        } else {
            None
        }
    }

    fn literal(&mut self, word: &str) -> Option<()> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Some(())
        } else {
            None
        }
    }

    fn value(&mut self) -> Option<Value> {
        self.skip_ws();
        match self.peek()? {
            b'n' => self.literal("null").map(|()| Value::Null),
            b't' => self.literal("true").map(|()| Value::Bool(true)),
            b'f' => self.literal("false").map(|()| Value::Bool(false)),
            b'"' => self.string().map(Value::Str),
            b'[' => self.array(),
            b'{' => self.object(),
            b'0'..=b'9' => self.integer(),
            _ => None,
        }
    }

    fn integer(&mut self) -> Option<Value> {
        let start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).ok()?;
        text.parse::<u64>().ok().map(Value::Int)
    }

    fn string(&mut self) -> Option<String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek()? {
                b'"' => {
                    self.pos += 1;
                    return Some(out);
                }
                b'\\' => {
                    self.pos += 1;
                    match self.peek()? {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self.bytes.get(self.pos + 1..self.pos + 5)?;
                            let code =
                                u32::from_str_radix(std::str::from_utf8(hex).ok()?, 16).ok()?;
                            out.push(char::from_u32(code)?);
                            self.pos += 4;
                        }
                        _ => return None,
                    }
                    self.pos += 1;
                }
                _ => {
                    // Consume one UTF-8 character, not one byte.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..]).ok()?;
                    let c = rest.chars().next()?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Option<Value> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Some(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek()? {
                b',' => {
                    self.pos += 1;
                }
                b']' => {
                    self.pos += 1;
                    return Some(Value::Array(items));
                }
                _ => return None,
            }
        }
    }

    fn object(&mut self) -> Option<Value> {
        self.eat(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Some(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek()? {
                b',' => {
                    self.pos += 1;
                }
                b'}' => {
                    self.pos += 1;
                    return Some(Value::Object(map));
                }
                _ => return None,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obj(pairs: &[(&str, Value)]) -> Value {
        Value::Object(
            pairs
                .iter()
                .map(|(k, v)| ((*k).to_string(), v.clone()))
                .collect(),
        )
    }

    #[test]
    fn round_trips_the_artifact_shapes() {
        let doc = obj(&[
            ("schema", Value::Str("wv-chaos-repro/1".into())),
            ("seed", Value::Int(18446744073709551615)),
            (
                "events",
                Value::Array(vec![
                    obj(&[
                        ("at_ms", Value::Int(10)),
                        ("kind", Value::Str("heal".into())),
                    ]),
                    obj(&[
                        ("at_ms", Value::Int(20)),
                        ("group_a", Value::Array(vec![Value::Int(0), Value::Int(3)])),
                    ]),
                ]),
            ),
            ("unchecked", Value::Bool(true)),
        ]);
        let text = doc.to_json();
        assert_eq!(parse(&text), Some(doc));
    }

    #[test]
    fn serialisation_is_deterministic() {
        let a = obj(&[("b", Value::Int(2)), ("a", Value::Int(1))]);
        // BTreeMap ordering: keys serialise sorted regardless of insertion.
        assert_eq!(a.to_json(), r#"{"a":1,"b":2}"#);
    }

    #[test]
    fn strings_escape_and_unescape() {
        let s = Value::Str("line\n\"quoted\"\\x\tend\u{1}".into());
        let text = s.to_json();
        assert_eq!(parse(&text), Some(s));
        assert!(text.contains("\\u0001"));
    }

    #[test]
    fn parses_whitespace_liberally() {
        let v = parse(" { \"a\" : [ 1 , 2 ] , \"b\" : null } ").expect("parses");
        assert_eq!(
            v.get("a").and_then(Value::as_array).map(<[Value]>::len),
            Some(2)
        );
        assert_eq!(v.get("b"), Some(&Value::Null));
    }

    #[test]
    fn rejects_garbage() {
        for bad in ["", "{", "[1,]", "{\"a\":}", "12x", "{\"a\":1} extra", "nul"] {
            assert_eq!(parse(bad), None, "should reject {bad:?}");
        }
    }

    #[test]
    fn unicode_survives() {
        let s = Value::Str("héllo → wörld".into());
        assert_eq!(parse(&s.to_json()), Some(s));
    }
}
