//! Structured, verbosity-gated logging for bins.
//!
//! Experiment binaries used to scatter bare `eprintln!` calls; this module
//! replaces them with one-line structured events on stderr, gated by the
//! `WV_VERBOSE` environment variable:
//!
//! * `WV_VERBOSE=0` — silent;
//! * unset or `WV_VERBOSE=1` — warnings only (the default);
//! * `WV_VERBOSE=2` (or higher) — warnings and info.
//!
//! Each event is a single JSON object, e.g.
//! `{"component":"e1","level":"warn","msg":"could not write results/e1.md"}`,
//! so log output stays greppable and machine-splittable without a logging
//! dependency.

use std::io::Write as _;

/// Event severity.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Progress and context; shown at `WV_VERBOSE>=2`.
    Info,
    /// Something degraded but survivable; shown unless `WV_VERBOSE=0`.
    Warn,
}

impl Level {
    fn name(self) -> &'static str {
        match self {
            Level::Info => "info",
            Level::Warn => "warn",
        }
    }
}

fn verbosity() -> u8 {
    match std::env::var("WV_VERBOSE") {
        Ok(v) => v.trim().parse::<u8>().unwrap_or(1),
        Err(_) => 1,
    }
}

fn escape(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

/// Emits one structured event to stderr if the verbosity level allows it.
pub fn log(level: Level, component: &str, msg: &str) {
    let threshold = match level {
        Level::Warn => 1,
        Level::Info => 2,
    };
    if verbosity() < threshold {
        return;
    }
    let mut line = String::with_capacity(msg.len() + component.len() + 48);
    line.push_str("{\"component\":\"");
    escape(component, &mut line);
    line.push_str("\",\"level\":\"");
    line.push_str(level.name());
    line.push_str("\",\"msg\":\"");
    escape(msg, &mut line);
    line.push_str("\"}\n");
    // A failed stderr write has nowhere better to go; swallow it.
    let _ = std::io::stderr().write_all(line.as_bytes());
}

/// Shorthand for [`log`] at [`Level::Warn`].
pub fn warn(component: &str, msg: &str) {
    log(Level::Warn, component, msg);
}

/// Shorthand for [`log`] at [`Level::Info`].
pub fn info(component: &str, msg: &str) {
    log(Level::Info, component, msg);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_handles_quotes_and_control_chars() {
        let mut out = String::new();
        escape("a\"b\\c\nd\x01", &mut out);
        assert_eq!(out, "a\\\"b\\\\c\\nd\\u0001");
    }

    #[test]
    fn levels_order_info_below_warn() {
        assert!(Level::Info < Level::Warn);
        assert_eq!(Level::Warn.name(), "warn");
        assert_eq!(Level::Info.name(), "info");
    }
}
