//! Quorum-decision audit log: why the client picked those sites.
//!
//! Tracing (see [`crate::trace`]) records *what happened*; the audit log
//! records *why the planner chose it*. Every plan decision — the
//! optimistic fetch guess, the ordered fetch candidate list, a hedge
//! firing, a failover to the next candidate, a write or transaction
//! quorum — appends one [`AuditRecord`] carrying the decision's inputs
//! (policy, plan generation, per-site cost, health EWMA, suspicion,
//! load) and the chosen sites.
//!
//! The determinism contract is the same as for tracing: an audit hook
//! only ever reads state the planner already computed plus the node's
//! virtual clock. It draws no randomness and emits no effects, so an
//! audited run is message-for-message identical to an unaudited run.
//! Records are drained per node and concatenated in site order, making
//! the serialized form byte-identical at any worker count.
//!
//! Serialization is JSONL over [`crate::json`]: one object per line,
//! keys alphabetical, integers only (times in microseconds, suspicion in
//! milli-units), so audit files diff cleanly and replay artifacts can
//! embed them without a float in sight.

use crate::json::Value;
use crate::time::SimTime;
use std::collections::BTreeMap;

/// Which planner decision a record describes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum DecisionKind {
    /// The pre-inquiry guess of which site will serve the data fetch.
    OptimisticFetch,
    /// The ordered fetch candidate list built after version inquiry.
    FetchPlan,
    /// A hedged read fired at the next candidate.
    Hedge,
    /// Fetch moved to the next candidate after a refusal or timeout.
    FetchFailover,
    /// The site set assembled for a write quorum.
    WriteQuorum,
    /// The per-suite site set assembled under a multi-suite transaction.
    TxnQuorum,
}

impl DecisionKind {
    /// Every variant, in declaration order; [`DecisionKind::from_name`]
    /// searches this table (see `SpanKind::ALL` for the rationale).
    pub const ALL: [DecisionKind; 6] = [
        DecisionKind::OptimisticFetch,
        DecisionKind::FetchPlan,
        DecisionKind::Hedge,
        DecisionKind::FetchFailover,
        DecisionKind::WriteQuorum,
        DecisionKind::TxnQuorum,
    ];

    /// Stable lowercase name used in the JSONL form.
    pub fn name(self) -> &'static str {
        match self {
            DecisionKind::OptimisticFetch => "optimistic_fetch",
            DecisionKind::FetchPlan => "fetch_plan",
            DecisionKind::Hedge => "hedge",
            DecisionKind::FetchFailover => "fetch_failover",
            DecisionKind::WriteQuorum => "write_quorum",
            DecisionKind::TxnQuorum => "txn_quorum",
        }
    }

    /// Inverse of [`DecisionKind::name`].
    pub fn from_name(s: &str) -> Option<DecisionKind> {
        DecisionKind::ALL.into_iter().find(|k| k.name() == s)
    }
}

/// The planner's view of one candidate site at decision time.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SiteInput {
    /// The candidate site.
    pub site: u16,
    /// Configured access cost for the site (the planner's static input),
    /// fixed-point microseconds.
    pub cost_us: u64,
    /// Health-tracker EWMA round-trip estimate, fixed-point microseconds;
    /// 0 when no health tracking is active.
    pub rtt_us: u64,
    /// Accrual suspicion level in milli-units (1000 = 1.0); 0 when no
    /// health tracking is active.
    pub suspicion_milli: u64,
    /// True if the health tracker currently suspects the site.
    pub suspected: bool,
    /// Outstanding-request load the balancer sees for the site.
    pub load: u64,
}

impl SiteInput {
    fn to_value(&self) -> Value {
        let mut m = BTreeMap::new();
        m.insert("cost_us".into(), Value::Int(self.cost_us));
        m.insert("load".into(), Value::Int(self.load));
        m.insert("rtt_us".into(), Value::Int(self.rtt_us));
        m.insert("site".into(), Value::Int(self.site as u64));
        m.insert("suspected".into(), Value::Bool(self.suspected));
        m.insert("suspicion_milli".into(), Value::Int(self.suspicion_milli));
        Value::Object(m)
    }

    fn from_value(v: &Value) -> Option<SiteInput> {
        Some(SiteInput {
            site: v.get("site")?.as_int()? as u16,
            cost_us: v.get("cost_us")?.as_int()?,
            rtt_us: v.get("rtt_us")?.as_int()?,
            suspicion_milli: v.get("suspicion_milli")?.as_int()?,
            suspected: v.get("suspected")?.as_bool()?,
            load: v.get("load")?.as_int()?,
        })
    }
}

/// One planner decision with its inputs and outcome.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AuditRecord {
    /// Virtual time of the decision, microseconds.
    pub at_us: u64,
    /// Operation identifier (same id space as trace spans' `op`).
    pub op: u64,
    /// Deciding client site.
    pub site: u16,
    /// Suite the decision concerns.
    pub suite: u64,
    /// Which decision this is.
    pub kind: DecisionKind,
    /// Active site-selection policy name (e.g. `cheapest_first`).
    pub policy: String,
    /// Plan-cache generation the decision was made under.
    pub generation: u64,
    /// Load-balancer cursor position after the decision.
    pub cursor: u64,
    /// True if health-aware reordering changed the cost order.
    pub rerouted: bool,
    /// The chosen sites, in the order the planner will use them.
    pub chosen: Vec<u16>,
    /// Planner inputs for every candidate considered, in plan order.
    pub inputs: Vec<SiteInput>,
}

impl AuditRecord {
    /// Renders the record as a [`crate::json`] value (keys alphabetical).
    pub fn to_value(&self) -> Value {
        let mut m = BTreeMap::new();
        m.insert("at_us".into(), Value::Int(self.at_us));
        m.insert(
            "chosen".into(),
            Value::Array(self.chosen.iter().map(|&s| Value::Int(s as u64)).collect()),
        );
        m.insert("cursor".into(), Value::Int(self.cursor));
        m.insert("generation".into(), Value::Int(self.generation));
        m.insert(
            "inputs".into(),
            Value::Array(self.inputs.iter().map(SiteInput::to_value).collect()),
        );
        m.insert("kind".into(), Value::Str(self.kind.name().to_string()));
        m.insert("op".into(), Value::Int(self.op));
        m.insert("policy".into(), Value::Str(self.policy.clone()));
        m.insert("rerouted".into(), Value::Bool(self.rerouted));
        m.insert("site".into(), Value::Int(self.site as u64));
        m.insert("suite".into(), Value::Int(self.suite));
        Value::Object(m)
    }

    /// Parses a record from a [`crate::json`] value.
    pub fn from_value(v: &Value) -> Option<AuditRecord> {
        Some(AuditRecord {
            at_us: v.get("at_us")?.as_int()?,
            op: v.get("op")?.as_int()?,
            site: v.get("site")?.as_int()? as u16,
            suite: v.get("suite")?.as_int()?,
            kind: DecisionKind::from_name(v.get("kind")?.as_str()?)?,
            policy: v.get("policy")?.as_str()?.to_string(),
            generation: v.get("generation")?.as_int()?,
            cursor: v.get("cursor")?.as_int()?,
            rerouted: v.get("rerouted")?.as_bool()?,
            chosen: v
                .get("chosen")?
                .as_array()?
                .iter()
                .map(|s| s.as_int().map(|i| i as u16))
                .collect::<Option<Vec<_>>>()?,
            inputs: v
                .get("inputs")?
                .as_array()?
                .iter()
                .map(SiteInput::from_value)
                .collect::<Option<Vec<_>>>()?,
        })
    }
}

/// Per-node decision buffer. See the module docs for the contract.
#[derive(Clone, Debug, Default)]
pub struct AuditLog {
    site: u16,
    records: Vec<AuditRecord>,
}

impl AuditLog {
    /// Creates an empty log for the given site.
    pub fn new(site: u16) -> Self {
        AuditLog {
            site,
            records: Vec::new(),
        }
    }

    /// Appends one decision. The log stamps site and time itself so the
    /// caller cannot record on another node's behalf.
    #[allow(clippy::too_many_arguments)]
    pub fn record(
        &mut self,
        kind: DecisionKind,
        op: u64,
        suite: u64,
        policy: &str,
        generation: u64,
        cursor: u64,
        rerouted: bool,
        chosen: Vec<u16>,
        inputs: Vec<SiteInput>,
        now: SimTime,
    ) {
        self.records.push(AuditRecord {
            at_us: now.as_micros(),
            op,
            site: self.site,
            suite,
            kind,
            policy: policy.to_string(),
            generation,
            cursor,
            rerouted,
            chosen,
            inputs,
        });
    }

    /// Number of decisions recorded so far.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Read-only view of the recorded decisions, in decision order.
    pub fn records(&self) -> &[AuditRecord] {
        &self.records
    }

    /// Drains the buffer, leaving the log empty.
    pub fn take(&mut self) -> Vec<AuditRecord> {
        std::mem::take(&mut self.records)
    }
}

/// Serializes records as JSONL: one object per line, keys alphabetical.
pub fn to_jsonl(records: &[AuditRecord]) -> String {
    let mut out = String::with_capacity(records.len() * 192);
    for r in records {
        out.push_str(&r.to_value().to_json());
        out.push('\n');
    }
    out
}

/// Parses the output of [`to_jsonl`] back into audit records.
pub fn from_jsonl(text: &str) -> Result<Vec<AuditRecord>, String> {
    let mut out = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let v = crate::json::parse(line)
            .ok_or_else(|| format!("line {}: not valid JSON", lineno + 1))?;
        let rec = AuditRecord::from_value(&v)
            .ok_or_else(|| format!("line {}: not an audit record", lineno + 1))?;
        out.push(rec);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    fn t(us: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_micros(us)
    }

    fn sample_inputs() -> Vec<SiteInput> {
        vec![
            SiteInput {
                site: 0,
                cost_us: 10,
                rtt_us: 10_400,
                suspicion_milli: 120,
                suspected: false,
                load: 2,
            },
            SiteInput {
                site: 2,
                cost_us: 25,
                rtt_us: 0,
                suspicion_milli: 0,
                suspected: true,
                load: 0,
            },
        ]
    }

    #[test]
    fn records_round_trip_through_jsonl() {
        let mut log = AuditLog::new(7);
        log.record(
            DecisionKind::FetchPlan,
            0x2a_0007,
            3,
            "load_balanced",
            4,
            1,
            true,
            vec![0, 2],
            sample_inputs(),
            t(1500),
        );
        log.record(
            DecisionKind::Hedge,
            0x2a_0007,
            3,
            "load_balanced",
            4,
            1,
            false,
            vec![2],
            Vec::new(),
            t(2600),
        );
        assert_eq!(log.len(), 2);
        assert_eq!(log.records()[0].site, 7);
        assert_eq!(log.records()[0].at_us, 1500);

        let text = to_jsonl(log.records());
        let back = from_jsonl(&text).expect("parse");
        assert_eq!(back, log.records());

        // Keys stay alphabetical so audit files diff cleanly.
        let first = text.lines().next().unwrap();
        assert!(first.starts_with("{\"at_us\":1500,\"chosen\":[0,2],\"cursor\":1,"));
    }

    #[test]
    fn decision_kind_names_round_trip() {
        for k in DecisionKind::ALL {
            assert_eq!(DecisionKind::from_name(k.name()), Some(k));
        }
        assert_eq!(DecisionKind::from_name("bogus"), None);
        let mut names: Vec<_> = DecisionKind::ALL.iter().map(|k| k.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), DecisionKind::ALL.len());
    }

    #[test]
    fn take_drains() {
        let mut log = AuditLog::new(0);
        log.record(
            DecisionKind::WriteQuorum,
            1,
            0,
            "cheapest_first",
            0,
            0,
            false,
            vec![0, 1],
            Vec::new(),
            t(10),
        );
        assert_eq!(log.take().len(), 1);
        assert!(log.is_empty());
    }
}
