//! A mergeable metrics registry: counters, gauges, and latency histograms.
//!
//! The registry is the aggregate companion to [`crate::trace`]: where a
//! tracer records *one operation's* path, the registry accumulates
//! *population* statistics — op counts, queue depths, and log-bucketed
//! latency distributions answering p50/p90/p99/p999.
//!
//! # Determinism
//!
//! There is no global registry and no interior mutability. Each worker (a
//! trial closure under `wv_bench::runner`) owns its own registry and returns
//! it; the caller merges the per-trial registries **in trial-index order**
//! with [`MetricsRegistry::merge`]. Counter addition and histogram bucket
//! addition are associative over that fixed order, so the merged registry —
//! and anything rendered from it — is bit-identical at any
//! `WV_TRIAL_THREADS`.
//!
//! Metric names are `&'static str` by design: the set of metrics is a
//! compile-time decision, and static names keep the hot path free of
//! allocation.

use std::collections::BTreeMap;

use crate::stats::Histogram;

/// The four fixed percentiles reported for every latency histogram.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Percentiles {
    /// Median.
    pub p50: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 99th percentile.
    pub p99: f64,
    /// 99.9th percentile.
    pub p999: f64,
}

/// Counters, gauges, and latency histograms keyed by static name.
#[derive(Clone, Debug, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, f64>,
    histograms: BTreeMap<&'static str, Histogram>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Adds `delta` to a counter, creating it at zero on first use.
    pub fn add(&mut self, name: &'static str, delta: u64) {
        *self.counters.entry(name).or_insert(0) += delta;
    }

    /// Increments a counter by one.
    pub fn inc(&mut self, name: &'static str) {
        self.add(name, 1);
    }

    /// Current counter value (0 if never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Sets a gauge to `value` (last write wins, including across merges).
    pub fn set_gauge(&mut self, name: &'static str, value: f64) {
        self.gauges.insert(name, value);
    }

    /// Current gauge value, if ever set.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Records a latency observation in milliseconds; the histogram is
    /// created lazily with the standard latency geometry
    /// ([`Histogram::for_latency_ms`]).
    pub fn observe_ms(&mut self, name: &'static str, ms: f64) {
        self.histograms
            .entry(name)
            .or_insert_with(Histogram::for_latency_ms)
            .record(ms);
    }

    /// The named histogram, if any observation was recorded.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// p50/p90/p99/p999 of a histogram; `None` if the histogram is missing
    /// or holds fewer than two observations (a single sample is not a
    /// distribution — see `stats::SampleSet::try_quantile`).
    pub fn percentiles(&self, name: &str) -> Option<Percentiles> {
        let h = self.histograms.get(name)?;
        Some(Percentiles {
            p50: h.try_quantile(0.50)?,
            p90: h.try_quantile(0.90)?,
            p99: h.try_quantile(0.99)?,
            p999: h.try_quantile(0.999)?,
        })
    }

    /// Iterates counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.counters.iter().map(|(&k, &v)| (k, v))
    }

    /// Iterates gauges in name order.
    pub fn gauges(&self) -> impl Iterator<Item = (&'static str, f64)> + '_ {
        self.gauges.iter().map(|(&k, &v)| (k, v))
    }

    /// Iterates histograms in name order.
    pub fn histograms(&self) -> impl Iterator<Item = (&'static str, &Histogram)> + '_ {
        self.histograms.iter().map(|(&k, v)| (k, v))
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Merges another registry into this one: counters add, gauges take the
    /// other's value, histograms merge bucket-wise.
    ///
    /// # Panics
    ///
    /// Panics if the same histogram name was built with different geometry
    /// (impossible via [`MetricsRegistry::observe_ms`], which pins the
    /// geometry).
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (&name, &v) in &other.counters {
            *self.counters.entry(name).or_insert(0) += v;
        }
        for (&name, &v) in &other.gauges {
            self.gauges.insert(name, v);
        }
        for (&name, h) in &other.histograms {
            match self.histograms.get_mut(name) {
                Some(mine) => mine.merge(h),
                None => {
                    self.histograms.insert(name, h.clone());
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_add_and_merge() {
        let mut a = MetricsRegistry::new();
        a.inc("ops");
        a.add("ops", 4);
        assert_eq!(a.counter("ops"), 5);
        assert_eq!(a.counter("missing"), 0);

        let mut b = MetricsRegistry::new();
        b.add("ops", 10);
        b.inc("other");
        a.merge(&b);
        assert_eq!(a.counter("ops"), 15);
        assert_eq!(a.counter("other"), 1);
    }

    #[test]
    fn gauges_last_write_wins() {
        let mut a = MetricsRegistry::new();
        a.set_gauge("depth", 3.0);
        let mut b = MetricsRegistry::new();
        b.set_gauge("depth", 7.0);
        a.merge(&b);
        assert_eq!(a.gauge("depth"), Some(7.0));
        assert_eq!(a.gauge("missing"), None);
    }

    #[test]
    fn histogram_percentiles_need_two_samples() {
        let mut m = MetricsRegistry::new();
        assert!(m.percentiles("lat").is_none(), "missing histogram");
        m.observe_ms("lat", 10.0);
        assert!(m.percentiles("lat").is_none(), "single sample");
        m.observe_ms("lat", 20.0);
        let p = m.percentiles("lat").expect("two samples");
        assert!(p.p50 > 0.0 && p.p999 >= p.p50);
    }

    #[test]
    fn merge_order_independence_of_totals() {
        // Totals are order-independent; the fixed merge order in the trial
        // runner additionally makes float summaries bit-identical.
        let mut trials: Vec<MetricsRegistry> = (0..4)
            .map(|i| {
                let mut m = MetricsRegistry::new();
                m.add("ops", i + 1);
                m.observe_ms("lat", 10.0 * (i + 1) as f64);
                m
            })
            .collect();
        let mut merged = MetricsRegistry::new();
        for t in &trials {
            merged.merge(t);
        }
        assert_eq!(merged.counter("ops"), 1 + 2 + 3 + 4);
        assert_eq!(merged.histogram("lat").unwrap().len(), 4);
        // Merging into the first trial gives the same totals.
        let (first, rest) = trials.split_at_mut(1);
        for t in rest.iter() {
            first[0].merge(t);
        }
        assert_eq!(first[0].counter("ops"), merged.counter("ops"));
    }
}
