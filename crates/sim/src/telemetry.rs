//! Windowed per-site time-series telemetry in virtual time.
//!
//! A [`TelemetryHub`] slices sim time into fixed windows and keeps, per
//! site, a bounded ring of [`SiteWindow`] cells: request counts,
//! refusals, RTT samples, repair installs, and quarantine state. Clients
//! feed the hub from their existing health/load notification points;
//! servers mark repair and quarantine transitions. The harness merges
//! per-node hubs in site order and exposes a [`TelemetrySnapshot`] — the
//! stable surface a vote-assignment controller can poll to learn how
//! each site behaved over the last N windows without replaying a trace.
//!
//! Determinism contract: like tracing and auditing, a telemetry hook
//! only reads values the protocol already computed plus the node's
//! virtual clock. No randomness, no effects; an instrumented run is
//! message-for-message identical to a bare one, and snapshots are
//! byte-identical at any worker count because merging is keyed by
//! `(site, window index)` with order-insensitive cell arithmetic.

use crate::stats::SampleSet;
use crate::time::{SimDuration, SimTime};
use std::collections::BTreeMap;
use std::collections::VecDeque;

/// Sizing for a [`TelemetryHub`].
#[derive(Clone, Copy, Debug)]
pub struct TelemetryOptions {
    /// Width of one window in virtual time.
    pub window: SimDuration,
    /// Number of windows retained per site; older windows fall off.
    pub capacity: usize,
}

impl Default for TelemetryOptions {
    /// 100 ms windows, 64 retained — ~6.4 s of history per site.
    fn default() -> Self {
        TelemetryOptions {
            window: SimDuration::from_millis(100),
            capacity: 64,
        }
    }
}

/// One site's accumulators for one time window.
#[derive(Clone, Debug)]
pub struct SiteWindow {
    /// Absolute window index: `start_us / window_us`.
    pub index: u64,
    /// Requests sent to (or served by) the site in the window.
    pub requests: u64,
    /// Requests the site refused (busy, quarantined, disk-faulted).
    pub refusals: u64,
    /// Round-trip samples observed toward the site, microseconds.
    pub rtt_us: SampleSet,
    /// Requests broken down by the suite they targeted (raw suite id);
    /// suite-agnostic marks land only in the `requests` total.
    pub suite_requests: BTreeMap<u64, u64>,
    /// Repair installs completed on the site.
    pub repairs: u64,
    /// Quarantine entries observed in the window.
    pub quarantine_enters: u64,
    /// Quarantine state as of the last mark in the window.
    pub quarantined: bool,
}

impl SiteWindow {
    fn new(index: u64, quarantined: bool) -> Self {
        SiteWindow {
            index,
            requests: 0,
            refusals: 0,
            rtt_us: SampleSet::new(),
            suite_requests: BTreeMap::new(),
            repairs: 0,
            quarantine_enters: 0,
            quarantined,
        }
    }

    fn absorb(&mut self, other: &SiteWindow) {
        self.requests += other.requests;
        self.refusals += other.refusals;
        self.rtt_us.merge(&other.rtt_us);
        for (&suite, &n) in &other.suite_requests {
            *self.suite_requests.entry(suite).or_insert(0) += n;
        }
        self.repairs += other.repairs;
        self.quarantine_enters += other.quarantine_enters;
        self.quarantined |= other.quarantined;
    }
}

/// Per-node telemetry collector; see the module docs for the contract.
#[derive(Clone, Debug)]
pub struct TelemetryHub {
    window_us: u64,
    capacity: usize,
    sites: BTreeMap<u16, VecDeque<SiteWindow>>,
}

impl TelemetryHub {
    /// Creates an empty hub with the given sizing.
    pub fn new(options: TelemetryOptions) -> Self {
        let window_us = options.window.as_micros().max(1);
        TelemetryHub {
            window_us,
            capacity: options.capacity.max(1),
            sites: BTreeMap::new(),
        }
    }

    /// Window width in microseconds.
    pub fn window_us(&self) -> u64 {
        self.window_us
    }

    fn cell(&mut self, site: u16, now: SimTime) -> &mut SiteWindow {
        let index = now.as_micros() / self.window_us;
        let capacity = self.capacity;
        let ring = self.sites.entry(site).or_default();
        // Node clocks are monotone, so the common case is "same window as
        // last time" or "a newer window"; an older index can only arrive
        // via merge-order quirks and lands in the matching cell if it is
        // still retained, else in the oldest one we have.
        let need_push = match ring.back() {
            None => true,
            Some(back) => back.index < index,
        };
        if need_push {
            let carried = ring.back().map(|w| w.quarantined).unwrap_or(false);
            ring.push_back(SiteWindow::new(index, carried));
            while ring.len() > capacity {
                ring.pop_front();
            }
        }
        let pos = ring.iter().rposition(|w| w.index <= index).unwrap_or(0);
        &mut ring[pos]
    }

    /// Counts one request toward `site`.
    pub fn note_request(&mut self, site: u16, now: SimTime) {
        self.cell(site, now).requests += 1;
    }

    /// Counts one request toward `site` on behalf of `suite` (raw suite
    /// id): the total and the per-suite breakdown both advance.
    pub fn note_suite_request(&mut self, site: u16, suite: u64, now: SimTime) {
        let cell = self.cell(site, now);
        cell.requests += 1;
        *cell.suite_requests.entry(suite).or_insert(0) += 1;
    }

    /// Counts one refusal from `site`.
    pub fn note_refusal(&mut self, site: u16, now: SimTime) {
        self.cell(site, now).refusals += 1;
    }

    /// Records one observed round trip toward `site`.
    pub fn note_rtt(&mut self, site: u16, rtt: SimDuration, now: SimTime) {
        self.cell(site, now).rtt_us.record(rtt.as_micros() as f64);
    }

    /// Counts one completed repair install on `site`.
    pub fn note_repair(&mut self, site: u16, now: SimTime) {
        self.cell(site, now).repairs += 1;
    }

    /// Marks a quarantine transition on `site`.
    pub fn mark_quarantined(&mut self, site: u16, quarantined: bool, now: SimTime) {
        let cell = self.cell(site, now);
        if quarantined && !cell.quarantined {
            cell.quarantine_enters += 1;
        }
        cell.quarantined = quarantined;
    }

    /// True if no site has any window yet.
    pub fn is_empty(&self) -> bool {
        self.sites.is_empty()
    }

    /// Merges another hub into this one, aligning cells by
    /// `(site, window index)`. Cell arithmetic is order-insensitive, so
    /// folding hubs in any order yields the same snapshot.
    ///
    /// # Panics
    ///
    /// Panics if the hubs were built with different window widths.
    pub fn merge(&mut self, other: &TelemetryHub) {
        assert_eq!(self.window_us, other.window_us, "window width mismatch");
        for (&site, ring) in &other.sites {
            let mine = self.sites.entry(site).or_default();
            for w in ring {
                match mine.iter_mut().find(|m| m.index == w.index) {
                    Some(cell) => cell.absorb(w),
                    None => {
                        let at = mine.partition_point(|m| m.index < w.index);
                        let mut cell = SiteWindow::new(w.index, false);
                        cell.absorb(w);
                        mine.insert(at, cell);
                    }
                }
            }
            while mine.len() > self.capacity {
                mine.pop_front();
            }
        }
    }

    /// Drains the hub into a [`TelemetrySnapshot`].
    pub fn snapshot(&mut self) -> TelemetrySnapshot {
        let window_us = self.window_us;
        let sites = std::mem::take(&mut self.sites)
            .into_iter()
            .map(|(site, ring)| {
                let windows = ring
                    .into_iter()
                    .map(|mut w| WindowStats {
                        index: w.index,
                        start_us: w.index * window_us,
                        requests: w.requests,
                        refusals: w.refusals,
                        suite_requests: w.suite_requests.iter().map(|(&s, &n)| (s, n)).collect(),
                        repairs: w.repairs,
                        quarantine_enters: w.quarantine_enters,
                        quarantined: w.quarantined,
                        rtt_samples: w.rtt_us.len() as u64,
                        rtt_p50_us: w.rtt_us.try_quantile(0.50).map(|v| v.round() as u64),
                        rtt_p99_us: w.rtt_us.try_quantile(0.99).map(|v| v.round() as u64),
                    })
                    .collect();
                (site, windows)
            })
            .collect();
        TelemetrySnapshot { window_us, sites }
    }
}

/// Frozen per-window statistics for one site; see [`TelemetrySnapshot`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WindowStats {
    /// Absolute window index.
    pub index: u64,
    /// Window start, microseconds of virtual time.
    pub start_us: u64,
    /// Requests sent to the site in the window.
    pub requests: u64,
    /// Refusals from the site in the window.
    pub refusals: u64,
    /// Per-suite request counts `(suite, requests)`, suite id order.
    /// Suite-agnostic marks are absent here, so the pairs need not sum
    /// to `requests`.
    pub suite_requests: Vec<(u64, u64)>,
    /// Repair installs completed on the site.
    pub repairs: u64,
    /// Quarantine entries observed in the window.
    pub quarantine_enters: u64,
    /// Quarantine state at the end of the window.
    pub quarantined: bool,
    /// Number of RTT samples behind the quantiles.
    pub rtt_samples: u64,
    /// Median observed round trip, microseconds; `None` under 2 samples.
    pub rtt_p50_us: Option<u64>,
    /// 99th-percentile round trip, microseconds; `None` under 2 samples.
    pub rtt_p99_us: Option<u64>,
}

/// The stable read surface for controllers: per-site windows in index
/// order, sites in id order.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TelemetrySnapshot {
    /// Window width in microseconds.
    pub window_us: u64,
    /// Per-site windows, oldest first.
    pub sites: BTreeMap<u16, Vec<WindowStats>>,
}

impl TelemetrySnapshot {
    /// Windows recorded for `site`, oldest first (empty slice if none).
    pub fn windows(&self, site: u16) -> &[WindowStats] {
        self.sites.get(&site).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Renders the snapshot as a deterministic table, one line per
    /// `(site, window)` — the form the determinism tests pin.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "window_us={}", self.window_us);
        for (&site, windows) in &self.sites {
            for w in windows {
                let fmt_q = |q: Option<u64>| q.map_or("-".to_string(), |v| v.to_string());
                let suites = if w.suite_requests.is_empty() {
                    "-".to_string()
                } else {
                    w.suite_requests
                        .iter()
                        .map(|(s, n)| format!("{s}:{n}"))
                        .collect::<Vec<_>>()
                        .join(";")
                };
                let _ = writeln!(
                    out,
                    "site={} win={} req={} refuse={} repair={} qenter={} q={} rtt_n={} p50us={} p99us={} suites={}",
                    site,
                    w.index,
                    w.requests,
                    w.refusals,
                    w.repairs,
                    w.quarantine_enters,
                    w.quarantined as u8,
                    w.rtt_samples,
                    fmt_q(w.rtt_p50_us),
                    fmt_q(w.rtt_p99_us),
                    suites,
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(us: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_micros(us)
    }

    fn hub() -> TelemetryHub {
        TelemetryHub::new(TelemetryOptions {
            window: SimDuration::from_millis(1),
            capacity: 4,
        })
    }

    #[test]
    fn windows_advance_with_time_and_evict() {
        let mut h = hub();
        for i in 0..6u64 {
            h.note_request(3, t(i * 1000 + 10));
        }
        let snap = h.snapshot();
        let w = snap.windows(3);
        // Capacity 4: windows 0 and 1 fell off.
        assert_eq!(w.len(), 4);
        assert_eq!(w[0].index, 2);
        assert_eq!(w[3].index, 5);
        assert!(w.iter().all(|x| x.requests == 1));
    }

    #[test]
    fn rtt_quantiles_and_refusals() {
        let mut h = hub();
        h.note_rtt(1, SimDuration::from_micros(400), t(100));
        h.note_rtt(1, SimDuration::from_micros(600), t(200));
        h.note_refusal(1, t(300));
        let snap = h.snapshot();
        let w = snap.windows(1);
        assert_eq!(w.len(), 1);
        assert_eq!(w[0].refusals, 1);
        assert_eq!(w[0].rtt_samples, 2);
        assert_eq!(w[0].rtt_p50_us, Some(400));
        assert_eq!(w[0].rtt_p99_us, Some(600));
    }

    #[test]
    fn quarantine_state_carries_into_new_windows() {
        let mut h = hub();
        h.mark_quarantined(2, true, t(100));
        h.note_request(2, t(1100)); // next window inherits the state
        h.mark_quarantined(2, false, t(2100));
        let snap = h.snapshot();
        let w = snap.windows(2);
        assert_eq!(w.len(), 3);
        assert!(w[0].quarantined);
        assert_eq!(w[0].quarantine_enters, 1);
        assert!(w[1].quarantined);
        assert_eq!(
            w[1].quarantine_enters, 0,
            "carried state is not a new entry"
        );
        assert!(!w[2].quarantined);
    }

    #[test]
    fn suite_breakdown_counts_alongside_the_total() {
        let mut h = hub();
        h.note_suite_request(4, 10, t(100));
        h.note_suite_request(4, 10, t(200));
        h.note_suite_request(4, 11, t(300));
        h.note_request(4, t(400)); // suite-agnostic: total only
        let snap = h.snapshot();
        let w = snap.windows(4);
        assert_eq!(w.len(), 1);
        assert_eq!(w[0].requests, 4);
        assert_eq!(w[0].suite_requests, vec![(10, 2), (11, 1)]);
        assert!(snap.render().contains("suites=10:2;11:1"));
    }

    #[test]
    fn merge_is_order_insensitive() {
        let build = |first_a: bool| {
            let mut a = hub();
            a.note_suite_request(0, 7, t(100));
            a.note_rtt(0, SimDuration::from_micros(500), t(150));
            let mut b = hub();
            b.note_suite_request(0, 8, t(120));
            b.note_rtt(0, SimDuration::from_micros(700), t(180));
            b.note_refusal(1, t(1200));
            let mut merged = hub();
            if first_a {
                merged.merge(&a);
                merged.merge(&b);
            } else {
                merged.merge(&b);
                merged.merge(&a);
            }
            merged.snapshot()
        };
        let ab = build(true);
        let ba = build(false);
        assert_eq!(ab.render(), ba.render());
        assert_eq!(ab.windows(0)[0].requests, 2);
        assert_eq!(ab.windows(0)[0].suite_requests, vec![(7, 1), (8, 1)]);
        assert_eq!(ab.windows(0)[0].rtt_p99_us, Some(700));
        assert_eq!(ab.windows(1)[0].refusals, 1);
    }

    #[test]
    #[should_panic(expected = "window width mismatch")]
    fn merge_rejects_mismatched_windows() {
        let mut a = hub();
        let b = TelemetryHub::new(TelemetryOptions::default());
        a.merge(&b);
    }
}
