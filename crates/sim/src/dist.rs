//! Delay distributions for links and storage devices.
//!
//! The paper reports fixed representative-access latencies (75 ms for a
//! local file-system access, 65 ms for a weak representative on the local
//! machine, 100 ms for a server on the same network, 750 ms across the
//! internetwork). [`LatencyModel::Constant`] regenerates those tables
//! exactly; the stochastic variants let the availability and throughput
//! experiments add realistic jitter without changing any protocol code.

use crate::rng::DetRng;
use crate::time::SimDuration;

/// A distribution over non-negative delays.
#[derive(Clone, Debug, PartialEq)]
pub enum LatencyModel {
    /// Always exactly this long. Used for the paper-table regenerations.
    Constant(SimDuration),
    /// Uniform in `[lo, hi]`.
    Uniform {
        /// Smallest possible delay.
        lo: SimDuration,
        /// Largest possible delay.
        hi: SimDuration,
    },
    /// `base` plus an exponential tail with the given mean; models a fixed
    /// propagation delay with memoryless queueing behind it.
    ShiftedExponential {
        /// The fixed propagation component.
        base: SimDuration,
        /// Mean of the exponential queueing tail.
        tail_mean: SimDuration,
    },
    /// Normal with the given mean and standard deviation, truncated below at
    /// `floor`; models disk/service times with bounded best case.
    NormalClipped {
        /// Mean of the unclipped normal.
        mean: SimDuration,
        /// Standard deviation of the unclipped normal.
        std_dev: SimDuration,
        /// Hard lower bound on the sampled delay.
        floor: SimDuration,
    },
    /// With probability `p_slow` draw from `slow`, otherwise from `fast`;
    /// models a fast path with occasional retransmission-like stalls.
    Bimodal {
        /// The common-case distribution.
        fast: Box<LatencyModel>,
        /// The stall distribution.
        slow: Box<LatencyModel>,
        /// Probability of drawing from `slow`.
        p_slow: f64,
    },
}

impl LatencyModel {
    /// A constant delay of `ms` milliseconds.
    pub const fn constant_millis(ms: u64) -> Self {
        LatencyModel::Constant(SimDuration::from_millis(ms))
    }

    /// Draws one delay.
    pub fn sample(&self, rng: &mut DetRng) -> SimDuration {
        match self {
            LatencyModel::Constant(d) => *d,
            LatencyModel::Uniform { lo, hi } => {
                if hi <= lo {
                    *lo
                } else {
                    let span = hi.as_micros() - lo.as_micros();
                    *lo + SimDuration::from_micros(rng.below(span + 1))
                }
            }
            LatencyModel::ShiftedExponential { base, tail_mean } => {
                let tail = rng.exponential(tail_mean.as_millis_f64());
                *base + SimDuration::from_millis_f64(tail)
            }
            LatencyModel::NormalClipped {
                mean,
                std_dev,
                floor,
            } => {
                let v = rng.normal(mean.as_millis_f64(), std_dev.as_millis_f64());
                let d = SimDuration::from_millis_f64(v);
                if d < *floor {
                    *floor
                } else {
                    d
                }
            }
            LatencyModel::Bimodal { fast, slow, p_slow } => {
                if rng.chance(*p_slow) {
                    slow.sample(rng)
                } else {
                    fast.sample(rng)
                }
            }
        }
    }

    /// The exact expected value of the distribution, in milliseconds.
    ///
    /// The analytic models in `wv-analysis` use this to predict the latency
    /// rows of the paper tables without running the simulator.
    pub fn mean_millis(&self) -> f64 {
        match self {
            LatencyModel::Constant(d) => d.as_millis_f64(),
            LatencyModel::Uniform { lo, hi } => (lo.as_millis_f64() + hi.as_millis_f64()) / 2.0,
            LatencyModel::ShiftedExponential { base, tail_mean } => {
                base.as_millis_f64() + tail_mean.as_millis_f64()
            }
            // Clipping shifts the mean upward slightly; for reporting we use
            // the unclipped mean, which is exact when `floor` is far below.
            LatencyModel::NormalClipped { mean, .. } => mean.as_millis_f64(),
            LatencyModel::Bimodal { fast, slow, p_slow } => {
                let p = p_slow.clamp(0.0, 1.0);
                (1.0 - p) * fast.mean_millis() + p * slow.mean_millis()
            }
        }
    }
}

/// The paper's testbed access-latency constants, for convenience.
///
/// These reproduce the numbers in the "three example file suites" table:
/// a weak representative on the local machine answers in 65 ms, the local
/// file system in 75 ms, a server on the same local network in 100 ms, and
/// a server across the internetwork in 750 ms.
pub mod paper {
    use super::LatencyModel;

    /// Access latency of a weak representative held on the local machine.
    pub const LOCAL_WEAK_MS: u64 = 65;
    /// Access latency of the local file system.
    pub const LOCAL_FS_MS: u64 = 75;
    /// Access latency of a file server on the same local network.
    pub const SAME_NET_MS: u64 = 100;
    /// Access latency of a file server across the internetwork.
    pub const CROSS_NET_MS: u64 = 750;

    /// Constant model for a local weak representative.
    pub fn local_weak() -> LatencyModel {
        LatencyModel::constant_millis(LOCAL_WEAK_MS)
    }

    /// Constant model for the local file system.
    pub fn local_fs() -> LatencyModel {
        LatencyModel::constant_millis(LOCAL_FS_MS)
    }

    /// Constant model for a same-network file server.
    pub fn same_net() -> LatencyModel {
        LatencyModel::constant_millis(SAME_NET_MS)
    }

    /// Constant model for a cross-network file server.
    pub fn cross_net() -> LatencyModel {
        LatencyModel::constant_millis(CROSS_NET_MS)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> DetRng {
        DetRng::new(0xD15F)
    }

    #[test]
    fn constant_is_constant() {
        let m = LatencyModel::constant_millis(75);
        let mut r = rng();
        for _ in 0..10 {
            assert_eq!(m.sample(&mut r), SimDuration::from_millis(75));
        }
        assert_eq!(m.mean_millis(), 75.0);
    }

    #[test]
    fn uniform_stays_in_bounds() {
        let m = LatencyModel::Uniform {
            lo: SimDuration::from_millis(10),
            hi: SimDuration::from_millis(20),
        };
        let mut r = rng();
        for _ in 0..1000 {
            let d = m.sample(&mut r);
            assert!(d >= SimDuration::from_millis(10) && d <= SimDuration::from_millis(20));
        }
        assert_eq!(m.mean_millis(), 15.0);
    }

    #[test]
    fn uniform_degenerate_range() {
        let m = LatencyModel::Uniform {
            lo: SimDuration::from_millis(5),
            hi: SimDuration::from_millis(5),
        };
        assert_eq!(m.sample(&mut rng()), SimDuration::from_millis(5));
    }

    #[test]
    fn shifted_exponential_respects_base() {
        let m = LatencyModel::ShiftedExponential {
            base: SimDuration::from_millis(100),
            tail_mean: SimDuration::from_millis(10),
        };
        let mut r = rng();
        let mut sum = 0.0;
        let n = 5000;
        for _ in 0..n {
            let d = m.sample(&mut r);
            assert!(d >= SimDuration::from_millis(100));
            sum += d.as_millis_f64();
        }
        let mean = sum / n as f64;
        assert!((mean - 110.0).abs() < 2.0, "mean {mean}");
        assert_eq!(m.mean_millis(), 110.0);
    }

    #[test]
    fn normal_clipped_respects_floor() {
        let m = LatencyModel::NormalClipped {
            mean: SimDuration::from_millis(10),
            std_dev: SimDuration::from_millis(8),
            floor: SimDuration::from_millis(4),
        };
        let mut r = rng();
        for _ in 0..2000 {
            assert!(m.sample(&mut r) >= SimDuration::from_millis(4));
        }
    }

    #[test]
    fn bimodal_mixes() {
        let m = LatencyModel::Bimodal {
            fast: Box::new(LatencyModel::constant_millis(1)),
            slow: Box::new(LatencyModel::constant_millis(100)),
            p_slow: 0.25,
        };
        let mut r = rng();
        let n = 10_000;
        let slow = (0..n)
            .filter(|_| m.sample(&mut r) == SimDuration::from_millis(100))
            .count();
        let frac = slow as f64 / n as f64;
        assert!((frac - 0.25).abs() < 0.02, "slow fraction {frac}");
        assert!((m.mean_millis() - 25.75).abs() < 1e-9);
    }

    #[test]
    fn paper_constants_match_table() {
        assert_eq!(paper::local_weak().mean_millis(), 65.0);
        assert_eq!(paper::local_fs().mean_millis(), 75.0);
        assert_eq!(paper::same_net().mean_millis(), 100.0);
        assert_eq!(paper::cross_net().mean_millis(), 750.0);
    }
}
