//! Virtual time for the simulation kernel.
//!
//! Time is kept as an unsigned count of microseconds since the start of the
//! simulation. Microsecond resolution is three orders of magnitude finer
//! than the millisecond-scale latencies in the paper's testbed (65–750 ms),
//! so rounding never disturbs the regenerated tables, while `u64` still
//! allows simulations of half a million virtual years.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant of virtual time, in microseconds since simulation start.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of virtual time, in microseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch (time zero).
    pub const ZERO: SimTime = SimTime(0);

    /// The largest representable instant; used as an "infinitely far" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Builds an instant from microseconds since the epoch.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Builds an instant from milliseconds since the epoch.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000)
    }

    /// Builds an instant from seconds since the epoch.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000)
    }

    /// Microseconds since the epoch.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Whole milliseconds since the epoch (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// Milliseconds since the epoch as a float, for reporting.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Seconds since the epoch as a float, for reporting.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// The span from `earlier` to `self`, saturating at zero if reversed.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked difference between two instants.
    pub fn checked_since(self, earlier: SimTime) -> Option<SimDuration> {
        self.0.checked_sub(earlier.0).map(SimDuration)
    }
}

impl SimDuration {
    /// The zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// The largest representable span.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Builds a span from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Builds a span from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Builds a span from seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000)
    }

    /// Builds a span from fractional milliseconds, rounding to microseconds.
    ///
    /// Negative or non-finite inputs clamp to zero; this keeps sampled
    /// latency distributions (which can in principle produce tiny negative
    /// values after shifting) well-formed without panicking mid-simulation.
    pub fn from_millis_f64(ms: f64) -> Self {
        if !ms.is_finite() || ms <= 0.0 {
            return SimDuration(0);
        }
        SimDuration((ms * 1_000.0).round() as u64)
    }

    /// Microseconds in this span.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Whole milliseconds in this span (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// Milliseconds as a float, for reporting.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Seconds as a float, for reporting.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// True if the span is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating addition of two spans.
    pub const fn saturating_add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;

    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;

    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;

    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;

    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;

    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;

    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{:.3}ms", self.as_millis_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(SimTime::from_millis(75).as_micros(), 75_000);
        assert_eq!(SimTime::from_secs(2).as_millis(), 2_000);
        assert_eq!(SimDuration::from_millis(65).as_millis(), 65);
        assert_eq!(SimDuration::from_secs(1).as_micros(), 1_000_000);
    }

    #[test]
    fn arithmetic_is_saturating() {
        let late = SimTime::MAX + SimDuration::from_secs(1);
        assert_eq!(late, SimTime::MAX);
        assert_eq!(SimTime::ZERO - SimDuration::from_secs(1), SimTime::ZERO);
        assert_eq!(
            SimDuration::from_millis(1) - SimDuration::from_millis(5),
            SimDuration::ZERO
        );
    }

    #[test]
    fn since_measures_elapsed_span() {
        let a = SimTime::from_millis(10);
        let b = SimTime::from_millis(75);
        assert_eq!(b.since(a), SimDuration::from_millis(65));
        assert_eq!(a.since(b), SimDuration::ZERO);
        assert_eq!(a.checked_since(b), None);
        assert_eq!(b.checked_since(a), Some(SimDuration::from_millis(65)));
    }

    #[test]
    fn float_conversions() {
        let d = SimDuration::from_millis_f64(0.5);
        assert_eq!(d.as_micros(), 500);
        assert_eq!(SimDuration::from_millis_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_millis_f64(f64::NAN), SimDuration::ZERO);
        assert!((SimDuration::from_millis(1500).as_secs_f64() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn ordering_and_display() {
        assert!(SimTime::from_millis(1) < SimTime::from_millis(2));
        assert_eq!(format!("{}", SimDuration::from_micros(1_234)), "1.234ms");
        assert_eq!(format!("{}", SimTime::from_micros(250)), "t+0.250ms");
    }

    #[test]
    fn scalar_ops() {
        assert_eq!(
            SimDuration::from_millis(3) * 4,
            SimDuration::from_millis(12)
        );
        assert_eq!(
            SimDuration::from_millis(12) / 4,
            SimDuration::from_millis(3)
        );
    }
}
