//! Deterministic operation tracing: spans stamped from virtual time.
//!
//! A [`Tracer`] is a per-node, append-only buffer of [`SpanRecord`]s. Spans
//! nest (each record carries an optional parent index) and together describe
//! one operation's path through the system: the client-side quorum assembly,
//! the per-site RPCs with their votes, the data move, the 2PC prepare and
//! commit phases, and the server-side lock waits, WAL writes, and repair
//! pulls.
//!
//! # Determinism rules
//!
//! Tracing rides alongside the protocol and must never steer it:
//!
//! * a tracer only ever reads the node's **virtual clock** — it draws no
//!   randomness and emits no effects, so a traced run is message-for-message
//!   identical to an untraced run;
//! * span ids are **indices into the node's own buffer**, assigned in
//!   creation order — a node's trace is a pure function of the messages it
//!   handled;
//! * merged traces concatenate per-node buffers **in site order**, so the
//!   serialized form is byte-identical for any worker count when trials are
//!   merged in index order (see `wv_bench::runner`).
//!
//! The serialized form is JSONL — one object per span, keys in fixed
//! alphabetical order, written by [`to_jsonl`] and read back by
//! [`from_jsonl`] — so traces diff cleanly and golden files stay stable.

use crate::time::SimTime;

/// Sentinel for "no parent span" in a [`SpanRecord`].
pub const NO_PARENT: u32 = u32::MAX;
/// Sentinel for "no peer site" in a [`SpanRecord`].
pub const NO_PEER: u16 = u16::MAX;
/// `end_us` value of a span that was never closed.
pub const OPEN_END: u64 = u64::MAX;

/// What a span measures. Client-side kinds come first, then server-side.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum SpanKind {
    /// Client op root: a weighted-voting read.
    Read,
    /// Client op root: a weighted-voting write.
    Write,
    /// Client op root: a configuration change.
    Reconfigure,
    /// Client op root: a multi-suite transaction.
    Transaction,
    /// Version-number collection across a read quorum (quorum assembly).
    Inquiry,
    /// One site's request/response leg; `peer` is the site, `detail` the
    /// version it reported (or the vote it cast, under a prepare).
    Rpc,
    /// Data move from a current representative.
    Fetch,
    /// A hedged read racing the primary fetch.
    Hedge,
    /// 2PC prepare phase as seen by the coordinator.
    Prepare,
    /// 2PC commit phase (decision logged, waiting for acks).
    Commit,
    /// Server-side wait in the lock queue before a prepare could vote.
    LockWait,
    /// Server-side WAL append for a prepared write; `detail` is the version.
    WalWrite,
    /// Server-side group-commit flush: one durable write covering a batch
    /// of deferred records; `detail` is the batch size.
    WalBatch,
    /// Server-side apply of a commit or abort decision.
    Apply,
    /// Server-side anti-entropy pull round.
    RepairPull,
    /// Server-side install of repaired state; `detail` is the version.
    RepairInstall,
    /// Client read served from an attached weak representative; `detail`
    /// is the served version.
    CacheHit,
    /// Attached weak representative (re)filled from a quorum read;
    /// `detail` is the installed version.
    CacheRefresh,
    /// Server-side scanning WAL recovery; `detail` is the number of
    /// records replayed.
    DiskRecovery,
    /// The span of a replica's quarantine: opened when recovery detects
    /// interior corruption, closed when a full repair pull completes.
    /// `detail` is the number of suites awaiting confirmation at entry.
    Quarantine,
}

impl SpanKind {
    /// Every variant, in declaration order. [`SpanKind::from_name`]
    /// searches this table, so a variant listed here can never be
    /// emitted by `to_jsonl` and then rejected by `from_jsonl`; the
    /// exhaustive-match guard in the round-trip test turns a forgotten
    /// entry into a test failure instead of a silent import error.
    pub const ALL: [SpanKind; 20] = [
        SpanKind::Read,
        SpanKind::Write,
        SpanKind::Reconfigure,
        SpanKind::Transaction,
        SpanKind::Inquiry,
        SpanKind::Rpc,
        SpanKind::Fetch,
        SpanKind::Hedge,
        SpanKind::Prepare,
        SpanKind::Commit,
        SpanKind::LockWait,
        SpanKind::WalWrite,
        SpanKind::WalBatch,
        SpanKind::Apply,
        SpanKind::RepairPull,
        SpanKind::RepairInstall,
        SpanKind::CacheHit,
        SpanKind::CacheRefresh,
        SpanKind::DiskRecovery,
        SpanKind::Quarantine,
    ];

    /// Stable lowercase name used in the JSONL form.
    pub fn name(self) -> &'static str {
        match self {
            SpanKind::Read => "read",
            SpanKind::Write => "write",
            SpanKind::Reconfigure => "reconfigure",
            SpanKind::Transaction => "transaction",
            SpanKind::Inquiry => "inquiry",
            SpanKind::Rpc => "rpc",
            SpanKind::Fetch => "fetch",
            SpanKind::Hedge => "hedge",
            SpanKind::Prepare => "prepare",
            SpanKind::Commit => "commit",
            SpanKind::LockWait => "lock_wait",
            SpanKind::WalWrite => "wal_write",
            SpanKind::WalBatch => "wal_batch",
            SpanKind::Apply => "apply",
            SpanKind::RepairPull => "repair_pull",
            SpanKind::RepairInstall => "repair_install",
            SpanKind::CacheHit => "cache_hit",
            SpanKind::CacheRefresh => "cache_refresh",
            SpanKind::DiskRecovery => "disk_recovery",
            SpanKind::Quarantine => "quarantine",
        }
    }

    /// Inverse of [`SpanKind::name`], driven by [`SpanKind::ALL`] so the
    /// reader and writer can never disagree about the name set.
    pub fn from_name(s: &str) -> Option<SpanKind> {
        SpanKind::ALL.into_iter().find(|k| k.name() == s)
    }

    /// True for the kinds that root a client operation.
    pub fn is_op_root(self) -> bool {
        matches!(
            self,
            SpanKind::Read | SpanKind::Write | SpanKind::Reconfigure | SpanKind::Transaction
        )
    }
}

/// How a span ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum SpanOutcome {
    /// Still open (only seen if a trace is drained mid-flight).
    Open,
    /// Completed successfully.
    Ok,
    /// Failed (unavailable, attempts exhausted, or indeterminate).
    Err,
    /// Abandoned by a phase timeout.
    Timeout,
    /// Aborted by a conflicting vote.
    Conflict,
    /// Answered with a stale version and discarded.
    Stale,
    /// Turned away by a busy or lock-refusing server.
    Refused,
    /// Outstanding when its phase ended; the reply never arrived.
    Unanswered,
    /// Superseded — e.g. a hedge that lost its race.
    Lost,
}

impl SpanOutcome {
    /// Every variant, in declaration order; see [`SpanKind::ALL`].
    pub const ALL: [SpanOutcome; 9] = [
        SpanOutcome::Open,
        SpanOutcome::Ok,
        SpanOutcome::Err,
        SpanOutcome::Timeout,
        SpanOutcome::Conflict,
        SpanOutcome::Stale,
        SpanOutcome::Refused,
        SpanOutcome::Unanswered,
        SpanOutcome::Lost,
    ];

    /// Stable lowercase name used in the JSONL form.
    pub fn name(self) -> &'static str {
        match self {
            SpanOutcome::Open => "open",
            SpanOutcome::Ok => "ok",
            SpanOutcome::Err => "err",
            SpanOutcome::Timeout => "timeout",
            SpanOutcome::Conflict => "conflict",
            SpanOutcome::Stale => "stale",
            SpanOutcome::Refused => "refused",
            SpanOutcome::Unanswered => "unanswered",
            SpanOutcome::Lost => "lost",
        }
    }

    /// Inverse of [`SpanOutcome::name`], driven by [`SpanOutcome::ALL`].
    pub fn from_name(s: &str) -> Option<SpanOutcome> {
        SpanOutcome::ALL.into_iter().find(|o| o.name() == s)
    }
}

/// Handle to an open span, valid only against the tracer that issued it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpanId(u32);

/// One completed (or still-open) span.
#[derive(Clone, Debug, PartialEq)]
pub struct SpanRecord {
    /// Index of this span in its node's buffer.
    pub id: u32,
    /// Index of the parent span, or [`NO_PARENT`].
    pub parent: u32,
    /// What the span measures.
    pub kind: SpanKind,
    /// Site that recorded the span.
    pub site: u16,
    /// Remote site involved (RPC target), or [`NO_PEER`].
    pub peer: u16,
    /// Operation identifier (the raw request id) the span belongs to;
    /// 0 for spans outside any client op (e.g. repair).
    pub op: u64,
    /// Raw suite id the span concerns, or 0 for spans not scoped to one
    /// suite (a cross-suite group-commit flush, a quarantine, recovery).
    pub suite: u64,
    /// Virtual start time, microseconds.
    pub start_us: u64,
    /// Virtual end time, microseconds; [`OPEN_END`] while open.
    pub end_us: u64,
    /// Kind-specific payload: a version, a vote, a byte count.
    pub detail: u64,
    /// How the span ended.
    pub outcome: SpanOutcome,
}

impl SpanRecord {
    /// Span duration in microseconds; `None` while open.
    pub fn duration_us(&self) -> Option<u64> {
        if self.end_us == OPEN_END {
            None
        } else {
            Some(self.end_us.saturating_sub(self.start_us))
        }
    }
}

/// Per-node span buffer. See the module docs for the determinism contract.
#[derive(Clone, Debug, Default)]
pub struct Tracer {
    site: u16,
    spans: Vec<SpanRecord>,
}

impl Tracer {
    /// Creates an empty tracer for the given site.
    pub fn new(site: u16) -> Self {
        Tracer {
            site,
            spans: Vec::new(),
        }
    }

    /// Opens a span at `now`; close it with [`Tracer::end`]. `suite` is
    /// the raw suite id the span concerns (0 when not suite-scoped).
    #[allow(clippy::too_many_arguments)]
    pub fn start(
        &mut self,
        kind: SpanKind,
        suite: u64,
        op: u64,
        parent: Option<SpanId>,
        peer: Option<u16>,
        detail: u64,
        now: SimTime,
    ) -> SpanId {
        let id = self.spans.len() as u32;
        self.spans.push(SpanRecord {
            id,
            parent: parent.map_or(NO_PARENT, |p| p.0),
            kind,
            site: self.site,
            peer: peer.unwrap_or(NO_PEER),
            op,
            suite,
            start_us: now.as_micros(),
            end_us: OPEN_END,
            detail,
            outcome: SpanOutcome::Open,
        });
        SpanId(id)
    }

    /// Closes a span. Closing twice keeps the first outcome.
    pub fn end(&mut self, id: SpanId, now: SimTime, outcome: SpanOutcome) {
        let s = &mut self.spans[id.0 as usize];
        if s.end_us == OPEN_END {
            s.end_us = now.as_micros();
            s.outcome = outcome;
        }
    }

    /// Closes a span and overwrites its detail payload.
    pub fn end_with_detail(&mut self, id: SpanId, now: SimTime, outcome: SpanOutcome, detail: u64) {
        let open = self.spans[id.0 as usize].end_us == OPEN_END;
        if open {
            self.spans[id.0 as usize].detail = detail;
        }
        self.end(id, now, outcome);
    }

    /// Records an instantaneous event: a zero-duration `Ok` span.
    #[allow(clippy::too_many_arguments)]
    pub fn event(
        &mut self,
        kind: SpanKind,
        suite: u64,
        op: u64,
        parent: Option<SpanId>,
        peer: Option<u16>,
        detail: u64,
        now: SimTime,
    ) -> SpanId {
        let id = self.start(kind, suite, op, parent, peer, detail, now);
        self.end(id, now, SpanOutcome::Ok);
        id
    }

    /// True if the span has not been closed yet.
    pub fn is_open(&self, id: SpanId) -> bool {
        self.spans[id.0 as usize].end_us == OPEN_END
    }

    /// Number of spans recorded so far.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Read-only view of the recorded spans, in creation order.
    pub fn records(&self) -> &[SpanRecord] {
        &self.spans
    }

    /// Drains the buffer, leaving the tracer empty (ids restart at 0).
    pub fn take(&mut self) -> Vec<SpanRecord> {
        std::mem::take(&mut self.spans)
    }
}

/// Appends one node's drained spans to a merged record, rebasing ids so
/// they stay unique across nodes: each incoming id (and non-sentinel
/// parent) is offset by the current length of `merged`. Ids within one
/// tracer are vector indices, so the result is contiguous — and
/// deterministic whenever nodes are drained in a fixed order.
pub fn rebase_merge(merged: &mut Vec<SpanRecord>, spans: Vec<SpanRecord>) {
    let base = merged.len() as u32;
    for mut s in spans {
        s.id += base;
        if s.parent != NO_PARENT {
            s.parent += base;
        }
        merged.push(s);
    }
}

/// Serializes spans as JSONL: one object per line, keys alphabetical,
/// `null` for the no-parent / no-peer / still-open sentinels.
pub fn to_jsonl(spans: &[SpanRecord]) -> String {
    use std::fmt::Write as _;
    let mut out = String::with_capacity(spans.len() * 128);
    for s in spans {
        out.push_str("{\"detail\":");
        let _ = write!(out, "{}", s.detail);
        out.push_str(",\"end_us\":");
        if s.end_us == OPEN_END {
            out.push_str("null");
        } else {
            let _ = write!(out, "{}", s.end_us);
        }
        let _ = write!(out, ",\"id\":{}", s.id);
        let _ = write!(out, ",\"kind\":\"{}\"", s.kind.name());
        let _ = write!(out, ",\"op\":{}", s.op);
        let _ = write!(out, ",\"outcome\":\"{}\"", s.outcome.name());
        out.push_str(",\"parent\":");
        if s.parent == NO_PARENT {
            out.push_str("null");
        } else {
            let _ = write!(out, "{}", s.parent);
        }
        out.push_str(",\"peer\":");
        if s.peer == NO_PEER {
            out.push_str("null");
        } else {
            let _ = write!(out, "{}", s.peer);
        }
        let _ = write!(out, ",\"site\":{}", s.site);
        let _ = write!(out, ",\"start_us\":{}", s.start_us);
        let _ = write!(out, ",\"suite\":{}}}", s.suite);
        out.push('\n');
    }
    out
}

/// Parses the output of [`to_jsonl`] back into span records.
///
/// The parser accepts exactly the fixed shape `to_jsonl` emits (flat
/// objects, no escapes inside strings) — it is a trace reader, not a
/// general JSON parser.
pub fn from_jsonl(text: &str) -> Result<Vec<SpanRecord>, String> {
    let mut out = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let body = line
            .strip_prefix('{')
            .and_then(|l| l.strip_suffix('}'))
            .ok_or_else(|| format!("line {}: not an object", lineno + 1))?;
        let mut rec = SpanRecord {
            id: 0,
            parent: NO_PARENT,
            kind: SpanKind::Read,
            site: 0,
            peer: NO_PEER,
            op: 0,
            suite: 0,
            start_us: 0,
            end_us: OPEN_END,
            detail: 0,
            outcome: SpanOutcome::Open,
        };
        for field in body.split(',') {
            let (key, value) = field
                .split_once(':')
                .ok_or_else(|| format!("line {}: bad field {field:?}", lineno + 1))?;
            let key = key.trim().trim_matches('"');
            let value = value.trim();
            let parse_u64 = |v: &str| {
                v.parse::<u64>()
                    .map_err(|_| format!("line {}: bad number {v:?} for {key}", lineno + 1))
            };
            match key {
                "detail" => rec.detail = parse_u64(value)?,
                "end_us" => {
                    rec.end_us = if value == "null" {
                        OPEN_END
                    } else {
                        parse_u64(value)?
                    }
                }
                "id" => rec.id = parse_u64(value)? as u32,
                "kind" => {
                    rec.kind = SpanKind::from_name(value.trim_matches('"'))
                        .ok_or_else(|| format!("line {}: unknown kind {value}", lineno + 1))?
                }
                "op" => rec.op = parse_u64(value)?,
                "outcome" => {
                    rec.outcome = SpanOutcome::from_name(value.trim_matches('"'))
                        .ok_or_else(|| format!("line {}: unknown outcome {value}", lineno + 1))?
                }
                "parent" => {
                    rec.parent = if value == "null" {
                        NO_PARENT
                    } else {
                        parse_u64(value)? as u32
                    }
                }
                "peer" => {
                    rec.peer = if value == "null" {
                        NO_PEER
                    } else {
                        parse_u64(value)? as u16
                    }
                }
                "site" => rec.site = parse_u64(value)? as u16,
                "start_us" => rec.start_us = parse_u64(value)?,
                // Absent in traces written before the suite dimension
                // existed; the default 0 ("not suite-scoped") applies.
                "suite" => rec.suite = parse_u64(value)?,
                other => return Err(format!("line {}: unknown key {other:?}", lineno + 1)),
            }
        }
        out.push(rec);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    fn t(us: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_micros(us)
    }

    #[test]
    fn spans_nest_and_close_in_order() {
        let mut tr = Tracer::new(3);
        let root = tr.start(SpanKind::Read, 5, 77, None, None, 0, t(0));
        let inq = tr.start(SpanKind::Inquiry, 5, 77, Some(root), None, 0, t(0));
        let rpc = tr.start(SpanKind::Rpc, 5, 77, Some(inq), Some(1), 0, t(0));
        tr.end_with_detail(rpc, t(150), SpanOutcome::Ok, 9);
        tr.end(inq, t(150), SpanOutcome::Ok);
        tr.end(root, t(200), SpanOutcome::Ok);

        let recs = tr.records();
        assert_eq!(recs.len(), 3);
        assert_eq!(recs[0].parent, NO_PARENT);
        assert_eq!(recs[1].parent, 0);
        assert_eq!(recs[2].parent, 1);
        assert_eq!(recs[2].peer, 1);
        assert_eq!(recs[2].detail, 9);
        assert_eq!(recs[2].duration_us(), Some(150));
        assert_eq!(recs[0].duration_us(), Some(200));
        assert!(recs.iter().all(|r| r.site == 3));
        assert!(recs.iter().all(|r| r.suite == 5));
    }

    #[test]
    fn double_end_keeps_first_outcome() {
        let mut tr = Tracer::new(0);
        let s = tr.start(SpanKind::Fetch, 0, 1, None, None, 0, t(0));
        tr.end(s, t(10), SpanOutcome::Timeout);
        tr.end(s, t(20), SpanOutcome::Ok);
        assert_eq!(tr.records()[0].outcome, SpanOutcome::Timeout);
        assert_eq!(tr.records()[0].end_us, 10);
    }

    #[test]
    fn jsonl_round_trips() {
        let mut tr = Tracer::new(2);
        let root = tr.start(SpanKind::Write, 9, 0x1_0002, None, None, 0, t(5));
        let rpc = tr.start(SpanKind::Rpc, 9, 0x1_0002, Some(root), Some(4), 0, t(5));
        tr.end_with_detail(rpc, t(80), SpanOutcome::Refused, 3);
        tr.end(root, t(90), SpanOutcome::Err);
        let open = tr.start(SpanKind::Hedge, 9, 0x1_0002, Some(root), None, 0, t(95));
        assert!(tr.is_open(open));

        let text = to_jsonl(tr.records());
        assert!(text.lines().all(|l| l.contains("\"suite\":9")));
        let back = from_jsonl(&text).expect("parse");
        assert_eq!(back, tr.records());
    }

    #[test]
    fn traces_without_a_suite_key_parse_as_suite_zero() {
        // A line written before the suite dimension existed.
        let old = "{\"detail\":0,\"end_us\":90,\"id\":0,\"kind\":\"read\",\"op\":7,\
                   \"outcome\":\"ok\",\"parent\":null,\"peer\":null,\"site\":2,\
                   \"start_us\":5}\n";
        let back = from_jsonl(old).expect("parse");
        assert_eq!(back.len(), 1);
        assert_eq!(back[0].suite, 0);
        assert_eq!(back[0].op, 7);
    }

    // One arm per variant, no wildcard: adding a `SpanKind` is a compile
    // error here until it gets a slot, and the round-trip test below then
    // forces that slot to exist in `ALL` (bump `N_KINDS` alongside).
    const N_KINDS: usize = 20;
    fn kind_slot(k: SpanKind) -> usize {
        match k {
            SpanKind::Read => 0,
            SpanKind::Write => 1,
            SpanKind::Reconfigure => 2,
            SpanKind::Transaction => 3,
            SpanKind::Inquiry => 4,
            SpanKind::Rpc => 5,
            SpanKind::Fetch => 6,
            SpanKind::Hedge => 7,
            SpanKind::Prepare => 8,
            SpanKind::Commit => 9,
            SpanKind::LockWait => 10,
            SpanKind::WalWrite => 11,
            SpanKind::WalBatch => 12,
            SpanKind::Apply => 13,
            SpanKind::RepairPull => 14,
            SpanKind::RepairInstall => 15,
            SpanKind::CacheHit => 16,
            SpanKind::CacheRefresh => 17,
            SpanKind::DiskRecovery => 18,
            SpanKind::Quarantine => 19,
        }
    }

    const N_OUTCOMES: usize = 9;
    fn outcome_slot(o: SpanOutcome) -> usize {
        match o {
            SpanOutcome::Open => 0,
            SpanOutcome::Ok => 1,
            SpanOutcome::Err => 2,
            SpanOutcome::Timeout => 3,
            SpanOutcome::Conflict => 4,
            SpanOutcome::Stale => 5,
            SpanOutcome::Refused => 6,
            SpanOutcome::Unanswered => 7,
            SpanOutcome::Lost => 8,
        }
    }

    #[test]
    fn every_kind_and_outcome_round_trips_through_its_name() {
        assert_eq!(SpanKind::ALL.len(), N_KINDS);
        for (i, k) in SpanKind::ALL.into_iter().enumerate() {
            assert_eq!(kind_slot(k), i, "ALL out of declaration order at {i}");
            assert_eq!(SpanKind::from_name(k.name()), Some(k), "kind {}", k.name());
        }
        let mut names: Vec<_> = SpanKind::ALL.iter().map(|k| k.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), N_KINDS, "duplicate kind name");

        assert_eq!(SpanOutcome::ALL.len(), N_OUTCOMES);
        for (i, o) in SpanOutcome::ALL.into_iter().enumerate() {
            assert_eq!(outcome_slot(o), i, "ALL out of declaration order at {i}");
            assert_eq!(
                SpanOutcome::from_name(o.name()),
                Some(o),
                "outcome {}",
                o.name()
            );
        }
        let mut names: Vec<_> = SpanOutcome::ALL.iter().map(|o| o.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), N_OUTCOMES, "duplicate outcome name");

        assert_eq!(SpanKind::from_name("bogus"), None);
        assert_eq!(SpanOutcome::from_name("bogus"), None);
    }

    #[test]
    fn take_drains_and_restarts_ids() {
        let mut tr = Tracer::new(0);
        tr.event(SpanKind::WalWrite, 0, 0, None, None, 7, t(1));
        let drained = tr.take();
        assert_eq!(drained.len(), 1);
        assert!(tr.is_empty());
        let s = tr.start(SpanKind::Apply, 0, 0, None, None, 0, t(2));
        assert_eq!(s, SpanId(0));
    }
}
