//! Deterministic discrete-event simulation kernel.
//!
//! This crate is the substrate that stands in for the paper's physical
//! testbed (Gifford, *Weighted Voting for Replicated Data*, SOSP 1979).
//! Every experiment in the repository runs on virtual time: events are
//! executed in `(timestamp, sequence-number)` order, randomness comes from
//! explicitly seeded generators, and therefore every run is reproducible
//! bit-for-bit from its seed.
//!
//! The kernel is deliberately small and policy-free:
//!
//! * [`SimTime`] / [`SimDuration`] — microsecond-resolution virtual time.
//! * [`Sim`] — the engine: a world value `W` plus a [`Scheduler`] of
//!   closures to run against it at future instants.
//! * [`rng::DetRng`] — seeded, forkable random streams.
//! * [`dist::LatencyModel`] — the delay distributions used to model links
//!   and storage devices.
//! * [`stats`] — streaming statistics and sample sets for reporting.
//! * [`failure`] — crash/recovery schedules for availability experiments.
//! * [`trace`] — deterministic per-operation spans stamped from sim time.
//! * [`metrics`] — mergeable counters, gauges, and latency histograms.
//! * [`audit`] — quorum-decision audit records: why each plan was chosen.
//! * [`telemetry`] — windowed per-site time-series rings in sim time.
//! * [`json`] — the minimal integer-only JSON used by every artifact.
//! * [`vlog`] — verbosity-gated structured logging for bins.
//!
//! # Examples
//!
//! ```
//! use wv_sim::{Sim, SimDuration};
//!
//! let mut sim = Sim::new(0u64);
//! sim.scheduler().after(SimDuration::from_millis(5), |world, sched| {
//!     *world += 1;
//!     sched.after(SimDuration::from_millis(10), |world, _| *world += 10);
//! });
//! sim.run();
//! assert_eq!(sim.world, 11);
//! assert_eq!(sim.now().as_millis(), 15);
//! ```

#![warn(missing_docs)]

pub mod audit;
pub mod dist;
pub mod failure;
pub mod json;
pub mod metrics;
pub mod rng;
pub mod sched;
pub mod stats;
pub mod telemetry;
pub mod time;
pub mod trace;
pub mod vlog;

pub use audit::{AuditLog, AuditRecord, DecisionKind, SiteInput};
pub use dist::LatencyModel;
pub use failure::{FailureSchedule, OutageWindow};
pub use metrics::{MetricsRegistry, Percentiles};
pub use rng::{derive_seed, DetRng};
pub use sched::{Scheduler, Sim};
pub use stats::{Histogram, SampleSet, Summary};
pub use telemetry::{SiteWindow, TelemetryHub, TelemetryOptions, TelemetrySnapshot};
pub use time::{SimDuration, SimTime};
pub use trace::{SpanId, SpanKind, SpanOutcome, SpanRecord, Tracer};
