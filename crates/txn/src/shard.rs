//! A suite-sharded lock table: one [`LockManager`] per suite.
//!
//! With many suites multiplexed onto one server, a single flat lock table
//! makes every release walk every suite's entries and every contention
//! statistic global. Sharding by suite keeps disjoint suites strictly
//! independent — a release scans only the shards its transaction touched —
//! while preserving the flat table's observable behaviour exactly:
//! grant/queue/abort decisions are per object (unchanged), and the granted
//! list returned by [`ShardedLockManager::release_all`] is globally sorted
//! by `(object, tx)`, byte-for-byte the order the flat table produced.
//!
//! The shard key is the suite id: a data object and its config object
//! (same id with the top bit set, see `wv_core::suite`) land in the same
//! shard, so a reconfiguration transaction spanning both still resolves in
//! one shard. Cross-suite transactions simply hold locks in several shards
//! at once; the per-token suite index makes releasing them O(shards
//! touched), not O(all shards).

use std::collections::{BTreeSet, HashMap};

use wv_storage::ObjectId;

use crate::lock::{DeadlockPolicy, Granted, LockManager, LockMode, LockReply, LockStats, TxToken};

/// Top-bit tag that distinguishes config objects from data objects.
///
/// Mirrors `wv_core::suite::CONFIG_TAG` (this crate sits below `wv-core`
/// in the dependency graph); the bijection test in `wv_core::suite` pins
/// the two in agreement via [`shard_key`]'s public behaviour.
const CONFIG_TAG: u64 = 1 << 63;

/// The shard (suite) an object belongs to: its id with the config tag
/// stripped, so a suite's data and config objects share a shard.
pub fn shard_key(object: ObjectId) -> ObjectId {
    ObjectId(object.0 & !CONFIG_TAG)
}

/// A strict-2PL lock service sharded by suite.
///
/// Drop-in for [`LockManager`] on every operation the suite server uses;
/// see the module docs for the determinism contract.
#[derive(Debug, Default)]
pub struct ShardedLockManager {
    policy: DeadlockPolicy,
    shards: HashMap<ObjectId, LockManager>,
    /// Which shards each live transaction has touched (held *or* queued),
    /// so release does not scan shards the transaction never visited.
    /// BTreeSet: releases visit shards in suite order, deterministically.
    token_suites: HashMap<TxToken, BTreeSet<ObjectId>>,
}

impl ShardedLockManager {
    /// A sharded lock manager with the given deadlock policy.
    pub fn new(policy: DeadlockPolicy) -> Self {
        ShardedLockManager {
            policy,
            ..ShardedLockManager::default()
        }
    }

    /// The deadlock policy in force.
    pub fn policy(&self) -> DeadlockPolicy {
        self.policy
    }

    /// Requests `mode` on `object` for `tx`; semantics of
    /// [`LockManager::lock`] within the object's suite shard.
    pub fn lock(&mut self, tx: TxToken, object: ObjectId, mode: LockMode) -> LockReply {
        let suite = shard_key(object);
        let shard = self
            .shards
            .entry(suite)
            .or_insert_with(|| LockManager::new(self.policy));
        let reply = shard.lock(tx, object, mode);
        // An aborted request leaves nothing behind, so only grants and
        // queue entries register the shard for release.
        if reply != LockReply::Aborted {
            self.token_suites.entry(tx).or_default().insert(suite);
        }
        reply
    }

    /// Releases every lock and queued request of `tx` across all shards it
    /// touched. The returned grants are globally sorted by `(object, tx)`,
    /// matching the flat [`LockManager::release_all`] order exactly.
    pub fn release_all(&mut self, tx: TxToken) -> Vec<Granted> {
        let mut granted = Vec::new();
        let Some(suites) = self.token_suites.remove(&tx) else {
            return granted;
        };
        for suite in suites {
            if let Some(shard) = self.shards.get_mut(&suite) {
                granted.extend(shard.release_all(tx));
            }
        }
        granted.sort_by_key(|g| (g.object, g.tx));
        granted
    }

    /// The mode `tx` holds on `object`, if any.
    pub fn held(&self, tx: TxToken, object: ObjectId) -> Option<LockMode> {
        self.shards.get(&shard_key(object))?.held(tx, object)
    }

    /// The transaction holding `object` in `Exclusive` mode, if any.
    pub fn exclusive_holder(&self, object: ObjectId) -> Option<TxToken> {
        self.shards
            .get(&shard_key(object))?
            .exclusive_holder(object)
    }

    /// Number of transactions currently holding `object`.
    pub fn holder_count(&self, object: ObjectId) -> usize {
        self.shards
            .get(&shard_key(object))
            .map_or(0, |s| s.holder_count(object))
    }

    /// Number of queued requests on `object`.
    pub fn queue_len(&self, object: ObjectId) -> usize {
        self.shards
            .get(&shard_key(object))
            .map_or(0, |s| s.queue_len(object))
    }

    /// True if no locks are held or queued in any shard.
    pub fn is_quiescent(&self) -> bool {
        self.shards.values().all(|s| s.is_quiescent())
    }

    /// Counters summed across every shard (shards persist after going
    /// idle, so the totals match what a flat table would have counted).
    pub fn stats(&self) -> LockStats {
        let mut total = LockStats::default();
        for s in self.shards.values() {
            let st = s.stats();
            total.granted += st.granted;
            total.queued += st.queued;
            total.aborted += st.aborted;
            total.promoted += st.promoted;
        }
        total
    }

    /// Per-suite counters, in suite order.
    pub fn per_suite_stats(&self) -> Vec<(ObjectId, LockStats)> {
        let mut out: Vec<(ObjectId, LockStats)> =
            self.shards.iter().map(|(k, s)| (*k, s.stats())).collect();
        out.sort_by_key(|(k, _)| *k);
        out
    }

    /// How many suite shards have been materialised.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(n: u64) -> TxToken {
        TxToken::new(n, n)
    }

    fn cfg(suite: u64) -> ObjectId {
        ObjectId(suite | CONFIG_TAG)
    }

    #[test]
    fn shard_key_strips_the_config_tag() {
        assert_eq!(shard_key(ObjectId(7)), ObjectId(7));
        assert_eq!(shard_key(cfg(7)), ObjectId(7));
    }

    #[test]
    fn data_and_config_objects_share_a_shard() {
        let mut lm = ShardedLockManager::default();
        assert_eq!(
            lm.lock(t(1), ObjectId(3), LockMode::IntendWrite),
            LockReply::Granted
        );
        assert_eq!(
            lm.lock(t(1), cfg(3), LockMode::IntendWrite),
            LockReply::Granted
        );
        assert_eq!(lm.shard_count(), 1);
        // Distinct objects within the shard still lock independently.
        assert_eq!(lm.holder_count(ObjectId(3)), 1);
        assert_eq!(lm.holder_count(cfg(3)), 1);
    }

    #[test]
    fn disjoint_suites_never_interact() {
        let mut lm = ShardedLockManager::default();
        assert_eq!(
            lm.lock(t(1), ObjectId(1), LockMode::Exclusive),
            LockReply::Granted
        );
        // Same token ages don't matter: a younger tx on another suite is
        // untouched by suite 1's exclusive lock.
        assert_eq!(
            lm.lock(t(9), ObjectId(2), LockMode::Exclusive),
            LockReply::Granted
        );
        assert_eq!(lm.shard_count(), 2);
        assert_eq!(lm.exclusive_holder(ObjectId(1)), Some(t(1)));
        assert_eq!(lm.exclusive_holder(ObjectId(2)), Some(t(9)));
    }

    #[test]
    fn release_only_visits_touched_shards_and_sorts_globally() {
        let mut lm = ShardedLockManager::default();
        // t5 holds exclusives on suites 2 and 1; t1 queues on both.
        assert_eq!(
            lm.lock(t(5), ObjectId(2), LockMode::Exclusive),
            LockReply::Granted
        );
        assert_eq!(
            lm.lock(t(5), ObjectId(1), LockMode::Exclusive),
            LockReply::Granted
        );
        assert_eq!(
            lm.lock(t(1), ObjectId(2), LockMode::Shared),
            LockReply::Queued
        );
        assert_eq!(
            lm.lock(t(1), ObjectId(1), LockMode::Shared),
            LockReply::Queued
        );
        let granted = lm.release_all(t(5));
        // Global (object, tx) order, exactly as the flat table returns.
        assert_eq!(
            granted.iter().map(|g| (g.object, g.tx)).collect::<Vec<_>>(),
            vec![(ObjectId(1), t(1)), (ObjectId(2), t(1))]
        );
        // Releasing a token that holds nothing is a no-op.
        assert!(lm.release_all(t(42)).is_empty());
    }

    #[test]
    fn aborted_requests_leave_no_release_residue() {
        let mut lm = ShardedLockManager::default();
        assert_eq!(
            lm.lock(t(1), ObjectId(1), LockMode::Exclusive),
            LockReply::Granted
        );
        // Younger t2 dies; its release must not disturb suite 1.
        assert_eq!(
            lm.lock(t(2), ObjectId(1), LockMode::Shared),
            LockReply::Aborted
        );
        assert!(lm.release_all(t(2)).is_empty());
        assert_eq!(lm.exclusive_holder(ObjectId(1)), Some(t(1)));
    }

    #[test]
    fn stats_aggregate_and_break_down_per_suite() {
        let mut lm = ShardedLockManager::new(DeadlockPolicy::WaitDie);
        lm.lock(t(5), ObjectId(1), LockMode::Exclusive);
        lm.lock(t(1), ObjectId(1), LockMode::Shared); // queued
        lm.lock(t(9), ObjectId(1), LockMode::Shared); // aborted
        lm.lock(t(5), ObjectId(2), LockMode::Shared);
        lm.release_all(t(5)); // promotes t1 in suite 1
        let total = lm.stats();
        assert_eq!(total.granted, 2);
        assert_eq!(total.queued, 1);
        assert_eq!(total.aborted, 1);
        assert_eq!(total.promoted, 1);
        let per = lm.per_suite_stats();
        assert_eq!(per.len(), 2);
        assert_eq!(per[0].0, ObjectId(1));
        assert_eq!(per[0].1.promoted, 1);
        assert_eq!(per[1].0, ObjectId(2));
        assert_eq!(per[1].1.granted, 1);
        assert!(!lm.is_quiescent());
        lm.release_all(t(1));
        assert!(lm.is_quiescent());
    }

    /// The sharded table must be observably identical to a flat table on
    /// any operation history — seeded random histories over several
    /// suites, replayed against both, comparing every reply and the full
    /// granted order of every release.
    #[test]
    fn matches_flat_lock_manager_on_random_histories() {
        /// SplitMix64 stream, as in `lock::tests` — dependency-free.
        struct TestRng(u64);
        impl TestRng {
            fn next(&mut self) -> u64 {
                self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = self.0;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            }
            fn below(&mut self, n: u64) -> u64 {
                self.next() % n
            }
        }
        for seed in 0..256u64 {
            let mut rng = TestRng(0x57a4d ^ seed);
            let mut flat = LockManager::default();
            let mut sharded = ShardedLockManager::default();
            for step in 0..120 {
                let txn = rng.below(6);
                let tok = TxToken::new(txn, txn);
                if rng.below(4) == 0 {
                    let a = flat.release_all(tok);
                    let b = sharded.release_all(tok);
                    assert_eq!(a, b, "seed {seed} step {step}: release diverged");
                    continue;
                }
                let suite = 1 + rng.below(4);
                let object = if rng.below(8) == 0 {
                    ObjectId(suite | CONFIG_TAG)
                } else {
                    ObjectId(suite)
                };
                let mode = match rng.below(3) {
                    0 => LockMode::Shared,
                    1 => LockMode::IntendWrite,
                    _ => LockMode::Exclusive,
                };
                let a = flat.lock(tok, object, mode);
                let b = sharded.lock(tok, object, mode);
                assert_eq!(a, b, "seed {seed} step {step}: lock reply diverged");
                assert_eq!(
                    flat.exclusive_holder(object),
                    sharded.exclusive_holder(object),
                    "seed {seed} step {step}"
                );
            }
            // Drain everything; both must empty identically.
            for txn in 0..6 {
                let tok = TxToken::new(txn, txn);
                assert_eq!(flat.release_all(tok), sharded.release_all(tok));
            }
            assert_eq!(flat.is_quiescent(), sharded.is_quiescent());
            assert!(sharded.is_quiescent(), "seed {seed} left residue");
            // Lifetime totals agree too.
            assert_eq!(flat.stats(), sharded.stats(), "seed {seed}");
        }
    }
}
