//! Two-phase commit: pure state machines plus a co-located helper.
//!
//! The suite servers in `wv-core` drive the [`Coordinator`] over the
//! network; because it is a pure state machine (feed votes, read the
//! decision), its correctness is testable without any transport.

use std::collections::BTreeMap;

use wv_storage::{Container, StorageError, TxId};

/// A participant's vote.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Vote {
    /// The participant prepared successfully and promises to commit.
    Yes,
    /// The participant cannot commit.
    No,
}

/// The coordinator's decision.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Decision {
    /// All participants voted yes: commit everywhere.
    Commit,
    /// Some participant voted no, failed, or timed out: abort everywhere.
    Abort,
}

/// The coordinator state machine for one distributed transaction.
///
/// Generic over the participant id type `P` so it is usable with site ids,
/// container indices, or anything else hashable.
///
/// # Examples
///
/// ```
/// use wv_txn::{Coordinator, Decision, Vote};
///
/// let mut c = Coordinator::new(vec!["a", "b"]);
/// assert_eq!(c.record_vote("a", Vote::Yes), None);
/// assert_eq!(c.record_vote("b", Vote::Yes), Some(Decision::Commit));
/// assert_eq!(c.decision(), Some(Decision::Commit));
/// ```
#[derive(Clone, Debug)]
pub struct Coordinator<P: Ord> {
    votes: BTreeMap<P, Option<Vote>>,
    decision: Option<Decision>,
}

impl<P: Ord + Copy> Coordinator<P> {
    /// A coordinator awaiting votes from `participants`.
    ///
    /// # Panics
    ///
    /// Panics if `participants` is empty — a transaction with no
    /// participants has nothing to decide.
    pub fn new(participants: impl IntoIterator<Item = P>) -> Self {
        let votes: BTreeMap<P, Option<Vote>> =
            participants.into_iter().map(|p| (p, None)).collect();
        assert!(!votes.is_empty(), "two-phase commit needs participants");
        Coordinator {
            votes,
            decision: None,
        }
    }

    /// Records a vote. Returns the decision if this vote settles it.
    ///
    /// Votes from unknown participants and re-votes after a decision are
    /// ignored (duplicate-delivery tolerance).
    pub fn record_vote(&mut self, from: P, vote: Vote) -> Option<Decision> {
        if self.decision.is_some() {
            return self.decision;
        }
        let effective = match self.votes.get_mut(&from) {
            None => return None, // unknown participant: ignore
            Some(slot) => {
                // First vote wins; a contradictory duplicate must not flip
                // anything, so the decision logic uses the recorded vote.
                if slot.is_none() {
                    *slot = Some(vote);
                }
                slot.expect("just ensured set")
            }
        };
        if effective == Vote::No {
            self.decision = Some(Decision::Abort);
        } else if self.votes.values().all(|v| *v == Some(Vote::Yes)) {
            self.decision = Some(Decision::Commit);
        }
        self.decision
    }

    /// Forces an abort (vote timeout or participant crash).
    ///
    /// Idempotent; returns the decision in force. Aborting after a commit
    /// decision is ignored — the decision is immutable once reached.
    pub fn force_abort(&mut self) -> Decision {
        if self.decision.is_none() {
            self.decision = Some(Decision::Abort);
        }
        self.decision.expect("just set")
    }

    /// The decision, if reached.
    pub fn decision(&self) -> Option<Decision> {
        self.decision
    }

    /// Participants that have not voted yet.
    pub fn outstanding(&self) -> Vec<P> {
        self.votes
            .iter()
            .filter(|(_, v)| v.is_none())
            .map(|(p, _)| *p)
            .collect()
    }

    /// All participants.
    pub fn participants(&self) -> Vec<P> {
        self.votes.keys().copied().collect()
    }
}

/// Atomically commits transactions across co-located containers.
///
/// This is the one-process fast path (all representatives in reach of one
/// call stack): prepare everything, then commit everything, aborting all if
/// any prepare fails. Returns the decision.
///
/// # Panics
///
/// Panics if `containers` and `txs` have different lengths.
pub fn commit_across(containers: &mut [&mut Container], txs: &[TxId]) -> Decision {
    assert_eq!(containers.len(), txs.len(), "one tx per container");
    let mut prepared = Vec::new();
    let mut ok = true;
    for (c, &tx) in containers.iter_mut().zip(txs) {
        match c.prepare(tx) {
            Ok(()) => prepared.push(true),
            Err(StorageError::Crashed) | Err(_) => {
                prepared.push(false);
                ok = false;
                break;
            }
        }
    }
    if ok {
        for (c, &tx) in containers.iter_mut().zip(txs) {
            c.commit(tx).expect("prepared transaction must commit");
        }
        Decision::Commit
    } else {
        for ((c, &tx), was_prepared) in containers
            .iter_mut()
            .zip(txs)
            .zip(prepared.into_iter().chain(std::iter::repeat(false)))
        {
            // Abort what we prepared and anything still active; ignore
            // containers that already failed.
            if was_prepared || c.phase(tx).is_some() {
                let _ = c.abort(tx);
            }
        }
        Decision::Abort
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use wv_storage::{ObjectId, Version};

    #[test]
    fn unanimous_yes_commits() {
        let mut c = Coordinator::new([1, 2, 3]);
        assert_eq!(c.record_vote(1, Vote::Yes), None);
        assert_eq!(c.outstanding(), vec![2, 3]);
        assert_eq!(c.record_vote(2, Vote::Yes), None);
        assert_eq!(c.record_vote(3, Vote::Yes), Some(Decision::Commit));
        assert_eq!(c.decision(), Some(Decision::Commit));
    }

    #[test]
    fn any_no_aborts_immediately() {
        let mut c = Coordinator::new([1, 2, 3]);
        assert_eq!(c.record_vote(2, Vote::No), Some(Decision::Abort));
        // Later yes votes cannot resurrect it.
        assert_eq!(c.record_vote(1, Vote::Yes), Some(Decision::Abort));
        assert_eq!(c.record_vote(3, Vote::Yes), Some(Decision::Abort));
    }

    #[test]
    fn duplicate_votes_are_idempotent() {
        let mut c = Coordinator::new([1, 2]);
        assert_eq!(c.record_vote(1, Vote::Yes), None);
        assert_eq!(c.record_vote(1, Vote::Yes), None);
        // A contradictory duplicate is ignored: first vote wins.
        assert_eq!(c.record_vote(1, Vote::No), None);
        assert_eq!(c.record_vote(2, Vote::Yes), Some(Decision::Commit));
    }

    #[test]
    fn unknown_participant_is_ignored() {
        let mut c = Coordinator::new([1]);
        assert_eq!(c.record_vote(9, Vote::No), None);
        assert_eq!(c.record_vote(1, Vote::Yes), Some(Decision::Commit));
    }

    #[test]
    fn force_abort_before_decision() {
        let mut c = Coordinator::new([1, 2]);
        c.record_vote(1, Vote::Yes);
        assert_eq!(c.force_abort(), Decision::Abort);
        assert_eq!(c.record_vote(2, Vote::Yes), Some(Decision::Abort));
    }

    #[test]
    fn force_abort_after_commit_is_ignored() {
        let mut c = Coordinator::new([1]);
        assert_eq!(c.record_vote(1, Vote::Yes), Some(Decision::Commit));
        assert_eq!(c.force_abort(), Decision::Commit);
    }

    #[test]
    #[should_panic(expected = "needs participants")]
    fn empty_participant_set_rejected() {
        let _: Coordinator<u32> = Coordinator::new([]);
    }

    fn staged(containers: &mut [Container]) -> Vec<TxId> {
        containers
            .iter_mut()
            .enumerate()
            .map(|(i, c)| {
                let tx = c.begin().expect("begin");
                c.stage_put(tx, ObjectId(7), Version(1), Bytes::from(format!("site{i}")))
                    .expect("stage");
                tx
            })
            .collect()
    }

    #[test]
    fn commit_across_installs_everywhere() {
        let mut containers = vec![Container::new(), Container::new(), Container::new()];
        let txs = staged(&mut containers);
        let mut refs: Vec<&mut Container> = containers.iter_mut().collect();
        assert_eq!(commit_across(&mut refs, &txs), Decision::Commit);
        for c in &containers {
            assert_eq!(c.read_version(ObjectId(7)).expect("read"), Version(1));
        }
    }

    #[test]
    fn commit_across_aborts_all_when_one_participant_fails() {
        let mut containers = vec![Container::new(), Container::new(), Container::new()];
        let txs = staged(&mut containers);
        // Second participant crashes before prepare.
        containers[1].crash();
        let mut refs: Vec<&mut Container> = containers.iter_mut().collect();
        assert_eq!(commit_across(&mut refs, &txs), Decision::Abort);
        containers[1].recover();
        for c in &containers {
            assert_eq!(c.read_version(ObjectId(7)).expect("read"), Version(0));
            assert!(c.in_doubt().is_empty(), "no dangling prepared state");
        }
    }

    #[test]
    fn participants_accessor() {
        let c = Coordinator::new(["x", "y"]);
        assert_eq!(c.participants(), vec!["x", "y"]);
    }
}
