//! Strict two-phase locking with Violet's three lock modes.
//!
//! The paper's transactions take `Shared` locks to read representatives and
//! `IntendWrite` locks while producing a new version; at commit point the
//! intention lock is upgraded to `Exclusive` so readers never observe a
//! half-installed version. Compatibility:
//!
//! ```text
//!              Shared  IntendWrite  Exclusive
//! Shared         ok        ok          --
//! IntendWrite    ok        --          --
//! Exclusive      --        --          --
//! ```
//!
//! Deadlock handling is wait-die: on conflict, a requester older than every
//! conflicting holder waits; a younger requester is killed (it must abort
//! and retry with its original timestamp so it eventually ages to the
//! front). The alternative `NoWait` policy (kill on any conflict) is kept
//! for the E8 ablation.

use std::collections::{BTreeMap, HashMap, VecDeque};

use wv_storage::ObjectId;

/// A transaction's identity for locking purposes.
///
/// `ts` is the transaction's birth timestamp (smaller = older); wait-die
/// compares these. Retries must reuse the original `ts` to avoid
/// starvation.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct TxToken {
    /// Birth timestamp; the wait-die priority (smaller = older = wins).
    pub ts: u64,
    /// Unique transaction id (tie-breaker and identity).
    pub id: u64,
}

impl TxToken {
    /// Creates a token. For simple uses where ids are already unique and
    /// monotone, pass the same value for both fields.
    pub fn new(ts: u64, id: u64) -> Self {
        TxToken { ts, id }
    }
}

/// The three lock modes of the paper's transaction system.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LockMode {
    /// Reader lock.
    Shared,
    /// Writer lock held during the transaction body; lets readers proceed.
    IntendWrite,
    /// Commit-point lock; conflicts with everything.
    Exclusive,
}

impl LockMode {
    /// True if a holder in `self` mode can coexist with a holder in
    /// `other` mode.
    pub fn compatible(self, other: LockMode) -> bool {
        use LockMode::*;
        matches!(
            (self, other),
            (Shared, Shared) | (Shared, IntendWrite) | (IntendWrite, Shared)
        )
    }

    /// True if `self` subsumes `other` (holding `self` already grants the
    /// rights of `other`).
    pub fn covers(self, other: LockMode) -> bool {
        use LockMode::*;
        match (self, other) {
            (a, b) if a == b => true,
            (Exclusive, _) => true,
            (IntendWrite, Shared) => true,
            _ => false,
        }
    }
}

/// How conflicts are resolved.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum DeadlockPolicy {
    /// Older transactions wait for younger ones; younger die. Deadlock-free
    /// and starvation-free given timestamp reuse on retry.
    #[default]
    WaitDie,
    /// Any conflict kills the requester. Simplest, most aborts.
    NoWait,
}

/// The outcome of a lock request.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LockReply {
    /// The lock is held; proceed.
    Granted,
    /// The request is queued; the caller will be told when granted (see
    /// [`LockManager::release_all`]'s return value).
    Queued,
    /// Wait-die / no-wait killed the request; abort and retry later.
    Aborted,
}

#[derive(Debug, Default)]
struct Entry {
    /// Strongest granted mode per holder.
    holders: BTreeMap<TxToken, LockMode>,
    /// FIFO wait queue.
    queue: VecDeque<(TxToken, LockMode)>,
}

impl Entry {
    fn conflicts_with_holders(&self, tx: TxToken, mode: LockMode) -> Vec<TxToken> {
        self.holders
            .iter()
            .filter(|(holder, held)| **holder != tx && !mode.compatible(**held))
            .map(|(holder, _)| *holder)
            .collect()
    }
}

/// A granted lock delivered asynchronously after a release.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Granted {
    /// The transaction whose queued request was granted.
    pub tx: TxToken,
    /// The object it now holds.
    pub object: ObjectId,
    /// The granted mode.
    pub mode: LockMode,
}

/// A strict-2PL lock table over objects.
///
/// The manager is single-threaded by design: each site owns one, and the
/// `wv-net` transports serialize node activity. (Wrap in a mutex for the
/// thread transport.)
#[derive(Debug, Default)]
pub struct LockManager {
    policy: DeadlockPolicy,
    table: HashMap<ObjectId, Entry>,
    stats: LockStats,
}

/// Counters for the lock-contention experiments.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LockStats {
    /// Requests granted immediately.
    pub granted: u64,
    /// Requests queued.
    pub queued: u64,
    /// Requests killed by the deadlock policy.
    pub aborted: u64,
    /// Grants delivered from the queue after a release.
    pub promoted: u64,
}

impl LockManager {
    /// A lock manager with the given deadlock policy.
    pub fn new(policy: DeadlockPolicy) -> Self {
        LockManager {
            policy,
            ..LockManager::default()
        }
    }

    /// The deadlock policy in force.
    pub fn policy(&self) -> DeadlockPolicy {
        self.policy
    }

    /// Counters snapshot.
    pub fn stats(&self) -> LockStats {
        self.stats
    }

    /// Requests `mode` on `object` for `tx`.
    ///
    /// Re-requesting a mode already covered by the held mode returns
    /// `Granted` immediately. Requesting a stronger mode is an upgrade and
    /// is evaluated against the other holders only.
    pub fn lock(&mut self, tx: TxToken, object: ObjectId, mode: LockMode) -> LockReply {
        let entry = self.table.entry(object).or_default();
        if let Some(held) = entry.holders.get(&tx) {
            if held.covers(mode) {
                self.stats.granted += 1;
                return LockReply::Granted;
            }
        }
        let conflicts = entry.conflicts_with_holders(tx, mode);
        // Fairness: a fresh (non-upgrade) request must also respect the
        // queue, or waiters starve behind a stream of compatible holders.
        // Upgrades bypass the queue: the holder already owns part of the
        // object, and making it wait behind later arrivals deadlocks with
        // wait-die's guarantees.
        let is_upgrade = entry.holders.contains_key(&tx);
        let blocked_by_queue = !is_upgrade && !entry.queue.is_empty();
        if conflicts.is_empty() && !blocked_by_queue {
            let slot = entry.holders.entry(tx).or_insert(mode);
            if mode.covers(*slot) {
                *slot = mode;
            }
            self.stats.granted += 1;
            return LockReply::Granted;
        }
        match self.policy {
            DeadlockPolicy::NoWait => {
                self.stats.aborted += 1;
                LockReply::Aborted
            }
            DeadlockPolicy::WaitDie => {
                // Die if any conflicting holder is older than (or tied
                // with) the requester; queue-blocked requests compare with
                // queue heads too, else a young tx could wait behind an old
                // one and form a cycle through the queue.
                let oldest_obstacle = conflicts
                    .iter()
                    .copied()
                    .chain(if blocked_by_queue {
                        entry.queue.front().map(|(t, _)| *t)
                    } else {
                        None
                    })
                    .min();
                match oldest_obstacle {
                    Some(obstacle) if (tx.ts, tx.id) < (obstacle.ts, obstacle.id) => {
                        entry.queue.push_back((tx, mode));
                        self.stats.queued += 1;
                        LockReply::Queued
                    }
                    Some(_) => {
                        self.stats.aborted += 1;
                        LockReply::Aborted
                    }
                    // Unreachable: no conflicts and no queue block was
                    // handled above; defensive grant.
                    None => {
                        entry.holders.insert(tx, mode);
                        self.stats.granted += 1;
                        LockReply::Granted
                    }
                }
            }
        }
    }

    /// Releases every lock and queued request of `tx` (strict 2PL releases
    /// at commit/abort only). Returns the queued requests that became
    /// granted, in grant order — the caller resumes those transactions.
    pub fn release_all(&mut self, tx: TxToken) -> Vec<Granted> {
        let mut granted = Vec::new();
        let mut empty_objects = Vec::new();
        for (object, entry) in self.table.iter_mut() {
            entry.holders.remove(&tx);
            entry.queue.retain(|(t, _)| *t != tx);
            // Promote waiters FIFO until the head can't be granted.
            while let Some((head, mode)) = entry.queue.front().copied() {
                let conflicts = entry.conflicts_with_holders(head, mode);
                if conflicts.is_empty() {
                    entry.queue.pop_front();
                    let slot = entry.holders.entry(head).or_insert(mode);
                    if mode.covers(*slot) {
                        *slot = mode;
                    }
                    granted.push(Granted {
                        tx: head,
                        object: *object,
                        mode,
                    });
                    self.stats.promoted += 1;
                } else {
                    break;
                }
            }
            if entry.holders.is_empty() && entry.queue.is_empty() {
                empty_objects.push(*object);
            }
        }
        for o in empty_objects {
            self.table.remove(&o);
        }
        // Deterministic order for callers and tests.
        granted.sort_by_key(|g| (g.object, g.tx));
        granted
    }

    /// The mode `tx` holds on `object`, if any.
    pub fn held(&self, tx: TxToken, object: ObjectId) -> Option<LockMode> {
        self.table.get(&object)?.holders.get(&tx).copied()
    }

    /// The transaction holding `object` in `Exclusive` mode, if any.
    ///
    /// Suite servers use this to turn reads away (`Busy`) while a write
    /// sits at its commit point.
    pub fn exclusive_holder(&self, object: ObjectId) -> Option<TxToken> {
        self.table.get(&object)?.holders.iter().find_map(|(tx, m)| {
            if *m == LockMode::Exclusive {
                Some(*tx)
            } else {
                None
            }
        })
    }

    /// Number of transactions currently holding `object`.
    pub fn holder_count(&self, object: ObjectId) -> usize {
        self.table.get(&object).map_or(0, |e| e.holders.len())
    }

    /// Number of queued requests on `object`.
    pub fn queue_len(&self, object: ObjectId) -> usize {
        self.table.get(&object).map_or(0, |e| e.queue.len())
    }

    /// True if no locks are held or queued anywhere.
    pub fn is_quiescent(&self) -> bool {
        self.table.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const OBJ: ObjectId = ObjectId(1);

    fn t(n: u64) -> TxToken {
        TxToken::new(n, n)
    }

    #[test]
    fn compatibility_matrix() {
        use LockMode::*;
        assert!(Shared.compatible(Shared));
        assert!(Shared.compatible(IntendWrite));
        assert!(IntendWrite.compatible(Shared));
        assert!(!IntendWrite.compatible(IntendWrite));
        assert!(!Exclusive.compatible(Shared));
        assert!(!Shared.compatible(Exclusive));
        assert!(!Exclusive.compatible(Exclusive));
        assert!(!IntendWrite.compatible(Exclusive));
    }

    #[test]
    fn covers_lattice() {
        use LockMode::*;
        assert!(Exclusive.covers(Shared));
        assert!(Exclusive.covers(IntendWrite));
        assert!(IntendWrite.covers(Shared));
        assert!(!Shared.covers(IntendWrite));
        assert!(!IntendWrite.covers(Exclusive));
        assert!(Shared.covers(Shared));
    }

    #[test]
    fn readers_share() {
        let mut lm = LockManager::default();
        assert_eq!(lm.lock(t(1), OBJ, LockMode::Shared), LockReply::Granted);
        assert_eq!(lm.lock(t(2), OBJ, LockMode::Shared), LockReply::Granted);
        assert_eq!(lm.holder_count(OBJ), 2);
    }

    #[test]
    fn reader_and_intender_share_but_two_intenders_conflict() {
        let mut lm = LockManager::default();
        assert_eq!(lm.lock(t(1), OBJ, LockMode::Shared), LockReply::Granted);
        assert_eq!(
            lm.lock(t(2), OBJ, LockMode::IntendWrite),
            LockReply::Granted
        );
        // t3 is younger than holder t2 -> dies under wait-die.
        assert_eq!(
            lm.lock(t(3), OBJ, LockMode::IntendWrite),
            LockReply::Aborted
        );
        // t0 is older than t2 -> waits.
        assert_eq!(lm.lock(t(0), OBJ, LockMode::IntendWrite), LockReply::Queued);
        assert_eq!(lm.queue_len(OBJ), 1);
    }

    #[test]
    fn exclusive_blocks_everyone() {
        let mut lm = LockManager::default();
        assert_eq!(lm.lock(t(5), OBJ, LockMode::Exclusive), LockReply::Granted);
        assert_eq!(lm.lock(t(6), OBJ, LockMode::Shared), LockReply::Aborted); // younger dies
        assert_eq!(lm.lock(t(1), OBJ, LockMode::Shared), LockReply::Queued); // older waits
    }

    #[test]
    fn release_promotes_fifo() {
        let mut lm = LockManager::default();
        assert_eq!(lm.lock(t(5), OBJ, LockMode::Exclusive), LockReply::Granted);
        assert_eq!(lm.lock(t(1), OBJ, LockMode::Shared), LockReply::Queued);
        // Waiting behind queue-head t1 requires being older than it.
        assert_eq!(lm.lock(t(0), OBJ, LockMode::Shared), LockReply::Queued);
        let granted = lm.release_all(t(5));
        assert_eq!(granted.len(), 2);
        assert!(granted.iter().all(|g| g.mode == LockMode::Shared));
        assert_eq!(lm.holder_count(OBJ), 2);
        assert_eq!(lm.queue_len(OBJ), 0);
    }

    #[test]
    fn promotion_stops_at_first_conflict() {
        let mut lm = LockManager::default();
        assert_eq!(lm.lock(t(9), OBJ, LockMode::Exclusive), LockReply::Granted);
        assert_eq!(lm.lock(t(2), OBJ, LockMode::IntendWrite), LockReply::Queued);
        // t1 is older than queue-head t2, so it waits behind it.
        assert_eq!(lm.lock(t(1), OBJ, LockMode::IntendWrite), LockReply::Queued);
        let granted = lm.release_all(t(9));
        // Only the first intender gets in; the second still conflicts.
        assert_eq!(granted.len(), 1);
        assert_eq!(granted[0].tx, t(2));
        assert_eq!(lm.queue_len(OBJ), 1);
    }

    #[test]
    fn upgrade_intend_to_exclusive_waits_for_readers() {
        let mut lm = LockManager::default();
        assert_eq!(
            lm.lock(t(1), OBJ, LockMode::IntendWrite),
            LockReply::Granted
        );
        assert_eq!(lm.lock(t(2), OBJ, LockMode::Shared), LockReply::Granted);
        // Upgrade conflicts with the reader t2; t1 is older so it queues.
        assert_eq!(lm.lock(t(1), OBJ, LockMode::Exclusive), LockReply::Queued);
        let granted = lm.release_all(t(2));
        assert_eq!(
            granted,
            vec![Granted {
                tx: t(1),
                object: OBJ,
                mode: LockMode::Exclusive
            }]
        );
        assert_eq!(lm.held(t(1), OBJ), Some(LockMode::Exclusive));
    }

    #[test]
    fn upgrade_when_alone_is_immediate() {
        let mut lm = LockManager::default();
        assert_eq!(
            lm.lock(t(1), OBJ, LockMode::IntendWrite),
            LockReply::Granted
        );
        assert_eq!(lm.lock(t(1), OBJ, LockMode::Exclusive), LockReply::Granted);
        assert_eq!(lm.held(t(1), OBJ), Some(LockMode::Exclusive));
    }

    #[test]
    fn rerequest_of_covered_mode_is_granted() {
        let mut lm = LockManager::default();
        assert_eq!(lm.lock(t(1), OBJ, LockMode::Exclusive), LockReply::Granted);
        assert_eq!(lm.lock(t(1), OBJ, LockMode::Shared), LockReply::Granted);
        assert_eq!(lm.held(t(1), OBJ), Some(LockMode::Exclusive));
    }

    #[test]
    fn fresh_requests_respect_the_queue() {
        let mut lm = LockManager::default();
        assert_eq!(
            lm.lock(t(5), OBJ, LockMode::IntendWrite),
            LockReply::Granted
        );
        assert_eq!(lm.lock(t(1), OBJ, LockMode::IntendWrite), LockReply::Queued);
        // A shared request would be compatible with the holder, but jumping
        // the queue would starve t1. t2 is younger than queue-head t1 -> dies.
        assert_eq!(lm.lock(t(2), OBJ, LockMode::Shared), LockReply::Aborted);
        // An older shared request waits instead.
        assert_eq!(lm.lock(t(0), OBJ, LockMode::Shared), LockReply::Queued);
    }

    #[test]
    fn no_wait_policy_aborts_on_any_conflict() {
        let mut lm = LockManager::new(DeadlockPolicy::NoWait);
        assert_eq!(lm.policy(), DeadlockPolicy::NoWait);
        assert_eq!(lm.lock(t(5), OBJ, LockMode::Exclusive), LockReply::Granted);
        assert_eq!(lm.lock(t(1), OBJ, LockMode::Shared), LockReply::Aborted);
        assert_eq!(lm.lock(t(9), OBJ, LockMode::Shared), LockReply::Aborted);
        assert_eq!(lm.stats().aborted, 2);
    }

    #[test]
    fn release_clears_queue_entries_of_dead_tx() {
        let mut lm = LockManager::default();
        assert_eq!(lm.lock(t(5), OBJ, LockMode::Exclusive), LockReply::Granted);
        assert_eq!(lm.lock(t(1), OBJ, LockMode::Shared), LockReply::Queued);
        // t1 gives up (e.g. client timeout) before being granted.
        let granted = lm.release_all(t(1));
        assert!(granted.is_empty());
        assert_eq!(lm.queue_len(OBJ), 0);
        lm.release_all(t(5));
        assert!(lm.is_quiescent());
    }

    #[test]
    fn locks_on_different_objects_do_not_interact() {
        let mut lm = LockManager::default();
        assert_eq!(
            lm.lock(t(1), ObjectId(1), LockMode::Exclusive),
            LockReply::Granted
        );
        assert_eq!(
            lm.lock(t(2), ObjectId(2), LockMode::Exclusive),
            LockReply::Granted
        );
        assert_eq!(lm.holder_count(ObjectId(1)), 1);
        assert_eq!(lm.holder_count(ObjectId(2)), 1);
    }

    #[test]
    fn stats_accumulate() {
        let mut lm = LockManager::default();
        lm.lock(t(5), OBJ, LockMode::Exclusive);
        lm.lock(t(1), OBJ, LockMode::Shared); // queued
        lm.lock(t(9), OBJ, LockMode::Shared); // aborted
        lm.release_all(t(5)); // promotes t1
        let s = lm.stats();
        assert_eq!(s.granted, 1);
        assert_eq!(s.queued, 1);
        assert_eq!(s.aborted, 1);
        assert_eq!(s.promoted, 1);
    }

    #[test]
    fn old_timestamps_eventually_win_through_retries() {
        // Starvation-freedom rationale: an operation that retries with its
        // original (aging) timestamp outranks every newcomer, so once it
        // is oldest it either queues (and gets promoted) or grabs the
        // lock. Simulate a victim racing a stream of newcomers.
        let mut lm = LockManager::default();
        let victim = TxToken::new(10, 10);
        let mut newcomer = 100u64;
        // A newcomer holds the lock first.
        assert_eq!(
            lm.lock(TxToken::new(99, 99), OBJ, LockMode::Exclusive),
            LockReply::Granted
        );
        let holder = TxToken::new(99, 99);
        match lm.lock(victim, OBJ, LockMode::Exclusive) {
            LockReply::Granted => {}
            LockReply::Queued => {
                // Holder finishes; promotion must hand the lock to the
                // queued victim, not to any newcomer that arrives next.
                let granted = lm.release_all(holder);
                assert!(granted.iter().any(|g| g.tx == victim), "victim skipped");
            }
            LockReply::Aborted => unreachable!("victim is older than every holder"),
        }
        // And with the victim holding, newcomers die instead of barging.
        newcomer += 1;
        assert_eq!(
            lm.lock(TxToken::new(newcomer, newcomer), OBJ, LockMode::Exclusive),
            LockReply::Aborted
        );
    }

    mod waitdie_props {
        //! Randomized invariant checks over seeded operation histories.
        //! Deterministic seeded loops stand in for proptest strategies so
        //! the crate builds offline; every seed is a reproducible case.

        use super::*;

        /// Tiny SplitMix64 stream for dependency-free randomized tests.
        struct TestRng(u64);

        impl TestRng {
            fn next(&mut self) -> u64 {
                self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = self.0;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            }

            fn below(&mut self, n: u64) -> u64 {
                self.next() % n
            }

            fn flip(&mut self) -> bool {
                self.next() & 1 == 1
            }
        }

        /// Wait-die never queues a transaction behind an older one, so
        /// the waits-for graph is acyclic: along any object's queue and
        /// holder set, priority strictly decreases from waiter to
        /// obstacle.
        #[test]
        fn no_wait_cycles() {
            for seed in 0..128u64 {
                let mut rng = TestRng(0x10c5 ^ seed);
                let n_ops = 1 + rng.below(59) as usize;
                let mut lm = LockManager::default();
                let mut alive: std::collections::HashSet<u64> = std::collections::HashSet::new();
                for _ in 0..n_ops {
                    let txn = rng.below(8);
                    let obj = rng.below(3);
                    let mode = rng.below(3) as u8;
                    let release = rng.flip();
                    let tok = TxToken::new(txn, txn);
                    if release {
                        lm.release_all(tok);
                        alive.remove(&txn);
                        continue;
                    }
                    alive.insert(txn);
                    let mode = match mode {
                        0 => LockMode::Shared,
                        1 => LockMode::IntendWrite,
                        _ => LockMode::Exclusive,
                    };
                    let reply = lm.lock(tok, ObjectId(obj), mode);
                    if reply == LockReply::Queued {
                        // Invariant: every queued tx is strictly older than
                        // at least everything it conflicts with; checked
                        // indirectly by asserting queue order per object is
                        // achievable — a queued tx must be older than the
                        // youngest current conflicting holder.
                        assert!(lm.queue_len(ObjectId(obj)) >= 1, "seed {seed}");
                    }
                }
                // Drain: releasing every transaction must empty the table
                // (no lost queue entries, no stuck grants).
                let txns: Vec<u64> = alive.into_iter().collect();
                for txn in txns {
                    lm.release_all(TxToken::new(txn, txn));
                }
                assert!(lm.is_quiescent(), "seed {seed} left residue");
            }
        }

        /// Granted sets are always mutually compatible (ignoring the
        /// same-transaction multi-mode case, which `covers` collapses).
        #[test]
        fn holders_always_compatible() {
            for seed in 0..128u64 {
                let mut rng = TestRng(0xc0a7 ^ seed);
                let n_ops = 1 + rng.below(39) as usize;
                let mut lm = LockManager::default();
                for _ in 0..n_ops {
                    let txn = rng.below(6);
                    let obj = rng.below(2);
                    let mode = match rng.below(3) {
                        0 => LockMode::Shared,
                        1 => LockMode::IntendWrite,
                        _ => LockMode::Exclusive,
                    };
                    let _ = lm.lock(TxToken::new(txn, txn), ObjectId(obj), mode);
                    for o in [ObjectId(0), ObjectId(1)] {
                        let holders: Vec<(TxToken, LockMode)> = (0u64..6)
                            .filter_map(|t| {
                                let tok = TxToken::new(t, t);
                                lm.held(tok, o).map(|m| (tok, m))
                            })
                            .collect();
                        for (i, (ta, ma)) in holders.iter().enumerate() {
                            for (tb, mb) in holders.iter().skip(i + 1) {
                                if ta != tb {
                                    assert!(
                                        ma.compatible(*mb) || mb.compatible(*ma),
                                        "incompatible co-holders {ta:?}:{ma:?} vs {tb:?}:{mb:?}"
                                    );
                                }
                            }
                        }
                    }
                }
            }
        }
    }
}
