//! Transaction substrate: locking and atomic multi-container commit.
//!
//! Gifford's weighted voting runs *inside* transactions supplied by the
//! underlying file system (Violet). This crate supplies that machinery:
//!
//! * [`lock`] — a strict two-phase lock manager with the three modes the
//!   paper's system used: `Shared` for readers, `IntendWrite` for writers
//!   during the transaction body (compatible with readers, conflicting
//!   with other writers), and `Exclusive` taken at commit point. Deadlocks
//!   are handled by wait-die (with a no-wait variant for the ablation
//!   bench).
//! * [`shard`] — a suite-sharded wrapper around the lock manager: one
//!   table per suite so disjoint suites never contend, with the flat
//!   table's grant order preserved exactly.
//! * [`twopc`] — pure coordinator/participant state machines for two-phase
//!   commit, used by the suite servers to install a write at a quorum of
//!   containers atomically, plus a synchronous helper for co-located
//!   containers.

#![warn(missing_docs)]

pub mod lock;
pub mod shard;
pub mod twopc;

pub use lock::{DeadlockPolicy, LockManager, LockMode, LockReply, TxToken};
pub use shard::{shard_key, ShardedLockManager};
pub use twopc::{commit_across, Coordinator, Decision, Vote};
