//! Drives a [`Node`] on a [`crate::thread_net::Endpoint`] — one OS thread per
//! protocol node, with timers honoured in (scaled) real time.
//!
//! The simulated transport executes node handlers inline; this runner is
//! its wall-clock twin. Integration tests use it to show that the protocol
//! state machines are transport-independent: the same `SuiteServer` and
//! `ClientNode` that regenerate the paper's tables under `sim_net` also
//! serve real concurrent threads here.

use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use std::sync::mpsc::{self, Receiver, Sender};
use wv_sim::DetRng;

use crate::node::{Effect, Node, NodeCtx};
use crate::thread_net::Endpoint;

/// A closure injected into the node's thread (start an operation, inspect
/// state, report results through a captured channel).
pub type NodeCommand<N> =
    Box<dyn FnOnce(&mut N, &mut NodeCtx<'_, <N as Node>::Msg>) + Send + 'static>;

struct TimerItem {
    due: Instant,
    seq: u64,
    token: u64,
}

impl PartialEq for TimerItem {
    fn eq(&self, other: &Self) -> bool {
        self.due == other.due && self.seq == other.seq
    }
}

impl Eq for TimerItem {}

impl PartialOrd for TimerItem {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for TimerItem {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (other.due, other.seq).cmp(&(self.due, self.seq))
    }
}

/// A node running on its own thread, attached to a thread-net endpoint.
pub struct NodeRunner<N: Node> {
    cmds: Sender<NodeCommand<N>>,
    stop: Arc<AtomicBool>,
    join: Option<std::thread::JoinHandle<N>>,
}

impl<N: Node + Send + 'static> NodeRunner<N>
where
    N::Msg: Send + 'static,
{
    /// Spawns the node's thread.
    ///
    /// `time_scale` must match the scale the endpoint's network was built
    /// with so that timer delays and link latencies stay commensurable.
    pub fn spawn(node: N, endpoint: Endpoint<N::Msg>, seed: u64, time_scale: f64) -> Self {
        assert!(
            time_scale.is_finite() && time_scale > 0.0,
            "time_scale must be positive"
        );
        let (cmd_tx, cmd_rx) = mpsc::channel::<NodeCommand<N>>();
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let join = std::thread::Builder::new()
            .name(format!("wv-node-{}", endpoint.id()))
            .spawn(move || run_loop(node, endpoint, cmd_rx, stop2, seed, time_scale))
            .expect("spawn node thread");
        NodeRunner {
            cmds: cmd_tx,
            stop,
            join: Some(join),
        }
    }

    /// Injects a closure into the node's thread; its sends and timers take
    /// effect as if a message handler had produced them.
    pub fn invoke(&self, f: impl FnOnce(&mut N, &mut NodeCtx<'_, N::Msg>) + Send + 'static) {
        // A closed channel means the thread stopped; the caller finds out
        // at join time.
        let _ = self.cmds.send(Box::new(f));
    }

    /// Stops the thread and returns the node.
    pub fn stop(mut self) -> N {
        self.stop.store(true, Ordering::SeqCst);
        self.join
            .take()
            .expect("stop called once")
            .join()
            .expect("node thread panicked")
    }
}

impl<N: Node> Drop for NodeRunner<N> {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(j) = self.join.take() {
            let _ = j.join();
        }
    }
}

fn run_loop<N: Node + Send>(
    mut node: N,
    mut endpoint: Endpoint<N::Msg>,
    cmds: Receiver<NodeCommand<N>>,
    stop: Arc<AtomicBool>,
    seed: u64,
    time_scale: f64,
) -> N
where
    N::Msg: Send + 'static,
{
    let mut rng = DetRng::new(seed);
    let mut timers: BinaryHeap<TimerItem> = BinaryHeap::new();
    let mut timer_seq = 0u64;
    loop {
        if stop.load(Ordering::SeqCst) {
            return node;
        }
        // Fire due timers.
        let now = Instant::now();
        let mut effects = Vec::new();
        while timers.peek().is_some_and(|t| t.due <= now) {
            let t = timers.pop().expect("peeked");
            let mut ctx = NodeCtx::new(endpoint.now(), endpoint.id(), &mut rng);
            node.on_timer(t.token, &mut ctx);
            effects.extend(ctx.take_effects());
        }
        // Run injected commands.
        while let Ok(cmd) = cmds.try_recv() {
            let mut ctx = NodeCtx::new(endpoint.now(), endpoint.id(), &mut rng);
            cmd(&mut node, &mut ctx);
            effects.extend(ctx.take_effects());
        }
        // Wait briefly for a message (bounded so timers and commands stay
        // responsive).
        let wait = timers
            .peek()
            .map(|t| t.due.saturating_duration_since(Instant::now()))
            .unwrap_or(Duration::from_millis(2))
            .min(Duration::from_millis(2));
        if let Some(env) = endpoint.recv_timeout(wait) {
            let mut ctx = NodeCtx::new(endpoint.now(), endpoint.id(), &mut rng);
            node.on_message(env.from, env.payload, &mut ctx);
            effects.extend(ctx.take_effects());
        }
        for effect in effects {
            match effect {
                Effect::Send { to, msg } => {
                    endpoint.send(to, msg);
                }
                Effect::Timer { delay, token } => {
                    let scaled = Duration::from_micros(
                        (delay.as_micros() as f64 * time_scale).round() as u64,
                    );
                    timers.push(TimerItem {
                        due: Instant::now() + scaled,
                        seq: timer_seq,
                        token,
                    });
                    timer_seq += 1;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::NetConfig;
    use crate::site::SiteId;
    use crate::thread_net::ThreadNet;
    use wv_sim::{LatencyModel, SimDuration};

    /// Counts messages; replies to pings; fires a timer once.
    struct Echo {
        got: Vec<u32>,
        timer_fired: Arc<AtomicBool>,
    }

    impl Node for Echo {
        type Msg = u32;

        fn on_message(&mut self, from: SiteId, msg: u32, ctx: &mut NodeCtx<'_, u32>) {
            self.got.push(msg);
            if msg < 100 {
                ctx.send(from, msg + 100);
            }
        }

        fn on_timer(&mut self, _token: u64, _ctx: &mut NodeCtx<'_, u32>) {
            self.timer_fired.store(true, Ordering::SeqCst);
        }
    }

    fn echo(flag: &Arc<AtomicBool>) -> Echo {
        Echo {
            got: Vec::new(),
            timer_fired: Arc::clone(flag),
        }
    }

    #[test]
    fn nodes_exchange_messages_across_threads() {
        let mut net = ThreadNet::<u32>::start(
            NetConfig::uniform(2, LatencyModel::constant_millis(10)),
            3,
            0.1,
        );
        let b_ep = net.endpoints.pop().expect("b");
        let a_ep = net.endpoints.pop().expect("a");
        let fa = Arc::new(AtomicBool::new(false));
        let fb = Arc::new(AtomicBool::new(false));
        let a = NodeRunner::spawn(echo(&fa), a_ep, 1, 0.1);
        let b = NodeRunner::spawn(echo(&fb), b_ep, 2, 0.1);
        // Node A sends 1 to B; B replies 101.
        a.invoke(|_, ctx| ctx.send(SiteId(1), 1));
        std::thread::sleep(Duration::from_millis(100));
        let a_node = a.stop();
        let b_node = b.stop();
        assert_eq!(b_node.got, vec![1]);
        assert_eq!(a_node.got, vec![101]);
    }

    #[test]
    fn timers_fire_in_scaled_time() {
        let mut net = ThreadNet::<u32>::start(
            NetConfig::uniform(1, LatencyModel::constant_millis(1)),
            5,
            0.01,
        );
        let ep = net.endpoints.pop().expect("ep");
        let flag = Arc::new(AtomicBool::new(false));
        let r = NodeRunner::spawn(echo(&flag), ep, 1, 0.01);
        // 1 virtual second at scale 0.01 = 10 real ms.
        r.invoke(|_, ctx| ctx.set_timer(SimDuration::from_secs(1), 7));
        std::thread::sleep(Duration::from_millis(80));
        assert!(flag.load(Ordering::SeqCst), "timer did not fire");
        r.stop();
    }

    #[test]
    fn stop_returns_the_node() {
        let mut net = ThreadNet::<u32>::start(
            NetConfig::uniform(1, LatencyModel::constant_millis(1)),
            7,
            1.0,
        );
        let ep = net.endpoints.pop().expect("ep");
        let flag = Arc::new(AtomicBool::new(false));
        let r = NodeRunner::spawn(echo(&flag), ep, 1, 1.0);
        r.invoke(|n, _| n.got.push(42));
        std::thread::sleep(Duration::from_millis(30));
        let node = r.stop();
        assert_eq!(node.got, vec![42]);
    }
}
