//! The wall-clock transport: OS threads, channels, and a delay router.
//!
//! Integration tests use this transport to show the protocols are not
//! simulator artifacts: the same [`NetConfig`] drives real
//! std::sync::mpsc channels, with one router thread imposing sampled link
//! latencies (optionally scaled down so the paper's 750 ms links don't make
//! the test suite slow).
//!
//! Semantics mirror [`crate::sim_net`]: partition and link-loss decisions at
//! send time, down-site checks at delivery time. Message order between two
//! sites may invert when latencies differ, exactly as in the simulator.

use std::collections::BinaryHeap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use std::sync::mpsc::{self, Receiver, RecvTimeoutError, Sender};
use std::sync::Mutex;
use wv_sim::{DetRng, SimTime};

use crate::config::{NetConfig, Partition};
use crate::sim_net::NetStats;
use crate::site::{Envelope, SiteId};

/// Shared mutable network state: connectivity, crashed sites, counters.
struct Control {
    partition: Partition,
    down: Vec<bool>,
    stats: NetStats,
}

enum Cmd<M> {
    Route {
        deliver_at: Instant,
        env: Envelope<M>,
    },
    Stop,
}

struct HeapItem<M> {
    deliver_at: Instant,
    seq: u64,
    env: Envelope<M>,
}

impl<M> PartialEq for HeapItem<M> {
    fn eq(&self, other: &Self) -> bool {
        self.deliver_at == other.deliver_at && self.seq == other.seq
    }
}

impl<M> Eq for HeapItem<M> {}

impl<M> PartialOrd for HeapItem<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<M> Ord for HeapItem<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Min-heap by (deliver_at, seq).
        (other.deliver_at, other.seq).cmp(&(self.deliver_at, self.seq))
    }
}

/// One site's connection to the network.
///
/// An endpoint is `Send` but not `Sync`: hand each one to its own thread.
pub struct Endpoint<M> {
    id: SiteId,
    epoch: Instant,
    config: Arc<NetConfig>,
    control: Arc<Mutex<Control>>,
    time_scale: f64,
    rng: DetRng,
    router: Sender<Cmd<M>>,
    inbox: Receiver<Envelope<M>>,
}

impl<M: Send + 'static> Endpoint<M> {
    /// This endpoint's site id.
    pub fn id(&self) -> SiteId {
        self.id
    }

    /// Virtual time elapsed since the network was created, expressed in
    /// *unscaled* terms (so latencies compare with `NetConfig` models).
    pub fn now(&self) -> SimTime {
        let real = self.epoch.elapsed().as_micros() as u64;
        let unscaled = (real as f64 / self.time_scale).round() as u64;
        SimTime::from_micros(unscaled)
    }

    /// Sends `msg` to `to`, applying partition, loss, and latency.
    ///
    /// Returns `true` if the message entered the network (it may still be
    /// lost at delivery if the destination crashes), `false` if it was
    /// dropped at send time.
    pub fn send(&mut self, to: SiteId, msg: M) -> bool {
        let latency = {
            let mut ctl = self.control.lock().expect("net control lock");
            ctl.stats.sent += 1;
            if !ctl.partition.connected(self.id, to) {
                ctl.stats.dropped_partition += 1;
                return false;
            }
            if self.config.sample_drop(self.id, to, &mut self.rng) {
                ctl.stats.dropped_link += 1;
                return false;
            }
            self.config.sample_latency(self.id, to, &mut self.rng)
        };
        let scaled =
            Duration::from_micros((latency.as_micros() as f64 * self.time_scale).round() as u64);
        let env = Envelope {
            from: self.id,
            to,
            sent_at: self.now(),
            payload: msg,
        };
        self.router
            .send(Cmd::Route {
                deliver_at: Instant::now() + scaled,
                env,
            })
            .is_ok()
    }

    /// Receives the next message, waiting up to `timeout` (in real time).
    pub fn recv_timeout(&self, timeout: Duration) -> Option<Envelope<M>> {
        self.inbox.recv_timeout(timeout).ok()
    }

    /// Receives without blocking.
    pub fn try_recv(&self) -> Option<Envelope<M>> {
        self.inbox.try_recv().ok()
    }

    /// Blocks until a message arrives or the network shuts down.
    pub fn recv(&self) -> Option<Envelope<M>> {
        self.inbox.recv().ok()
    }
}

/// Control handle over a running thread network.
pub struct NetHandle<M> {
    control: Arc<Mutex<Control>>,
    router: Sender<Cmd<M>>,
}

impl<M> Clone for NetHandle<M> {
    fn clone(&self) -> Self {
        NetHandle {
            control: Arc::clone(&self.control),
            router: self.router.clone(),
        }
    }
}

impl<M: Send + 'static> NetHandle<M> {
    /// Replaces the current partition.
    pub fn set_partition(&self, p: Partition) {
        self.control.lock().expect("net control lock").partition = p;
    }

    /// Marks `site` crashed (true) or recovered (false).
    pub fn set_down(&self, site: SiteId, down: bool) {
        self.control.lock().expect("net control lock").down[site.index()] = down;
    }

    /// A snapshot of the transport counters.
    pub fn stats(&self) -> NetStats {
        self.control.lock().expect("net control lock").stats
    }

    /// Asks the router to stop after delivering what is already due.
    pub fn shutdown(&self) {
        let _ = self.router.send(Cmd::Stop);
    }
}

/// A running thread network for message type `M`.
pub struct ThreadNet<M> {
    /// One endpoint per site; take them out and move each to its thread.
    pub endpoints: Vec<Endpoint<M>>,
    /// Shared control handle.
    pub handle: NetHandle<M>,
    router_thread: Option<std::thread::JoinHandle<()>>,
}

impl<M: Send + 'static> ThreadNet<M> {
    /// Builds a network over `config`, with latencies multiplied by
    /// `time_scale` (use e.g. `0.01` to turn the paper's 750 ms links into
    /// 7.5 ms for fast tests; `1.0` for faithful timing).
    ///
    /// # Panics
    ///
    /// Panics if `time_scale` is not finite and positive.
    pub fn start(config: NetConfig, seed: u64, time_scale: f64) -> ThreadNet<M> {
        assert!(
            time_scale.is_finite() && time_scale > 0.0,
            "time_scale must be positive"
        );
        let sites = config.sites();
        let config = Arc::new(config);
        let control = Arc::new(Mutex::new(Control {
            partition: Partition::whole(sites),
            down: vec![false; sites],
            stats: NetStats::default(),
        }));
        let (router_tx, router_rx) = mpsc::channel::<Cmd<M>>();
        let mut inbox_txs = Vec::with_capacity(sites);
        let mut endpoints = Vec::with_capacity(sites);
        let epoch = Instant::now();
        let root = DetRng::new(seed);
        for site in 0..sites {
            let (tx, rx) = mpsc::channel::<Envelope<M>>();
            inbox_txs.push(tx);
            endpoints.push(Endpoint {
                id: SiteId::from(site),
                epoch,
                config: Arc::clone(&config),
                control: Arc::clone(&control),
                time_scale,
                rng: root.fork(site as u64 + 1),
                router: router_tx.clone(),
                inbox: rx,
            });
        }
        let router_control = Arc::clone(&control);
        let router_thread = std::thread::Builder::new()
            .name("wv-net-router".into())
            .spawn(move || router_loop(router_rx, inbox_txs, router_control))
            .expect("spawn router thread");
        ThreadNet {
            endpoints,
            handle: NetHandle {
                control,
                router: router_tx,
            },
            router_thread: Some(router_thread),
        }
    }
}

impl<M> Drop for ThreadNet<M> {
    fn drop(&mut self) {
        let _ = self.handle.router.send(Cmd::Stop);
        if let Some(t) = self.router_thread.take() {
            let _ = t.join();
        }
    }
}

fn router_loop<M>(
    rx: Receiver<Cmd<M>>,
    inboxes: Vec<Sender<Envelope<M>>>,
    control: Arc<Mutex<Control>>,
) {
    let mut heap: BinaryHeap<HeapItem<M>> = BinaryHeap::new();
    let mut seq = 0u64;
    let mut stopping = false;
    loop {
        // Deliver everything due.
        let now = Instant::now();
        while heap.peek().is_some_and(|i| i.deliver_at <= now) {
            let item = heap.pop().expect("peeked");
            let mut ctl = control.lock().expect("net control lock");
            if ctl.down[item.env.to.index()] {
                ctl.stats.dropped_down += 1;
                continue;
            }
            ctl.stats.delivered += 1;
            drop(ctl);
            // A dropped receiver just means the site thread exited.
            let _ = inboxes[item.env.to.index()].send(item.env);
        }
        if stopping && heap.is_empty() {
            return;
        }
        let timeout = heap
            .peek()
            .map(|i| i.deliver_at.saturating_duration_since(Instant::now()))
            .unwrap_or(Duration::from_millis(50));
        match rx.recv_timeout(timeout) {
            Ok(Cmd::Route { deliver_at, env }) => {
                heap.push(HeapItem {
                    deliver_at,
                    seq,
                    env,
                });
                seq += 1;
            }
            Ok(Cmd::Stop) => stopping = true,
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => stopping = true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wv_sim::LatencyModel;

    fn fast_net(sites: usize) -> ThreadNet<u32> {
        ThreadNet::start(
            NetConfig::uniform(sites, LatencyModel::constant_millis(20)),
            7,
            0.05, // 20 ms links become 1 ms of real time
        )
    }

    #[test]
    fn delivers_between_threads() {
        let mut net = fast_net(2);
        let b = net.endpoints.pop().expect("endpoint 1");
        let mut a = net.endpoints.pop().expect("endpoint 0");
        assert!(a.send(SiteId(1), 42));
        let env = b.recv_timeout(Duration::from_secs(2)).expect("delivery");
        assert_eq!(env.payload, 42);
        assert_eq!(env.from, SiteId(0));
        assert_eq!(env.to, SiteId(1));
        assert_eq!(net.handle.stats().delivered, 1);
    }

    #[test]
    fn latency_is_imposed() {
        let mut net = ThreadNet::<u32>::start(
            NetConfig::uniform(2, LatencyModel::constant_millis(100)),
            7,
            0.5, // 100 ms link -> 50 ms real
        );
        let b = net.endpoints.pop().expect("endpoint 1");
        let mut a = net.endpoints.pop().expect("endpoint 0");
        let start = Instant::now();
        a.send(SiteId(1), 1);
        let _ = b.recv_timeout(Duration::from_secs(2)).expect("delivery");
        let elapsed = start.elapsed();
        assert!(
            elapsed >= Duration::from_millis(40),
            "too fast: {elapsed:?}"
        );
    }

    #[test]
    fn partition_blocks_at_send_time() {
        let mut net = fast_net(2);
        net.handle.set_partition(Partition::isolate(2, SiteId(1)));
        let b = net.endpoints.pop().expect("endpoint 1");
        let mut a = net.endpoints.pop().expect("endpoint 0");
        assert!(!a.send(SiteId(1), 1));
        assert!(b.recv_timeout(Duration::from_millis(50)).is_none());
        assert_eq!(net.handle.stats().dropped_partition, 1);
        // Healing restores traffic.
        net.handle.set_partition(Partition::whole(2));
        assert!(a.send(SiteId(1), 2));
        assert_eq!(
            b.recv_timeout(Duration::from_secs(2)).map(|e| e.payload),
            Some(2)
        );
    }

    #[test]
    fn down_site_drops_at_delivery() {
        let mut net = fast_net(2);
        net.handle.set_down(SiteId(1), true);
        let b = net.endpoints.pop().expect("endpoint 1");
        let mut a = net.endpoints.pop().expect("endpoint 0");
        assert!(a.send(SiteId(1), 1)); // entered the network...
        assert!(b.recv_timeout(Duration::from_millis(100)).is_none()); // ...but lost
        assert_eq!(net.handle.stats().dropped_down, 1);
        net.handle.set_down(SiteId(1), false);
        assert!(a.send(SiteId(1), 2));
        assert_eq!(
            b.recv_timeout(Duration::from_secs(2)).map(|e| e.payload),
            Some(2)
        );
    }

    #[test]
    fn many_threads_exchange_messages() {
        let mut net = fast_net(4);
        let handle = net.handle.clone();
        let endpoints = std::mem::take(&mut net.endpoints);
        let mut joins = Vec::new();
        for mut ep in endpoints {
            joins.push(std::thread::spawn(move || {
                let me = ep.id();
                // Everyone sends one message to every other site, then
                // counts what arrives.
                for to in SiteId::all(4) {
                    if to != me {
                        ep.send(to, u32::from(me.0));
                    }
                }
                let mut got = 0;
                while got < 3 {
                    match ep.recv_timeout(Duration::from_secs(5)) {
                        Some(_) => got += 1,
                        None => break,
                    }
                }
                got
            }));
        }
        let total: u32 = joins.into_iter().map(|j| j.join().expect("thread")).sum();
        assert_eq!(total, 12);
        assert_eq!(handle.stats().delivered, 12);
    }

    #[test]
    fn shutdown_is_clean() {
        let net = fast_net(2);
        net.handle.shutdown();
        // Dropping after an explicit shutdown must not hang or panic.
        drop(net);
    }

    #[test]
    fn endpoint_now_reports_unscaled_time() {
        let net = ThreadNet::<u32>::start(
            NetConfig::uniform(1, LatencyModel::constant_millis(1)),
            7,
            0.01,
        );
        std::thread::sleep(Duration::from_millis(5));
        // 5 real ms at scale 0.01 is 500 virtual ms.
        let t = net.endpoints[0].now();
        assert!(t >= SimTime::from_millis(400), "virtual now {t}");
    }
}
