//! The deterministic simulated transport.
//!
//! A [`Cluster`] hosts one [`Node`] per site inside a `wv_sim::Sim`. All
//! message latencies are drawn from the cluster's [`NetConfig`], partitions
//! and crashes are first-class events, and the whole execution is a pure
//! function of the seed — which is what lets the benchmark harness
//! regenerate the paper's tables exactly.
//!
//! Semantics (documented because experiments depend on them):
//!
//! * **Drop decisions** (partition membership, link loss) are made at *send*
//!   time; a message that clears them is delivered after a sampled one-way
//!   latency unless the destination is down at *delivery* time.
//! * **Crashed sites** receive neither messages nor timers. `Node::on_crash`
//!   runs at the crash instant (discard volatile state); `Node::on_recover`
//!   runs at the recovery instant and may send messages and set timers.
//! * **Message order** between a pair of sites is not preserved when the
//!   link's latency model is non-constant — exactly like a datagram network.

use std::collections::VecDeque;

use wv_sim::{DetRng, FailureSchedule, Scheduler, Sim, SimTime};

use crate::config::{NetConfig, Partition};
use crate::node::{Effect, Node, NodeCtx};
use crate::site::SiteId;

/// What happened to one message or timer, for the optional trace.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceKind {
    /// Delivered to the destination's handler.
    Delivered,
    /// Dropped at send time: sender and destination partitioned.
    DroppedPartition,
    /// Dropped at send time by link loss.
    DroppedLink,
    /// Dropped at delivery time: destination down.
    DroppedDown,
    /// A timer fired at the site.
    TimerFired,
}

/// One entry in the transport trace ring buffer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// When it happened (virtual time).
    pub at: SimTime,
    /// Sender (equals `to` for timer events).
    pub from: SiteId,
    /// Destination.
    pub to: SiteId,
    /// What happened.
    pub kind: TraceKind,
}

/// Transport counters, useful for assertions and experiment reports.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Messages handed to the transport.
    pub sent: u64,
    /// Messages delivered to a node handler.
    pub delivered: u64,
    /// Messages dropped because sender and destination were partitioned.
    pub dropped_partition: u64,
    /// Messages dropped by link loss.
    pub dropped_link: u64,
    /// Messages dropped because the destination was down at delivery time.
    pub dropped_down: u64,
    /// Extra deliveries caused by duplication.
    pub duplicated: u64,
    /// Timer expirations delivered.
    pub timers_fired: u64,
    /// Timer expirations suppressed because the site was down.
    pub timers_dropped: u64,
}

/// A set of protocol nodes plus the network state connecting them.
///
/// Use as the world type of a `wv_sim::Sim`:
///
/// ```
/// use wv_net::sim_net::Cluster;
/// use wv_net::{NetConfig, Node, NodeCtx, SiteId};
/// use wv_sim::{LatencyModel, SimTime};
///
/// struct Counter(u32);
/// impl Node for Counter {
///     type Msg = ();
///     fn on_message(&mut self, _f: SiteId, _m: (), _ctx: &mut NodeCtx<'_, ()>) {
///         self.0 += 1;
///     }
/// }
///
/// let cfg = NetConfig::uniform(2, LatencyModel::constant_millis(10));
/// let mut sim = Cluster::sim(vec![Counter(0), Counter(0)], cfg, 7);
/// Cluster::invoke(sim.scheduler(), SimTime::ZERO, SiteId(0), |_n, ctx| {
///     ctx.send(SiteId(1), ());
/// });
/// sim.run();
/// assert_eq!(sim.world.nodes[1].0, 1);
/// assert_eq!(sim.now(), SimTime::from_millis(10));
/// ```
pub struct Cluster<N: Node> {
    /// The protocol nodes, indexed by site.
    pub nodes: Vec<N>,
    /// Link latencies and loss.
    pub config: NetConfig,
    /// Current connectivity.
    pub partition: Partition,
    /// Transport counters.
    pub stats: NetStats,
    down: Vec<bool>,
    node_rngs: Vec<DetRng>,
    net_rng: DetRng,
    trace: Option<(usize, VecDeque<TraceEvent>)>,
}

impl<N: Node + 'static> Cluster<N>
where
    N::Msg: Clone + 'static,
{
    /// Builds a simulation around `nodes` connected by `config`.
    ///
    /// # Panics
    ///
    /// Panics if `nodes.len() != config.sites()`.
    pub fn sim(nodes: Vec<N>, config: NetConfig, seed: u64) -> Sim<Cluster<N>> {
        assert_eq!(nodes.len(), config.sites(), "one node per site required");
        let root = DetRng::new(seed);
        let sites = nodes.len();
        let cluster = Cluster {
            partition: Partition::whole(sites),
            down: vec![false; sites],
            node_rngs: (0..sites).map(|i| root.fork(i as u64 + 1)).collect(),
            net_rng: root.fork_named("network"),
            stats: NetStats::default(),
            trace: None,
            nodes,
            config,
        };
        Sim::new(cluster)
    }

    /// True if `site` is currently crashed.
    pub fn is_down(&self, site: SiteId) -> bool {
        self.down[site.index()]
    }

    /// Turns on transport tracing, keeping the most recent `capacity`
    /// events. Call before (or during) a run; the trace is a debugging
    /// aid and does not affect execution.
    pub fn enable_trace(&mut self, capacity: usize) {
        assert!(capacity > 0, "trace capacity must be positive");
        self.trace = Some((capacity, VecDeque::with_capacity(capacity)));
    }

    /// The recorded trace, oldest first (empty when tracing is off).
    pub fn trace(&self) -> Vec<TraceEvent> {
        self.trace
            .as_ref()
            .map(|(_, q)| q.iter().copied().collect())
            .unwrap_or_default()
    }

    fn record(&mut self, at: SimTime, from: SiteId, to: SiteId, kind: TraceKind) {
        if let Some((cap, q)) = &mut self.trace {
            if q.len() == *cap {
                q.pop_front();
            }
            q.push_back(TraceEvent { at, from, to, kind });
        }
    }

    /// Schedules a driver-initiated call into the node at `site`.
    ///
    /// The closure runs at `at` with full [`NodeCtx`] powers (it may send
    /// messages and set timers); its effects enter the network like any
    /// other node activity. If the site is down at `at`, the call is
    /// silently skipped — exactly as a client co-located with a crashed
    /// machine would be.
    pub fn invoke(
        sched: &mut Scheduler<Cluster<N>>,
        at: SimTime,
        site: SiteId,
        f: impl FnOnce(&mut N, &mut NodeCtx<'_, N::Msg>) + 'static,
    ) {
        sched.at(at, move |world: &mut Cluster<N>, sched| {
            if world.down[site.index()] {
                return;
            }
            let mut rng = world.node_rngs[site.index()].clone();
            let mut ctx = NodeCtx::new(sched.now(), site, &mut rng);
            f(&mut world.nodes[site.index()], &mut ctx);
            let effects = ctx.take_effects();
            world.node_rngs[site.index()] = rng;
            Self::dispatch(world, sched, site, effects);
        });
    }

    /// Schedules a crash of `site` at `at`.
    pub fn crash_at(sched: &mut Scheduler<Cluster<N>>, at: SimTime, site: SiteId) {
        sched.at(at, move |world: &mut Cluster<N>, _| {
            if !world.down[site.index()] {
                world.down[site.index()] = true;
                world.nodes[site.index()].on_crash();
            }
        });
    }

    /// Schedules a recovery of `site` at `at`.
    pub fn recover_at(sched: &mut Scheduler<Cluster<N>>, at: SimTime, site: SiteId) {
        sched.at(at, move |world: &mut Cluster<N>, sched| {
            if world.down[site.index()] {
                world.down[site.index()] = false;
                let mut rng = world.node_rngs[site.index()].clone();
                let mut ctx = NodeCtx::new(sched.now(), site, &mut rng);
                world.nodes[site.index()].on_recover(&mut ctx);
                let effects = ctx.take_effects();
                world.node_rngs[site.index()] = rng;
                Self::dispatch(world, sched, site, effects);
            }
        });
    }

    /// Schedules a connectivity change at `at`.
    pub fn set_partition_at(sched: &mut Scheduler<Cluster<N>>, at: SimTime, p: Partition) {
        sched.at(at, move |world: &mut Cluster<N>, _| {
            assert_eq!(p.sites(), world.nodes.len(), "partition size mismatch");
            world.partition = p;
        });
    }

    /// Schedules a change of the loss probability on every cross-site link
    /// at `at` (a link-loss burst begins or ends).
    ///
    /// Like [`set_partition_at`](Self::set_partition_at) this mutates the
    /// live network: loss is no longer fixed at build time, so a fault
    /// schedule can open a lossy window mid-run and close it again with a
    /// second call carrying `p = 0`.
    pub fn set_drop_all_at(sched: &mut Scheduler<Cluster<N>>, at: SimTime, p: f64) {
        sched.at(at, move |world: &mut Cluster<N>, _| {
            world.config.set_drop_all(p);
        });
    }

    /// Schedules a delay spike at `at`: every cross-site message pays
    /// `extra` on top of its sampled latency until a later call clears it
    /// with `SimDuration::ZERO`.
    pub fn set_extra_delay_at(
        sched: &mut Scheduler<Cluster<N>>,
        at: SimTime,
        extra: wv_sim::SimDuration,
    ) {
        sched.at(at, move |world: &mut Cluster<N>, _| {
            world.config.extra_delay = extra;
        });
    }

    /// Schedules a change of the end-to-end duplication probability at `at`.
    pub fn set_duplicate_at(sched: &mut Scheduler<Cluster<N>>, at: SimTime, p: f64) {
        sched.at(at, move |world: &mut Cluster<N>, _| {
            world.config.duplicate_prob = p.clamp(0.0, 1.0);
        });
    }

    /// Translates a [`FailureSchedule`] into crash/recover events.
    pub fn apply_failure_schedule(sched: &mut Scheduler<Cluster<N>>, schedule: &FailureSchedule) {
        for site in 0..schedule.sites() {
            for w in schedule.windows(site) {
                Self::crash_at(sched, w.from, SiteId::from(site));
                Self::recover_at(sched, w.until, SiteId::from(site));
            }
        }
    }

    fn dispatch(
        world: &mut Cluster<N>,
        sched: &mut Scheduler<Cluster<N>>,
        from: SiteId,
        effects: Vec<Effect<N::Msg>>,
    ) {
        for effect in effects {
            match effect {
                Effect::Send { to, msg } => Self::route(world, sched, from, to, msg),
                Effect::Timer { delay, token } => {
                    sched.after(delay, move |world: &mut Cluster<N>, sched| {
                        if world.down[from.index()] {
                            world.stats.timers_dropped += 1;
                            return;
                        }
                        world.stats.timers_fired += 1;
                        let now = sched.now();
                        world.record(now, from, from, TraceKind::TimerFired);
                        let mut rng = world.node_rngs[from.index()].clone();
                        let mut ctx = NodeCtx::new(sched.now(), from, &mut rng);
                        world.nodes[from.index()].on_timer(token, &mut ctx);
                        let effects = ctx.take_effects();
                        world.node_rngs[from.index()] = rng;
                        Self::dispatch(world, sched, from, effects);
                    });
                }
            }
        }
    }

    fn route(
        world: &mut Cluster<N>,
        sched: &mut Scheduler<Cluster<N>>,
        from: SiteId,
        to: SiteId,
        msg: N::Msg,
    ) {
        world.stats.sent += 1;
        let now = sched.now();
        if !world.partition.connected(from, to) {
            world.stats.dropped_partition += 1;
            world.record(now, from, to, TraceKind::DroppedPartition);
            return;
        }
        if world.config.sample_drop(from, to, &mut world.net_rng) {
            world.stats.dropped_link += 1;
            world.record(now, from, to, TraceKind::DroppedLink);
            return;
        }
        if world.net_rng.chance(world.config.duplicate_prob) {
            world.stats.duplicated += 1;
            let latency = world.config.sample_latency(from, to, &mut world.net_rng);
            Self::schedule_delivery(sched, from, to, latency, msg.clone());
        }
        let latency = world.config.sample_latency(from, to, &mut world.net_rng);
        Self::schedule_delivery(sched, from, to, latency, msg);
    }

    fn schedule_delivery(
        sched: &mut Scheduler<Cluster<N>>,
        from: SiteId,
        to: SiteId,
        latency: wv_sim::SimDuration,
        payload: N::Msg,
    ) {
        sched.after(latency, move |world: &mut Cluster<N>, sched| {
            let now = sched.now();
            if world.down[to.index()] {
                world.stats.dropped_down += 1;
                world.record(now, from, to, TraceKind::DroppedDown);
                return;
            }
            world.stats.delivered += 1;
            world.record(now, from, to, TraceKind::Delivered);
            let mut rng = world.node_rngs[to.index()].clone();
            let mut ctx = NodeCtx::new(sched.now(), to, &mut rng);
            world.nodes[to.index()].on_message(from, payload, &mut ctx);
            let effects = ctx.take_effects();
            world.node_rngs[to.index()] = rng;
            Self::dispatch(world, sched, to, effects);
        });
    }

    /// Delivers `msg` twice, as if the network had duplicated it.
    ///
    /// Tests use this to exercise idempotence of protocol handlers at a
    /// chosen instant, independent of [`NetConfig::duplicate_prob`].
    pub fn inject_duplicate(
        sched: &mut Scheduler<Cluster<N>>,
        at: SimTime,
        from: SiteId,
        to: SiteId,
        msg: N::Msg,
    ) {
        sched.at(at, move |world: &mut Cluster<N>, sched| {
            let latency = world.config.sample_latency(from, to, &mut world.net_rng);
            Self::schedule_delivery(sched, from, to, latency, msg.clone());
            let latency2 = world.config.sample_latency(from, to, &mut world.net_rng);
            Self::schedule_delivery(sched, from, to, latency2, msg);
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wv_sim::{LatencyModel, SimDuration};

    /// A test node that counts deliveries and can ping-pong.
    #[derive(Default)]
    struct Pong {
        received: Vec<(SiteId, u32)>,
        bounce: bool,
        timer_tokens: Vec<u64>,
        crashes: u32,
        recoveries: u32,
    }

    impl Node for Pong {
        type Msg = u32;

        fn on_message(&mut self, from: SiteId, msg: u32, ctx: &mut NodeCtx<'_, u32>) {
            self.received.push((from, msg));
            if self.bounce && msg > 0 {
                ctx.send(from, msg - 1);
            }
        }

        fn on_timer(&mut self, token: u64, _ctx: &mut NodeCtx<'_, u32>) {
            self.timer_tokens.push(token);
        }

        fn on_crash(&mut self) {
            self.crashes += 1;
        }

        fn on_recover(&mut self, _ctx: &mut NodeCtx<'_, u32>) {
            self.recoveries += 1;
        }
    }

    fn two_nodes(ms: u64) -> Sim<Cluster<Pong>> {
        let cfg = NetConfig::uniform(2, LatencyModel::constant_millis(ms));
        Cluster::sim(vec![Pong::default(), Pong::default()], cfg, 42)
    }

    #[test]
    fn ping_pong_accumulates_latency() {
        let mut sim = two_nodes(10);
        sim.world.nodes[0].bounce = true;
        sim.world.nodes[1].bounce = true;
        Cluster::invoke(sim.scheduler(), SimTime::ZERO, SiteId(0), |_n, ctx| {
            ctx.send(SiteId(1), 4);
        });
        sim.run();
        // 5 deliveries (4,3,2,1,0), each 10 ms apart.
        assert_eq!(sim.now(), SimTime::from_millis(50));
        assert_eq!(sim.world.stats.delivered, 5);
        assert_eq!(
            sim.world.nodes[1].received,
            vec![(SiteId(0), 4), (SiteId(0), 2), (SiteId(0), 0)]
        );
        assert_eq!(
            sim.world.nodes[0].received,
            vec![(SiteId(1), 3), (SiteId(1), 1)]
        );
    }

    #[test]
    fn timers_fire_with_tokens() {
        let mut sim = two_nodes(1);
        Cluster::invoke(sim.scheduler(), SimTime::ZERO, SiteId(0), |_n, ctx| {
            ctx.set_timer(SimDuration::from_millis(30), 7);
            ctx.set_timer(SimDuration::from_millis(10), 8);
        });
        sim.run();
        assert_eq!(sim.world.nodes[0].timer_tokens, vec![8, 7]);
        assert_eq!(sim.world.stats.timers_fired, 2);
    }

    #[test]
    fn partition_blocks_messages() {
        let mut sim = two_nodes(5);
        Cluster::set_partition_at(
            sim.scheduler(),
            SimTime::ZERO,
            Partition::isolate(2, SiteId(1)),
        );
        Cluster::invoke(
            sim.scheduler(),
            SimTime::from_millis(1),
            SiteId(0),
            |_n, ctx| {
                ctx.send(SiteId(1), 9);
            },
        );
        sim.run();
        assert_eq!(sim.world.stats.dropped_partition, 1);
        assert_eq!(sim.world.stats.delivered, 0);
        assert!(sim.world.nodes[1].received.is_empty());
    }

    #[test]
    fn partition_heals() {
        let mut sim = two_nodes(5);
        Cluster::set_partition_at(
            sim.scheduler(),
            SimTime::ZERO,
            Partition::isolate(2, SiteId(1)),
        );
        Cluster::set_partition_at(
            sim.scheduler(),
            SimTime::from_millis(10),
            Partition::whole(2),
        );
        Cluster::invoke(
            sim.scheduler(),
            SimTime::from_millis(20),
            SiteId(0),
            |_n, ctx| {
                ctx.send(SiteId(1), 9);
            },
        );
        sim.run();
        assert_eq!(sim.world.stats.delivered, 1);
    }

    #[test]
    fn crashed_site_loses_messages_and_timers() {
        let mut sim = two_nodes(5);
        Cluster::invoke(sim.scheduler(), SimTime::ZERO, SiteId(1), |_n, ctx| {
            ctx.set_timer(SimDuration::from_millis(20), 1);
        });
        Cluster::crash_at(sim.scheduler(), SimTime::from_millis(1), SiteId(1));
        Cluster::invoke(
            sim.scheduler(),
            SimTime::from_millis(2),
            SiteId(0),
            |_n, ctx| {
                ctx.send(SiteId(1), 5);
            },
        );
        sim.run();
        assert_eq!(sim.world.nodes[1].crashes, 1);
        assert_eq!(sim.world.stats.dropped_down, 1);
        assert_eq!(sim.world.stats.timers_dropped, 1);
        assert!(sim.world.nodes[1].received.is_empty());
        assert!(sim.world.is_down(SiteId(1)));
    }

    #[test]
    fn recovery_restores_delivery_and_runs_hook() {
        let mut sim = two_nodes(5);
        Cluster::crash_at(sim.scheduler(), SimTime::ZERO, SiteId(1));
        Cluster::recover_at(sim.scheduler(), SimTime::from_millis(10), SiteId(1));
        Cluster::invoke(
            sim.scheduler(),
            SimTime::from_millis(20),
            SiteId(0),
            |_n, ctx| {
                ctx.send(SiteId(1), 5);
            },
        );
        sim.run();
        assert_eq!(sim.world.nodes[1].recoveries, 1);
        assert_eq!(sim.world.nodes[1].received, vec![(SiteId(0), 5)]);
        assert!(!sim.world.is_down(SiteId(1)));
    }

    #[test]
    fn invoke_on_down_site_is_skipped() {
        let mut sim = two_nodes(5);
        Cluster::crash_at(sim.scheduler(), SimTime::ZERO, SiteId(0));
        Cluster::invoke(
            sim.scheduler(),
            SimTime::from_millis(1),
            SiteId(0),
            |_n, ctx| {
                ctx.send(SiteId(1), 5);
            },
        );
        sim.run();
        assert_eq!(sim.world.stats.sent, 0);
    }

    #[test]
    fn link_loss_drops_messages() {
        let cfg = {
            let mut c = NetConfig::uniform(2, LatencyModel::constant_millis(1));
            c.set_drop(SiteId(0), SiteId(1), 1.0);
            c
        };
        let mut sim = Cluster::sim(vec![Pong::default(), Pong::default()], cfg, 1);
        Cluster::invoke(sim.scheduler(), SimTime::ZERO, SiteId(0), |_n, ctx| {
            ctx.send(SiteId(1), 1);
            ctx.send(SiteId(1), 2);
        });
        sim.run();
        assert_eq!(sim.world.stats.dropped_link, 2);
        assert_eq!(sim.world.stats.delivered, 0);
    }

    #[test]
    fn failure_schedule_translates_to_crash_windows() {
        let mut schedule = FailureSchedule::none(2);
        schedule.add_outage(1, SimTime::from_millis(5), SimTime::from_millis(15));
        let mut sim = two_nodes(1);
        Cluster::apply_failure_schedule(sim.scheduler(), &schedule);
        // During the outage, delivery fails.
        Cluster::invoke(
            sim.scheduler(),
            SimTime::from_millis(7),
            SiteId(0),
            |_n, ctx| {
                ctx.send(SiteId(1), 1);
            },
        );
        // After it, delivery works.
        Cluster::invoke(
            sim.scheduler(),
            SimTime::from_millis(20),
            SiteId(0),
            |_n, ctx| {
                ctx.send(SiteId(1), 2);
            },
        );
        sim.run();
        assert_eq!(sim.world.stats.dropped_down, 1);
        assert_eq!(sim.world.nodes[1].received, vec![(SiteId(0), 2)]);
        assert_eq!(sim.world.nodes[1].crashes, 1);
        assert_eq!(sim.world.nodes[1].recoveries, 1);
    }

    #[test]
    fn runtime_loss_burst_opens_and_closes() {
        let mut sim = two_nodes(1);
        Cluster::set_drop_all_at(sim.scheduler(), SimTime::from_millis(10), 1.0);
        Cluster::set_drop_all_at(sim.scheduler(), SimTime::from_millis(20), 0.0);
        for at in [5u64, 15, 25] {
            Cluster::invoke(
                sim.scheduler(),
                SimTime::from_millis(at),
                SiteId(0),
                |_n, ctx| ctx.send(SiteId(1), 0),
            );
        }
        sim.run();
        // Only the message inside the burst window is lost.
        assert_eq!(sim.world.stats.dropped_link, 1);
        assert_eq!(sim.world.stats.delivered, 2);
    }

    #[test]
    fn runtime_delay_spike_slows_cross_site_messages() {
        let mut sim = two_nodes(10);
        Cluster::set_extra_delay_at(
            sim.scheduler(),
            SimTime::from_millis(5),
            SimDuration::from_millis(100),
        );
        Cluster::invoke(
            sim.scheduler(),
            SimTime::from_millis(6),
            SiteId(0),
            |_n, ctx| ctx.send(SiteId(1), 1),
        );
        sim.run();
        // 6 ms send + 10 ms link + 100 ms spike.
        assert_eq!(sim.now(), SimTime::from_millis(116));
        let before = sim.now();
        Cluster::set_extra_delay_at(sim.scheduler(), before, SimDuration::ZERO);
        Cluster::invoke(sim.scheduler(), before, SiteId(0), |_n, ctx| {
            ctx.send(SiteId(1), 2)
        });
        sim.run();
        assert_eq!(sim.now(), before + SimDuration::from_millis(10));
    }

    #[test]
    fn runtime_duplication_dial_takes_effect() {
        let mut sim = two_nodes(1);
        Cluster::set_duplicate_at(sim.scheduler(), SimTime::ZERO, 1.0);
        Cluster::invoke(
            sim.scheduler(),
            SimTime::from_millis(1),
            SiteId(0),
            |_n, ctx| ctx.send(SiteId(1), 3),
        );
        sim.run();
        assert_eq!(sim.world.stats.duplicated, 1);
        assert_eq!(sim.world.nodes[1].received.len(), 2);
    }

    #[test]
    fn inject_duplicate_delivers_twice() {
        let mut sim = two_nodes(3);
        Cluster::inject_duplicate(sim.scheduler(), SimTime::ZERO, SiteId(0), SiteId(1), 11u32);
        sim.run();
        assert_eq!(
            sim.world.nodes[1].received,
            vec![(SiteId(0), 11), (SiteId(0), 11)]
        );
    }

    #[test]
    fn same_seed_same_run() {
        let run = |seed: u64| {
            let mut cfg = NetConfig::uniform(
                3,
                LatencyModel::Uniform {
                    lo: SimDuration::from_millis(1),
                    hi: SimDuration::from_millis(50),
                },
            );
            cfg.set_drop_all(0.2);
            let mut sim = Cluster::sim(
                vec![Pong::default(), Pong::default(), Pong::default()],
                cfg,
                seed,
            );
            for i in 0..20u32 {
                Cluster::invoke(
                    sim.scheduler(),
                    SimTime::from_millis(u64::from(i)),
                    SiteId(0),
                    move |_n, ctx| {
                        ctx.send(SiteId(1), i);
                        ctx.send(SiteId(2), i);
                    },
                );
            }
            sim.run();
            (sim.world.stats, sim.now())
        };
        assert_eq!(run(99), run(99));
        assert_ne!(run(99).0, run(100).0);
    }

    #[test]
    fn trace_records_deliveries_drops_and_timers() {
        let mut sim = two_nodes(5);
        sim.world.enable_trace(8);
        Cluster::set_partition_at(
            sim.scheduler(),
            SimTime::ZERO,
            Partition::isolate(2, SiteId(1)),
        );
        Cluster::invoke(
            sim.scheduler(),
            SimTime::from_millis(1),
            SiteId(0),
            |_n, ctx| {
                ctx.send(SiteId(1), 1); // dropped: partition
                ctx.send(SiteId(0), 2); // delivered (self link)
                ctx.set_timer(SimDuration::from_millis(3), 9); // timer
            },
        );
        sim.run();
        let trace = sim.world.trace();
        assert!(trace
            .iter()
            .any(|e| e.kind == TraceKind::DroppedPartition && e.to == SiteId(1)));
        assert!(trace
            .iter()
            .any(|e| e.kind == TraceKind::Delivered && e.to == SiteId(0)));
        assert!(trace.iter().any(|e| e.kind == TraceKind::TimerFired));
        // Ordered oldest-first by time.
        for pair in trace.windows(2) {
            assert!(pair[0].at <= pair[1].at);
        }
    }

    #[test]
    fn trace_ring_buffer_keeps_only_the_tail() {
        let mut sim = two_nodes(1);
        sim.world.enable_trace(3);
        for i in 0..10u64 {
            Cluster::invoke(
                sim.scheduler(),
                SimTime::from_millis(i),
                SiteId(0),
                |_n, ctx| ctx.send(SiteId(1), 0),
            );
        }
        sim.run();
        let trace = sim.world.trace();
        assert_eq!(trace.len(), 3, "capacity bound respected");
        assert!(trace.iter().all(|e| e.kind == TraceKind::Delivered));
    }

    #[test]
    fn trace_is_empty_when_disabled() {
        let mut sim = two_nodes(1);
        Cluster::invoke(sim.scheduler(), SimTime::ZERO, SiteId(0), |_n, ctx| {
            ctx.send(SiteId(1), 0)
        });
        sim.run();
        assert!(sim.world.trace().is_empty());
    }

    #[test]
    fn self_send_travels_over_self_link() {
        let mut sim = two_nodes(10);
        Cluster::invoke(sim.scheduler(), SimTime::ZERO, SiteId(0), |_n, ctx| {
            ctx.send(SiteId(0), 77);
        });
        sim.run();
        assert_eq!(sim.world.nodes[0].received, vec![(SiteId(0), 77)]);
        assert_eq!(sim.now(), SimTime::from_millis(10));
    }
}
