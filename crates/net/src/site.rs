//! Site identity and message envelopes.

use std::fmt;

use wv_sim::SimTime;

/// Identifies a site (a machine that may host representatives, clients, or
/// both).
///
/// Sites are dense small integers so that configuration matrices and vote
/// vectors can be indexed directly.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SiteId(pub u16);

impl SiteId {
    /// The underlying index.
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Enumerates the first `n` site ids.
    pub fn all(n: usize) -> impl Iterator<Item = SiteId> {
        (0..n as u16).map(SiteId)
    }
}

impl From<u16> for SiteId {
    fn from(v: u16) -> Self {
        SiteId(v)
    }
}

impl From<usize> for SiteId {
    fn from(v: usize) -> Self {
        SiteId(u16::try_from(v).expect("site index exceeds u16"))
    }
}

impl fmt::Debug for SiteId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

impl fmt::Display for SiteId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// A message in flight between two sites.
#[derive(Clone, Debug, PartialEq)]
pub struct Envelope<M> {
    /// Sending site.
    pub from: SiteId,
    /// Destination site.
    pub to: SiteId,
    /// Instant the message was handed to the transport.
    pub sent_at: SimTime,
    /// Protocol payload.
    pub payload: M,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn site_id_conversions() {
        let s: SiteId = 3usize.into();
        assert_eq!(s, SiteId(3));
        assert_eq!(s.index(), 3);
        assert_eq!(format!("{s}"), "s3");
        let t: SiteId = 7u16.into();
        assert_eq!(t.index(), 7);
    }

    #[test]
    fn all_enumerates_in_order() {
        let v: Vec<SiteId> = SiteId::all(3).collect();
        assert_eq!(v, vec![SiteId(0), SiteId(1), SiteId(2)]);
    }

    #[test]
    #[should_panic(expected = "exceeds u16")]
    fn oversized_index_rejected() {
        let _ = SiteId::from(100_000usize);
    }
}
