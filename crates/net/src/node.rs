//! The protocol-node abstraction.
//!
//! A [`Node`] is a deterministic state machine: it reacts to delivered
//! messages and expired timers by mutating its state and emitting sends and
//! new timers through a [`NodeCtx`]. Writing protocols this way keeps them
//! transport-agnostic (the simulated and thread transports both drive the
//! same code) and makes every run a pure function of (initial state,
//! message schedule, seeds).

use wv_sim::{DetRng, SimDuration, SimTime};

use crate::site::SiteId;

/// A protocol participant hosted at one site.
pub trait Node {
    /// The protocol's message type.
    type Msg;

    /// Called when a message from `from` is delivered to this node.
    fn on_message(&mut self, from: SiteId, msg: Self::Msg, ctx: &mut NodeCtx<'_, Self::Msg>);

    /// Called when a timer set through [`NodeCtx::set_timer`] expires.
    ///
    /// `token` is the value passed to `set_timer`. Timers cannot be
    /// cancelled; nodes are expected to carry a generation counter in the
    /// token (or in their state) and ignore stale expirations. The default
    /// implementation ignores all timers.
    fn on_timer(&mut self, token: u64, ctx: &mut NodeCtx<'_, Self::Msg>) {
        let _ = (token, ctx);
    }

    /// Called when the hosting site crashes.
    ///
    /// Implementations must discard volatile state here; anything that
    /// should survive belongs in stable storage (see `wv-storage`). The
    /// default does nothing.
    fn on_crash(&mut self) {}

    /// Called when the hosting site recovers from a crash.
    ///
    /// The default does nothing; protocols that need recovery actions
    /// (e.g. re-reading stable storage, restarting timers) override it.
    fn on_recover(&mut self, ctx: &mut NodeCtx<'_, Self::Msg>) {
        let _ = ctx;
    }
}

/// The effects a node wants the transport to perform.
#[derive(Debug)]
pub enum Effect<M> {
    /// Send `msg` to `to`.
    Send {
        /// Destination site.
        to: SiteId,
        /// Payload.
        msg: M,
    },
    /// Fire `on_timer(token)` after `delay`.
    Timer {
        /// How long until the timer fires.
        delay: SimDuration,
        /// Opaque value handed back to `on_timer`.
        token: u64,
    },
}

/// Execution context handed to a node while it runs.
///
/// Collects the node's effects; the transport applies them (sampling
/// latencies, drops, partitions) after the handler returns, so a handler
/// can never observe its own sends.
pub struct NodeCtx<'a, M> {
    now: SimTime,
    self_id: SiteId,
    rng: &'a mut DetRng,
    effects: Vec<Effect<M>>,
}

impl<'a, M> NodeCtx<'a, M> {
    /// Creates a context. Transports call this; protocol code receives it.
    pub fn new(now: SimTime, self_id: SiteId, rng: &'a mut DetRng) -> Self {
        NodeCtx {
            now,
            self_id,
            rng,
            effects: Vec::new(),
        }
    }

    /// The current time (virtual or wall-clock depending on transport).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The site this node lives on.
    pub fn self_id(&self) -> SiteId {
        self.self_id
    }

    /// This node's private random stream.
    pub fn rng(&mut self) -> &mut DetRng {
        self.rng
    }

    /// Queues a message to `to`.
    ///
    /// Sending to one's own site is allowed and travels over the self-link
    /// (local access latency).
    pub fn send(&mut self, to: SiteId, msg: M) {
        self.effects.push(Effect::Send { to, msg });
    }

    /// Queues a message to every site in `to`, cloning the payload.
    pub fn broadcast(&mut self, to: &[SiteId], msg: &M)
    where
        M: Clone,
    {
        for &site in to {
            self.send(site, msg.clone());
        }
    }

    /// Requests a timer callback after `delay` carrying `token`.
    pub fn set_timer(&mut self, delay: SimDuration, token: u64) {
        self.effects.push(Effect::Timer { delay, token });
    }

    /// Drains the collected effects. Transports call this once the handler
    /// returns.
    pub fn take_effects(&mut self) -> Vec<Effect<M>> {
        std::mem::take(&mut self.effects)
    }

    /// Number of effects queued so far (mostly useful in tests).
    pub fn pending_effects(&self) -> usize {
        self.effects.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Echo;

    impl Node for Echo {
        type Msg = u32;

        fn on_message(&mut self, from: SiteId, msg: u32, ctx: &mut NodeCtx<'_, u32>) {
            ctx.send(from, msg + 1);
        }
    }

    #[test]
    fn ctx_collects_sends_and_timers() {
        let mut rng = DetRng::new(1);
        let mut ctx: NodeCtx<'_, u32> = NodeCtx::new(SimTime::from_millis(5), SiteId(2), &mut rng);
        assert_eq!(ctx.now(), SimTime::from_millis(5));
        assert_eq!(ctx.self_id(), SiteId(2));
        ctx.send(SiteId(0), 10);
        ctx.set_timer(SimDuration::from_millis(30), 77);
        ctx.broadcast(&[SiteId(1), SiteId(3)], &42);
        assert_eq!(ctx.pending_effects(), 4);
        let effects = ctx.take_effects();
        assert_eq!(effects.len(), 4);
        assert!(matches!(effects[0], Effect::Send { to, msg } if to == SiteId(0) && msg == 10));
        assert!(matches!(
            effects[1],
            Effect::Timer { delay, token } if delay == SimDuration::from_millis(30) && token == 77
        ));
        assert!(matches!(effects[3], Effect::Send { to, msg } if to == SiteId(3) && msg == 42));
        assert_eq!(ctx.pending_effects(), 0);
    }

    #[test]
    fn default_timer_and_crash_handlers_are_noops() {
        let mut node = Echo;
        let mut rng = DetRng::new(2);
        let mut ctx = NodeCtx::new(SimTime::ZERO, SiteId(0), &mut rng);
        node.on_timer(0, &mut ctx);
        node.on_crash();
        node.on_recover(&mut ctx);
        assert_eq!(ctx.pending_effects(), 0);
    }

    #[test]
    fn node_handler_emits_reply() {
        let mut node = Echo;
        let mut rng = DetRng::new(3);
        let mut ctx = NodeCtx::new(SimTime::ZERO, SiteId(1), &mut rng);
        node.on_message(SiteId(9), 41, &mut ctx);
        let effects = ctx.take_effects();
        assert!(matches!(effects[0], Effect::Send { to, msg } if to == SiteId(9) && msg == 42));
    }
}
