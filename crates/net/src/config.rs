//! Network topology: per-link latency, loss, and partitions.

use wv_sim::{DetRng, LatencyModel, SimDuration};

use crate::site::SiteId;

/// Per-link behaviour of the network connecting a set of sites.
///
/// The configuration is a full matrix: `latency[from][to]` and
/// `drop[from][to]`. Self-links model local access (a client talking to a
/// representative on its own machine) and default to the paper's 75 ms
/// local-file-system latency with no loss.
#[derive(Clone, Debug)]
pub struct NetConfig {
    sites: usize,
    latency: Vec<Vec<LatencyModel>>,
    drop: Vec<Vec<f64>>,
    /// Probability that a successfully delivered message is delivered twice
    /// (models retransmission duplicates end-to-end).
    pub duplicate_prob: f64,
    /// Extra one-way delay added to every cross-site link on top of its
    /// latency model (models a transient congestion spike; self-links are
    /// unaffected). Zero in the healthy state.
    pub extra_delay: SimDuration,
}

impl NetConfig {
    /// A network of `sites` sites where every link (including self-links)
    /// uses `model` and nothing is lost.
    pub fn uniform(sites: usize, model: LatencyModel) -> Self {
        NetConfig {
            sites,
            latency: vec![vec![model.clone(); sites]; sites],
            drop: vec![vec![0.0; sites]; sites],
            duplicate_prob: 0.0,
            extra_delay: SimDuration::ZERO,
        }
    }

    /// The paper's two-level topology: sites in the same group talk at
    /// `intra` latency, sites in different groups at `inter` latency.
    ///
    /// `group_of[s]` gives the network group of site `s`. Self-links use
    /// `local`.
    ///
    /// # Panics
    ///
    /// Panics if `group_of.len() != sites`.
    pub fn clustered(
        sites: usize,
        group_of: &[usize],
        local: LatencyModel,
        intra: LatencyModel,
        inter: LatencyModel,
    ) -> Self {
        assert_eq!(group_of.len(), sites, "one group per site required");
        let mut cfg = NetConfig::uniform(sites, intra.clone());
        for a in 0..sites {
            for b in 0..sites {
                let model = if a == b {
                    local.clone()
                } else if group_of[a] == group_of[b] {
                    intra.clone()
                } else {
                    inter.clone()
                };
                cfg.latency[a][b] = model;
            }
        }
        cfg
    }

    /// Number of sites in the network.
    pub fn sites(&self) -> usize {
        self.sites
    }

    /// Sets the latency of the directed link `from -> to`.
    pub fn set_link(&mut self, from: SiteId, to: SiteId, model: LatencyModel) -> &mut Self {
        self.latency[from.index()][to.index()] = model;
        self
    }

    /// Sets the latency of both directions between `a` and `b`.
    pub fn set_link_symmetric(&mut self, a: SiteId, b: SiteId, model: LatencyModel) -> &mut Self {
        self.latency[a.index()][b.index()] = model.clone();
        self.latency[b.index()][a.index()] = model;
        self
    }

    /// Sets the drop probability of the directed link `from -> to`.
    pub fn set_drop(&mut self, from: SiteId, to: SiteId, p: f64) -> &mut Self {
        self.drop[from.index()][to.index()] = p.clamp(0.0, 1.0);
        self
    }

    /// Sets the drop probability on every link between distinct sites.
    pub fn set_drop_all(&mut self, p: f64) -> &mut Self {
        let p = p.clamp(0.0, 1.0);
        for a in 0..self.sites {
            for b in 0..self.sites {
                if a != b {
                    self.drop[a][b] = p;
                }
            }
        }
        self
    }

    /// The latency model of the directed link `from -> to`.
    pub fn link(&self, from: SiteId, to: SiteId) -> &LatencyModel {
        &self.latency[from.index()][to.index()]
    }

    /// Draws a one-way delay for the directed link `from -> to`.
    ///
    /// Cross-site links pay the configured [`extra_delay`](Self::extra_delay)
    /// on top of the sampled value; local access never crosses the network
    /// and is spared.
    pub fn sample_latency(&self, from: SiteId, to: SiteId, rng: &mut DetRng) -> SimDuration {
        let base = self.latency[from.index()][to.index()].sample(rng);
        if from == to {
            base
        } else {
            base + self.extra_delay
        }
    }

    /// Decides whether a message on `from -> to` is lost.
    pub fn sample_drop(&self, from: SiteId, to: SiteId, rng: &mut DetRng) -> bool {
        rng.chance(self.drop[from.index()][to.index()])
    }

    /// Mean one-way delay of `from -> to`, in milliseconds.
    pub fn mean_latency_ms(&self, from: SiteId, to: SiteId) -> f64 {
        self.latency[from.index()][to.index()].mean_millis()
    }
}

/// A partition of the site set into disjoint connectivity groups.
///
/// Messages flow only between sites in the same group. [`Partition::whole`]
/// (everything in one group) is the healthy state.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Partition {
    group_of: Vec<usize>,
}

impl Partition {
    /// All `sites` sites mutually connected.
    pub fn whole(sites: usize) -> Self {
        Partition {
            group_of: vec![0; sites],
        }
    }

    /// Builds a partition from explicit groups.
    ///
    /// Sites not named in any group each become singleton groups (fully
    /// isolated), which is the conservative reading of "the rest of the
    /// network is unreachable".
    ///
    /// # Panics
    ///
    /// Panics if a site appears in two groups or is out of range.
    pub fn split(sites: usize, groups: &[&[SiteId]]) -> Self {
        // Group 0..groups.len()-1 are the named groups; unnamed sites get
        // fresh singleton group ids after those.
        let unset = usize::MAX;
        let mut group_of = vec![unset; sites];
        for (g, members) in groups.iter().enumerate() {
            for &s in *members {
                assert!(s.index() < sites, "site {s} out of range");
                assert_eq!(group_of[s.index()], unset, "site {s} in two groups");
                group_of[s.index()] = g;
            }
        }
        let mut next = groups.len();
        for slot in group_of.iter_mut() {
            if *slot == unset {
                *slot = next;
                next += 1;
            }
        }
        Partition { group_of }
    }

    /// Isolates a single site from everyone else.
    pub fn isolate(sites: usize, lonely: SiteId) -> Self {
        let mut p = Partition::whole(sites);
        p.group_of[lonely.index()] = 1;
        p
    }

    /// True if `a` can exchange messages with `b`.
    ///
    /// A site can always reach itself (local access does not cross the
    /// network).
    pub fn connected(&self, a: SiteId, b: SiteId) -> bool {
        a == b || self.group_of[a.index()] == self.group_of[b.index()]
    }

    /// The sites in the same group as `s`, including `s` itself.
    pub fn reachable_from(&self, s: SiteId) -> Vec<SiteId> {
        let g = self.group_of[s.index()];
        (0..self.group_of.len())
            .filter(|&i| self.group_of[i] == g)
            .map(SiteId::from)
            .collect()
    }

    /// Number of sites covered.
    pub fn sites(&self) -> usize {
        self.group_of.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> DetRng {
        DetRng::new(31)
    }

    #[test]
    fn uniform_config_samples_everywhere() {
        let cfg = NetConfig::uniform(3, LatencyModel::constant_millis(100));
        let mut r = rng();
        for a in SiteId::all(3) {
            for b in SiteId::all(3) {
                assert_eq!(
                    cfg.sample_latency(a, b, &mut r),
                    SimDuration::from_millis(100)
                );
                assert!(!cfg.sample_drop(a, b, &mut r));
            }
        }
        assert_eq!(cfg.sites(), 3);
    }

    #[test]
    fn clustered_matches_paper_topology() {
        // Sites 0,1 on network A; site 2 across the internetwork.
        let cfg = NetConfig::clustered(
            3,
            &[0, 0, 1],
            LatencyModel::constant_millis(75),
            LatencyModel::constant_millis(100),
            LatencyModel::constant_millis(750),
        );
        assert_eq!(cfg.mean_latency_ms(SiteId(0), SiteId(0)), 75.0);
        assert_eq!(cfg.mean_latency_ms(SiteId(0), SiteId(1)), 100.0);
        assert_eq!(cfg.mean_latency_ms(SiteId(1), SiteId(2)), 750.0);
        assert_eq!(cfg.mean_latency_ms(SiteId(2), SiteId(0)), 750.0);
    }

    #[test]
    fn set_link_overrides_one_direction() {
        let mut cfg = NetConfig::uniform(2, LatencyModel::constant_millis(10));
        cfg.set_link(SiteId(0), SiteId(1), LatencyModel::constant_millis(99));
        assert_eq!(cfg.mean_latency_ms(SiteId(0), SiteId(1)), 99.0);
        assert_eq!(cfg.mean_latency_ms(SiteId(1), SiteId(0)), 10.0);
        cfg.set_link_symmetric(SiteId(0), SiteId(1), LatencyModel::constant_millis(7));
        assert_eq!(cfg.mean_latency_ms(SiteId(0), SiteId(1)), 7.0);
        assert_eq!(cfg.mean_latency_ms(SiteId(1), SiteId(0)), 7.0);
    }

    #[test]
    fn drop_probability_is_respected() {
        let mut cfg = NetConfig::uniform(2, LatencyModel::constant_millis(1));
        cfg.set_drop(SiteId(0), SiteId(1), 1.0);
        let mut r = rng();
        assert!(cfg.sample_drop(SiteId(0), SiteId(1), &mut r));
        assert!(!cfg.sample_drop(SiteId(1), SiteId(0), &mut r));
        cfg.set_drop_all(0.5);
        let n = 4000;
        let drops = (0..n)
            .filter(|_| cfg.sample_drop(SiteId(0), SiteId(1), &mut r))
            .count();
        let frac = drops as f64 / n as f64;
        assert!((frac - 0.5).abs() < 0.05, "drop fraction {frac}");
        // Self links never configured lossy by set_drop_all.
        assert!(!cfg.sample_drop(SiteId(0), SiteId(0), &mut r));
    }

    #[test]
    fn extra_delay_applies_to_cross_site_links_only() {
        let mut cfg = NetConfig::uniform(2, LatencyModel::constant_millis(10));
        cfg.extra_delay = SimDuration::from_millis(250);
        let mut r = rng();
        assert_eq!(
            cfg.sample_latency(SiteId(0), SiteId(1), &mut r),
            SimDuration::from_millis(260)
        );
        // Local access never crosses the network.
        assert_eq!(
            cfg.sample_latency(SiteId(0), SiteId(0), &mut r),
            SimDuration::from_millis(10)
        );
        cfg.extra_delay = SimDuration::ZERO;
        assert_eq!(
            cfg.sample_latency(SiteId(1), SiteId(0), &mut r),
            SimDuration::from_millis(10)
        );
    }

    #[test]
    fn whole_partition_connects_everyone() {
        let p = Partition::whole(4);
        for a in SiteId::all(4) {
            for b in SiteId::all(4) {
                assert!(p.connected(a, b));
            }
        }
        assert_eq!(p.reachable_from(SiteId(1)).len(), 4);
    }

    #[test]
    fn split_partition_blocks_cross_group_traffic() {
        let p = Partition::split(5, &[&[SiteId(0), SiteId(1)], &[SiteId(2), SiteId(3)]]);
        assert!(p.connected(SiteId(0), SiteId(1)));
        assert!(p.connected(SiteId(2), SiteId(3)));
        assert!(!p.connected(SiteId(0), SiteId(2)));
        // Site 4 was unnamed: isolated, but still reaches itself.
        assert!(!p.connected(SiteId(4), SiteId(0)));
        assert!(p.connected(SiteId(4), SiteId(4)));
        assert_eq!(p.reachable_from(SiteId(4)), vec![SiteId(4)]);
    }

    #[test]
    fn isolate_cuts_one_site() {
        let p = Partition::isolate(3, SiteId(1));
        assert!(p.connected(SiteId(0), SiteId(2)));
        assert!(!p.connected(SiteId(0), SiteId(1)));
        assert!(p.connected(SiteId(1), SiteId(1)));
    }

    #[test]
    #[should_panic(expected = "two groups")]
    fn split_rejects_duplicate_membership() {
        let _ = Partition::split(3, &[&[SiteId(0)], &[SiteId(0)]]);
    }
}
