//! Message-passing transports for replicated-data protocols.
//!
//! This crate stands in for the paper's physical network (Gifford's testbed
//! spanned machines on one local network plus servers across an
//! internetwork). It provides:
//!
//! * [`SiteId`] and [`NetConfig`] — sites, per-link latency models, drop
//!   probabilities, and [`Partition`]s.
//! * [`Node`] / [`NodeCtx`] — the event-driven protocol-node abstraction:
//!   a node reacts to messages and timers and emits sends and new timers.
//!   Protocol code written against this trait runs unchanged on both
//!   transports.
//! * [`sim_net`] — the deterministic transport: nodes live in a
//!   [`sim_net::Cluster`] driven by a `wv_sim::Sim`, with virtual-time
//!   latencies, crash/recovery, and partitions. Every experiment table is
//!   regenerated on this transport.
//! * [`thread_net`] — the wall-clock transport: one OS thread per node,
//!   std::sync::mpsc channels, and a router thread that imposes (scaled-down)
//!   link latencies. Used by integration tests to show the protocols are
//!   not simulator artifacts.

#![warn(missing_docs)]

pub mod config;
pub mod node;
pub mod runner;
pub mod sim_net;
pub mod site;
pub mod thread_net;

pub use config::{NetConfig, Partition};
pub use node::{Node, NodeCtx};
pub use runner::NodeRunner;
pub use site::{Envelope, SiteId};
