//! E2 — the quorum spectrum: read-one/write-all ↔ majority ↔ read-all/
//! write-one, over one vote assignment.
//!
//! Five equal-vote representatives with heterogeneous access costs
//! (75/100/100/750/750 ms). Sweeping `r` with `w = N + 1 - r` traces the
//! paper's design space: small `r` buys cheap reads at the price of
//! expensive, fragile writes, and vice versa. Analytic columns come from
//! `wv-analysis`; simulated columns from driving the protocol; the last
//! column is the cheapest-first vs random quorum-selection ablation.

use wv_analysis::{quorum_availability, read_latency_verified, write_latency, SystemModel};
use wv_core::client::{ClientOptions, QuorumPolicy};
use wv_core::harness::{Harness, HarnessBuilder, SiteSpec};
use wv_core::quorum::QuorumSpec;
use wv_core::votes::VoteAssignment;
use wv_sim::{SampleSet, SimDuration};

use crate::runner;
use crate::table::{ms, prob, Table};
use crate::topo::client_star;

/// Access costs of the five representatives.
pub const COSTS: [f64; 5] = [75.0, 100.0, 100.0, 750.0, 750.0];

/// Per-site availability used for the availability columns.
pub const P_UP: f64 = 0.9;

fn build(r: u32, w: u32, policy: QuorumPolicy, seed: u64) -> Harness {
    let mut b = HarnessBuilder::new()
        .seed(seed)
        .quorum(QuorumSpec::new(r, w))
        .client_options(ClientOptions {
            quorum_policy: policy,
            ..ClientOptions::default()
        });
    for _ in 0..5 {
        b = b.site(SiteSpec::server(1));
    }
    b.client()
        .net(client_star(&COSTS, None))
        .build()
        .expect("spectrum point is legal")
}

/// Measured mean latencies for one `(r, w)` point.
#[derive(Clone, Copy, Debug)]
pub struct SpectrumPoint {
    /// Read quorum size.
    pub r: u32,
    /// Write quorum size.
    pub w: u32,
    /// Mean simulated read latency (cheapest-first policy).
    pub read_ms: f64,
    /// Mean simulated write latency (full three rounds).
    pub write_ms: f64,
    /// Mean simulated read latency under the random policy.
    pub read_random_ms: f64,
}

/// Runs one spectrum point.
pub fn measure_point(r: u32, w: u32, seed: u64) -> SpectrumPoint {
    let mut reads = SampleSet::new();
    let mut writes = SampleSet::new();
    let mut reads_random = SampleSet::new();
    {
        let mut h = build(r, w, QuorumPolicy::CheapestFirst, seed);
        let suite = h.suite_id();
        for i in 0..8u32 {
            let wr = h.write(suite, i.to_le_bytes().to_vec()).expect("write");
            writes.record(wr.latency.as_millis_f64());
            h.advance(SimDuration::from_secs(1));
            let rd = h.read(suite).expect("read");
            reads.record(rd.latency.as_millis_f64());
            h.advance(SimDuration::from_secs(1));
        }
    }
    {
        let mut h = build(r, w, QuorumPolicy::Random, seed ^ 0x5a5a);
        let suite = h.suite_id();
        h.write(suite, b"seed".to_vec()).expect("write");
        h.advance(SimDuration::from_secs(1));
        for _ in 0..16 {
            let rd = h.read(suite).expect("read");
            reads_random.record(rd.latency.as_millis_f64());
            h.advance(SimDuration::from_secs(1));
        }
    }
    SpectrumPoint {
        r,
        w,
        read_ms: reads.mean(),
        write_ms: writes.mean(),
        read_random_ms: reads_random.mean(),
    }
}

/// Builds the E2 report.
pub fn run() -> String {
    let mut out = String::new();
    out.push_str("## E2 — Quorum spectrum over five equal-vote representatives\n\n");
    out.push_str(&format!(
        "Access costs {COSTS:?} ms, per-site availability {P_UP}. \
         `w = N + 1 - r` throughout. Simulated writes include all three \
         protocol rounds.\n\n",
    ));
    let assignment = VoteAssignment::equal(5);
    let mut t = Table::new(
        "Read/write cost and availability vs quorum split",
        &[
            "r",
            "w",
            "analytic read (ms)",
            "analytic write (ms)",
            "sim read (ms)",
            "sim write (ms)",
            "sim read, random policy (ms)",
            "P(read blocked)",
            "P(write blocked)",
        ],
    );
    // Each spectrum point drives two independent simulated clusters, so the
    // five points fan out across the worker pool; seeds are fixed per point.
    let points = runner::run_tasks(5, |i| {
        let r = i as u32 + 1;
        measure_point(r, 6 - r, 100 + u64::from(r))
    });
    for p in points {
        let (r, w) = (p.r, p.w);
        let model = SystemModel::with_uniform_up(
            assignment.clone(),
            QuorumSpec::new(r, w),
            COSTS.to_vec(),
            P_UP,
        );
        let rb = 1.0 - quorum_availability(&assignment, r, &model.up);
        let wb = 1.0 - quorum_availability(&assignment, w, &model.up);
        t.row(&[
            r.to_string(),
            w.to_string(),
            ms(read_latency_verified(&model)),
            ms(write_latency(&model)),
            ms(p.read_ms),
            ms(p.write_ms),
            ms(p.read_random_ms),
            prob(rb),
            prob(wb),
        ]);
    }
    out.push_str(&t.to_markdown());
    out.push_str(
        "Shape check: reads get monotonically more expensive and writes \
         monotonically cheaper as `r` grows; the random policy pays for \
         ignoring costs whenever slow representatives exist.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_cost_rises_and_install_cost_falls_along_the_spectrum() {
        // Reads monotonically dearer with r; the *installation* leg of a
        // write (the w-vote quorum) monotonically cheaper. The total write
        // latency is U-shaped because a write also needs an r-vote inquiry
        // — cheapest at the majority point, which the report shows.
        let assignment = VoteAssignment::equal(5);
        let mut sorted = COSTS.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let mut last_read = 0.0f64;
        let mut last_install = f64::INFINITY;
        for r in 1..=5u32 {
            let w = 6 - r;
            let model = SystemModel::with_uniform_up(
                assignment.clone(),
                QuorumSpec::new(r, w),
                COSTS.to_vec(),
                0.9,
            );
            let rd = read_latency_verified(&model);
            // With equal votes the cheapest w-vote quorum is the w
            // cheapest sites; its cost is the w-th smallest access cost.
            let install = sorted[w as usize - 1];
            assert!(rd >= last_read, "read cost decreased at r={r}");
            assert!(install <= last_install, "install cost increased at r={r}");
            // Total write latency = max(inquiry, install).
            let wr = write_latency(&model);
            assert!((wr - sorted[r as usize - 1].max(install)).abs() < 1e-9);
            last_read = rd;
            last_install = install;
        }
    }

    #[test]
    fn simulated_point_matches_analytic_at_extremes() {
        // r = 1, w = 5: reads served by the cheapest rep (75 ms, always
        // current since writes hit everyone).
        let p = measure_point(1, 5, 7);
        assert!((p.read_ms - 75.0).abs() < 1e-6, "read {}", p.read_ms);
        // Write waits for all five (750) three times.
        assert!((p.write_ms - 2250.0).abs() < 1e-6, "write {}", p.write_ms);
    }

    #[test]
    fn random_policy_is_no_cheaper_than_cheapest_first() {
        let p = measure_point(2, 4, 11);
        assert!(
            p.read_random_ms + 1e-9 >= p.read_ms,
            "random {} vs cheapest {}",
            p.read_random_ms,
            p.read_ms
        );
    }

    #[test]
    fn report_has_all_rows() {
        let report = run();
        assert!(report.contains("| 1 | 5 |"));
        assert!(report.contains("| 5 | 1 |"));
    }
}
