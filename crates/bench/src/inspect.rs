//! Trace-analytics reports behind the `wv-inspect` binary.
//!
//! Everything here is a pure function from ingested records to rendered
//! text, so reports over the same trace are byte-identical regardless of
//! worker count or host — the same contract the tracer itself keeps.
//!
//! Ingestion accepts two shapes and auto-detects which it got:
//!
//! * a **replay artifact** (`results/e9_repro.json` style): one JSON
//!   object whose `"trace"` / `"audit"` keys hold arrays of records;
//! * **raw JSONL**: one record per line, as exported by
//!   `Harness::take_trace_jsonl` / `take_audit_jsonl`.

use std::collections::BTreeMap;

use wv_core::harness::Harness;
use wv_sim::audit::AuditRecord;
use wv_sim::json::Value;
use wv_sim::trace::{SpanOutcome, SpanRecord, OPEN_END};
use wv_sim::{SimDuration, TelemetryOptions};

use crate::{runner, topo};

/// Records ingested from one input document.
#[derive(Clone, Debug, Default)]
pub struct Ingested {
    /// Span records (empty when the input held none).
    pub spans: Vec<SpanRecord>,
    /// Audit records (empty when the input held none).
    pub audit: Vec<AuditRecord>,
}

/// Parses an input document into spans and audit records.
///
/// A whole-document JSON object is treated as a replay artifact and its
/// `"trace"` / `"audit"` arrays extracted; anything else is parsed line
/// by line, each line classified by its keys (`"kind"` ⇒ span,
/// `"policy"` ⇒ audit decision).
pub fn ingest(input: &str) -> Result<Ingested, String> {
    if let Some(doc) = wv_sim::json::parse(input) {
        if let Value::Object(_) = doc {
            let mut out = Ingested::default();
            if let Some(Value::Array(items)) = doc.get("trace") {
                let jsonl: Vec<String> = items.iter().map(Value::to_json).collect();
                out.spans = wv_sim::trace::from_jsonl(&jsonl.join("\n"))
                    .map_err(|e| format!("artifact trace: {e}"))?;
            }
            if let Some(Value::Array(items)) = doc.get("audit") {
                for (i, item) in items.iter().enumerate() {
                    out.audit.push(
                        AuditRecord::from_value(item)
                            .ok_or_else(|| format!("artifact audit record {i}: malformed"))?,
                    );
                }
            }
            if out.spans.is_empty() && out.audit.is_empty() {
                return Err("artifact has neither \"trace\" nor \"audit\"".into());
            }
            return Ok(out);
        }
    }
    // JSONL: classify by the first non-empty line.
    let first = input.lines().find(|l| !l.trim().is_empty()).unwrap_or("");
    let probe = wv_sim::json::parse(first).ok_or("input is neither an artifact nor JSONL")?;
    let mut out = Ingested::default();
    if probe.get("policy").is_some() {
        out.audit = wv_sim::audit::from_jsonl(input)?;
    } else {
        out.spans = wv_sim::trace::from_jsonl(input)?;
    }
    Ok(out)
}

/// Renders the critical-path report: per-op gates, the site × phase
/// blame table, and the folded-stack profile.
pub fn critpath_report(spans: &[SpanRecord]) -> String {
    let profile = wv_analysis::critpath::extract(spans);
    let mut out = String::from("== per-op critical paths ==\n");
    out.push_str(&profile.render_ops());
    out.push_str("\n== critical-path blame (site x phase) ==\n");
    out.push_str(&profile.render_blame());
    out.push_str("\n== folded stacks ==\n");
    out.push_str(&profile.folded());
    out
}

/// Fixed-point milli value rendered with three decimals (no floats).
fn milli(v: u64) -> String {
    format!("{}.{:03}", v / 1000, v % 1000)
}

/// Renders quorum-decision explains, optionally for one operation only.
///
/// Each audited decision prints its inputs — per-site access cost,
/// health EWMA, suspicion, live load — and the sites the planner chose,
/// answering "why did this op go to those representatives?".
pub fn explain_report(records: &[AuditRecord], op: Option<u64>) -> String {
    let mut out = String::from("== quorum decision explain ==\n");
    let mut shown = 0usize;
    for r in records {
        if op.is_some_and(|want| want != r.op) {
            continue;
        }
        shown += 1;
        let chosen: Vec<String> = r.chosen.iter().map(|s| format!("s{s}")).collect();
        out.push_str(&format!(
            "op {:#x} at {}us: {} by client s{} suite={} policy={} gen={} cursor={}{}\n",
            r.op,
            r.at_us,
            r.kind.name(),
            r.site,
            r.suite,
            r.policy,
            r.generation,
            r.cursor,
            if r.rerouted { " [rerouted]" } else { "" },
        ));
        out.push_str(&format!("  chose: {}\n", chosen.join(", ")));
        for i in &r.inputs {
            out.push_str(&format!(
                "  s{} cost={}us rtt={}us susp={} load={}{}{}\n",
                i.site,
                i.cost_us,
                i.rtt_us,
                milli(i.suspicion_milli),
                i.load,
                if i.suspected { " [suspected]" } else { "" },
                if r.chosen.contains(&i.site) {
                    "  <- chosen"
                } else {
                    ""
                },
            ));
        }
    }
    out.push_str(&format!(
        "{} decision(s){}\n",
        shown,
        match op {
            Some(o) => format!(" for op {o:#x}"),
            None => String::new(),
        }
    ));
    out
}

/// Renders the SLO burn summary from op-root spans.
///
/// Ops bucket into windows of `window_ms` by start time. Per window the
/// report shows availability (ops that ended `ok`) and latency
/// attainment (ok ops that finished within `target_ms`); a window
/// breaching either burns error budget and is marked `BURN`.
pub fn slo_report(spans: &[SpanRecord], target_ms: u64, window_ms: u64) -> String {
    let window_us = window_ms.max(1) * 1000;
    let target_us = target_ms * 1000;
    #[derive(Default)]
    struct Cell {
        ops: u64,
        ok: u64,
        fast: u64,
    }
    let mut windows: BTreeMap<u64, Cell> = BTreeMap::new();
    for s in spans {
        if !s.kind.is_op_root() || s.end_us == OPEN_END {
            continue;
        }
        let cell = windows.entry(s.start_us / window_us).or_default();
        cell.ops += 1;
        if s.outcome == SpanOutcome::Ok {
            cell.ok += 1;
            if s.end_us - s.start_us <= target_us {
                cell.fast += 1;
            }
        }
    }
    let pct = |part: u64, whole: u64| {
        let pm = part.saturating_mul(1000) / whole.max(1);
        format!("{}.{}%", pm / 10, pm % 10)
    };
    let mut out = format!(
        "== SLO burn summary (target {target_ms}ms, window {window_ms}ms) ==\n\
         window            ops    ok  avail   fast  latency\n"
    );
    let (mut ops, mut ok, mut fast, mut burned) = (0u64, 0u64, 0u64, 0u64);
    for (idx, c) in &windows {
        let burn = c.ok < c.ops || c.fast < c.ops;
        if burn {
            burned += 1;
        }
        out.push_str(&format!(
            "[{:>8}..{:>8}ms) {:>4} {:>5} {:>6} {:>6} {:>8}{}\n",
            idx * window_ms,
            (idx + 1) * window_ms,
            c.ops,
            c.ok,
            pct(c.ok, c.ops),
            c.fast,
            pct(c.fast, c.ops),
            if burn { "  BURN" } else { "" },
        ));
        ops += c.ops;
        ok += c.ok;
        fast += c.fast;
    }
    out.push_str(&format!(
        "overall: {ops} ops, availability {}, latency attainment {}, {burned}/{} window(s) burned budget\n",
        pct(ok, ops),
        pct(fast, ops),
        windows.len(),
    ));
    out
}

/// Exports spans as a Chrome-trace / Perfetto JSON document.
///
/// Complete events (`"ph":"X"`) with `pid` = recording site and `tid` =
/// operation id, so the per-site lanes line up with the audit log. Open
/// spans export with zero duration.
pub fn chrome_trace(spans: &[SpanRecord]) -> String {
    let mut events = Vec::with_capacity(spans.len());
    for s in spans {
        let mut args = BTreeMap::new();
        args.insert("detail".to_string(), Value::Int(s.detail));
        if s.peer != wv_sim::trace::NO_PEER {
            args.insert("peer".to_string(), Value::Int(u64::from(s.peer)));
        }
        if s.suite != 0 {
            args.insert("suite".to_string(), Value::Int(s.suite));
        }
        let mut ev = BTreeMap::new();
        ev.insert("args".to_string(), Value::Object(args));
        ev.insert("cat".to_string(), Value::Str(s.outcome.name().to_string()));
        let dur = if s.end_us == OPEN_END {
            0
        } else {
            s.end_us - s.start_us
        };
        ev.insert("dur".to_string(), Value::Int(dur));
        ev.insert("name".to_string(), Value::Str(s.kind.name().to_string()));
        ev.insert("ph".to_string(), Value::Str("X".to_string()));
        ev.insert("pid".to_string(), Value::Int(u64::from(s.site)));
        ev.insert("tid".to_string(), Value::Int(s.op));
        ev.insert("ts".to_string(), Value::Int(s.start_us));
        events.push(Value::Object(ev));
    }
    let mut doc = BTreeMap::new();
    doc.insert("displayTimeUnit".to_string(), Value::Str("ms".to_string()));
    doc.insert("traceEvents".to_string(), Value::Array(events));
    Value::Object(doc).to_json()
}

/// Output of a fresh instrumented capture run.
#[derive(Clone, Debug)]
pub struct Capture {
    /// Concatenated per-trial trace JSONL, trials in index order.
    pub trace_jsonl: String,
    /// Concatenated per-trial audit JSONL, trials in index order.
    pub audit_jsonl: String,
    /// Concatenated per-trial telemetry renders, trials in index order.
    pub telemetry: String,
}

/// Runs an instrumented Example-1 workload and exports all three
/// analytics products.
///
/// Trials fan out on the worker pool and merge in index order, so the
/// exported bytes are identical for any `WV_TRIAL_THREADS` — the
/// property `tests/analytics_determinism.rs` pins.
pub fn capture_e1(master_seed: u64, trials: usize, rounds: u32) -> Capture {
    let per = runner::run_trials(master_seed, trials, |seed| {
        let mut h = topo::example_1(seed);
        h.enable_tracing();
        h.enable_audit();
        h.enable_telemetry(TelemetryOptions::default());
        drive_rounds(&mut h, rounds);
        let telemetry = h
            .telemetry_snapshot()
            .map(|s| s.render())
            .unwrap_or_default();
        (h.take_trace_jsonl(), h.take_audit_jsonl(), telemetry)
    });
    let mut cap = Capture {
        trace_jsonl: String::new(),
        audit_jsonl: String::new(),
        telemetry: String::new(),
    };
    for (i, (trace, audit, telemetry)) in per.into_iter().enumerate() {
        cap.trace_jsonl.push_str(&trace);
        cap.audit_jsonl.push_str(&audit);
        cap.telemetry.push_str(&format!("trial {i}\n{telemetry}"));
    }
    cap
}

fn drive_rounds(h: &mut Harness, rounds: u32) {
    let suite = h.suite_id();
    for i in 0..rounds {
        h.write(suite, format!("inspect-{i}").into_bytes())
            .expect("write succeeds on a healthy cluster");
        h.advance(SimDuration::from_secs(2));
        h.read(suite).expect("read succeeds");
        h.advance(SimDuration::from_secs(2));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn capture() -> Capture {
        capture_e1(0x1257EC7, 2, 3)
    }

    #[test]
    fn ingest_classifies_jsonl_and_artifacts() {
        let cap = capture();
        let spans = ingest(&cap.trace_jsonl).expect("trace jsonl");
        assert!(!spans.spans.is_empty() && spans.audit.is_empty());
        let audit = ingest(&cap.audit_jsonl).expect("audit jsonl");
        assert!(audit.spans.is_empty() && !audit.audit.is_empty());
        // A synthetic artifact with both keys round-trips both.
        let trace_items: Vec<String> = cap
            .trace_jsonl
            .lines()
            .filter(|l| !l.trim().is_empty())
            .map(String::from)
            .collect();
        let audit_items: Vec<String> = cap
            .audit_jsonl
            .lines()
            .filter(|l| !l.trim().is_empty())
            .map(String::from)
            .collect();
        let artifact = format!(
            "{{\"schema\":\"test/1\",\"trace\":[{}],\"audit\":[{}]}}",
            trace_items.join(","),
            audit_items.join(","),
        );
        let both = ingest(&artifact).expect("artifact");
        assert_eq!(both.spans, spans.spans);
        assert_eq!(both.audit, audit.audit);
        assert!(ingest("not json").is_err());
    }

    #[test]
    fn reports_render_all_sections() {
        let cap = capture();
        let spans = ingest(&cap.trace_jsonl).unwrap().spans;
        let audit = ingest(&cap.audit_jsonl).unwrap().audit;

        let cp = critpath_report(&spans);
        assert!(cp.contains("== per-op critical paths =="), "{cp}");
        assert!(cp.contains("== critical-path blame (site x phase) =="));
        assert!(cp.contains("== folded stacks =="));
        assert!(cp.contains("write;"), "folded stacks name the op root");

        let ex = explain_report(&audit, None);
        assert!(ex.contains("== quorum decision explain =="));
        assert!(ex.contains("<- chosen"), "{ex}");
        assert!(ex.contains("suite="), "explain names the suite: {ex}");
        // The span records carry the suite dimension end to end.
        assert!(spans.iter().any(|s| s.suite != 0), "spans carry suites");
        // Filtering to one op shows exactly that op's decisions.
        let op = audit[0].op;
        let one = explain_report(&audit, Some(op));
        assert!(one.contains(&format!("op {op:#x}")));
        let none = explain_report(&audit, Some(u64::MAX));
        assert!(none.contains("0 decision(s)"));

        let slo = slo_report(&spans, 500, 4000);
        assert!(slo.contains("== SLO burn summary"), "{slo}");
        assert!(slo.contains("overall:"), "{slo}");

        assert!(!cap.telemetry.is_empty());
        assert!(cap.telemetry.contains("window_us="), "{}", cap.telemetry);
    }

    #[test]
    fn chrome_export_is_valid_json_with_one_event_per_span() {
        let cap = capture();
        let spans = ingest(&cap.trace_jsonl).unwrap().spans;
        let doc = chrome_trace(&spans);
        let parsed = wv_sim::json::parse(&doc).expect("chrome export parses");
        let events = parsed
            .get("traceEvents")
            .and_then(Value::as_array)
            .expect("traceEvents array");
        assert_eq!(events.len(), spans.len());
        assert_eq!(
            parsed.get("displayTimeUnit").and_then(Value::as_str),
            Some("ms")
        );
        let first = &events[0];
        assert_eq!(first.get("ph").and_then(Value::as_str), Some("X"));
        assert!(first.get("ts").and_then(Value::as_int).is_some());
    }
}
