//! E11 — closed-loop throughput saturation.
//!
//! N clients share a three-server majority cluster and each keeps a
//! window of `k` operations outstanding (the pipelined client's
//! `pipeline_depth`): every client enqueues its whole read budget at
//! once and the window self-paces, so the offered concurrency is exactly
//! `N × k`. Throughput is measured in *virtual* time — committed
//! operations per simulated second — which makes every cell of the sweep
//! a deterministic function of its seed and lets the report double as a
//! worker-count invariance fixture (`crates/bench/tests/e11_determinism.rs`).
//!
//! Two claims under test:
//!
//! 1. **Pipelining buys throughput.** A closed loop at depth `k`
//!    completes ~`k` reads per round trip, so deepening the window from
//!    1 to 8 multiplies per-client throughput, at every client count.
//! 2. **Load-balanced selection spreads the work.** With equal-cost
//!    representatives, `CheapestFirst` sends every fetch to the
//!    lowest-id server; `LoadBalanced` rotates across the cost tie and
//!    keeps every server busy without giving up quorum minimality —
//!    visible in the per-site data-request counters, at identical
//!    quorum cost.

use wv_core::client::{ClientOptions, QuorumPolicy};
use wv_core::harness::{Harness, SiteSpec};
use wv_core::quorum::QuorumSpec;
use wv_net::{NetConfig, SiteId};
use wv_sim::{LatencyModel, SimDuration};

use crate::runner;
use crate::table::Table;

/// Voting representatives (one vote each, `r = w = 2` majority quorums).
const SERVERS: usize = 3;
/// One-way link latency everywhere: every representative costs the same,
/// so the cost-tie rotation has the whole cluster to spread over.
const LINK: SimDuration = SimDuration::from_millis(25);
/// Client counts along the saturation curve.
const CLIENTS: [usize; 4] = [1, 2, 4, 8];
/// Pipeline depths (outstanding-op windows) per curve.
const DEPTHS: [usize; 3] = [1, 4, 8];
/// Reads each client issues per trial in the full report.
const OPS_PER_CLIENT: usize = 32;
/// Master seed for the sweep.
const MASTER_SEED: u64 = 0xE11;

/// The two policies under comparison, with display names.
const POLICIES: [(QuorumPolicy, &str); 2] = [
    (QuorumPolicy::CheapestFirst, "cheapest-first"),
    (QuorumPolicy::LoadBalanced, "load-balanced"),
];

/// One grid point of the sweep.
pub struct Cell {
    /// Quorum policy index into [`POLICIES`].
    pub policy: usize,
    /// Outstanding-op window per client.
    pub depth: usize,
    /// Concurrent closed-loop clients.
    pub clients: usize,
    /// Operations that committed (out of `clients × ops_per_client`).
    pub ops_ok: u64,
    /// Committed operations per *virtual* second, across all clients.
    pub ops_per_vsec: f64,
    /// Data requests (fetches, prepares) each server answered, summed
    /// over all clients; length [`SERVERS`].
    pub server_load: Vec<u64>,
}

/// Runs one cell: `clients` closed-loop readers at window `depth`.
fn run_cell(seed: u64, policy: QuorumPolicy, depth: usize, clients: usize, ops: usize) -> Cell {
    let mut b = Harness::builder()
        .seed(seed)
        .quorum(QuorumSpec::new(2, 2))
        .net(NetConfig::uniform(
            SERVERS + clients,
            LatencyModel::Constant(LINK),
        ))
        .client_options(ClientOptions {
            quorum_policy: policy,
            pipeline_depth: Some(depth),
            ..ClientOptions::default()
        });
    for _ in 0..SERVERS {
        b = b.site(SiteSpec::server(1));
    }
    for _ in 0..clients {
        b = b.client();
    }
    let mut h = b.build().expect("majority quorums are legal");
    let suite = h.suite_id();
    // Seed the suite so every read fetches real content, then measure
    // from a clean baseline (the write's prepare legs also count as
    // data requests, so per-site loads are diffed against it).
    h.write(suite, b"e11-seed".to_vec()).expect("seeding write");
    let client_sites: Vec<SiteId> = h.clients().to_vec();
    let base: Vec<Vec<u64>> = client_sites
        .iter()
        .map(|&c| h.client_site_load(c).expect("client exists"))
        .collect();
    let start = h.now();
    for &c in &client_sites {
        for _ in 0..ops {
            h.enqueue_read(c, suite, start);
        }
    }
    h.run_until_quiet(100_000_000);

    let mut ops_ok = 0u64;
    let mut last_finish = start;
    for &c in &client_sites {
        for op in h.drain_completed(c) {
            if op.outcome.is_ok() {
                ops_ok += 1;
                last_finish = last_finish.max(op.finished);
            }
        }
    }
    let makespan_s = last_finish.since(start).as_millis_f64() / 1000.0;
    let mut server_load = vec![0u64; SERVERS];
    for (i, &c) in client_sites.iter().enumerate() {
        let load = h.client_site_load(c).expect("client exists");
        for (s, slot) in server_load.iter_mut().enumerate() {
            *slot += load[s] - base[i][s];
        }
    }
    Cell {
        policy: POLICIES
            .iter()
            .position(|&(p, _)| p == policy)
            .expect("known policy"),
        depth,
        clients,
        ops_ok,
        ops_per_vsec: if makespan_s > 0.0 {
            ops_ok as f64 / makespan_s
        } else {
            0.0
        },
        server_load,
    }
}

/// The full sweep: every `(policy, depth, clients)` grid point, fanned
/// out over the deterministic trial pool in grid order.
pub fn measure(master_seed: u64, ops_per_client: usize) -> Vec<Cell> {
    let mut grid = Vec::new();
    for &(policy, _) in &POLICIES {
        for &depth in &DEPTHS {
            for &clients in &CLIENTS {
                grid.push((policy, depth, clients));
            }
        }
    }
    runner::run_trials_indexed(master_seed, grid.len(), |i, seed| {
        let (policy, depth, clients) = grid[i];
        run_cell(seed, policy, depth, clients, ops_per_client)
    })
}

/// Finds the sweep cell for `(policy index, depth, clients)`.
fn cell(cells: &[Cell], policy: usize, depth: usize, clients: usize) -> &Cell {
    cells
        .iter()
        .find(|c| c.policy == policy && c.depth == depth && c.clients == clients)
        .expect("grid covers every combination")
}

/// Builds the E11 report with an explicit per-client read budget (the
/// smoke tests use a small one).
pub fn run_with(ops_per_client: usize) -> String {
    let cells = measure(MASTER_SEED, ops_per_client);
    let total: u64 = cells.iter().map(|c| c.ops_ok).sum();
    let expected: u64 = cells
        .iter()
        .map(|c| (c.clients * ops_per_client) as u64)
        .sum();
    let mut out = String::new();
    out.push_str("## E11 — Closed-loop throughput saturation\n\n");
    out.push_str(&format!(
        "{}-server majority cluster (one vote each, r = w = 2), uniform \
         {} ms links. Each cell runs N closed-loop clients; a client \
         enqueues {ops_per_client} reads at once and its pipelined window \
         (depth k) self-paces, so offered concurrency is N × k. \
         Throughput is committed operations per **virtual** second — \
         deterministic, so the whole sweep is a worker-count invariance \
         fixture. {total}/{expected} operations committed.\n\n",
        SERVERS,
        LINK.as_millis() * 2,
    ));
    for (pi, &(_, name)) in POLICIES.iter().enumerate() {
        let mut t = Table::new(
            format!("Throughput, {name} (ops per virtual second)"),
            &["depth \\ clients", "1", "2", "4", "8"],
        );
        for &depth in &DEPTHS {
            let mut row = vec![format!("depth {depth}")];
            for &n in &CLIENTS {
                row.push(format!("{:.1}", cell(&cells, pi, depth, n).ops_per_vsec));
            }
            t.row(&row);
        }
        out.push_str(&t.to_markdown());
        out.push('\n');
    }
    let deepest = CLIENTS[CLIENTS.len() - 1];
    let mut t = Table::new(
        format!("Per-server data requests (8 clients, depth 8, {ops_per_client} reads each)"),
        &["server", POLICIES[0].1, POLICIES[1].1],
    );
    let cf = cell(&cells, 0, 8, deepest);
    let lb = cell(&cells, 1, 8, deepest);
    for s in 0..SERVERS {
        t.row(&[
            format!("site {s}"),
            cf.server_load[s].to_string(),
            lb.server_load[s].to_string(),
        ]);
    }
    out.push_str(&t.to_markdown());
    out.push('\n');

    let speedups: Vec<f64> = CLIENTS
        .iter()
        .map(|&n| cell(&cells, 0, 8, n).ops_per_vsec / cell(&cells, 0, 1, n).ops_per_vsec)
        .collect();
    let min_speedup = speedups.iter().cloned().fold(f64::INFINITY, f64::min);
    out.push_str(&format!(
        "Pipelining depth 1 → 8 multiplies closed-loop throughput by \
         **{min_speedup:.1}×** or more at every client count (≥2× required: **{}**).\n\n",
        if min_speedup >= 2.0 { "yes" } else { "NO" }
    ));
    let cf_busy = cf.server_load.iter().filter(|&&l| l > 0).count();
    let lb_busy = lb.server_load.iter().filter(|&&l| l > 0).count();
    out.push_str(&format!(
        "With every representative equally cheap, cheapest-first sends \
         data requests to **{cf_busy}** server(s); load-balanced rotation \
         keeps **{lb_busy}** of {SERVERS} busy at the same quorum cost \
         (spreads the tie: **{}**).\n",
        if lb_busy == SERVERS && cf_busy < SERVERS {
            "yes"
        } else {
            "NO"
        }
    ));
    out
}

/// Builds the full E11 report.
pub fn run() -> String {
    run_with(OPS_PER_CLIENT)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deeper_windows_multiply_single_client_throughput() {
        let d1 = run_cell(41, QuorumPolicy::CheapestFirst, 1, 1, 12);
        let d8 = run_cell(41, QuorumPolicy::CheapestFirst, 8, 1, 12);
        assert_eq!(d1.ops_ok, 12);
        assert_eq!(d8.ops_ok, 12);
        assert!(
            d8.ops_per_vsec >= 2.0 * d1.ops_per_vsec,
            "depth 8 must at least double depth 1: {} vs {}",
            d8.ops_per_vsec,
            d1.ops_per_vsec
        );
    }

    #[test]
    fn load_balancing_spreads_ties_that_cheapest_first_hammers() {
        let cf = run_cell(42, QuorumPolicy::CheapestFirst, 4, 4, 8);
        let lb = run_cell(42, QuorumPolicy::LoadBalanced, 4, 4, 8);
        assert_eq!(cf.ops_ok, 32);
        assert_eq!(lb.ops_ok, 32);
        assert_eq!(
            cf.server_load.iter().filter(|&&l| l > 0).count(),
            1,
            "equal costs leave cheapest-first on one site: {:?}",
            cf.server_load
        );
        assert_eq!(
            lb.server_load.iter().filter(|&&l| l > 0).count(),
            SERVERS,
            "rotation must keep every server busy: {:?}",
            lb.server_load
        );
    }

    #[test]
    fn the_report_carries_both_verdicts() {
        let report = run_with(6);
        assert!(report.contains("## E11 — Closed-loop throughput saturation"));
        assert_eq!(
            report.matches(": **yes**").count(),
            2,
            "both throughput verdicts must hold:\n{report}"
        );
    }
}
