//! Topology builders for the paper's example configurations.
//!
//! The paper quotes *access* latencies (request + response). The simulator
//! charges per message, so each one-way link latency here is half the
//! quoted access cost; an inquiry or fetch round trip then costs exactly
//! the paper's number.

use wv_core::client::ClientOptions;
use wv_core::harness::{Harness, HarnessBuilder, SiteSpec};
use wv_core::quorum::QuorumSpec;
use wv_net::{NetConfig, SiteId};
use wv_sim::{LatencyModel, SimDuration};

/// One-way latency model for a quoted round-trip access cost in ms.
pub fn half_ms(access_ms: f64) -> LatencyModel {
    LatencyModel::Constant(SimDuration::from_millis_f64(access_ms / 2.0))
}

/// A network where `access[i]` is the client's round-trip cost to site `i`
/// and the client is the last site. `self_access` overrides per-site
/// self-link costs (used for weak representatives co-located with the
/// client).
pub fn client_star(access: &[f64], client_self: Option<f64>) -> NetConfig {
    let sites = access.len() + 1;
    let client = SiteId::from(sites - 1);
    // Server-to-server links barely matter (the client coordinates), but
    // give them a sane default.
    let mut net = NetConfig::uniform(sites, half_ms(100.0));
    for (i, &a) in access.iter().enumerate() {
        net.set_link_symmetric(client, SiteId::from(i), half_ms(a));
    }
    if let Some(a) = client_self {
        net.set_link(client, client, half_ms(a));
    }
    net
}

/// The paper's Example 1 as a running cluster: one voting representative
/// on the file server (75 ms), the client workstation holding a weak
/// representative (65 ms local access), and a second workstation with its
/// own weak representative. `r = w = 1`.
pub fn example_1(seed: u64) -> Harness {
    example_1_with_options(seed, ClientOptions::default())
}

/// [`example_1`] with explicit client options — the throughput snapshots
/// run the same topology at several pipeline depths.
pub fn example_1_with_options(seed: u64, options: ClientOptions) -> Harness {
    // Sites: 0 = file server (1 vote), 1 = other workstation (weak),
    // 2 = client workstation (weak).
    let net = {
        let mut net = client_star(&[75.0, 100.0], Some(65.0));
        // The other workstation's weak rep is remote to this client.
        net.set_link_symmetric(SiteId(2), SiteId(1), half_ms(100.0));
        net
    };
    HarnessBuilder::new()
        .seed(seed)
        .site(SiteSpec::server(1))
        .site(SiteSpec::server(0))
        .site(SiteSpec::client_with_weak())
        .quorum(QuorumSpec::new(1, 1))
        .client_options(options)
        .net(net)
        .build()
        .expect("example 1 is legal")
}

/// The paper's Example 2: votes ⟨2,1,1⟩ with accesses 75/100/750 ms,
/// `r = 2, w = 3`.
pub fn example_2(seed: u64) -> Harness {
    HarnessBuilder::new()
        .seed(seed)
        .site(SiteSpec::server(2))
        .site(SiteSpec::server(1))
        .site(SiteSpec::server(1))
        .client()
        .quorum(QuorumSpec::new(2, 3))
        .net(client_star(&[75.0, 100.0, 750.0], None))
        .build()
        .expect("example 2 is legal")
}

/// The paper's Example 3: votes ⟨1,1,1⟩ with accesses 75/750/750 ms,
/// `r = 1, w = 3`.
pub fn example_3(seed: u64) -> Harness {
    HarnessBuilder::new()
        .seed(seed)
        .site(SiteSpec::server(1))
        .site(SiteSpec::server(1))
        .site(SiteSpec::server(1))
        .client()
        .quorum(QuorumSpec::new(1, 3))
        .net(client_star(&[75.0, 750.0, 750.0], None))
        .build()
        .expect("example 3 is legal")
}

/// An `n`-replica equal-vote cluster with uniform 100 ms access and a
/// single client, parameterised by quorum.
pub fn equal_cluster(n: usize, quorum: QuorumSpec, seed: u64) -> Harness {
    let mut b = HarnessBuilder::new().seed(seed).quorum(quorum);
    for _ in 0..n {
        b = b.site(SiteSpec::server(1));
    }
    b.client()
        .net(client_star(&vec![100.0; n], None))
        .build()
        .expect("legal equal cluster")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn half_ms_halves() {
        assert_eq!(half_ms(75.0).mean_millis(), 37.5);
    }

    #[test]
    fn client_star_costs() {
        let net = client_star(&[75.0, 100.0, 750.0], None);
        let client = SiteId(3);
        assert_eq!(net.mean_latency_ms(client, SiteId(0)), 37.5);
        assert_eq!(net.mean_latency_ms(SiteId(2), client), 375.0);
    }

    #[test]
    fn examples_build_and_serve() {
        for (i, mut h) in [example_1(1), example_2(1), example_3(1)]
            .into_iter()
            .enumerate()
        {
            let suite = h.suite_id();
            h.write(suite, vec![i as u8]).expect("write");
            let r = h.read(suite).expect("read");
            assert_eq!(r.value[0], i as u8);
        }
    }
}
