//! E7 — online reconfiguration.
//!
//! A suite starts with majority quorums on the Example-2 geography
//! (75/100/750 ms), serves a read/write mix, is re-tuned **online** to
//! read-one/write-all, and keeps serving. The report shows per-phase mean
//! latencies (reads get cheaper, writes dearer — the knob turned), that
//! the change itself is just one write under the *old* quorum, and that no
//! operation across the transition ever reads anything but the latest
//! committed value.

use wv_core::harness::{Harness, HarnessBuilder, SiteSpec};
use wv_core::quorum::QuorumSpec;
use wv_core::votes::VoteAssignment;
use wv_net::SiteId;
use wv_sim::{SampleSet, SimDuration};
use wv_storage::Version;

use crate::runner;
use crate::table::{ms, Table};
use crate::topo::client_star;

/// Latency means for one phase of the run.
#[derive(Clone, Copy, Debug)]
pub struct PhaseResult {
    /// Mean read latency (ms).
    pub read_ms: f64,
    /// Mean write latency (ms).
    pub write_ms: f64,
}

/// The full reconfiguration run.
#[derive(Clone, Debug)]
pub struct ReconfigRun {
    /// Before the change (majority).
    pub before: PhaseResult,
    /// After the change (read-one/write-all).
    pub after: PhaseResult,
    /// Latency of the reconfiguration write itself (ms).
    pub reconfig_ms: f64,
    /// Reads that returned anything other than the latest committed write.
    pub stale_reads: u32,
    /// Configuration generation at each server after the run.
    pub generations: Vec<u64>,
}

fn build(seed: u64) -> Harness {
    HarnessBuilder::new()
        .seed(seed)
        .site(SiteSpec::server(1))
        .site(SiteSpec::server(1))
        .site(SiteSpec::server(1))
        .client()
        .quorum(QuorumSpec::majority(3))
        .net(client_star(&[75.0, 100.0, 750.0], None))
        .build()
        .expect("legal starting configuration")
}

fn run_phase(
    h: &mut Harness,
    rounds: usize,
    expected: &mut Version,
    stale: &mut u32,
) -> PhaseResult {
    let suite = h.suite_id();
    let mut reads = SampleSet::new();
    let mut writes = SampleSet::new();
    for i in 0..rounds {
        let w = h
            .write(suite, format!("phase-{i}").into_bytes())
            .expect("write");
        writes.record(w.latency.as_millis_f64());
        *expected = w.version;
        h.advance(SimDuration::from_secs(1));
        let r = h.read(suite).expect("read");
        reads.record(r.latency.as_millis_f64());
        if r.version < *expected {
            *stale += 1;
        }
        h.advance(SimDuration::from_secs(1));
    }
    PhaseResult {
        read_ms: reads.mean(),
        write_ms: writes.mean(),
    }
}

/// Executes the experiment.
pub fn execute(seed: u64, rounds: usize) -> ReconfigRun {
    let mut h = build(seed);
    let suite = h.suite_id();
    let mut expected = Version::INITIAL;
    let mut stale = 0u32;
    let before = run_phase(&mut h, rounds, &mut expected, &mut stale);
    // The knob turns: same votes, new quorums, installed under the OLD
    // write quorum (majority).
    let rec = h
        .reconfigure_from(
            h.default_client(),
            suite,
            VoteAssignment::equal(3),
            QuorumSpec::new(1, 3),
        )
        .expect("reconfiguration succeeds");
    let after = run_phase(&mut h, rounds, &mut expected, &mut stale);
    let generations = SiteId::all(3)
        .map(|s| h.generation_at(s, suite).unwrap_or(0))
        .collect();
    ReconfigRun {
        before,
        after,
        reconfig_ms: rec.latency.as_millis_f64(),
        stale_reads: stale,
        generations,
    }
}

/// Builds the E7 report.
///
/// One run is inherently sequential (the reconfiguration is a point in
/// virtual time), so parallelism comes from *replicates*: the headline run
/// plus independent runs under derived seeds, all fanned out together,
/// checked for the zero-staleness invariant.
pub fn run() -> String {
    const REPLICATES: usize = 4;
    let mut runs = runner::run_trials(77, 1 + REPLICATES, |seed| execute(seed, 10));
    let r = runs.remove(0);
    let replicate_stale: u32 = runs.iter().map(|r| r.stale_reads).sum();
    let mut out = String::new();
    out.push_str("## E7 — Online reconfiguration (majority → read-one/write-all)\n\n");
    let mut t = Table::new(
        "Latency before and after the quorum change",
        &["phase", "quorums", "mean read (ms)", "mean write (ms)"],
    );
    t.row(&[
        "before".into(),
        "r=2, w=2".into(),
        ms(r.before.read_ms),
        ms(r.before.write_ms),
    ]);
    t.row(&[
        "after".into(),
        "r=1, w=3".into(),
        ms(r.after.read_ms),
        ms(r.after.write_ms),
    ]);
    out.push_str(&t.to_markdown());
    out.push_str(&format!(
        "Reconfiguration write latency: {} ms (one ordinary write under \
         the old majority quorum).\n\nStale reads across the whole run: \
         {}. Server config generations after the run: {:?} (the third \
         server learns the new configuration lazily, via quorum \
         intersection, exactly as the paper prescribes).\n",
        ms(r.reconfig_ms),
        r.stale_reads,
        r.generations
    ));
    out.push_str(&format!(
        "\nReplicates: {REPLICATES} further runs under derived seeds \
         reported {replicate_stale} stale reads in total.\n"
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reconfiguration_moves_latencies_the_right_way() {
        let r = execute(3, 6);
        // r: 2 -> 1 with costs 75/100/750: reads drop from 100 to 75.
        assert!(
            r.after.read_ms < r.before.read_ms,
            "reads should get cheaper: {} -> {}",
            r.before.read_ms,
            r.after.read_ms
        );
        // w: 2 -> 3: writes must now touch the 750 ms site.
        assert!(
            r.after.write_ms > r.before.write_ms,
            "writes should get dearer: {} -> {}",
            r.before.write_ms,
            r.after.write_ms
        );
    }

    #[test]
    fn no_reads_are_ever_stale_across_the_change() {
        let r = execute(5, 8);
        assert_eq!(r.stale_reads, 0);
    }

    #[test]
    fn the_new_generation_reaches_at_least_a_write_quorum() {
        let r = execute(7, 4);
        let upgraded = r.generations.iter().filter(|g| **g == 2).count();
        assert!(
            upgraded >= 2,
            "the old write quorum (2 sites) must hold generation 2, got {:?}",
            r.generations
        );
    }

    #[test]
    fn report_shows_both_phases() {
        let report = run();
        assert!(report.contains("before"));
        assert!(report.contains("after"));
        assert!(report.contains("Stale reads across the whole run: 0"));
    }
}
