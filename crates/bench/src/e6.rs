//! E6 — weighted voting vs the classical baselines.
//!
//! Three replicas plus one client, identical network for every scheme.
//! Four scenarios probe the schemes where they differ:
//!
//! * **healthy** — latencies with everything up;
//! * **one replica down** — ROWA loses writes, primary-copy loses
//!   everything when the down replica is the primary, quorum schemes
//!   shrug;
//! * **client partitioned with one replica** — only schemes that can
//!   operate on a single replica survive on the client's side;
//! * **staleness** — read-your-write immediately after the ack: quorum
//!   schemes are always fresh, asynchronous primary-copy local reads are
//!   not.

use wv_baselines::{BaselineHarness, Scheme};
use wv_core::harness::Harness;
use wv_core::quorum::QuorumSpec;
use wv_net::{Partition, SiteId};
use wv_sim::SimDuration;
use wv_storage::Version;

use crate::runner;
use crate::table::{ms, pct, Table};

/// Which system is under test.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum System {
    /// Weighted voting with majority quorums (r = w = 2 of 3).
    VotingMajority,
    /// Read-one/write-all.
    Rowa,
    /// Primary copy with strong (primary) reads.
    Primary,
    /// Primary copy with local (possibly stale) reads.
    PrimaryLocalReads,
    /// Thomas' majority consensus.
    MajorityConsensus,
}

impl System {
    /// All systems in report order.
    pub fn all() -> [System; 5] {
        [
            System::VotingMajority,
            System::Rowa,
            System::Primary,
            System::PrimaryLocalReads,
            System::MajorityConsensus,
        ]
    }

    fn label(self) -> &'static str {
        match self {
            System::VotingMajority => "weighted voting (majority)",
            System::Rowa => "read-one/write-all",
            System::Primary => "primary copy (strong reads)",
            System::PrimaryLocalReads => "primary copy (local reads)",
            System::MajorityConsensus => "majority consensus",
        }
    }
}

/// Outcome of probing one system in one scenario.
#[derive(Clone, Copy, Debug, Default)]
pub struct Probe {
    /// Did the read succeed?
    pub read_ok: bool,
    /// Did the write succeed?
    pub write_ok: bool,
    /// Read latency if it succeeded (ms).
    pub read_ms: f64,
    /// Write latency if it succeeded (ms).
    pub write_ms: f64,
}

enum Sys {
    Voting(Box<Harness>),
    Baseline(Box<BaselineHarness>),
}

/// The shared network: client close to backup 1, primary-to-backup
/// propagation links slow (asynchronous propagation visibly lags).
fn baseline_net() -> wv_net::NetConfig {
    use crate::topo::half_ms;
    // Round-trip accesses: replica 0 (the primary-copy primary) 100 ms,
    // replica 1 80 ms (closest to the client), replica 2 100 ms.
    let mut net = crate::topo::client_star(&[100.0, 80.0, 100.0], None);
    // Propagation path from the primary to its backups is slow.
    net.set_link(SiteId(0), SiteId(1), half_ms(800.0));
    net.set_link(SiteId(0), SiteId(2), half_ms(800.0));
    net
}

fn build(system: System, seed: u64) -> Sys {
    let timeout = wv_sim::SimDuration::from_secs(5);
    match system {
        System::VotingMajority => {
            let h = wv_core::harness::HarnessBuilder::new()
                .seed(seed)
                .site(wv_core::harness::SiteSpec::server(1))
                .site(wv_core::harness::SiteSpec::server(1))
                .site(wv_core::harness::SiteSpec::server(1))
                .client()
                .quorum(QuorumSpec::majority(3))
                .net(baseline_net())
                .build()
                .expect("legal majority cluster");
            Sys::Voting(Box::new(h))
        }
        System::Rowa => Sys::Baseline(Box::new(BaselineHarness::new(
            Scheme::Rowa,
            3,
            baseline_net(),
            seed,
            timeout,
        ))),
        System::Primary => Sys::Baseline(Box::new(BaselineHarness::new(
            Scheme::Primary {
                primary: SiteId(0),
                local_reads: false,
            },
            3,
            baseline_net(),
            seed,
            timeout,
        ))),
        System::PrimaryLocalReads => Sys::Baseline(Box::new(BaselineHarness::new(
            Scheme::Primary {
                primary: SiteId(0),
                local_reads: true,
            },
            3,
            baseline_net(),
            seed,
            timeout,
        ))),
        System::MajorityConsensus => Sys::Baseline(Box::new(BaselineHarness::new(
            Scheme::Majority,
            3,
            baseline_net(),
            seed,
            timeout,
        ))),
    }
}

impl Sys {
    fn prime(&mut self) {
        match self {
            Sys::Voting(h) => {
                let suite = h.suite_id();
                h.write(suite, b"prime".to_vec()).expect("prime");
                h.advance(SimDuration::from_secs(2));
            }
            Sys::Baseline(h) => {
                h.write(b"prime".to_vec()).expect("prime");
                h.advance(SimDuration::from_secs(2));
            }
        }
    }

    fn crash(&mut self, site: SiteId) {
        match self {
            Sys::Voting(h) => h.crash(site),
            Sys::Baseline(h) => h.crash(site),
        }
    }

    fn partition(&mut self, p: Partition) {
        match self {
            Sys::Voting(h) => h.partition(p),
            Sys::Baseline(h) => h.partition(p),
        }
    }

    fn probe(&mut self) -> Probe {
        let mut out = Probe::default();
        match self {
            Sys::Voting(h) => {
                let suite = h.suite_id();
                if let Ok(w) = h.write(suite, b"probe".to_vec()) {
                    out.write_ok = true;
                    out.write_ms = w.latency.as_millis_f64();
                }
                if let Ok(r) = h.read(suite) {
                    out.read_ok = true;
                    out.read_ms = r.latency.as_millis_f64();
                }
            }
            Sys::Baseline(h) => {
                if let Ok((_, lat)) = h.write(b"probe".to_vec()) {
                    out.write_ok = true;
                    out.write_ms = lat.as_millis_f64();
                }
                if let Ok((_, _, lat)) = h.read() {
                    out.read_ok = true;
                    out.read_ms = lat.as_millis_f64();
                }
            }
        }
        out
    }
}

/// Probes a system in a named scenario.
pub fn scenario(system: System, which: &str, seed: u64) -> Probe {
    let mut sys = build(system, seed);
    sys.prime();
    match which {
        "healthy" => {}
        "replica0_down" => sys.crash(SiteId(0)),
        "client_minority" => {
            // Client (site 3) can reach only replica 2.
            sys.partition(Partition::split(
                4,
                &[&[SiteId(2), SiteId(3)], &[SiteId(0), SiteId(1)]],
            ));
        }
        other => panic!("unknown scenario {other}"),
    }
    sys.probe()
}

/// Measures read-your-write staleness: fraction of immediate post-ack
/// reads that return a version older than the acked write.
pub fn staleness(system: System, rounds: u32, seed: u64) -> f64 {
    let mut stale = 0u32;
    let mut observed = 0u32;
    let mut sys = build(system, seed);
    sys.prime();
    for _ in 0..rounds {
        match &mut sys {
            Sys::Voting(h) => {
                let suite = h.suite_id();
                let w = h.write(suite, b"x".to_vec()).expect("write");
                let r = h.read(suite).expect("read");
                observed += 1;
                if r.version < w.version {
                    stale += 1;
                }
            }
            Sys::Baseline(h) => {
                let (wv, _) = match h.write(b"x".to_vec()) {
                    Ok(v) => v,
                    Err(()) => continue,
                };
                let (rv, _, _) = match h.read() {
                    Ok(v) => v,
                    Err(()) => continue,
                };
                observed += 1;
                if rv < wv {
                    stale += 1;
                }
                let _ = Version(0);
            }
        }
    }
    if observed == 0 {
        0.0
    } else {
        f64::from(stale) / f64::from(observed)
    }
}

/// Builds the E6 report.
pub fn run() -> String {
    let mut out = String::new();
    out.push_str("## E6 — Weighted voting vs classical baselines\n\n");
    out.push_str(
        "Three replicas + one client on a shared topology: the client sits \
         nearest backup 1 (80 ms access), other accesses cost 100 ms, and \
         primary-to-backup propagation links are slow (800 ms) so \
         asynchronous lag is visible. Voting writes include all three \
         protocol rounds; baselines use their native (cheaper, weaker) \
         write paths.\n\n",
    );
    // Every (scenario, system) probe builds its own cluster with a fixed
    // seed, so the whole grid fans out over the worker pool at once.
    const SCENARIOS: [&str; 3] = ["healthy", "replica0_down", "client_minority"];
    let systems = System::all();
    let probes = runner::run_tasks(SCENARIOS.len() * systems.len(), |k| {
        let (which, i) = (SCENARIOS[k / systems.len()], k % systems.len());
        scenario(systems[i], which, 600 + i as u64)
    });
    for (s, which) in SCENARIOS.into_iter().enumerate() {
        let mut t = Table::new(
            format!("Scenario: {which}"),
            &["system", "read", "write", "read ms", "write ms"],
        );
        for (i, system) in systems.into_iter().enumerate() {
            let p = probes[s * systems.len() + i];
            t.row(&[
                system.label().into(),
                if p.read_ok { "ok" } else { "BLOCKED" }.into(),
                if p.write_ok { "ok" } else { "BLOCKED" }.into(),
                if p.read_ok {
                    ms(p.read_ms)
                } else {
                    "—".into()
                },
                if p.write_ok {
                    ms(p.write_ms)
                } else {
                    "—".into()
                },
            ]);
        }
        out.push_str(&t.to_markdown());
    }
    let mut t = Table::new(
        "Read-your-write staleness (immediate read after acked write)",
        &["system", "stale reads"],
    );
    let stale = runner::run_tasks(systems.len(), |i| staleness(systems[i], 30, 700 + i as u64));
    for (system, s) in systems.into_iter().zip(stale) {
        t.row(&[system.label().into(), pct(s)]);
    }
    out.push_str(&t.to_markdown());
    out.push_str(
        "Shape check: voting and majority consensus survive any single \
         replica loss; ROWA keeps reads but loses writes; primary copy \
         loses everything with its primary; only asynchronous local reads \
         are ever stale.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn healthy_everything_works() {
        for (i, s) in System::all().into_iter().enumerate() {
            let p = scenario(s, "healthy", 40 + i as u64);
            assert!(p.read_ok && p.write_ok, "{s:?} failed while healthy");
        }
    }

    #[test]
    fn replica_zero_down_separates_the_schemes() {
        let voting = scenario(System::VotingMajority, "replica0_down", 1);
        assert!(voting.read_ok && voting.write_ok);

        let rowa = scenario(System::Rowa, "replica0_down", 2);
        assert!(rowa.read_ok, "ROWA reads fail over");
        assert!(!rowa.write_ok, "ROWA writes need every replica");

        let primary = scenario(System::Primary, "replica0_down", 3);
        assert!(!primary.read_ok && !primary.write_ok, "primary was site 0");

        let mc = scenario(System::MajorityConsensus, "replica0_down", 4);
        assert!(mc.read_ok && mc.write_ok);
    }

    #[test]
    fn minority_partition_blocks_quorum_schemes_but_not_rowa_reads() {
        let voting = scenario(System::VotingMajority, "client_minority", 5);
        assert!(!voting.write_ok, "one replica is not a write quorum");
        assert!(!voting.read_ok, "one replica is not a read quorum");

        let rowa = scenario(System::Rowa, "client_minority", 6);
        assert!(rowa.read_ok, "ROWA reads any reachable replica");
        assert!(!rowa.write_ok);

        let mc = scenario(System::MajorityConsensus, "client_minority", 7);
        assert!(!mc.read_ok && !mc.write_ok);
    }

    #[test]
    fn only_async_local_reads_are_stale() {
        assert_eq!(staleness(System::VotingMajority, 10, 8), 0.0);
        assert_eq!(staleness(System::MajorityConsensus, 10, 9), 0.0);
        assert_eq!(staleness(System::Primary, 10, 10), 0.0);
        let lazy = staleness(System::PrimaryLocalReads, 20, 11);
        assert!(
            lazy > 0.0,
            "async propagation must show staleness, got {lazy}"
        );
    }

    #[test]
    fn report_renders_all_scenarios() {
        let report = run();
        assert!(report.contains("healthy"));
        assert!(report.contains("replica0_down"));
        assert!(report.contains("client_minority"));
        assert!(report.contains("staleness"));
    }
}
