//! E1 — the paper's "three example file suites" table.
//!
//! For each example the report shows, side by side:
//!
//! * the paper's published number,
//! * the closed-form prediction from `wv-analysis`, and
//! * the measurement from running the real protocol on the simulated
//!   cluster (`wv-core` over `wv-net`/`wv-sim`).
//!
//! Latency notes: the paper charges one quorum access per operation. The
//! implemented write pays three sequential rounds (version inquiry,
//! prepare, commit), each bounded by the write quorum's slowest member, so
//! the measured write divided by three reproduces the paper's entry. The
//! paper's read entry is the *validated-cache* case; the measured
//! cache-hit read equals the verified analytic read because the content
//! fetch overlaps the inquiry.

use wv_analysis::{read_latency_optimistic, read_latency_verified, write_latency, SystemModel};
use wv_core::harness::Harness;
use wv_sim::trace::SpanKind;
use wv_sim::{SampleSet, SimDuration};

use crate::runner::trial_seed;
use crate::table::{ms, prob, Table};
use crate::{mc, topo};

/// Paper-published values for one example.
pub struct PaperRow {
    /// Example number (1..=3).
    pub example: u32,
    /// Read latency, ms.
    pub read_ms: f64,
    /// Write latency, ms.
    pub write_ms: f64,
    /// Probability a read blocks.
    pub read_block: f64,
    /// Probability a write blocks.
    pub write_block: f64,
}

/// The published table (per-representative availability 0.99).
pub fn paper_rows() -> [PaperRow; 3] {
    [
        PaperRow {
            example: 1,
            read_ms: 65.0,
            write_ms: 75.0,
            read_block: 0.01,
            write_block: 0.01,
        },
        PaperRow {
            example: 2,
            read_ms: 75.0,
            write_ms: 100.0,
            read_block: 0.0002,
            write_block: 0.0101,
        },
        PaperRow {
            example: 3,
            read_ms: 75.0,
            write_ms: 750.0,
            read_block: 0.000001,
            write_block: 0.03,
        },
    ]
}

/// Simulated latencies for one example.
#[derive(Clone, Copy, Debug)]
pub struct Measured {
    /// Mean cache-hit read latency (validated optimistic fetch).
    pub read_hit_ms: f64,
    /// Mean cache-miss read latency (fetch after inquiry).
    pub read_miss_ms: f64,
    /// Mean write latency (all three protocol rounds).
    pub write_ms: f64,
}

/// Drives `rounds` write/read/read cycles and reports mean latencies.
///
/// After each write the first read misses (the optimistic target may be
/// stale) and the second hits; for examples without weak representatives
/// both reads hit, because the cheapest representative is in every write
/// quorum.
pub fn measure(h: &mut Harness, rounds: usize) -> Measured {
    let suite = h.suite_id();
    let mut read_hit = SampleSet::new();
    let mut read_miss = SampleSet::new();
    let mut writes = SampleSet::new();
    for i in 0..rounds {
        let w = h
            .write(suite, format!("round-{i}").into_bytes())
            .expect("write succeeds on a healthy cluster");
        writes.record(w.latency.as_millis_f64());
        h.advance(SimDuration::from_secs(2));
        let r1 = h.read(suite).expect("read succeeds");
        read_miss.record(r1.latency.as_millis_f64());
        h.advance(SimDuration::from_secs(2)); // let the cache fill land
        let r2 = h.read(suite).expect("read succeeds");
        read_hit.record(r2.latency.as_millis_f64());
        h.advance(SimDuration::from_secs(2));
    }
    Measured {
        read_hit_ms: read_hit.mean(),
        read_miss_ms: read_miss.mean(),
        write_ms: writes.mean(),
    }
}

/// Mean traced span durations (ms) per protocol phase over the E1
/// workload: where an operation's wall-clock goes.
#[derive(Clone, Copy, Debug)]
pub struct PhaseBreakdown {
    /// Version-collection (inquiry) phase.
    pub version_collect_ms: f64,
    /// Data movement (content fetch) phase.
    pub data_move_ms: f64,
    /// Prepare round of the commit protocol.
    pub prepare_ms: f64,
    /// Commit round.
    pub commit_ms: f64,
    /// Server-side lock waits (0 on the uncontended E1 workload).
    pub lock_wait_ms: f64,
}

/// Runs the measurement workload with tracing on and averages the span
/// durations per phase. The harness must be fresh (trace buffer empty).
pub fn traced_breakdown(h: &mut Harness, rounds: usize) -> PhaseBreakdown {
    h.enable_tracing();
    measure(h, rounds);
    let mut acc = [(0u64, 0u64); 5];
    for s in h.take_trace() {
        let Some(d) = s.duration_us() else { continue };
        let slot = match s.kind {
            SpanKind::Inquiry => 0,
            SpanKind::Fetch => 1,
            SpanKind::Prepare => 2,
            SpanKind::Commit => 3,
            SpanKind::LockWait => 4,
            _ => continue,
        };
        acc[slot].0 += d;
        acc[slot].1 += 1;
    }
    let mean = |(total, n): (u64, u64)| {
        if n == 0 {
            0.0
        } else {
            total as f64 / n as f64 / 1000.0
        }
    };
    PhaseBreakdown {
        version_collect_ms: mean(acc[0]),
        data_move_ms: mean(acc[1]),
        prepare_ms: mean(acc[2]),
        commit_ms: mean(acc[3]),
        lock_wait_ms: mean(acc[4]),
    }
}

/// Analytic + Monte-Carlo blocking probabilities for a model.
///
/// The two Monte-Carlo estimates fan out over the trial pool
/// ([`mc::blocking`]) under derived sub-seeds, so the pair is reproducible
/// for any worker count.
fn blocking(model: &SystemModel, seed: u64) -> (f64, f64, f64, f64) {
    let trials = 400_000;
    let mc_read = mc::blocking(
        &model.assignment,
        model.quorum.read,
        &model.up,
        trials,
        trial_seed(seed, 0),
    );
    let mc_write = mc::blocking(
        &model.assignment,
        model.quorum.write,
        &model.up,
        trials,
        trial_seed(seed, 1),
    );
    (
        model.read_blocking(),
        model.write_blocking(),
        mc_read,
        mc_write,
    )
}

/// Builds the full E1 report.
pub fn run() -> String {
    let mut out = String::new();
    out.push_str("## E1 — Example file suites (paper vs analytic vs simulated)\n\n");
    out.push_str(
        "Per-representative availability 0.99. Measured writes pay three \
         protocol rounds (inquire, prepare, commit); `write/3` is the \
         per-quorum-access figure comparable to the paper's single-access \
         entry.\n\n",
    );
    let models = [
        SystemModel::paper_example_1(0.99),
        SystemModel::paper_example_2(0.99),
        SystemModel::paper_example_3(0.99),
    ];
    let harnesses: [fn(u64) -> Harness; 3] = [topo::example_1, topo::example_2, topo::example_3];
    for (i, paper) in paper_rows().iter().enumerate() {
        let model = &models[i];
        let mut h = harnesses[i](42 + i as u64);
        let m = measure(&mut h, 10);
        let (an_rb, an_wb, mc_rb, mc_wb) = blocking(model, 7 + i as u64);
        let mut t = Table::new(
            format!("Example {}", paper.example),
            &["metric", "paper", "analytic", "simulated"],
        );
        t.row(&[
            "read latency, cache valid (ms)".into(),
            ms(paper.read_ms),
            ms(read_latency_optimistic(model)),
            "—".into(),
        ]);
        t.row(&[
            "read latency, verified (ms)".into(),
            "—".into(),
            ms(read_latency_verified(model)),
            ms(m.read_hit_ms),
        ]);
        t.row(&[
            "read latency, cache miss (ms)".into(),
            "—".into(),
            "—".into(),
            ms(m.read_miss_ms),
        ]);
        t.row(&[
            "write latency, per quorum access (ms)".into(),
            ms(paper.write_ms),
            ms(write_latency(model)),
            ms(m.write_ms / 3.0),
        ]);
        t.row(&[
            "write latency, full protocol (ms)".into(),
            "—".into(),
            "—".into(),
            ms(m.write_ms),
        ]);
        t.row(&[
            "P(read blocked)".into(),
            prob(paper.read_block),
            prob(an_rb),
            prob(mc_rb),
        ]);
        t.row(&[
            "P(write blocked)".into(),
            prob(paper.write_block),
            prob(an_wb),
            prob(mc_wb),
        ]);
        out.push_str(&t.to_markdown());

        // Where the wall-clock goes, from the span record of a traced
        // re-run (separate harness so the measured columns above stay on
        // the untraced path).
        let mut th = harnesses[i](142 + i as u64);
        let b = traced_breakdown(&mut th, 10);
        let mut t = Table::new(
            format!(
                "Example {} — traced phase breakdown (mean ms)",
                paper.example
            ),
            &["phase", "mean (ms)"],
        );
        t.row(&["version collect (inquiry)".into(), ms(b.version_collect_ms)]);
        t.row(&["data move (content fetch)".into(), ms(b.data_move_ms)]);
        t.row(&["prepare".into(), ms(b.prepare_ms)]);
        t.row(&["commit".into(), ms(b.commit_ms)]);
        t.row(&["lock wait".into(), ms(b.lock_wait_ms)]);
        out.push_str(&t.to_markdown());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-6;

    #[test]
    fn example_1_measured_latencies_match_model() {
        let mut h = topo::example_1(1);
        let m = measure(&mut h, 5);
        // Cache-hit read: max(inquiry 75, weak fetch 65) = 75.
        assert!((m.read_hit_ms - 75.0).abs() < EPS, "hit {}", m.read_hit_ms);
        // Cache-miss read: inquiry 75 + server fetch 75 = 150.
        assert!(
            (m.read_miss_ms - 150.0).abs() < EPS,
            "miss {}",
            m.read_miss_ms
        );
        // Write: three 75 ms rounds.
        assert!((m.write_ms - 225.0).abs() < EPS, "write {}", m.write_ms);
    }

    #[test]
    fn example_2_measured_latencies_match_model() {
        let mut h = topo::example_2(2);
        let m = measure(&mut h, 5);
        // Representative 0 (2 votes, in every write quorum) always serves
        // reads at 75 ms; misses cannot happen.
        assert!((m.read_hit_ms - 75.0).abs() < EPS);
        assert!((m.read_miss_ms - 75.0).abs() < EPS);
        // Write: wait w=3 votes (100 ms inquiry) + prepare 100 + commit 100.
        assert!((m.write_ms - 300.0).abs() < EPS, "write {}", m.write_ms);
        assert!((m.write_ms / 3.0 - 100.0).abs() < EPS);
    }

    #[test]
    fn example_3_measured_latencies_match_model() {
        let mut h = topo::example_3(3);
        let m = measure(&mut h, 5);
        assert!((m.read_hit_ms - 75.0).abs() < EPS);
        assert!((m.read_miss_ms - 75.0).abs() < EPS);
        // Write-all over 750 ms links, three rounds.
        assert!((m.write_ms - 2250.0).abs() < EPS, "write {}", m.write_ms);
        assert!((m.write_ms / 3.0 - 750.0).abs() < EPS);
    }

    #[test]
    fn analytic_columns_match_paper() {
        let rows = paper_rows();
        let models = [
            SystemModel::paper_example_1(0.99),
            SystemModel::paper_example_2(0.99),
            SystemModel::paper_example_3(0.99),
        ];
        for (row, model) in rows.iter().zip(&models) {
            assert!((read_latency_optimistic(model) - row.read_ms).abs() < EPS);
            assert!((write_latency(model) - row.write_ms).abs() < EPS);
            assert!((model.read_blocking() - row.read_block).abs() < 1e-4);
            assert!((model.write_blocking() - row.write_block).abs() < 1e-3);
        }
    }

    #[test]
    fn report_contains_all_examples() {
        let report = run();
        for k in 1..=3 {
            assert!(report.contains(&format!("Example {k}")));
        }
        assert!(report.contains("P(write blocked)"));
        assert!(report.contains("traced phase breakdown"));
    }

    #[test]
    fn traced_breakdown_matches_the_latency_model() {
        // Example 1: every client phase is bounded by the 75 ms quorum
        // member, and the workload is uncontended so lock waits are zero.
        let mut h = topo::example_1(9);
        let b = traced_breakdown(&mut h, 5);
        assert!(
            (b.prepare_ms - 75.0).abs() < EPS,
            "prepare {}",
            b.prepare_ms
        );
        assert!((b.commit_ms - 75.0).abs() < EPS, "commit {}", b.commit_ms);
        assert!(b.version_collect_ms > 0.0);
        assert!((b.lock_wait_ms - 0.0).abs() < EPS);
    }
}
