//! Markdown table assembly for experiment reports.

/// A markdown table under construction.
#[derive(Clone, Debug)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Starts a table with a title and column names.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Table {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; must match the header width.
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells.to_vec());
        self
    }

    /// Renders the table as markdown.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("### {}\n\n", self.title));
        out.push_str(&format!("| {} |\n", self.header.join(" | ")));
        out.push_str(&format!(
            "|{}\n",
            self.header.iter().map(|_| "---|").collect::<String>()
        ));
        for row in &self.rows {
            out.push_str(&format!("| {} |\n", row.join(" | ")));
        }
        out.push('\n');
        out
    }
}

/// Formats milliseconds compactly.
pub fn ms(v: f64) -> String {
    if v >= 100.0 {
        format!("{v:.0}")
    } else {
        format!("{v:.1}")
    }
}

/// Formats a probability with enough digits for the paper's 1e-6 entries.
pub fn prob(p: f64) -> String {
    if p == 0.0 {
        "0".to_string()
    } else if p < 0.0001 {
        format!("{p:.1e}")
    } else {
        format!("{p:.4}")
    }
}

/// Formats a ratio as a percentage.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_markdown() {
        let mut t = Table::new("Demo", &["a", "b"]);
        t.row(&["1".into(), "2".into()]);
        let md = t.to_markdown();
        assert!(md.contains("### Demo"));
        assert!(md.contains("| a | b |"));
        assert!(md.contains("| 1 | 2 |"));
        assert!(md.contains("|---|---|"));
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn rejects_wrong_width() {
        let mut t = Table::new("Demo", &["a", "b"]);
        t.row(&["1".into()]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(ms(750.0), "750");
        assert_eq!(ms(65.0), "65.0");
        assert_eq!(prob(0.0101), "0.0101");
        assert_eq!(prob(1e-6), "1.0e-6");
        assert_eq!(prob(0.0), "0");
        assert_eq!(pct(0.5), "50.0%");
    }
}
