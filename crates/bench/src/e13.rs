//! E13 — the weak-representative cache tier under read-dominant load.
//!
//! Two closed-loop clients share a three-server majority cluster and
//! replay a read-heavy zipfian workload (suite popularity ∝ 1/rank,
//! one write per 64 operations) with an attached weak representative in
//! each of the cache tier's modes:
//!
//! - **uncached** — the classic client; every read runs a version
//!   inquiry plus a data fetch.
//! - **validated** — reads serve from the local copy once a
//!   version-inquiry quorum confirms it current: zero data RPCs,
//!   exactly as fresh as a classic read. Within a pipelined window the
//!   inquiries piggyback, so one round of version checks amortizes over
//!   many queued reads.
//! - **lease** — reads inside a live lease skip the network entirely,
//!   trading a bounded staleness window (the TTL) for quorum-free
//!   reads. The sweep carries a short and a long TTL to show the
//!   expiry/revalidation gradient.
//!
//! Throughput is committed operations per *virtual* second, so every
//! cell is a pure function of its seed and the report doubles as a
//! worker-count invariance fixture
//! (`crates/bench/tests/e13_determinism.rs`). After the measured
//! window, a warm-cache *probe* (pure reads) isolates the steady-state
//! cost of a read in each mode: network messages per read and data
//! fetch rounds per read.

use wv_core::client::{ClientOptions, CompletedOp, WeakRepOptions};
use wv_core::harness::{Harness, SiteSpec};
use wv_core::quorum::QuorumSpec;
use wv_net::{NetConfig, SiteId};
use wv_sim::{DetRng, LatencyModel, SimDuration};
use wv_storage::ObjectId;

use crate::runner;
use crate::table::Table;

/// Voting representatives (one vote each, `r = w = 2` majority quorums).
const SERVERS: usize = 3;
/// Closed-loop clients sharing the cluster.
const CLIENTS: usize = 2;
/// Distinct file suites the zipfian workload draws from.
const SUITES: usize = 4;
/// One-way link latency everywhere.
const LINK: SimDuration = SimDuration::from_millis(25);
/// Pipeline depths (outstanding-op windows) per curve.
const DEPTHS: [usize; 2] = [1, 4];
/// Operations each client issues per trial in the full report.
const OPS_PER_CLIENT: usize = 128;
/// Every 64th operation is a write (the rest read): read-dominant.
const WRITE_EVERY: usize = 64;
/// Pure reads per client in the warm-cache probe phase.
const PROBE_READS: usize = 16;
/// Master seed for the sweep.
const MASTER_SEED: u64 = 0xE13;

/// The cache modes under comparison, with display names.
const MODES: [&str; 4] = ["uncached", "validated", "lease 100 ms", "lease 2 s"];
/// Index of the long-TTL lease mode (the quorum-free headline arm).
const LEASE_LONG: usize = 3;

/// The weak-representative options mode `m` attaches (None = classic).
fn mode_weak_rep(m: usize) -> Option<WeakRepOptions> {
    match m {
        0 => None,
        1 => Some(WeakRepOptions::validated()),
        2 => Some(WeakRepOptions::lease(SimDuration::from_millis(100))),
        3 => Some(WeakRepOptions::lease(SimDuration::from_millis(2000))),
        _ => unreachable!("mode index out of range"),
    }
}

/// Advances the simulation in short steps until `expected` operations
/// have completed, collecting them. (`run_until_quiet` would also drain
/// every stale phase-timeout timer — each op arms one seconds out — and
/// fling the virtual clock far past any live lease between phases.)
fn collect_ops(h: &mut Harness, clients: &[SiteId], expected: usize) -> Vec<CompletedOp> {
    let mut done = Vec::new();
    let mut guard = 0u32;
    while done.len() < expected && guard < 100_000 {
        h.advance(SimDuration::from_millis(50));
        for &c in clients {
            done.extend(h.drain_completed(c));
        }
        guard += 1;
    }
    done
}

/// Draws a zipfian suite index: popularity ∝ 1/(rank + 1).
fn zipf_suite(rng: &mut DetRng) -> usize {
    let total: f64 = (1..=SUITES).map(|k| 1.0 / k as f64).sum();
    let mut x = rng.f64() * total;
    for k in 0..SUITES {
        x -= 1.0 / (k + 1) as f64;
        if x <= 0.0 {
            return k;
        }
    }
    SUITES - 1
}

/// One grid point of the sweep.
pub struct Cell {
    /// Cache mode index into [`MODES`].
    pub mode: usize,
    /// Outstanding-op window per client.
    pub depth: usize,
    /// Operations that committed in the measured window.
    pub ops_ok: u64,
    /// Committed operations per *virtual* second, across all clients.
    pub ops_per_vsec: f64,
    /// Reads served from the weak representative in the measured window.
    pub cache_hits: u64,
    /// Cache-tier reads that fell through to a data fetch.
    pub cache_misses: u64,
    /// Lease serves refused because the TTL had lapsed.
    pub lease_expiries: u64,
    /// Reads that coalesced onto an in-flight version inquiry.
    pub piggybacked: u64,
    /// Reads completed in the warm-cache probe.
    pub probe_reads: u64,
    /// Network messages the probe put on the wire (both directions).
    pub probe_msgs: u64,
    /// Data fetch rounds the probe's reads needed.
    pub probe_fetches: u64,
}

impl Cell {
    /// Cache hit rate over the measured window (0 when uncached).
    pub fn hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }

    /// Network messages per probe read (steady-state read cost).
    pub fn probe_msgs_per_read(&self) -> f64 {
        if self.probe_reads == 0 {
            0.0
        } else {
            self.probe_msgs as f64 / self.probe_reads as f64
        }
    }
}

/// Runs one cell: the zipfian window, a cache warm-up, then the probe.
fn run_cell(seed: u64, mode: usize, depth: usize, ops: usize) -> Cell {
    // Draw the whole workload before the harness exists: suite choice is
    // a function of the seed alone, never of simulated timing.
    let mut plans: Vec<Vec<(bool, usize)>> = Vec::new();
    let mut probes: Vec<Vec<usize>> = Vec::new();
    let root = DetRng::new(seed).fork_named("e13-workload");
    for c in 0..CLIENTS {
        let mut r = root.fork(c as u64);
        plans.push(
            (0..ops)
                .map(|i| (i % WRITE_EVERY == WRITE_EVERY / 2, zipf_suite(&mut r)))
                .collect(),
        );
        probes.push((0..PROBE_READS).map(|_| zipf_suite(&mut r)).collect());
    }

    let suites: Vec<ObjectId> = (1..=SUITES as u64).map(ObjectId).collect();
    let mut b = Harness::builder()
        .seed(seed)
        .quorum(QuorumSpec::new(2, 2))
        .suites(suites.clone())
        .net(NetConfig::uniform(
            SERVERS + CLIENTS,
            LatencyModel::Constant(LINK),
        ))
        .client_options(ClientOptions {
            pipeline_depth: Some(depth),
            weak_rep: mode_weak_rep(mode),
            ..ClientOptions::default()
        });
    for _ in 0..SERVERS {
        b = b.site(SiteSpec::server(1));
    }
    for _ in 0..CLIENTS {
        b = b.client();
    }
    let mut h = b.build().expect("majority quorums are legal");
    for &s in &suites {
        h.write(s, format!("e13-seed-{}", s.0).into_bytes())
            .expect("seeding write");
    }
    let client_sites: Vec<SiteId> = h.clients().to_vec();
    let stats_base: Vec<_> = client_sites
        .iter()
        .map(|&c| h.client_stats(c).expect("client exists"))
        .collect();

    // Measured window: the read-heavy zipfian mix.
    let start = h.now();
    for (ci, &c) in client_sites.iter().enumerate() {
        for (i, &(is_write, s)) in plans[ci].iter().enumerate() {
            let suite = suites[s];
            if is_write {
                h.enqueue_write(c, suite, format!("e13-c{ci}-{i}").into_bytes(), start);
            } else {
                h.enqueue_read(c, suite, start);
            }
        }
    }
    let mut ops_ok = 0u64;
    let mut last_finish = start;
    for op in collect_ops(&mut h, &client_sites, CLIENTS * ops) {
        if op.outcome.is_ok() {
            ops_ok += 1;
            last_finish = last_finish.max(op.finished);
        }
    }
    let makespan_s = last_finish.since(start).as_millis_f64() / 1000.0;
    let window: Vec<_> = client_sites
        .iter()
        .map(|&c| h.client_stats(c).expect("client exists"))
        .collect();
    let sum = |f: &dyn Fn(&wv_core::client::ClientStats) -> u64| -> u64 {
        window
            .iter()
            .zip(&stats_base)
            .map(|(after, before)| f(after) - f(before))
            .sum()
    };
    let cache_hits = sum(&|s| s.cache_hits);
    let cache_misses = sum(&|s| s.cache_misses);
    let lease_expiries = sum(&|s| s.lease_expiries);
    let piggybacked = sum(&|s| s.piggybacked_inquiries);

    // Warm-up: one read per suite per client, so every weak rep is
    // current (and every lease freshly granted) before the probe.
    let t = h.now();
    for &c in &client_sites {
        for &s in &suites {
            h.enqueue_read(c, s, t);
        }
    }
    collect_ops(&mut h, &client_sites, CLIENTS * SUITES);

    // Probe: pure zipfian reads against a warm cache — the steady-state
    // per-read cost of each mode.
    let sent_base = h.net_stats().sent;
    let fetch_base: u64 = client_sites
        .iter()
        .map(|&c| h.client_stats(c).expect("client exists").reads_fetched)
        .sum();
    let t = h.now();
    for (ci, &c) in client_sites.iter().enumerate() {
        for &s in &probes[ci] {
            h.enqueue_read(c, suites[s], t);
        }
    }
    let probe_reads = collect_ops(&mut h, &client_sites, CLIENTS * PROBE_READS)
        .iter()
        .filter(|op| op.outcome.is_ok())
        .count() as u64;
    let probe_msgs = h.net_stats().sent - sent_base;
    let probe_fetches = client_sites
        .iter()
        .map(|&c| h.client_stats(c).expect("client exists").reads_fetched)
        .sum::<u64>()
        - fetch_base;

    Cell {
        mode,
        depth,
        ops_ok,
        ops_per_vsec: if makespan_s > 0.0 {
            ops_ok as f64 / makespan_s
        } else {
            0.0
        },
        cache_hits,
        cache_misses,
        lease_expiries,
        piggybacked,
        probe_reads,
        probe_msgs,
        probe_fetches,
    }
}

/// The full sweep: every `(mode, depth)` grid point, fanned out over the
/// deterministic trial pool in grid order.
pub fn measure(master_seed: u64, ops_per_client: usize) -> Vec<Cell> {
    let mut grid = Vec::new();
    for mode in 0..MODES.len() {
        for &depth in &DEPTHS {
            grid.push((mode, depth));
        }
    }
    runner::run_trials_indexed(master_seed, grid.len(), |i, seed| {
        let (mode, depth) = grid[i];
        run_cell(seed, mode, depth, ops_per_client)
    })
}

/// Finds the sweep cell for `(mode, depth)`.
fn cell(cells: &[Cell], mode: usize, depth: usize) -> &Cell {
    cells
        .iter()
        .find(|c| c.mode == mode && c.depth == depth)
        .expect("grid covers every combination")
}

/// Builds the E13 report with an explicit per-client op budget (the
/// smoke tests use a small one).
pub fn run_with(ops_per_client: usize) -> String {
    let cells = measure(MASTER_SEED, ops_per_client);
    let mut out = String::new();
    out.push_str("## E13 — Weak-representative cache tier under read-dominant load\n\n");
    out.push_str(&format!(
        "{SERVERS}-server majority cluster (one vote each, r = w = 2), \
         uniform {} ms links, {SUITES} suites, {CLIENTS} closed-loop \
         clients. Each client replays {ops_per_client} operations — \
         zipfian suite choice, one write per {WRITE_EVERY} ops — through \
         a pipelined window (depth k), with its weak representative in \
         each cache mode. Throughput is committed operations per \
         **virtual** second; after the window, a warm-cache probe of \
         {PROBE_READS} pure reads per client isolates the steady-state \
         cost of a read.\n\n",
        LINK.as_millis() * 2,
    ));

    let mut t = Table::new(
        "Throughput (ops per virtual second)",
        &["mode \\ depth", "1", "4"],
    );
    for (m, name) in MODES.iter().enumerate() {
        let mut row = vec![name.to_string()];
        for &d in &DEPTHS {
            row.push(format!("{:.1}", cell(&cells, m, d).ops_per_vsec));
        }
        t.row(&row);
    }
    out.push_str(&t.to_markdown());
    out.push('\n');

    let mut t = Table::new(
        "Cache behaviour over the measured window (depth 4)",
        &[
            "mode",
            "hits",
            "misses",
            "hit rate",
            "lease expiries",
            "piggybacked inquiries",
        ],
    );
    for (m, name) in MODES.iter().enumerate() {
        let c = cell(&cells, m, 4);
        t.row(&[
            name.to_string(),
            c.cache_hits.to_string(),
            c.cache_misses.to_string(),
            format!("{:.0}%", c.hit_rate() * 100.0),
            c.lease_expiries.to_string(),
            c.piggybacked.to_string(),
        ]);
    }
    out.push_str(&t.to_markdown());
    out.push('\n');

    let mut t = Table::new(
        "Warm-cache probe: network messages per read",
        &["mode \\ depth", "1", "4"],
    );
    for (m, name) in MODES.iter().enumerate() {
        let mut row = vec![name.to_string()];
        for &d in &DEPTHS {
            row.push(format!("{:.2}", cell(&cells, m, d).probe_msgs_per_read()));
        }
        t.row(&row);
    }
    out.push_str(&t.to_markdown());
    out.push('\n');

    let validated_fetchless = DEPTHS
        .iter()
        .all(|&d| cell(&cells, 1, d).probe_fetches == 0 && cell(&cells, 1, d).probe_reads > 0);
    out.push_str(&format!(
        "Validated-mode reads against a warm cache performed **0 data \
         fetches** — the version-inquiry quorum confirms the local copy \
         and the contents never cross the wire (cache hits cost zero \
         data RPCs: **{}**).\n\n",
        if validated_fetchless { "yes" } else { "NO" }
    ));
    let lease_worst = DEPTHS
        .iter()
        .map(|&d| cell(&cells, LEASE_LONG, d).probe_msgs_per_read())
        .fold(0.0_f64, f64::max);
    let lease_quorum_free = lease_worst <= 0.1
        && DEPTHS
            .iter()
            .all(|&d| cell(&cells, LEASE_LONG, d).probe_reads > 0);
    out.push_str(&format!(
        "Inside a live lease the probe averaged **{lease_worst:.2}** \
         messages per read — the reads themselves are fully quorum-free \
         until the TTL lapses; any residue is commit-ack resend chatter \
         trailing the window's writes, not read traffic (≤0.1 per read \
         required: **{}**).\n\n",
        if lease_quorum_free { "yes" } else { "NO" }
    ));
    let speedup = DEPTHS
        .iter()
        .map(|&d| cell(&cells, LEASE_LONG, d).ops_per_vsec / cell(&cells, 0, d).ops_per_vsec)
        .fold(f64::INFINITY, f64::min);
    out.push_str(&format!(
        "With the long lease, client throughput is **{speedup:.1}×** the \
         uncached arm at every depth (≥5× required: **{}**).\n",
        if speedup >= 5.0 { "yes" } else { "NO" }
    ));
    out
}

/// Builds the full E13 report.
pub fn run() -> String {
    run_with(OPS_PER_CLIENT)
}

/// Virtual-time cache-tier throughput for the perf snapshot: (uncached,
/// validated, long-lease) committed ops per virtual second at the depth-4
/// cells of the sweep. Deterministic — no wall clock anywhere.
pub fn throughput_summary(ops_per_client: usize) -> (f64, f64, f64) {
    let cells = measure(MASTER_SEED, ops_per_client);
    (
        cell(&cells, 0, 4).ops_per_vsec,
        cell(&cells, 1, 4).ops_per_vsec,
        cell(&cells, LEASE_LONG, 4).ops_per_vsec,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validated_mode_serves_repeat_reads_from_cache() {
        let c = run_cell(51, 1, 4, 32);
        assert!(c.cache_hits > 0, "repeat zipfian reads must hit");
        assert!(c.cache_misses > 0, "cold caches mean first reads miss");
        assert_eq!(c.probe_fetches, 0, "warm validated probe never fetches");
        assert!(c.probe_msgs > 0, "validated probe still runs inquiries");
    }

    #[test]
    fn long_lease_reads_are_quorum_free_in_the_probe() {
        let c = run_cell(52, LEASE_LONG, 1, 32);
        assert!(c.probe_reads > 0);
        assert_eq!(
            c.probe_msgs, 0,
            "a live lease serves without touching the network"
        );
        assert!(c.cache_hits > 0);
    }

    #[test]
    fn the_report_carries_all_three_verdicts() {
        let report = run_with(64);
        assert!(report.contains("## E13 — Weak-representative cache tier"));
        assert_eq!(
            report.matches(": **yes**").count(),
            3,
            "all three cache-tier verdicts must hold:\n{report}"
        );
    }
}
