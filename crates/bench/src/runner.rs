//! Deterministic parallel trial engine.
//!
//! Every experiment regenerator runs many independent trials (Monte-Carlo
//! availability samples, per-trial protocol clusters, sweep points). The
//! functions here fan that work out over a scoped thread pool while keeping
//! the output **bit-identical to a sequential loop, for any worker count**:
//!
//! * each trial's RNG seed is a *pure function* of `(master_seed,
//!   trial_index)` — [`trial_seed`], a SplitMix64-style avalanche mix shared
//!   with [`wv_sim::DetRng::fork`] — so no trial's randomness depends on
//!   which thread ran it, in what order, or what ran before it;
//! * results are collected by trial index and returned in trial order.
//!
//! The pool is `std::thread::scope`, not a work-stealing runtime: trials are
//! coarse (each typically builds and drives a whole simulated cluster), so a
//! shared atomic counter hands out indices with no contention worth
//! stealing, and the standard library keeps the build dependency-free.
//!
//! The worker count defaults to the machine's available parallelism and can
//! be pinned with the `WV_TRIAL_THREADS` environment variable (the
//! determinism tests run the same sweep at 1, 2, and 8 workers and demand
//! byte-identical reports).

use std::sync::atomic::{AtomicUsize, Ordering};

use wv_sim::derive_seed;

/// The RNG seed for trial `trial_index` of a run with `master_seed`.
///
/// Pure and cheap (a few shifts and multiplies): callers may evaluate it
/// from any thread, in any order. Delegates to [`wv_sim::derive_seed`], the
/// same mix [`wv_sim::DetRng::fork`] uses, so a trial seeded this way sees
/// exactly the stream `DetRng::new(master_seed).fork(trial_index)` would.
pub fn trial_seed(master_seed: u64, trial_index: u64) -> u64 {
    derive_seed(master_seed, trial_index)
}

/// The number of worker threads a fan-out will use.
///
/// `WV_TRIAL_THREADS` overrides (clamped to at least 1); otherwise the
/// machine's available parallelism, falling back to 1 if unknown.
pub fn worker_threads() -> usize {
    if let Ok(v) = std::env::var("WV_TRIAL_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Runs `n_trials` independent trials of `f`, handing trial *i* the seed
/// [`trial_seed`]`(master_seed, i)`, and returns the results in trial order.
///
/// Trials run concurrently on [`worker_threads`] scoped threads; because
/// each trial's seed is derived, not drawn from a shared stream, the output
/// is bit-identical for every worker count (including 1). `f` must be a
/// pure function of its seed — it must not read other mutable state, which
/// is also what makes it safe to call from any thread.
pub fn run_trials<T: Send>(
    master_seed: u64,
    n_trials: usize,
    f: impl Fn(u64) -> T + Sync,
) -> Vec<T> {
    run_trials_indexed(master_seed, n_trials, |_, seed| f(seed))
}

/// Like [`run_trials`], but the closure also receives the trial index.
///
/// Sweeps use the index to pick the grid point (quorum spec, write
/// fraction, client count) while the derived seed drives the randomness.
pub fn run_trials_indexed<T: Send>(
    master_seed: u64,
    n_trials: usize,
    f: impl Fn(usize, u64) -> T + Sync,
) -> Vec<T> {
    fan_out(n_trials, |i| f(i, trial_seed(master_seed, i as u64)))
}

/// Deterministic indexed fan-out without seed derivation: runs `f(i)` for
/// `i in 0..n_tasks` on the worker pool, results in index order.
///
/// For embarrassingly parallel *deterministic* work (closed-form searches,
/// fixed-seed sweep points) where the caller manages any seeding itself.
pub fn run_tasks<T: Send>(n_tasks: usize, f: impl Fn(usize) -> T + Sync) -> Vec<T> {
    fan_out(n_tasks, f)
}

/// The shared fan-out core: claim indices from an atomic counter, stash
/// `(index, result)` per worker, merge in index order.
fn fan_out<T: Send>(n: usize, f: impl Fn(usize) -> T + Sync) -> Vec<T> {
    if n == 0 {
        return Vec::new();
    }
    let workers = worker_threads().min(n);
    if workers <= 1 {
        return (0..n).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let mut buckets: Vec<Vec<(usize, T)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut local: Vec<(usize, T)> = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            return local;
                        }
                        local.push((i, f(i)));
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("trial worker panicked"))
            .collect()
    });
    let mut indexed: Vec<(usize, T)> = Vec::with_capacity(n);
    for bucket in &mut buckets {
        indexed.append(bucket);
    }
    indexed.sort_by_key(|(i, _)| *i);
    debug_assert_eq!(indexed.len(), n);
    indexed.into_iter().map(|(_, t)| t).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_trial_order() {
        let out = run_trials_indexed(9, 100, |i, seed| (i, seed));
        for (i, (idx, seed)) in out.iter().enumerate() {
            assert_eq!(*idx, i);
            assert_eq!(*seed, trial_seed(9, i as u64));
        }
    }

    #[test]
    fn trial_seeds_match_det_rng_fork() {
        let root = wv_sim::DetRng::new(1234);
        for i in 0..32u64 {
            assert_eq!(trial_seed(1234, i), root.fork(i).seed());
        }
    }

    #[test]
    fn parallel_equals_sequential() {
        // The same computation through the pool and through a plain loop.
        let parallel = run_trials(77, 500, |seed| {
            let mut rng = wv_sim::DetRng::new(seed);
            rng.u64() ^ rng.u64()
        });
        let sequential: Vec<u64> = (0..500u64)
            .map(|i| {
                let mut rng = wv_sim::DetRng::new(trial_seed(77, i));
                rng.u64() ^ rng.u64()
            })
            .collect();
        assert_eq!(parallel, sequential);
    }

    #[test]
    fn empty_and_single_trial_edge_cases() {
        assert!(run_trials(1, 0, |s| s).is_empty());
        assert_eq!(run_trials(1, 1, |s| s), vec![trial_seed(1, 0)]);
    }

    #[test]
    fn tasks_preserve_index_order() {
        let out = run_tasks(64, |i| i * i);
        assert_eq!(out, (0..64).map(|i| i * i).collect::<Vec<_>>());
    }
}
