//! Experiment regenerators for the paper's evaluation.
//!
//! One module per experiment (see `DESIGN.md` §4 for the index); each
//! exposes `run() -> String` producing the markdown report that the
//! matching binary in `src/bin/` prints. Reports put the paper's number,
//! the closed-form prediction, and the simulated measurement side by side.
//!
//! | id | binary | regenerates |
//! |----|--------|-------------|
//! | E1 | `e1_example_suites` | the paper's three example file suites table |
//! | E2 | `e2_quorum_spectrum` | read/write cost and availability across the (r, w) spectrum |
//! | E3 | `e3_weak_representatives` | weak-representative cache hit ratio and read latency |
//! | E4 | `e4_vote_tuning` | optimal vote assignment vs workload read fraction |
//! | E5 | `e5_availability` | blocking probability vs per-site availability |
//! | E6 | `e6_baselines` | weighted voting vs ROWA / primary copy / majority consensus |
//! | E7 | `e7_reconfiguration` | online vote/quorum changes under load |
//! | E8 | `e8_txn_scaling` | write contention and deadlock-policy ablation |
//! | E10 | `e10_self_healing` | self-healing (health tracking, hedging, anti-entropy) vs classic clients under crash/recovery churn |
//! | E11 | `e11_throughput` | closed-loop saturation: pipelined clients and load-balanced quorum selection |
//! | E13 | `e13_cache_tier` | weak-representative cache tier: validated and lease modes under read-dominant zipfian load |
//! | E15 | `e15_multi_suite` | multi-suite sharded keyspace: aggregate throughput scaling and hot-key saturation under zipfian multi-key load |

#![warn(missing_docs)]

pub mod e1;
pub mod e10;
pub mod e11;
pub mod e13;
pub mod e15;
pub mod e2;
pub mod e3;
pub mod e4;
pub mod e5;
pub mod e6;
pub mod e7;
pub mod e8;
pub mod inspect;
pub mod mc;
pub mod runner;
pub mod table;
pub mod topo;
pub mod tracefmt;
