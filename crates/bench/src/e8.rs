//! E8 — write contention and the deadlock-policy ablation.
//!
//! Several clients hammer the same suite with writes. Conflicts surface in
//! two ways: exclusive-lock collisions at the representatives (resolved by
//! wait-die or no-wait) and version races (a slower writer prepares a
//! version the faster one already installed). The report tracks success
//! rate, mean attempts per committed write, and makespan as the client
//! count grows, for both deadlock policies.

use wv_core::client::ClientOptions;
use wv_core::error::OpKind;
use wv_core::harness::{Harness, HarnessBuilder, SiteSpec};
use wv_core::quorum::QuorumSpec;
use wv_net::SiteId;
use wv_sim::{SimDuration, SimTime};
use wv_txn::lock::DeadlockPolicy;

use crate::runner;
use crate::table::{pct, Table};

/// Aggregate results for one contention level.
#[derive(Clone, Copy, Debug)]
pub struct ContentionPoint {
    /// Concurrent clients.
    pub clients: usize,
    /// Writes attempted (one per client per round).
    pub attempted: u64,
    /// Writes eventually committed.
    pub committed: u64,
    /// Mean attempts per committed write.
    pub mean_attempts: f64,
    /// Virtual time until the last operation finished (ms).
    pub makespan_ms: f64,
    /// Highest version committed (must equal `committed`).
    pub final_version: u64,
}

fn build(clients: usize, policy: DeadlockPolicy, seed: u64) -> Harness {
    let mut b = HarnessBuilder::new()
        .seed(seed)
        .quorum(QuorumSpec::majority(3))
        .deadlock_policy(policy)
        .client_options(ClientOptions {
            max_attempts: 12,
            backoff: SimDuration::from_millis(120),
            ..ClientOptions::default()
        });
    for _ in 0..3 {
        b = b.site(SiteSpec::server(1));
    }
    for _ in 0..clients {
        b = b.client();
    }
    // Uniform 100 ms access from every client to every server
    // (`client_star` only positions a single client).
    let net = wv_net::NetConfig::uniform(3 + clients, crate::topo::half_ms(100.0));
    b.net(net).build().expect("legal contention cluster")
}

/// Runs `rounds` of simultaneous writes from every client.
pub fn measure(
    clients: usize,
    policy: DeadlockPolicy,
    rounds: usize,
    seed: u64,
) -> ContentionPoint {
    let mut h = build(clients, policy, seed);
    let suite = h.suite_id();
    let client_sites: Vec<SiteId> = h.clients().to_vec();
    for round in 0..rounds {
        // Stagger arrivals with the *older* operations (lower site ids
        // have smaller wait-die timestamps at equal counters) arriving
        // last, so the policies' queue-vs-kill difference is exercised.
        let base = round as u64 * 1_200;
        for (k, &c) in client_sites.iter().enumerate() {
            let at = SimTime::from_millis(base + (client_sites.len() - k) as u64 * 37);
            h.enqueue_write(c, suite, format!("r{round}c{k}").into_bytes(), at);
        }
    }
    h.run_until_quiet(5_000_000);
    let mut attempted = 0u64;
    let mut committed = 0u64;
    let mut attempts_sum = 0u64;
    let mut last_finish = SimTime::ZERO;
    for &c in &client_sites {
        for op in h.drain_completed(c) {
            assert_eq!(op.kind, OpKind::Write);
            attempted += 1;
            last_finish = last_finish.max(op.finished);
            if op.outcome.is_ok() {
                committed += 1;
                attempts_sum += u64::from(op.attempts);
            }
        }
    }
    let final_version = SiteId::all(3)
        .filter_map(|s| h.version_at(s, suite))
        .map(|v| v.0)
        .max()
        .unwrap_or(0);
    ContentionPoint {
        clients,
        attempted,
        committed,
        mean_attempts: if committed == 0 {
            0.0
        } else {
            attempts_sum as f64 / committed as f64
        },
        makespan_ms: last_finish.as_millis_f64(),
        final_version,
    }
}

/// Builds the E8 report.
pub fn run() -> String {
    let mut out = String::new();
    out.push_str("## E8 — Write contention and deadlock-policy ablation\n\n");
    out.push_str(
        "All clients write the same suite simultaneously, 6 rounds, \
         majority quorums over three 100 ms representatives.\n\n",
    );
    // The whole 2-policy × 4-client-count grid is independent simulated
    // clusters with fixed seeds: fan all eight points out together.
    const POLICIES: [(&str, DeadlockPolicy); 2] = [
        ("wait-die", DeadlockPolicy::WaitDie),
        ("no-wait", DeadlockPolicy::NoWait),
    ];
    const CLIENTS: [usize; 4] = [1, 2, 4, 8];
    let points = runner::run_tasks(POLICIES.len() * CLIENTS.len(), |k| {
        let (pi, i) = (k / CLIENTS.len(), k % CLIENTS.len());
        measure(CLIENTS[i], POLICIES[pi].1, 6, 800 + i as u64)
    });
    for (pi, (label, _)) in POLICIES.into_iter().enumerate() {
        let mut t = Table::new(
            format!("Contention scaling — {label}"),
            &[
                "clients",
                "attempted",
                "committed",
                "success",
                "mean attempts",
                "makespan (ms)",
            ],
        );
        for i in 0..CLIENTS.len() {
            let p = points[pi * CLIENTS.len() + i];
            t.row(&[
                p.clients.to_string(),
                p.attempted.to_string(),
                p.committed.to_string(),
                pct(p.committed as f64 / p.attempted.max(1) as f64),
                format!("{:.2}", p.mean_attempts),
                format!("{:.0}", p.makespan_ms),
            ]);
        }
        out.push_str(&t.to_markdown());
    }
    out.push_str(
        "Shape check: committed versions advance one per committed write \
         (serialised by the exclusive locks plus version check). Ablation \
         finding: for single-object writes, no-wait needs *fewer* attempts \
         than wait-die — a queued writer that finally gets the lock almost \
         always finds its version stale and must retry anyway, so failing \
         fast wins; wait-die's advantage belongs to multi-object \
         transactions, which the paper's file suites do not need.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_client_commits_everything_first_try() {
        let p = measure(1, DeadlockPolicy::WaitDie, 5, 1);
        assert_eq!(p.attempted, 5);
        assert_eq!(p.committed, 5);
        assert!((p.mean_attempts - 1.0).abs() < 1e-9);
        assert_eq!(p.final_version, 5);
    }

    #[test]
    fn contending_writers_serialise_without_losing_updates() {
        let p = measure(4, DeadlockPolicy::WaitDie, 4, 2);
        assert_eq!(p.attempted, 16);
        assert!(p.committed >= 12, "only {} of 16 committed", p.committed);
        // Every committed write got its own version: the final version
        // equals the number of commits (no lost updates, no gaps).
        assert_eq!(p.final_version, p.committed);
    }

    #[test]
    fn queued_single_object_writers_waste_attempts() {
        // The ablation's direction: a writer resumed from the lock queue
        // almost always discovers a stale version and retries, so
        // wait-die spends at least as many attempts as fail-fast no-wait
        // on this workload.
        let wd = measure(4, DeadlockPolicy::WaitDie, 4, 3);
        let nw = measure(4, DeadlockPolicy::NoWait, 4, 3);
        assert!(
            wd.mean_attempts >= nw.mean_attempts - 1e-9,
            "wait-die {} vs no-wait {}",
            wd.mean_attempts,
            nw.mean_attempts
        );
        assert_eq!(nw.final_version, nw.committed);
        assert_eq!(wd.final_version, wd.committed);
    }

    #[test]
    fn report_covers_both_policies() {
        let report = run();
        assert!(report.contains("wait-die"));
        assert!(report.contains("no-wait"));
    }
}
