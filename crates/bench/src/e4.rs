//! E4 — vote-assignment tuning across workloads.
//!
//! The paper's central claim made quantitative: as the read fraction of
//! the workload sweeps from write-only to read-only, the *optimal* vote
//! assignment and quorum pair slides across the classical spectrum —
//! write-one flavours for writers, read-one/write-all for readers, and
//! votes concentrating on the cheap site whenever availability permits.
//! `wv_analysis::search_optimal` enumerates the space exactly.

use wv_analysis::{search_optimal, OptimalChoice, ReadMetric, Workload};
use wv_net::SiteId;

use crate::runner;
use crate::table::{ms, prob, Table};

/// The three-site cost profile used throughout (Example-2 geography).
pub const COSTS: [f64; 3] = [75.0, 100.0, 750.0];

/// Per-site availability.
pub const P_UP: f64 = 0.99;

fn describe(c: &OptimalChoice) -> (String, String) {
    let votes: Vec<String> = SiteId::all(3)
        .map(|s| c.assignment.votes_of(s).to_string())
        .collect();
    (
        format!("⟨{}⟩", votes.join(",")),
        format!("r={}, w={}", c.quorum.read, c.quorum.write),
    )
}

/// Finds the optimum for a read fraction and availability floor.
pub fn optimum(read_fraction: f64, min_availability: f64) -> Option<OptimalChoice> {
    search_optimal(
        3,
        3,
        &COSTS,
        &[P_UP; 3],
        &Workload {
            read_fraction,
            min_availability,
            read_metric: ReadMetric::Verified,
        },
    )
}

/// Builds the E4 report.
pub fn run() -> String {
    let mut out = String::new();
    out.push_str("## E4 — Optimal vote assignment vs workload mix\n\n");
    out.push_str(&format!(
        "Exhaustive search over 3 sites (votes 0..=3 each, all legal \
         minimal-intersection quorums), costs {COSTS:?} ms, availability \
         {P_UP} per site.\n\n"
    ));
    for (label, floor) in [
        ("no availability floor", 0.0),
        ("availability ≥ 0.999 for both quorums", 0.999),
    ] {
        let mut t = Table::new(
            format!("Winning configuration — {label}"),
            &[
                "read fraction",
                "votes",
                "quorums",
                "E[latency] (ms)",
                "read avail",
                "write avail",
            ],
        );
        // Each optimum is an exhaustive enumeration of the design space;
        // the six workload points are independent, so fan them out.
        const FS: [f64; 6] = [0.0, 0.25, 0.5, 0.75, 0.9, 1.0];
        let optima = runner::run_tasks(FS.len(), |i| optimum(FS[i], floor));
        for (f, best) in FS.into_iter().zip(optima) {
            match best {
                Some(best) => {
                    let (votes, quorums) = describe(&best);
                    t.row(&[
                        format!("{f:.2}"),
                        votes,
                        quorums,
                        ms(best.expected_latency),
                        prob(best.read_availability),
                        prob(best.write_availability),
                    ]);
                }
                None => {
                    t.row(&[
                        format!("{f:.2}"),
                        "—".into(),
                        "infeasible".into(),
                        "—".into(),
                        "—".into(),
                        "—".into(),
                    ]);
                }
            }
        }
        out.push_str(&t.to_markdown());
    }
    // Weak-representative placement: give the search a fast (65 ms) but
    // flaky (p = 0.9: it is a workstation, powered off at night) site and
    // optimise the cache-valid read figure. Zero-vote entries are legal
    // assignments, so the optimiser can *discover* the paper's Example-1
    // design on its own: the vote stays on the dependable file server,
    // the workstation serves as a weak representative.
    let mut t = Table::new(
        "With a fast-but-flaky workstation available (cache-valid reads, floor 0.99)",
        &[
            "read fraction",
            "votes ⟨ws,srv,net,far⟩",
            "quorums",
            "E[latency] (ms)",
        ],
    );
    const WS_FS: [f64; 4] = [0.0, 0.5, 0.9, 1.0];
    let ws_optima = runner::run_tasks(WS_FS.len(), |i| {
        search_optimal(
            4,
            2,
            &[65.0, 75.0, 100.0, 750.0],
            &[0.90, 0.99, 0.99, 0.99],
            &Workload {
                read_fraction: WS_FS[i],
                min_availability: 0.99,
                read_metric: ReadMetric::CacheValid,
            },
        )
        .expect("found")
    });
    for (f, best) in WS_FS.into_iter().zip(ws_optima) {
        let votes: Vec<String> = SiteId::all(4)
            .map(|s| best.assignment.votes_of(s).to_string())
            .collect();
        t.row(&[
            format!("{f:.2}"),
            format!("⟨{}⟩", votes.join(",")),
            format!("r={}, w={}", best.quorum.read, best.quorum.write),
            ms(best.expected_latency),
        ]);
    }
    out.push_str(&t.to_markdown());
    out.push_str(
        "Shape check: without a floor every workload collapses to the \
         primary-site corner (all votes on the cheap site). A tight floor \
         forces real replication, and with uniform per-site availability \
         the majority split dominates: asymmetric quorums buy cheaper \
         reads only by paying write-availability that no longer clears \
         the floor — the quantitative version of why the paper's \
         asymmetric Example 3 accepts a 3% write-blocking probability in \
         exchange for its reads.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unconstrained_optimum_is_the_cheap_site() {
        for f in [0.0, 0.5, 1.0] {
            let best = optimum(f, 0.0).expect("found");
            assert!(
                (best.expected_latency - 75.0).abs() < 1e-9,
                "f={f}: latency {}",
                best.expected_latency
            );
        }
    }

    #[test]
    fn floor_forces_multiple_voting_sites() {
        let best = optimum(0.5, 0.999).expect("found");
        assert!(best.assignment.strong_sites().len() >= 2);
        assert!(best.read_availability >= 0.999);
        assert!(best.write_availability >= 0.999);
    }

    #[test]
    fn uniform_availability_floor_selects_majority() {
        // With uniform p = 0.99 and a 0.999 floor, asymmetric quorums
        // always sacrifice one side's availability below the floor, so
        // the balanced majority wins at every workload mix.
        for f in [0.0, 0.5, 1.0] {
            let best = optimum(f, 0.999).expect("found");
            assert_eq!(best.quorum.read, best.quorum.write);
            assert!((best.expected_latency - 100.0).abs() < 1e-9);
        }
    }

    #[test]
    fn read_heavy_workloads_get_smaller_read_quorums() {
        let reader = optimum(1.0, 0.999).expect("found");
        let writer = optimum(0.0, 0.999).expect("found");
        assert!(
            reader.quorum.read <= writer.quorum.read,
            "reader r={} vs writer r={}",
            reader.quorum.read,
            writer.quorum.read
        );
        assert!(
            reader.quorum.write >= writer.quorum.write,
            "reader w={} vs writer w={}",
            reader.quorum.write,
            writer.quorum.write
        );
    }

    #[test]
    fn expected_latency_never_exceeds_slowest_site() {
        for f in [0.0, 0.3, 0.7, 1.0] {
            let best = optimum(f, 0.999).expect("found");
            assert!(best.expected_latency <= 750.0 + 1e-9);
        }
    }

    #[test]
    fn search_discovers_the_papers_example_1_cache_design() {
        // Fast-but-flaky workstation + dependable server, cache-valid
        // reads: the optimum keeps the vote on the server and uses the
        // workstation as a zero-vote weak representative — exactly the
        // paper's Example 1.
        let best = search_optimal(
            4,
            2,
            &[65.0, 75.0, 100.0, 750.0],
            &[0.90, 0.99, 0.99, 0.99],
            &Workload {
                read_fraction: 1.0,
                min_availability: 0.99,
                read_metric: ReadMetric::CacheValid,
            },
        )
        .expect("found");
        assert_eq!(best.assignment.votes_of(SiteId(0)), 0, "ws must be weak");
        assert!(
            best.assignment.votes_of(SiteId(1)) > 0,
            "vote on the server"
        );
        assert!(
            (best.expected_latency - 65.0).abs() < 1e-9,
            "reads at cache speed"
        );
        assert!(best.write_availability >= 0.99);
    }

    #[test]
    fn report_renders_both_floors() {
        let report = run();
        assert!(report.contains("no availability floor"));
        assert!(report.contains("0.999"));
    }
}
