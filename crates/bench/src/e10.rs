//! E10 — self-healing under crash/recovery churn.
//!
//! Two arms over identical failure timelines: a five-site majority
//! cluster whose servers crash and recover under an exponential
//! MTTF/MTTR process, serving a steady read-heavy workload. The *healing
//! off* arm runs the classic client (fixed phase timeouts, cost-ranked
//! quorum plans, no repair). The *healing on* arm enables the
//! self-healing layer: per-site health tracking with adaptive timeouts,
//! suspicion-aware quorum planning, hedged reads, and background
//! anti-entropy repair.
//!
//! The claim under test: healing strictly improves operation
//! availability in the windows an outage disturbs — from a
//! representative's crash through shortly past its recovery — and
//! strictly improves tail (p99) read latency overall. Both arms of
//! each trial share one failure schedule (derived from the trial seed
//! alone), so the comparison is paired, and trials fan out over
//! [`runner::run_trials`] — the report is bit-identical at any worker
//! count.

use wv_core::client::{ClientOptions, HealthOptions};
use wv_core::harness::{Harness, SiteSpec};
use wv_core::quorum::QuorumSpec;
use wv_core::OpKind;
use wv_net::SiteId;
use wv_sim::trace::SpanKind;
use wv_sim::{derive_seed, DetRng, FailureSchedule, SampleSet, SimDuration, SimTime};

use crate::runner;
use crate::table::Table;

/// Voting representatives (one vote each, majority quorums).
const SERVERS: usize = 5;
/// Mean time to failure per site.
const MTTF: SimDuration = SimDuration::from_secs(8);
/// Mean time to repair per site.
const MTTR: SimDuration = SimDuration::from_secs(2);
/// Workload horizon: events are enqueued in `[0, HORIZON)`.
const HORIZON: SimTime = SimTime::from_secs(60);
/// One read every `READ_EVERY`.
const READ_EVERY: SimDuration = SimDuration::from_millis(250);
/// One write every `WRITE_EVERY`.
const WRITE_EVERY: SimDuration = SimDuration::from_secs(2);
/// Disturbed window: operations starting between a representative's
/// crash and this long past its recovery count towards the
/// post-recovery availability metric — the span over which an outage
/// degrades service, including its aftermath.
const RECOVERY_WINDOW: SimDuration = SimDuration::from_secs(2);
/// Per-phase patience both arms share: an interactive-read SLA rather
/// than the durability-tuned library defaults, so an outage that
/// outlives the whole retry budget becomes a *failed* operation instead
/// of a very slow success.
const PHASE_TIMEOUT: SimDuration = SimDuration::from_millis(800);
/// Attempts per operation, both arms.
const MAX_ATTEMPTS: u32 = 4;
/// Anti-entropy probe interval for the healing arm.
const REPAIR_INTERVAL: SimDuration = SimDuration::from_millis(500);
/// Trials in the full report.
const TRIALS: usize = 24;
/// Seed-derivation label for the per-trial failure schedule.
const FAILURE_LABEL: u64 = 0xE10_FA11;

/// One arm's raw per-trial output.
struct TrialOut {
    read_lat_ms: Vec<f64>,
    ops_ok: u64,
    ops_total: u64,
    post_ok: u64,
    post_total: u64,
    repairs: u64,
    suspicions: u64,
    reroutes: u64,
    hedges_fired: u64,
    hedge_wins: u64,
    timeouts: u64,
    /// Traced phase totals: (summed duration in µs, span count) for
    /// version collection, data movement, and server-side lock waits.
    inquiry_us: (u64, u64),
    fetch_us: (u64, u64),
    lock_wait_us: (u64, u64),
}

/// One arm's aggregate across all trials.
pub struct ArmSummary {
    /// Operations attempted / committed over the whole run.
    pub ops_total: u64,
    /// Operations that committed.
    pub ops_ok: u64,
    /// Operations attempted in disturbed windows (a representative's
    /// crash through [`RECOVERY_WINDOW`] past its recovery).
    pub post_total: u64,
    /// ... of which committed.
    pub post_ok: u64,
    /// Median read latency (ms) over committed reads.
    pub read_p50_ms: f64,
    /// 99th-percentile read latency (ms) over committed reads.
    pub read_p99_ms: f64,
    /// Anti-entropy repairs installed (zero for the off arm).
    pub repairs: u64,
    /// Suspicion-threshold crossings.
    pub suspicions: u64,
    /// Quorum plans reordered around suspects.
    pub reroutes: u64,
    /// Hedged fetches launched.
    pub hedges_fired: u64,
    /// Reads won by the hedge target.
    pub hedge_wins: u64,
    /// Phase timeouts.
    pub timeouts: u64,
    /// Mean version-collection (inquiry) phase duration, traced, ms.
    pub version_collect_ms: f64,
    /// Mean data-movement (content fetch) phase duration, traced, ms.
    pub data_move_ms: f64,
    /// Mean server-side lock-wait duration, traced, ms.
    pub lock_wait_ms: f64,
}

impl ArmSummary {
    /// Committed fraction over the whole run.
    pub fn availability(&self) -> f64 {
        self.ops_ok as f64 / self.ops_total.max(1) as f64
    }

    /// Committed fraction of operations started in a disturbed window:
    /// between a representative's crash and [`RECOVERY_WINDOW`] past its
    /// recovery.
    pub fn post_recovery_availability(&self) -> f64 {
        self.post_ok as f64 / self.post_total.max(1) as f64
    }
}

/// The failure timeline both arms of a trial share.
fn failure_schedule(seed: u64) -> FailureSchedule {
    let mut rng = DetRng::new(derive_seed(seed, FAILURE_LABEL));
    FailureSchedule::mttf_mttr(SERVERS, MTTF, MTTR, HORIZON, &mut rng)
}

/// Runs one arm of one trial.
fn run_arm(seed: u64, healing: bool) -> TrialOut {
    let mut b = Harness::builder().quorum(QuorumSpec::new(3, 3)).seed(seed);
    for _ in 0..SERVERS {
        b = b.site(SiteSpec::server(1));
    }
    b = b.client();
    // Both arms run the same interactive SLA; only the healing layer
    // (and the repair daemon) differs.
    let mut options = ClientOptions {
        phase_timeout: PHASE_TIMEOUT,
        max_attempts: MAX_ATTEMPTS,
        ..ClientOptions::default()
    };
    if healing {
        options.health = Some(HealthOptions::default());
        b = b.anti_entropy(REPAIR_INTERVAL);
    }
    b = b.client_options(options);
    let mut h = b.build().expect("majority quorums are legal");
    // Trace both arms: the breakdown columns come from the spans, and
    // recording is protocol-neutral (asserted by wv-core's harness test
    // and the bench-level trace determinism suite).
    h.enable_tracing();
    let suite = h.suite_id();
    let client = h.default_client();
    let schedule = failure_schedule(seed);
    h.apply_failure_schedule(&schedule);

    // Steady read-heavy workload over the horizon.
    let mut t = SimTime::ZERO + READ_EVERY;
    while t < HORIZON {
        h.enqueue_read(client, suite, t);
        t += READ_EVERY;
    }
    let mut t = SimTime::ZERO + SimDuration::from_millis(100);
    let mut k = 0u64;
    while t < HORIZON {
        let payload = format!("e10-{seed:016x}-{k}").into_bytes();
        h.enqueue_write(client, suite, payload, t);
        t += WRITE_EVERY;
        k += 1;
    }

    // Run everything out: past the horizon every site is up, so the
    // queue drains once in-flight operations and (after the daemon is
    // stopped) repair probes finish.
    h.advance(HORIZON.since(SimTime::ZERO) + SimDuration::from_secs(30));
    h.stop_anti_entropy();
    h.run_until_quiet(5_000_000);

    // Disturbed windows: from each crash to RECOVERY_WINDOW past the
    // matching recovery. Operations starting inside one are the ones an
    // outage can hurt — during it and through its aftermath.
    let disturbed: Vec<(SimTime, SimTime)> = (0..SERVERS)
        .flat_map(|site| schedule.windows(site))
        .map(|w| (w.from, w.until + RECOVERY_WINDOW))
        .collect();

    let mut out = TrialOut {
        read_lat_ms: Vec::new(),
        ops_ok: 0,
        ops_total: 0,
        post_ok: 0,
        post_total: 0,
        repairs: 0,
        suspicions: 0,
        reroutes: 0,
        hedges_fired: 0,
        hedge_wins: 0,
        timeouts: 0,
        inquiry_us: (0, 0),
        fetch_us: (0, 0),
        lock_wait_us: (0, 0),
    };
    for s in h.take_trace() {
        let Some(d) = s.duration_us() else {
            continue; // still open at quiescence (crashed mid-flight)
        };
        let slot = match s.kind {
            SpanKind::Inquiry => &mut out.inquiry_us,
            SpanKind::Fetch => &mut out.fetch_us,
            SpanKind::LockWait => &mut out.lock_wait_us,
            _ => continue,
        };
        slot.0 += d;
        slot.1 += 1;
    }
    for op in h.drain_completed(client) {
        out.ops_total += 1;
        let ok = op.outcome.is_ok();
        if ok {
            out.ops_ok += 1;
            if op.kind == OpKind::Read {
                out.read_lat_ms
                    .push(op.finished.since(op.started).as_millis_f64());
            }
        }
        if disturbed
            .iter()
            .any(|&(from, until)| from <= op.started && op.started < until)
        {
            out.post_total += 1;
            out.post_ok += u64::from(ok);
        }
    }
    if let Some(stats) = h.client_stats(client) {
        out.suspicions = stats.suspicions_raised;
        out.reroutes = stats.reroutes;
        out.hedges_fired = stats.hedges_fired;
        out.hedge_wins = stats.hedge_wins;
        out.timeouts = stats.timeouts;
    }
    for site in 0..SERVERS {
        if let Some(stats) = h.server_stats(SiteId(site as u16)) {
            out.repairs += stats.repairs_completed;
        }
    }
    out
}

fn mean_ms(total_us: u64, n: u64) -> f64 {
    if n == 0 {
        return 0.0;
    }
    total_us as f64 / n as f64 / 1000.0
}

fn summarize(trials: Vec<TrialOut>) -> ArmSummary {
    let mut s = ArmSummary {
        ops_total: 0,
        ops_ok: 0,
        post_total: 0,
        post_ok: 0,
        read_p50_ms: 0.0,
        read_p99_ms: 0.0,
        repairs: 0,
        suspicions: 0,
        reroutes: 0,
        hedges_fired: 0,
        hedge_wins: 0,
        timeouts: 0,
        version_collect_ms: 0.0,
        data_move_ms: 0.0,
        lock_wait_ms: 0.0,
    };
    let mut lat = SampleSet::new();
    let (mut inq, mut fetch, mut lock) = ((0u64, 0u64), (0u64, 0u64), (0u64, 0u64));
    for t in trials {
        s.ops_total += t.ops_total;
        s.ops_ok += t.ops_ok;
        s.post_total += t.post_total;
        s.post_ok += t.post_ok;
        s.repairs += t.repairs;
        s.suspicions += t.suspicions;
        s.reroutes += t.reroutes;
        s.hedges_fired += t.hedges_fired;
        s.hedge_wins += t.hedge_wins;
        s.timeouts += t.timeouts;
        inq = (inq.0 + t.inquiry_us.0, inq.1 + t.inquiry_us.1);
        fetch = (fetch.0 + t.fetch_us.0, fetch.1 + t.fetch_us.1);
        lock = (lock.0 + t.lock_wait_us.0, lock.1 + t.lock_wait_us.1);
        for x in t.read_lat_ms {
            lat.record(x);
        }
    }
    s.read_p50_ms = lat.try_quantile(0.50).unwrap_or(0.0);
    s.read_p99_ms = lat.try_quantile(0.99).unwrap_or(0.0);
    s.version_collect_ms = mean_ms(inq.0, inq.1);
    s.data_move_ms = mean_ms(fetch.0, fetch.1);
    s.lock_wait_ms = mean_ms(lock.0, lock.1);
    s
}

/// Both arms, aggregated over `trials` paired trials.
pub fn measure(master_seed: u64, trials: usize) -> (ArmSummary, ArmSummary) {
    let results = runner::run_trials(master_seed, trials, |seed| {
        (run_arm(seed, false), run_arm(seed, true))
    });
    let (off, on): (Vec<_>, Vec<_>) = results.into_iter().unzip();
    (summarize(off), summarize(on))
}

fn pct(x: f64) -> String {
    format!("{:.2}%", 100.0 * x)
}

/// Builds the E10 report with an explicit trial count (the smoke tests
/// use a small one).
pub fn run_with(trials: usize) -> String {
    let (off, on) = measure(0xE10, trials);
    let mut out = String::new();
    out.push_str("## E10 — Self-healing under crash/recovery churn\n\n");
    out.push_str(&format!(
        "{trials} paired trials; each runs a 5-site majority cluster for \
         {}s of virtual time under an exponential failure process (MTTF \
         {}s, MTTR {}s per site) and a steady workload (a read every \
         {} ms, a write every {} s). Both arms of a trial replay the \
         *same* failure timeline; only the self-healing layer differs.\n\n",
        HORIZON.since(SimTime::ZERO).as_millis() / 1000,
        MTTF.as_millis() / 1000,
        MTTR.as_millis() / 1000,
        READ_EVERY.as_millis(),
        WRITE_EVERY.as_millis() / 1000,
    ));
    let mut t = Table::new(
        "Availability and read latency",
        &["metric", "healing off", "healing on"],
    );
    t.row(&[
        "operations attempted".into(),
        off.ops_total.to_string(),
        on.ops_total.to_string(),
    ]);
    t.row(&[
        "operations committed".into(),
        off.ops_ok.to_string(),
        on.ops_ok.to_string(),
    ]);
    t.row(&[
        "overall availability".into(),
        pct(off.availability()),
        pct(on.availability()),
    ]);
    t.row(&[
        "ops in disturbed windows (crash → recovery + 2 s)".into(),
        off.post_total.to_string(),
        on.post_total.to_string(),
    ]);
    t.row(&[
        "post-recovery availability (disturbed windows)".into(),
        pct(off.post_recovery_availability()),
        pct(on.post_recovery_availability()),
    ]);
    t.row(&[
        "read latency p50 (ms)".into(),
        format!("{:.1}", off.read_p50_ms),
        format!("{:.1}", on.read_p50_ms),
    ]);
    t.row(&[
        "read latency p99 (ms)".into(),
        format!("{:.1}", off.read_p99_ms),
        format!("{:.1}", on.read_p99_ms),
    ]);
    t.row(&[
        "phase timeouts".into(),
        off.timeouts.to_string(),
        on.timeouts.to_string(),
    ]);
    out.push_str(&t.to_markdown());
    out.push('\n');
    let mut t = Table::new(
        "Traced latency breakdown (mean per span, ms)",
        &["phase", "healing off", "healing on"],
    );
    t.row(&[
        "version collect (inquiry)".into(),
        format!("{:.1}", off.version_collect_ms),
        format!("{:.1}", on.version_collect_ms),
    ]);
    t.row(&[
        "data move (content fetch)".into(),
        format!("{:.1}", off.data_move_ms),
        format!("{:.1}", on.data_move_ms),
    ]);
    t.row(&[
        "lock wait (server-side)".into(),
        format!("{:.3}", off.lock_wait_ms),
        format!("{:.3}", on.lock_wait_ms),
    ]);
    out.push_str(&t.to_markdown());
    out.push('\n');
    let mut t = Table::new(
        "Self-healing activity (healing-on arm)",
        &["counter", "value"],
    );
    t.row(&[
        "anti-entropy repairs completed".into(),
        on.repairs.to_string(),
    ]);
    t.row(&["suspicions raised".into(), on.suspicions.to_string()]);
    t.row(&[
        "quorum plans rerouted around suspects".into(),
        on.reroutes.to_string(),
    ]);
    t.row(&["hedged fetches fired".into(), on.hedges_fired.to_string()]);
    t.row(&["hedged fetches won".into(), on.hedge_wins.to_string()]);
    out.push_str(&t.to_markdown());
    out.push('\n');
    out.push_str(&format!(
        "Post-recovery operation availability (ops started between a crash \
         and 2 s past its recovery), healing off → on: **{} → {}** \
         (strictly better: **{}**).\n\n",
        pct(off.post_recovery_availability()),
        pct(on.post_recovery_availability()),
        if on.post_recovery_availability() > off.post_recovery_availability() {
            "yes"
        } else {
            "NO"
        }
    ));
    out.push_str(&format!(
        "Read latency p99, healing off → on: **{:.1} ms → {:.1} ms** (strictly better: **{}**).\n",
        off.read_p99_ms,
        on.read_p99_ms,
        if on.read_p99_ms < off.read_p99_ms {
            "yes"
        } else {
            "NO"
        }
    ));
    out
}

/// Builds the full E10 report.
pub fn run() -> String {
    run_with(TRIALS)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn healing_strictly_improves_recovery_availability_and_tail_latency() {
        let (off, on) = measure(0xE10, 8);
        assert!(
            on.post_recovery_availability() > off.post_recovery_availability(),
            "post-recovery availability: off {} vs on {}",
            off.post_recovery_availability(),
            on.post_recovery_availability()
        );
        assert!(
            on.read_p99_ms < off.read_p99_ms,
            "read p99: off {} ms vs on {} ms",
            off.read_p99_ms,
            on.read_p99_ms
        );
        // The improvements must come from the layer actually working.
        assert!(on.repairs > 0, "no anti-entropy repair ran");
        assert!(on.suspicions > 0, "no site was ever suspected");
        assert_eq!(off.repairs, 0, "the off arm must not repair");
    }

    #[test]
    fn the_report_carries_both_verdicts() {
        let report = run_with(4);
        assert!(report.contains("Post-recovery operation availability"));
        assert_eq!(
            report.matches("(strictly better: **yes**)").count(),
            2,
            "both strict-improvement verdicts must hold:\n{report}"
        );
    }
}
