//! E15 — multi-suite sharded keyspace under zipfian multi-key load.
//!
//! The same closed-loop write-dominant workload replayed against a
//! cluster whose keyspace is split into 1, 2, 4, or 8 file suites, at
//! two skews (uniform and zipfian) and two cluster sizes. Every server
//! shards its lock table by suite, so writes to *different* suites
//! never queue behind one another — only same-suite writers serialize
//! on the commit lock. Aggregate throughput is committed operations
//! per **virtual** second, so each cell is a deterministic function of
//! its seed and the sweep doubles as a worker-count invariance fixture
//! (`crates/bench/tests/e15_determinism.rs`).
//!
//! Three claims under test:
//!
//! 1. **Sharding buys aggregate throughput.** Under a balanced suite
//!    choice, splitting one suite into 8 turns a single lock queue
//!    into 8 parallel ones: aggregate ops/vsec scales ≥6× on the
//!    primary cluster.
//! 2. **Hot keys saturate their shard.** Under zipfian skew
//!    (popularity ∝ 1/(rank+1)) the hottest suite absorbs over a
//!    third of the traffic, so the same 8-way split scales visibly
//!    worse than the balanced workload — the hot shard's lock queue
//!    is still the critical path.
//! 3. **The single-suite path is untouched.** A harness built with an
//!    explicit one-entry suite map replays the workload byte-identical
//!    (versions *and* latencies) to the default single-suite build —
//!    pinned by `the_single_suite_path_is_byte_identical_to_default`.

use wv_core::client::{ClientOptions, CompletedOp};
use wv_core::harness::{Harness, HarnessBuilder, SiteSpec};
use wv_core::quorum::QuorumSpec;
use wv_net::{NetConfig, SiteId};
use wv_sim::{DetRng, LatencyModel, SimDuration};
use wv_storage::ObjectId;

use crate::runner;
use crate::table::Table;

/// Cluster sizes along the sweep (one vote each, majority quorums).
const SERVER_COUNTS: [usize; 2] = [3, 5];
/// Closed-loop clients sharing the cluster: enough offered concurrency
/// to keep all 8 shards of the widest split at their saturated commit
/// rate, while the single-suite arm stays pinned at its lock queue's
/// service rate no matter how many clients feed it.
const CLIENTS: usize = 16;
/// Suite counts along the sharding curve.
const SUITE_COUNTS: [usize; 4] = [1, 2, 4, 8];
/// One-way link latency everywhere.
const LINK: SimDuration = SimDuration::from_millis(25);
/// Outstanding-op window per client: wide open (the whole budget), so
/// a stalled op never blocks later ops to other suites behind it —
/// every shard sees its full queue from the first tick.
const DEPTH: usize = 32;
/// Every 8th operation is a read (the rest write): write-dominant, so
/// the per-suite commit locks — not the network — are the bottleneck.
const READ_EVERY: usize = 8;
/// Operations each client issues per trial in the full report: enough
/// load that every shard of the widest split runs at its saturated
/// commit rate (the single-suite arm saturates far earlier).
const OPS_PER_CLIENT: usize = 64;
/// Contention makes same-suite writers retry; give them budget enough
/// that every operation eventually commits even at 6 writers × 1 suite.
const MAX_ATTEMPTS: u32 = 512;
/// Short, tightly-capped retry backoff: conflicts should re-queue on
/// the suite's lock promptly, so measured throughput reflects lock
/// serialization rather than idle backoff time.
const BACKOFF: SimDuration = SimDuration::from_millis(5);
/// Backoff ceiling (before jitter).
const BACKOFF_CAP: SimDuration = SimDuration::from_millis(80);
/// Phase timeout: an uncontended write round trip is ~150 ms, so a
/// prepare parked deep in a busy suite's lock queue recycles after
/// 600 ms instead of idling out the default 5 s timer.
const PHASE_TIMEOUT: SimDuration = SimDuration::from_millis(300);
/// Master seed for the sweep.
const MASTER_SEED: u64 = 0xE15;

/// The suite-choice skews under comparison, with display names.
/// "balanced" strides each client round-robin across the suite map —
/// every suite gets the same op count, offset per client so the
/// instantaneous load spreads too; "zipfian" draws each op's suite
/// with popularity ∝ 1/(rank + 1), so rank 0 is the hot key.
const SKEWS: [&str; 2] = ["balanced", "zipfian"];
/// Index of the balanced skew (the headline scaling arm).
const BALANCED: usize = 0;
/// Index of the zipfian skew (the hot-key saturation arm).
const ZIPF: usize = 1;

/// Draws a zipfian suite index in `0..n`: popularity ∝ 1/(rank + 1).
fn zipf_suite(rng: &mut DetRng, n: usize) -> usize {
    let total: f64 = (1..=n).map(|k| 1.0 / k as f64).sum();
    let mut x = rng.f64() * total;
    for k in 0..n {
        x -= 1.0 / (k + 1) as f64;
        if x <= 0.0 {
            return k;
        }
    }
    n - 1
}

/// One grid point of the sweep.
pub struct Cell {
    /// Suite count (keyspace shards).
    pub suites: usize,
    /// Skew index into [`SKEWS`].
    pub skew: usize,
    /// Voting representatives in the cluster.
    pub servers: usize,
    /// Operations that committed (out of `CLIENTS × ops_per_client`).
    pub ops_ok: u64,
    /// Committed operations per *virtual* second, across all clients.
    pub ops_per_vsec: f64,
    /// Committed operations per suite, hottest first; length `suites`.
    pub per_suite: Vec<u64>,
    /// Attempts spent per committed operation (1.0 = no retries): the
    /// visible cost of same-suite lock-queue contention.
    pub attempts_per_op: f64,
}

impl Cell {
    /// Share of committed traffic the hottest suite absorbed.
    pub fn hot_share(&self) -> f64 {
        let total: u64 = self.per_suite.iter().sum();
        if total == 0 {
            0.0
        } else {
            *self.per_suite.iter().max().expect("non-empty") as f64 / total as f64
        }
    }
}

/// The per-trial workload: each client's `(is_read, suite index)`
/// plan, drawn from the seed alone before the harness exists.
fn draw_plans(seed: u64, skew: usize, n: usize, ops: usize) -> Vec<Vec<(bool, usize)>> {
    let root = DetRng::new(seed).fork_named("e15-workload");
    (0..CLIENTS)
        .map(|c| {
            let mut r = root.fork(c as u64);
            (0..ops)
                .map(|i| {
                    let suite = if skew == BALANCED {
                        (c + i) % n
                    } else {
                        zipf_suite(&mut r, n)
                    };
                    (i % READ_EVERY == READ_EVERY - 1, suite)
                })
                .collect()
        })
        .collect()
}

/// The cluster for one cell: `servers` single-vote representatives
/// behind majority quorums, `CLIENTS` pipelined clients, `suites`
/// suites in the map.
fn build_cluster(seed: u64, servers: usize, suites: &[ObjectId]) -> HarnessBuilder {
    let w = servers / 2 + 1;
    let mut b = Harness::builder()
        .seed(seed)
        .quorum(QuorumSpec::new(w as u32, w as u32))
        .suites(suites.to_vec())
        .net(NetConfig::uniform(
            servers + CLIENTS,
            LatencyModel::Constant(LINK),
        ))
        .client_options(ClientOptions {
            pipeline_depth: Some(DEPTH),
            max_attempts: MAX_ATTEMPTS,
            backoff: BACKOFF,
            backoff_cap: BACKOFF_CAP,
            phase_timeout: PHASE_TIMEOUT,
            ..ClientOptions::default()
        });
    for _ in 0..servers {
        b = b.site(SiteSpec::server(1));
    }
    for _ in 0..CLIENTS {
        b = b.client();
    }
    b
}

/// Replays `plans` against `h` and returns every completed operation,
/// in (client, completion) order.
fn replay(h: &mut Harness, suites: &[ObjectId], plans: &[Vec<(bool, usize)>]) -> Vec<CompletedOp> {
    for &s in suites {
        h.write(s, format!("e15-seed-{}", s.0).into_bytes())
            .expect("seeding write");
    }
    let client_sites: Vec<SiteId> = h.clients().to_vec();
    let start = h.now();
    for (ci, &c) in client_sites.iter().enumerate() {
        for (i, &(is_read, s)) in plans[ci].iter().enumerate() {
            let suite = suites[s];
            if is_read {
                h.enqueue_read(c, suite, start);
            } else {
                h.enqueue_write(c, suite, format!("e15-c{ci}-{i}").into_bytes(), start);
            }
        }
    }
    h.run_until_quiet(100_000_000);
    let mut done = Vec::new();
    for &c in &client_sites {
        done.extend(h.drain_completed(c));
    }
    done
}

/// Runs one cell of the sweep.
fn run_cell(seed: u64, suites_n: usize, skew: usize, servers: usize, ops: usize) -> Cell {
    let suites: Vec<ObjectId> = (1..=suites_n as u64).map(ObjectId).collect();
    let plans = draw_plans(seed, skew, suites_n, ops);
    let mut h = build_cluster(seed, servers, &suites)
        .build()
        .expect("majority quorums are legal");
    let start = h.now();
    let done = replay(&mut h, &suites, &plans);

    let mut ops_ok = 0u64;
    let mut attempts = 0u64;
    let mut per_suite = vec![0u64; suites_n];
    let mut last_finish = start;
    for op in &done {
        if op.outcome.is_ok() {
            ops_ok += 1;
            attempts += u64::from(op.attempts);
            per_suite[op.suite.0 as usize - 1] += 1;
            last_finish = last_finish.max(op.finished);
        }
    }
    per_suite.sort_unstable_by(|a, b| b.cmp(a));
    let makespan_s = last_finish.since(start).as_millis_f64() / 1000.0;
    Cell {
        suites: suites_n,
        skew,
        servers,
        ops_ok,
        ops_per_vsec: if makespan_s > 0.0 {
            ops_ok as f64 / makespan_s
        } else {
            0.0
        },
        per_suite,
        attempts_per_op: if ops_ok > 0 {
            attempts as f64 / ops_ok as f64
        } else {
            0.0
        },
    }
}

/// The full sweep: every `(servers, skew, suites)` grid point, fanned
/// out over the deterministic trial pool in grid order.
pub fn measure(master_seed: u64, ops_per_client: usize) -> Vec<Cell> {
    let mut grid = Vec::new();
    for &servers in &SERVER_COUNTS {
        for skew in 0..SKEWS.len() {
            for &suites in &SUITE_COUNTS {
                grid.push((servers, skew, suites));
            }
        }
    }
    runner::run_trials_indexed(master_seed, grid.len(), |i, seed| {
        let (servers, skew, suites) = grid[i];
        run_cell(seed, suites, skew, servers, ops_per_client)
    })
}

/// Finds the sweep cell for `(suites, skew, servers)`.
fn cell(cells: &[Cell], suites: usize, skew: usize, servers: usize) -> &Cell {
    cells
        .iter()
        .find(|c| c.suites == suites && c.skew == skew && c.servers == servers)
        .expect("grid covers every combination")
}

/// Aggregate scaling of `suites`-way sharding over the single-suite
/// baseline, for one `(skew, servers)` curve.
fn scaling(cells: &[Cell], suites: usize, skew: usize, servers: usize) -> f64 {
    cell(cells, suites, skew, servers).ops_per_vsec / cell(cells, 1, skew, servers).ops_per_vsec
}

/// Builds the E15 report with an explicit per-client op budget (the
/// smoke tests use a small one).
pub fn run_with(ops_per_client: usize) -> String {
    let cells = measure(MASTER_SEED, ops_per_client);
    let total: u64 = cells.iter().map(|c| c.ops_ok).sum();
    let expected = (cells.len() * CLIENTS * ops_per_client) as u64;
    let mut out = String::new();
    out.push_str("## E15 — Multi-suite sharded keyspace under zipfian load\n\n");
    out.push_str(&format!(
        "Majority clusters of {:?} single-vote representatives, uniform \
         {} ms links, {CLIENTS} closed-loop clients at window depth \
         {DEPTH}. Each client replays {ops_per_client} operations — one \
         read per {READ_EVERY} ops, the rest writes — against a keyspace \
         split into 1, 2, 4, or 8 suites, choosing the suite per op \
         balanced (per-client round-robin stride) or zipfian \
         (popularity ∝ 1/(rank+1)). Servers shard \
         their lock tables by suite, so only same-suite writers queue on \
         a commit lock. Throughput is committed operations per \
         **virtual** second. {total}/{expected} operations committed.\n\n",
        SERVER_COUNTS,
        LINK.as_millis() * 2,
    ));

    for &servers in &SERVER_COUNTS {
        let mut t = Table::new(
            format!("Aggregate throughput, {servers} servers (ops per virtual second)"),
            &["skew \\ suites", "1", "2", "4", "8"],
        );
        for (sk, name) in SKEWS.iter().enumerate() {
            let mut row = vec![name.to_string()];
            for &n in &SUITE_COUNTS {
                row.push(format!("{:.1}", cell(&cells, n, sk, servers).ops_per_vsec));
            }
            t.row(&row);
        }
        out.push_str(&t.to_markdown());
        out.push('\n');
    }

    let mut t = Table::new(
        format!(
            "Scaling over the 1-suite baseline ({}-server cluster)",
            SERVER_COUNTS[0]
        ),
        &[
            "skew \\ suites",
            "2",
            "4",
            "8",
            "hottest-suite share at 8",
            "attempts/op at 8",
        ],
    );
    for (sk, name) in SKEWS.iter().enumerate() {
        let c8 = cell(&cells, 8, sk, SERVER_COUNTS[0]);
        t.row(&[
            name.to_string(),
            format!("{:.1}×", scaling(&cells, 2, sk, SERVER_COUNTS[0])),
            format!("{:.1}×", scaling(&cells, 4, sk, SERVER_COUNTS[0])),
            format!("{:.1}×", scaling(&cells, 8, sk, SERVER_COUNTS[0])),
            format!("{:.0}%", c8.hot_share() * 100.0),
            format!("{:.2}", c8.attempts_per_op),
        ]);
    }
    out.push_str(&t.to_markdown());
    out.push('\n');

    let primary = scaling(&cells, 8, BALANCED, SERVER_COUNTS[0]);
    let secondary = scaling(&cells, 8, BALANCED, SERVER_COUNTS[1]);
    out.push_str(&format!(
        "Splitting the keyspace into 8 suites multiplies balanced-skew \
         aggregate throughput by **{primary:.1}×** on the {}-server \
         cluster (≥6× required: **{}**), and {secondary:.1}× on the \
         {}-server cluster, whose wider w = {} write quorums pay more \
         cross-replica lock conflicts per commit.\n\n",
        SERVER_COUNTS[0],
        if primary >= 6.0 { "yes" } else { "NO" },
        SERVER_COUNTS[1],
        SERVER_COUNTS[1] / 2 + 1,
    ));
    let uni8 = scaling(&cells, 8, BALANCED, SERVER_COUNTS[0]);
    let zipf8 = scaling(&cells, 8, ZIPF, SERVER_COUNTS[0]);
    let hot = cell(&cells, 8, ZIPF, SERVER_COUNTS[0]).hot_share();
    out.push_str(&format!(
        "Under zipfian skew the hottest suite absorbs **{:.0}%** of the \
         committed traffic and its lock queue stays the critical path: \
         the same 8-way split scales only **{zipf8:.1}×** against \
         **{uni8:.1}×** balanced (hot-key saturation costs ≥25% of the \
         scaling: **{}**).\n\n",
        hot * 100.0,
        if zipf8 <= 0.75 * uni8 && hot >= 0.30 {
            "yes"
        } else {
            "NO"
        }
    ));
    let a1 = cell(&cells, 1, BALANCED, SERVER_COUNTS[0]).attempts_per_op;
    let a8 = cell(&cells, 8, BALANCED, SERVER_COUNTS[0]).attempts_per_op;
    out.push_str(&format!(
        "Same-suite contention is visible in the retry budget: one \
         shared suite costs **{a1:.2}** attempts per committed op, eight \
         suites cost **{a8:.2}** (sharding cuts retries: **{}**).\n",
        if a8 < a1 { "yes" } else { "NO" }
    ));
    out
}

/// Builds the full E15 report.
pub fn run() -> String {
    run_with(OPS_PER_CLIENT)
}

/// Virtual-time multi-suite throughput for the perf snapshot:
/// `(single-suite ops/vsec, 8-suite ops/vsec)` at the balanced-skew,
/// smallest-cluster cells of the sweep. Deterministic — no wall clock.
pub fn scaling_summary(ops_per_client: usize) -> (f64, f64) {
    let servers = SERVER_COUNTS[0];
    let one = run_cell(
        wv_sim::derive_seed(MASTER_SEED, 0),
        1,
        BALANCED,
        servers,
        ops_per_client,
    );
    let eight = run_cell(
        wv_sim::derive_seed(MASTER_SEED, 1),
        8,
        BALANCED,
        servers,
        ops_per_client,
    );
    (one.ops_per_vsec, eight.ops_per_vsec)
}

/// Cross-suite WAL batching under group commit, for the perf snapshot:
/// `(records per sync, distinct suites per sync)` summed across the
/// replicas of an 8-suite primary cluster replaying the balanced
/// workload with a 5 ms group-commit window. Suites per sync > 1 means
/// one durable flush is absorbing concurrent writes to *different*
/// suites — the cross-suite half of the batching win. Deterministic.
pub fn wal_batch_summary(ops_per_client: usize) -> (f64, f64) {
    let servers = SERVER_COUNTS[0];
    let suites: Vec<ObjectId> = (1..=8).map(ObjectId).collect();
    let seed = wv_sim::derive_seed(MASTER_SEED, 2);
    let plans = draw_plans(seed, BALANCED, suites.len(), ops_per_client);
    let mut h = build_cluster(seed, servers, &suites)
        .group_commit(SimDuration::from_millis(5))
        .build()
        .expect("majority quorums are legal");
    let done = replay(&mut h, &suites, &plans);
    assert!(
        done.iter().all(|o| o.outcome.is_ok()),
        "batching probe workload must commit fully"
    );
    let mut batches = 0u64;
    let mut records = 0u64;
    let mut batch_suites = 0u64;
    for s in SiteId::all(servers) {
        let stats = h.server_stats(s).expect("server");
        batches += stats.wal_batches;
        records += stats.wal_batched_records;
        batch_suites += stats.wal_batch_suites;
    }
    assert!(batches > 0, "group commit must have flushed at least once");
    (
        records as f64 / batches as f64,
        batch_suites as f64 / batches as f64,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eight_suites_scale_a_balanced_write_workload() {
        let one = run_cell(61, 1, BALANCED, 3, OPS_PER_CLIENT);
        let eight = run_cell(61, 8, BALANCED, 3, OPS_PER_CLIENT);
        let budget = (CLIENTS * OPS_PER_CLIENT) as u64;
        assert_eq!(one.ops_ok, budget, "every op must commit");
        assert_eq!(eight.ops_ok, budget);
        assert!(
            eight.ops_per_vsec >= 5.0 * one.ops_per_vsec,
            "8 suites must scale far past 1: {} vs {}",
            eight.ops_per_vsec,
            one.ops_per_vsec
        );
        assert!(
            eight.attempts_per_op < one.attempts_per_op,
            "sharding must cut the retry tax: {} vs {}",
            eight.attempts_per_op,
            one.attempts_per_op
        );
    }

    #[test]
    fn zipfian_skew_concentrates_traffic_on_the_hot_suite() {
        let c = run_cell(62, 8, ZIPF, 3, 32);
        assert!(
            c.hot_share() >= 0.30,
            "rank-0 must absorb over a third of zipfian traffic: {:?}",
            c.per_suite
        );
        let u = run_cell(62, 8, BALANCED, 3, 32);
        assert!(
            u.hot_share() < c.hot_share(),
            "uniform traffic must spread flatter: {} vs {}",
            u.hot_share(),
            c.hot_share()
        );
    }

    #[test]
    fn the_single_suite_path_is_byte_identical_to_default() {
        // The tentpole's regression pin: a harness built with an
        // explicit one-entry suite map must replay the whole workload
        // byte-identical — versions AND latencies — to the default
        // build that never mentions suites at all.
        let plans = draw_plans(63, BALANCED, 1, 8);
        let run = |explicit: bool| {
            let servers = 3;
            let mut b = Harness::builder()
                .seed(63)
                .quorum(QuorumSpec::new(2, 2))
                .net(NetConfig::uniform(
                    servers + CLIENTS,
                    LatencyModel::Constant(LINK),
                ))
                .client_options(ClientOptions {
                    pipeline_depth: Some(DEPTH),
                    max_attempts: MAX_ATTEMPTS,
                    backoff: BACKOFF,
                    backoff_cap: BACKOFF_CAP,
                    phase_timeout: PHASE_TIMEOUT,
                    ..ClientOptions::default()
                });
            if explicit {
                b = b.suites(vec![ObjectId(1)]);
            }
            for _ in 0..servers {
                b = b.site(SiteSpec::server(1));
            }
            for _ in 0..CLIENTS {
                b = b.client();
            }
            let mut h = b.build().expect("majority quorums are legal");
            let done = replay(&mut h, &[ObjectId(1)], &plans);
            assert!(done.iter().all(|o| o.outcome.is_ok()), "workload commits");
            format!("{done:?}")
        };
        assert_eq!(
            run(false),
            run(true),
            "explicit single-suite map must not perturb the op stream"
        );
    }

    #[test]
    fn group_commit_syncs_absorb_writes_to_several_suites() {
        let (records, suites) = wal_batch_summary(16);
        assert!(
            records > 1.0,
            "a 5 ms window over 16 concurrent writers must batch: {records}"
        );
        assert!(
            suites > 1.0,
            "batches must span suites on a multi-suite workload: {suites}"
        );
        assert!(
            records >= suites,
            "a batch cannot span more suites than it has records"
        );
    }

    #[test]
    fn the_report_carries_all_three_verdicts() {
        let report = run_with(OPS_PER_CLIENT);
        assert!(report.contains("## E15 — Multi-suite sharded keyspace"));
        assert_eq!(
            report.matches(": **yes**").count(),
            3,
            "all three sharding verdicts must hold:\n{report}"
        );
    }
}
