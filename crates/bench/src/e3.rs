//! E3 — weak representatives as caches.
//!
//! The paper's Example-1 setting: a workstation holding a zero-vote weak
//! representative next to a single voting file server. A mixed read/write
//! workload varies the update fraction; the report tracks the cache hit
//! ratio (reads completed by the validated optimistic fetch) and the mean
//! read latency, for both cache-fill strategies the paper sketches:
//! read-through (update the weak representative after a miss) and
//! push-on-write (the writer refreshes caches eagerly).

use wv_core::client::ClientOptions;
use wv_core::harness::{Harness, HarnessBuilder, SiteSpec};
use wv_core::quorum::QuorumSpec;
use wv_net::SiteId;
use wv_sim::{DetRng, SampleSet, SimDuration};

use crate::runner;
use crate::table::{ms, pct, Table};
use crate::topo::client_star;

/// One workload point.
#[derive(Clone, Copy, Debug)]
pub struct CachePoint {
    /// Fraction of operations that are writes.
    pub write_fraction: f64,
    /// Cache hit ratio among reads.
    pub hit_ratio: f64,
    /// Mean read latency (ms).
    pub read_ms: f64,
    /// Mean write latency (ms).
    pub write_ms: f64,
}

fn build(push_on_write: bool, seed: u64) -> Harness {
    build_with(push_on_write, true, seed)
}

fn build_with(push_on_write: bool, optimistic_fetch: bool, seed: u64) -> Harness {
    HarnessBuilder::new()
        .seed(seed)
        .site(SiteSpec::server(1))
        .site(SiteSpec::client_with_weak())
        .quorum(QuorumSpec::new(1, 1))
        .net(client_star(&[75.0], Some(65.0)))
        .client_options(ClientOptions {
            push_weak_on_write: push_on_write,
            optimistic_fetch,
            ..ClientOptions::default()
        })
        .build()
        .expect("cache topology is legal")
}

/// Mean read latency with the optimistic parallel fetch disabled (the
/// "separate inquiry round" ablation from DESIGN.md §6): every read pays
/// inquiry *then* fetch sequentially.
pub fn sequential_read_latency(ops: usize, seed: u64) -> f64 {
    let mut h = build_with(false, false, seed);
    let suite = h.suite_id();
    h.write(suite, b"x".to_vec()).expect("prime");
    h.advance(SimDuration::from_secs(1));
    let mut reads = SampleSet::new();
    for _ in 0..ops {
        let r = h.read(suite).expect("read");
        reads.record(r.latency.as_millis_f64());
        h.advance(SimDuration::from_secs(1));
    }
    reads.mean()
}

/// Runs `ops` operations with the given write fraction.
pub fn measure(write_fraction: f64, push_on_write: bool, ops: usize, seed: u64) -> CachePoint {
    let mut h = build(push_on_write, seed);
    let suite = h.suite_id();
    let mut rng = DetRng::new(seed ^ 0xCAFE);
    let mut reads = SampleSet::new();
    let mut writes = SampleSet::new();
    // Prime the suite so the first read has something to find.
    h.write(suite, b"initial".to_vec()).expect("prime write");
    h.advance(SimDuration::from_secs(1));
    for i in 0..ops {
        if rng.chance(write_fraction) {
            let w = h.write(suite, format!("v{i}").into_bytes()).expect("write");
            writes.record(w.latency.as_millis_f64());
        } else {
            let r = h.read(suite).expect("read");
            reads.record(r.latency.as_millis_f64());
        }
        h.advance(SimDuration::from_secs(1));
    }
    let stats = h.cluster().nodes[SiteId(1).index()]
        .as_client()
        .expect("client at site 1")
        .stats;
    let total_reads = stats.reads_cache_hit + stats.reads_fetched;
    CachePoint {
        write_fraction,
        hit_ratio: if total_reads == 0 {
            0.0
        } else {
            stats.reads_cache_hit as f64 / total_reads as f64
        },
        read_ms: reads.mean(),
        write_ms: writes.mean(),
    }
}

/// Builds the E3 report.
pub fn run() -> String {
    let mut out = String::new();
    out.push_str("## E3 — Weak representatives as caches\n\n");
    out.push_str(
        "Workstation weak representative (65 ms) beside one voting server \
         (75 ms), r = w = 1. Cache hits complete at max(inquiry, local \
         fetch) = 75 ms; misses pay an extra server fetch (150 ms).\n\n",
    );
    for (label, push) in [("read-through fills", false), ("push-on-write fills", true)] {
        let mut t = Table::new(
            format!("Cache behaviour vs update rate — {label}"),
            &[
                "write fraction",
                "hit ratio",
                "mean read (ms)",
                "mean write (ms)",
            ],
        );
        // Six independent 300-op workloads with fixed per-point seeds; fan
        // them out and render in point order.
        const WFS: [f64; 6] = [0.02, 0.05, 0.1, 0.2, 0.35, 0.5];
        let points = runner::run_tasks(WFS.len(), |i| measure(WFS[i], push, 300, 500 + i as u64));
        for p in points {
            t.row(&[
                format!("{:.2}", p.write_fraction),
                pct(p.hit_ratio),
                ms(p.read_ms),
                ms(p.write_ms),
            ]);
        }
        out.push_str(&t.to_markdown());
    }
    let sequential = sequential_read_latency(40, 900);
    out.push_str(&format!(
        "Ablation — inquiry piggybacking: with the optimistic parallel \
         fetch disabled, every read costs inquiry *plus* fetch \
         sequentially: {} ms mean vs 75 ms with the overlap (the paper's \
         validated-cache read). The overlap is what makes weak \
         representatives worth having.\n\n",
        ms(sequential)
    ));
    out.push_str(
        "Shape check: with read-through fills the hit ratio decays as \
         writes invalidate the cache more often; pushing on write keeps \
         reads at local latency at the cost of extra update traffic.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_ratio_decreases_with_write_rate_under_read_through() {
        let low = measure(0.05, false, 200, 1);
        let high = measure(0.5, false, 200, 1);
        assert!(
            low.hit_ratio > high.hit_ratio,
            "low-update hit {} should beat high-update hit {}",
            low.hit_ratio,
            high.hit_ratio
        );
    }

    #[test]
    fn push_on_write_keeps_hit_ratio_high() {
        let read_through = measure(0.3, false, 200, 2);
        let push = measure(0.3, true, 200, 2);
        assert!(
            push.hit_ratio >= read_through.hit_ratio,
            "push {} vs read-through {}",
            push.hit_ratio,
            read_through.hit_ratio
        );
        // With eager fills, essentially every read hits.
        assert!(push.hit_ratio > 0.95, "push hit ratio {}", push.hit_ratio);
    }

    #[test]
    fn hits_cost_the_verified_latency_misses_cost_double() {
        let p = measure(0.05, false, 150, 3);
        // Mean read sits between the 75 ms hit and 150 ms miss costs.
        assert!(p.read_ms >= 75.0 - 1e-6 && p.read_ms <= 150.0 + 1e-6);
        let eager = measure(0.05, true, 150, 3);
        assert!(
            (eager.read_ms - 75.0).abs() < 5.0,
            "eager mean {}",
            eager.read_ms
        );
    }

    #[test]
    fn disabling_the_overlap_costs_a_full_fetch_round() {
        // Sequential reads: inquiry (75) + cheapest-current fetch. The
        // weak rep is refreshed by the first read, so steady state fetches
        // locally (65): 140 ms.
        let seq = sequential_read_latency(20, 5);
        assert!((seq - 140.0).abs() < 8.0, "sequential mean {seq}");
    }

    #[test]
    fn report_mentions_both_strategies() {
        let report = run();
        assert!(report.contains("read-through fills"));
        assert!(report.contains("push-on-write fills"));
    }
}
