//! Parallel Monte-Carlo estimation on top of the deterministic trial runner.
//!
//! `wv_analysis::simulate_quorum_availability` is a tight sequential
//! sampling loop; the experiments call it with hundreds of thousands of
//! trials per table cell. [`availability`] splits such a request into
//! fixed-size chunks — one derived seed per chunk via
//! [`crate::runner::trial_seed`] — and fans the chunks out over the worker
//! pool. The chunking is a function of the trial count alone, never of the
//! worker count, so the estimate is bit-identical on any machine at any
//! parallelism.

use wv_analysis::simulate_quorum_availability;
use wv_core::votes::VoteAssignment;
use wv_sim::DetRng;

use crate::runner;

/// Trials per chunk: big enough that chunk overhead (one `DetRng`, one
/// result) vanishes, small enough that every core gets work on the trial
/// counts the experiments use (150k–400k).
const CHUNK: u64 = 12_500;

/// Monte-Carlo estimate of the probability that the up-site votes reach
/// `needed`, over `trials` samples fanned out in deterministic chunks.
///
/// Equivalent to one `simulate_quorum_availability` call with a per-chunk
/// derived seed; the result does not depend on the worker count.
pub fn availability(
    assignment: &VoteAssignment,
    needed: u32,
    up: &[f64],
    trials: u64,
    master_seed: u64,
) -> f64 {
    assert!(trials > 0, "need at least one trial");
    let n_chunks = trials.div_ceil(CHUNK) as usize;
    let estimates = runner::run_trials_indexed(master_seed, n_chunks, |i, seed| {
        let chunk_trials = CHUNK.min(trials - i as u64 * CHUNK);
        let mut rng = DetRng::new(seed);
        (
            simulate_quorum_availability(assignment, needed, up, chunk_trials, &mut rng),
            chunk_trials,
        )
    });
    let mut weighted = 0.0;
    for (est, chunk_trials) in estimates {
        weighted += est * chunk_trials as f64;
    }
    weighted / trials as f64
}

/// The blocking probability (`1 -` [`availability`]).
pub fn blocking(
    assignment: &VoteAssignment,
    needed: u32,
    up: &[f64],
    trials: u64,
    master_seed: u64,
) -> f64 {
    1.0 - availability(assignment, needed, up, trials, master_seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wv_analysis::quorum_availability;

    #[test]
    fn estimate_tracks_the_exact_value() {
        let a = VoteAssignment::equal(3);
        let up = [0.8, 0.7, 0.95];
        let exact = quorum_availability(&a, 2, &up);
        let est = availability(&a, 2, &up, 100_000, 42);
        assert!((est - exact).abs() < 0.01, "est {est} vs exact {exact}");
    }

    #[test]
    fn chunking_is_worker_independent() {
        // Same request at 1 worker and at the ambient pool size.
        let a = VoteAssignment::equal(5);
        let up = [0.9; 5];
        let ambient = availability(&a, 3, &up, 50_000, 7);
        let forced = {
            std::env::set_var("WV_TRIAL_THREADS", "1");
            let v = availability(&a, 3, &up, 50_000, 7);
            std::env::remove_var("WV_TRIAL_THREADS");
            v
        };
        assert_eq!(ambient.to_bits(), forced.to_bits());
    }

    #[test]
    fn partial_final_chunk_is_counted_once() {
        // 30k trials = 2 full chunks + one 5k chunk; weights must sum right.
        let a = VoteAssignment::equal(3);
        let up = [1.0; 3];
        assert_eq!(availability(&a, 2, &up, 30_000, 1), 1.0);
        assert_eq!(blocking(&a, 2, &up, 30_000, 1), 0.0);
    }
}
