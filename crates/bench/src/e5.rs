//! E5 — availability under site failures.
//!
//! Blocking probability as a function of per-site availability `p`, for
//! the paper's three example configurations plus five-site majority.
//! Three independent routes to each number:
//!
//! 1. exact subset enumeration (`wv_analysis::quorum_availability`),
//! 2. Monte-Carlo sampling of up/down patterns, and
//! 3. full-protocol trials: build the example cluster, crash a Bernoulli
//!    sample of server sites, and attempt a real read and write.

use wv_analysis::SystemModel;
use wv_core::harness::Harness;
use wv_core::quorum::QuorumSpec;
use wv_core::votes::VoteAssignment;
use wv_net::SiteId;
use wv_sim::DetRng;

use crate::runner;
use crate::table::{prob, Table};
use crate::{mc, topo};

/// Full-protocol blocking estimate for one example and one `p`.
///
/// Each trial crashes every *server* site independently with probability
/// `1 - p`, then attempts one write and one read (single attempt each, so
/// a blocked quorum maps to one failure, matching the analytic model).
///
/// Trials are independent — each builds its own cluster and draws its
/// crash pattern from a fork of its own derived seed — so they fan out
/// over the trial pool with a bit-identical tally at any worker count.
pub fn protocol_blocking(example: u32, p_up: f64, trials: u32, seed: u64) -> (f64, f64) {
    let outcomes = runner::run_trials(seed, trials as usize, |trial_seed| {
        let mut h = example_harness(example, trial_seed);
        let suite = h.suite_id();
        // Prime with one committed value while everything is up.
        h.write(suite, b"primed".to_vec()).expect("prime write");
        let mut crash_rng = DetRng::new(trial_seed).fork_named("crashes");
        for &s in &server_sites(example) {
            if !crash_rng.chance(p_up) {
                h.crash(s);
            }
        }
        let write_blocked = h.write(suite, b"probe".to_vec()).is_err();
        let read_blocked = h.read(suite).is_err();
        (read_blocked, write_blocked)
    });
    let read_blocked = outcomes.iter().filter(|(r, _)| *r).count() as f64;
    let write_blocked = outcomes.iter().filter(|(_, w)| *w).count() as f64;
    (
        read_blocked / f64::from(trials),
        write_blocked / f64::from(trials),
    )
}

// Retries against a crashed quorum are deterministically futile, so the
// default retry budget does not change whether an operation counts as
// blocked — it only stretches virtual time, which is free.
fn example_harness(example: u32, seed: u64) -> Harness {
    match example {
        1 => topo::example_1(seed),
        2 => topo::example_2(seed),
        3 => topo::example_3(seed),
        _ => panic!("unknown example {example}"),
    }
}

fn server_sites(example: u32) -> Vec<SiteId> {
    match example {
        // Example 1: only site 0 votes; sites 1 is a weak rep host.
        1 => vec![SiteId(0)],
        2 | 3 => vec![SiteId(0), SiteId(1), SiteId(2)],
        _ => panic!("unknown example {example}"),
    }
}

fn model_for(example: u32, p: f64) -> SystemModel {
    match example {
        1 => SystemModel::paper_example_1(p),
        2 => SystemModel::paper_example_2(p),
        3 => SystemModel::paper_example_3(p),
        _ => panic!("unknown example {example}"),
    }
}

/// Builds the E5 report.
pub fn run() -> String {
    let mut out = String::new();
    out.push_str("## E5 — Blocking probability vs per-site availability\n\n");
    let ps = [0.5, 0.7, 0.9, 0.95, 0.99];
    for example in 1..=3u32 {
        let mut t = Table::new(
            format!("Example {example}"),
            &[
                "p(site up)",
                "analytic P(read blk)",
                "MC P(read blk)",
                "protocol P(read blk)",
                "analytic P(write blk)",
                "MC P(write blk)",
                "protocol P(write blk)",
            ],
        );
        for (i, &p) in ps.iter().enumerate() {
            let m = model_for(example, p);
            let mc_seed = 9000 + u64::from(example) * 100 + i as u64;
            let mc_read = mc::blocking(
                &m.assignment,
                m.quorum.read,
                &m.up,
                200_000,
                runner::trial_seed(mc_seed, 0),
            );
            let mc_write = mc::blocking(
                &m.assignment,
                m.quorum.write,
                &m.up,
                200_000,
                runner::trial_seed(mc_seed, 1),
            );
            let (pr, pw) =
                protocol_blocking(example, p, 150, 31_000 + u64::from(example) * 37 + i as u64);
            t.row(&[
                format!("{p:.2}"),
                prob(m.read_blocking()),
                prob(mc_read),
                prob(pr),
                prob(m.write_blocking()),
                prob(mc_write),
                prob(pw),
            ]);
        }
        out.push_str(&t.to_markdown());
    }
    // Majority over five sites, analytic only (a reference curve).
    let mut t = Table::new(
        "Majority over five equal votes (reference)",
        &["p(site up)", "P(op blocked)"],
    );
    for &p in &ps {
        let m = SystemModel::with_uniform_up(
            VoteAssignment::equal(5),
            QuorumSpec::majority(5),
            vec![100.0; 5],
            p,
        );
        t.row(&[format!("{p:.2}"), prob(m.read_blocking())]);
    }
    out.push_str(&t.to_markdown());
    out.push_str(
        "Shape check: Example 3's read availability dominates everything \
         (any single surviving site serves reads) while its write \
         availability is the worst (write-all); Example 1 ties reads and \
         writes to one site; majority sits between.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn protocol_trials_match_analytic_example_1() {
        // Example 1 blocks iff the single voting site is down.
        let p = 0.7;
        let (pr, pw) = protocol_blocking(1, p, 200, 11);
        let expect = 1.0 - p;
        assert!((pr - expect).abs() < 0.12, "read {pr} vs {expect}");
        assert!((pw - expect).abs() < 0.12, "write {pw} vs {expect}");
    }

    #[test]
    fn protocol_trials_match_analytic_example_3() {
        let p = 0.8;
        let m = model_for(3, p);
        let (pr, pw) = protocol_blocking(3, p, 200, 13);
        assert!((pr - m.read_blocking()).abs() < 0.1, "read {pr}");
        assert!((pw - m.write_blocking()).abs() < 0.12, "write {pw}");
    }

    #[test]
    fn example_3_reads_beat_example_1_reads_at_every_p() {
        for p in [0.5, 0.7, 0.9, 0.99] {
            let e1 = model_for(1, p);
            let e3 = model_for(3, p);
            assert!(e3.read_blocking() < e1.read_blocking());
            // And the reverse for writes.
            assert!(e3.write_blocking() > e1.write_blocking());
        }
    }

    #[test]
    fn report_covers_every_p() {
        let report = run();
        for p in ["0.50", "0.70", "0.90", "0.95", "0.99"] {
            assert!(report.contains(p), "missing p = {p}");
        }
    }
}
