//! Plain-text waterfall rendering of operation traces.
//!
//! Input is a merged span record (see [`wv_sim::trace`], typically the
//! output of `Harness::take_trace`). Spans are grouped by their `op` field
//! — the request id of the operation's first attempt, which client spans
//! share and server spans (lock waits, WAL writes, applies) carry for the
//! attempt they served — and each group renders as one waterfall: a fixed
//! time window spanning the group, one line per span with an ASCII bar
//! showing where inside the window it ran. Spans with `op == 0`
//! (background repair traffic) collect under a trailing `background`
//! group.
//!
//! The rendering is a pure function of the span record, so traced runs
//! that are byte-identical stay byte-identical through this module.

use std::collections::BTreeMap;

use wv_sim::trace::{SpanRecord, NO_PARENT, NO_PEER, OPEN_END};

/// Width of the timeline bar, characters.
const BAR: usize = 32;

fn bar_line(window: (u64, u64), start: u64, end: u64) -> String {
    let (ws, we) = window;
    let span = (we - ws).max(1);
    let mut cells = vec![' '; BAR];
    let clamp = |t: u64| ((t.saturating_sub(ws)).min(span) as usize * (BAR - 1)) / span as usize;
    let a = clamp(start);
    if end == OPEN_END {
        // Still open at the end of the record: run the bar off the edge.
        for c in cells.iter_mut().take(BAR).skip(a) {
            *c = '~';
        }
    } else if end == start {
        cells[a] = '|';
    } else {
        let b = clamp(end);
        for c in cells.iter_mut().take(b + 1).skip(a) {
            *c = '=';
        }
    }
    cells.into_iter().collect()
}

fn span_line(s: &SpanRecord, depth: usize, window: (u64, u64)) -> String {
    let mut label = String::new();
    for _ in 0..depth {
        label.push_str("  ");
    }
    label.push_str(s.kind.name());
    if s.peer != NO_PEER {
        label.push_str(&format!("->s{}", s.peer));
    }
    let (end, dur) = if s.end_us == OPEN_END {
        ("open".to_string(), "?".to_string())
    } else {
        (s.end_us.to_string(), (s.end_us - s.start_us).to_string())
    };
    format!(
        "  {label:<24} [{}] {:>10}..{end:<10} {dur:>9}us  {}  s{} d={}\n",
        bar_line(window, s.start_us, s.end_us),
        s.start_us,
        s.outcome.name(),
        s.site,
        s.detail,
    )
}

fn render_tree(
    out: &mut String,
    spans: &[SpanRecord],
    children: &BTreeMap<u32, Vec<usize>>,
    idx: usize,
    depth: usize,
    window: (u64, u64),
) {
    let s = &spans[idx];
    out.push_str(&span_line(s, depth, window));
    if let Some(kids) = children.get(&s.id) {
        for &k in kids {
            render_tree(out, spans, children, k, depth + 1, window);
        }
    }
}

/// Renders a merged trace as per-operation waterfalls.
///
/// Groups are ordered by (earliest start, op id); `op == 0` spans render
/// last under a `background` header. Returns the empty string for an
/// empty record.
pub fn waterfall(spans: &[SpanRecord]) -> String {
    // Children sorted by index — creation order within a tracer, site
    // order across tracers; both deterministic.
    let mut children: BTreeMap<u32, Vec<usize>> = BTreeMap::new();
    let mut roots: Vec<usize> = Vec::new();
    for (i, s) in spans.iter().enumerate() {
        if s.parent == NO_PARENT {
            roots.push(i);
        } else {
            children.entry(s.parent).or_default().push(i);
        }
    }
    // Group root-level spans by op.
    let mut groups: BTreeMap<u64, Vec<usize>> = BTreeMap::new();
    for &i in &roots {
        groups.entry(spans[i].op).or_default().push(i);
    }
    // Order: by earliest start within the group, op id breaking ties;
    // background (op 0) last.
    let mut order: Vec<(u64, u64)> = groups
        .iter()
        .map(|(&op, idxs)| {
            let start = idxs.iter().map(|&i| spans[i].start_us).min().unwrap_or(0);
            (start, op)
        })
        .collect();
    order.sort_unstable_by_key(|&(start, op)| (op == 0, start, op));

    let mut out = String::new();
    for (_, op) in order {
        let idxs = &groups[&op];
        // The window covers the whole group, closed ends only.
        let subtree_bounds = |i: usize| {
            let mut lo = spans[i].start_us;
            let mut hi = spans[i].end_us;
            let mut stack = vec![i];
            while let Some(j) = stack.pop() {
                let s = &spans[j];
                lo = lo.min(s.start_us);
                if s.end_us != OPEN_END {
                    hi = if hi == OPEN_END {
                        s.end_us
                    } else {
                        hi.max(s.end_us)
                    };
                }
                if let Some(kids) = children.get(&s.id) {
                    stack.extend(kids.iter().copied());
                }
            }
            (lo, hi)
        };
        let mut ws = u64::MAX;
        let mut we = 0u64;
        for &i in idxs.iter() {
            let (lo, hi) = subtree_bounds(i);
            ws = ws.min(lo);
            if hi != OPEN_END {
                we = we.max(hi);
            }
        }
        if we <= ws {
            we = ws + 1;
        }
        if op == 0 {
            out.push_str(&format!("background  [{ws}..{we}]us\n"));
        } else {
            // The op root names the group when present.
            let head = idxs
                .iter()
                .map(|&i| &spans[i])
                .find(|s| s.kind.is_op_root());
            match head {
                Some(h) => out.push_str(&format!(
                    "op {:#x} {} client=s{} [{ws}..{we}]us {}\n",
                    op,
                    h.kind.name(),
                    h.site,
                    h.outcome.name()
                )),
                None => out.push_str(&format!("op {op:#x} [{ws}..{we}]us\n")),
            }
        }
        for &i in idxs.iter() {
            render_tree(&mut out, spans, &children, i, 0, (ws, we));
        }
        out.push('\n');
    }
    // Per-kind span census, so a glance at the tail answers "did this
    // run hedge / repair / group-commit at all?" without scrolling.
    if !spans.is_empty() {
        let mut counts: BTreeMap<&'static str, usize> = BTreeMap::new();
        for s in spans {
            *counts.entry(s.kind.name()).or_insert(0) += 1;
        }
        out.push_str(&format!("spans: {} total |", spans.len()));
        for (name, n) in &counts {
            out.push_str(&format!(" {name}={n}"));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use wv_sim::trace::{SpanKind, SpanOutcome, Tracer};
    use wv_sim::SimTime;

    fn t(us: u64) -> SimTime {
        SimTime::from_micros(us)
    }

    /// A handcrafted two-node write trace: inquiry fan-out, prepare,
    /// commit, plus a server lock wait and WAL write.
    fn sample() -> Vec<SpanRecord> {
        let mut client = Tracer::new(3);
        let root = client.start(SpanKind::Write, 1, 0x30001, None, None, 0, t(0));
        let inq = client.start(SpanKind::Inquiry, 1, 0x30001, Some(root), None, 0, t(0));
        let r0 = client.start(SpanKind::Rpc, 1, 0x30001, Some(inq), Some(0), 0, t(0));
        let r1 = client.start(SpanKind::Rpc, 1, 0x30001, Some(inq), Some(1), 0, t(0));
        client.end_with_detail(r0, t(150_000), SpanOutcome::Ok, 4);
        client.end_with_detail(r1, t(152_000), SpanOutcome::Ok, 4);
        client.end(inq, t(152_000), SpanOutcome::Ok);
        let prep = client.start(
            SpanKind::Prepare,
            1,
            0x30001,
            Some(root),
            None,
            0,
            t(152_000),
        );
        let p0 = client.start(
            SpanKind::Rpc,
            1,
            0x30001,
            Some(prep),
            Some(0),
            0,
            t(152_000),
        );
        client.end_with_detail(p0, t(300_000), SpanOutcome::Ok, 1);
        client.end(prep, t(300_000), SpanOutcome::Ok);
        let com = client.start(
            SpanKind::Commit,
            1,
            0x30001,
            Some(root),
            None,
            0,
            t(300_000),
        );
        let c0 = client.start(SpanKind::Rpc, 1, 0x30001, Some(com), Some(0), 0, t(300_000));
        client.end_with_detail(c0, t(450_000), SpanOutcome::Ok, 1);
        client.end(com, t(450_000), SpanOutcome::Ok);
        client.end(root, t(450_000), SpanOutcome::Ok);

        let mut server = Tracer::new(0);
        let lw = server.start(SpanKind::LockWait, 1, 0x30001, None, Some(3), 0, t(160_000));
        server.end(lw, t(220_000), SpanOutcome::Ok);
        server.event(SpanKind::WalWrite, 1, 0x30001, None, Some(3), 5, t(228_000));
        server.event(SpanKind::RepairPull, 1, 0, None, Some(1), 4, t(500_000));

        let mut merged = Vec::new();
        wv_sim::trace::rebase_merge(&mut merged, client.take());
        wv_sim::trace::rebase_merge(&mut merged, server.take());
        merged
    }

    #[test]
    fn waterfall_matches_golden() {
        let rendered = waterfall(&sample());
        let golden_path = concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/tests/golden/waterfall_write.txt"
        );
        if std::env::var("WV_BLESS").is_ok() {
            std::fs::write(golden_path, &rendered).expect("bless golden");
        }
        let golden = std::fs::read_to_string(golden_path).expect(
            "golden file exists; regenerate with WV_BLESS=1 cargo test -p wv-bench waterfall",
        );
        assert_eq!(rendered, golden, "waterfall drifted from golden");
    }

    #[test]
    fn waterfall_is_empty_on_empty_input() {
        assert_eq!(waterfall(&[]), "");
    }

    #[test]
    fn open_spans_render_without_panicking() {
        let mut tr = Tracer::new(1);
        tr.start(SpanKind::Read, 1, 7, None, None, 0, t(10));
        let rendered = waterfall(&tr.take());
        assert!(rendered.contains("open"));
        assert!(rendered.contains('~'));
    }
}
