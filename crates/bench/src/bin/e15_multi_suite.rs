//! Regenerates experiment E15 (see DESIGN.md §4). Prints the markdown
//! report to stdout and mirrors it into `results/e15.md` when a
//! `results/` directory exists in the working tree.

fn main() {
    let report = wv_bench::e15::run();
    print!("{report}");
    if std::path::Path::new("results").is_dir() {
        if let Err(e) = std::fs::write("results/e15.md", &report) {
            wv_sim::vlog::warn("bench", &format!("could not write results/e15.md: {e}"));
        }
    }
}
