//! Regenerates experiment E13 (see DESIGN.md §4). Prints the markdown
//! report to stdout and mirrors it into `results/e13.md` when a
//! `results/` directory exists in the working tree.

fn main() {
    let report = wv_bench::e13::run();
    print!("{report}");
    if std::path::Path::new("results").is_dir() {
        if let Err(e) = std::fs::write("results/e13.md", &report) {
            wv_sim::vlog::warn("bench", &format!("could not write results/e13.md: {e}"));
        }
    }
}
