//! Pretty-prints a JSONL trace as per-operation waterfalls.
//!
//! Usage: `trace2txt [FILE]` — reads the trace from `FILE`, or from stdin
//! when no argument (or `-`) is given, and writes the rendering of
//! [`wv_bench::tracefmt::waterfall`] to stdout.

use std::io::Read as _;

fn main() {
    let arg = std::env::args().nth(1);
    let input = match arg.as_deref() {
        None | Some("-") => {
            let mut buf = String::new();
            std::io::stdin()
                .read_to_string(&mut buf)
                .expect("read stdin");
            buf
        }
        Some(path) => std::fs::read_to_string(path).unwrap_or_else(|e| panic!("read {path}: {e}")),
    };
    let spans = match wv_sim::trace::from_jsonl(&input) {
        Ok(spans) => spans,
        Err(e) => {
            wv_sim::vlog::warn("trace2txt", &format!("malformed trace: {e}"));
            std::process::exit(1);
        }
    };
    print!("{}", wv_bench::tracefmt::waterfall(&spans));
}
