//! Machine-readable performance snapshot.
//!
//! Times a fixed workload — raw simulator event throughput, protocol
//! trials/sec through the parallel runner (sequential vs all-cores), and
//! client operations/sec with the quorum-plan cache — and writes
//! `BENCH_core.json` to the working directory (run it from the repo root).
//! Later PRs regenerate the file on the same machine to track the perf
//! trajectory; the absolute numbers are machine-dependent, the ratios are
//! not.
//!
//! The trial throughput is measured twice over the *same* seeds, pinned to
//! one worker and then to the machine's available parallelism, and the two
//! result vectors are asserted identical — every snapshot doubles as a
//! determinism check. On a single-core runner the two rates coincide; the
//! ≥2× parallel speedup shows up on multi-core hardware.

use std::time::Instant;

use wv_bench::{runner, topo};
use wv_core::client::ClientStats;
use wv_core::harness::{HarnessBuilder, SiteSpec};
use wv_core::quorum::QuorumSpec;
use wv_net::NetConfig;
use wv_sim::{LatencyModel, Scheduler, Sim, SimDuration};

/// Chained-event simulator throughput: `CHAINS` self-rescheduling events
/// keep a realistically sized heap busy for `EVENTS` pops.
fn sim_events_per_sec() -> f64 {
    const EVENTS: u64 = 2_000_000;
    const CHAINS: usize = 64;
    fn chain(world: &mut u64, sched: &mut Scheduler<u64>) {
        *world += 1;
        sched.after(SimDuration::from_micros(10), chain);
    }
    let mut sim = Sim::new(0u64);
    for _ in 0..CHAINS {
        sim.scheduler().immediately(chain);
    }
    let t = Instant::now();
    let executed = sim.run_capped(EVENTS);
    executed as f64 / t.elapsed().as_secs_f64()
}

/// One protocol trial: build the paper's Example 1 cluster and drive 25
/// write+read rounds — coarse enough (hundreds of microseconds) that the
/// fan-out's per-thread overhead is noise. Returns data that depends on the
/// whole exchange so the compiler cannot elide any of it.
fn trial(seed: u64) -> (u64, u64) {
    let mut h = topo::example_1(seed);
    let suite = h.suite_id();
    let mut micros = 0u64;
    let mut version = 0u64;
    for i in 0..25 {
        let w = h
            .write(suite, format!("snapshot-{i}").into_bytes())
            .expect("write succeeds");
        h.advance(SimDuration::from_secs(2));
        let r = h.read(suite).expect("read succeeds");
        h.advance(SimDuration::from_secs(2));
        micros += (w.latency + r.latency).as_micros();
        version = r.version.0;
    }
    (version, micros)
}

/// Trials/sec with the runner pinned to `workers` threads.
fn trial_throughput(workers: usize, trials: usize) -> (f64, Vec<(u64, u64)>) {
    std::env::set_var("WV_TRIAL_THREADS", workers.to_string());
    let t = Instant::now();
    let out = runner::run_trials(0xBE7C, trials, trial);
    let rate = trials as f64 / t.elapsed().as_secs_f64();
    std::env::remove_var("WV_TRIAL_THREADS");
    (rate, out)
}

/// Client operations/sec and plan-cache counters over the E1 measurement
/// workload (write / miss-read / hit-read rounds on one live cluster).
fn client_ops(rounds: usize) -> (f64, u64, u64) {
    let mut h = topo::example_1(7);
    let suite = h.suite_id();
    let t = Instant::now();
    let mut ops = 0u64;
    for i in 0..rounds {
        h.write(suite, format!("round-{i}").into_bytes())
            .expect("write succeeds");
        h.advance(SimDuration::from_secs(2));
        h.read(suite).expect("read succeeds");
        h.advance(SimDuration::from_secs(2));
        h.read(suite).expect("read succeeds");
        h.advance(SimDuration::from_secs(2));
        ops += 3;
    }
    let rate = ops as f64 / t.elapsed().as_secs_f64();
    let stats = h
        .client_stats(h.default_client())
        .expect("default client exists");
    (rate, stats.plan_cache_hits, stats.plan_cache_misses)
}

/// Retry-path counters under sustained link loss: the same write/read
/// round shape, but every phase can time out, so the snapshot records how
/// often the give-up machinery ran — the counters the chaos campaign
/// aggregates fleet-wide (`timeouts`, `retries`, `attempts_exhausted`).
fn faulted_client(rounds: usize) -> (u64, ClientStats) {
    use wv_core::client::ClientOptions;
    let mut net = NetConfig::uniform(4, LatencyModel::constant_millis(50));
    net.set_drop_all(0.25);
    let mut b = HarnessBuilder::new()
        .seed(0xFA17)
        .quorum(QuorumSpec::majority(3))
        .client_options(ClientOptions {
            phase_timeout: SimDuration::from_millis(800),
            max_attempts: 4,
            ..ClientOptions::default()
        })
        .net(net);
    for _ in 0..3 {
        b = b.site(SiteSpec::server(1));
    }
    let mut h = b.client().build().expect("legal cluster");
    let suite = h.suite_id();
    let mut ok = 0u64;
    for i in 0..rounds {
        if h.write(suite, format!("f{i}").into_bytes()).is_ok() {
            ok += 1;
        }
        h.advance(SimDuration::from_secs(2));
        if h.read(suite).is_ok() {
            ok += 1;
        }
        h.advance(SimDuration::from_secs(2));
    }
    let stats = h
        .client_stats(h.default_client())
        .expect("default client exists");
    (ok, stats)
}

fn main() {
    const TRIALS: usize = 192;
    const ROUNDS: usize = 1_000;
    const FAULT_ROUNDS: usize = 250;
    const HEALING_TRIALS: usize = 4;

    let events_per_sec = sim_events_per_sec();
    let (seq_rate, seq_out) = trial_throughput(1, TRIALS);
    let parallel_workers = std::thread::available_parallelism().map_or(1, usize::from);
    let (par_rate, par_out) = trial_throughput(parallel_workers, TRIALS);
    assert_eq!(
        seq_out, par_out,
        "parallel trial results must be bit-identical to sequential"
    );
    let (ops_per_sec, hits, misses) = client_ops(ROUNDS);
    let hit_rate = hits as f64 / (hits + misses).max(1) as f64;
    let (fault_ok, fault_stats) = faulted_client(FAULT_ROUNDS);
    // Self-healing layer counters over a slice of the E10 churn workload
    // (healing-on arm): proves the tracker, the reroutes, the hedges and
    // the repair daemon all fire outside the test suite too.
    let (_, healing) = wv_bench::e10::measure(0xE10, HEALING_TRIALS);

    let json = format!(
        "{{\n  \
         \"schema\": \"wv-perf-snapshot/1\",\n  \
         \"sim_events_per_sec\": {events_per_sec:.0},\n  \
         \"trials\": {{\n    \
         \"workload\": \"example-1 cluster, 25 write+read rounds per trial\",\n    \
         \"count\": {TRIALS},\n    \
         \"sequential_per_sec\": {seq_rate:.2},\n    \
         \"parallel_per_sec\": {par_rate:.2},\n    \
         \"parallel_workers\": {parallel_workers},\n    \
         \"speedup\": {speedup:.2},\n    \
         \"bit_identical\": true\n  \
         }},\n  \
         \"client\": {{\n    \
         \"workload\": \"example-1 write/read rounds x{ROUNDS}\",\n    \
         \"ops_per_sec\": {ops_per_sec:.2},\n    \
         \"plan_cache_hits\": {hits},\n    \
         \"plan_cache_misses\": {misses},\n    \
         \"plan_cache_hit_rate\": {hit_rate:.4}\n  \
         }},\n  \
         \"faulted_client\": {{\n    \
         \"workload\": \"3-server majority cluster, 25% link loss, write/read rounds x{FAULT_ROUNDS}\",\n    \
         \"ops_ok\": {fault_ok},\n    \
         \"retries\": {retries},\n    \
         \"timeouts\": {timeouts},\n    \
         \"attempts_exhausted\": {attempts_exhausted}\n  \
         }},\n  \
         \"self_healing\": {{\n    \
         \"workload\": \"E10 crash/recovery churn, healing-on arm x{HEALING_TRIALS} trials\",\n    \
         \"suspicions_raised\": {suspicions},\n    \
         \"plans_rerouted\": {reroutes},\n    \
         \"hedges_fired\": {hedges_fired},\n    \
         \"hedge_wins\": {hedge_wins},\n    \
         \"repairs_completed\": {repairs}\n  \
         }}\n}}\n",
        speedup = par_rate / seq_rate,
        retries = fault_stats.retries,
        timeouts = fault_stats.timeouts,
        attempts_exhausted = fault_stats.attempts_exhausted,
        suspicions = healing.suspicions,
        reroutes = healing.reroutes,
        hedges_fired = healing.hedges_fired,
        hedge_wins = healing.hedge_wins,
        repairs = healing.repairs,
    );
    print!("{json}");
    std::fs::write("BENCH_core.json", &json).expect("write BENCH_core.json");
    eprintln!("wrote BENCH_core.json");
}
