//! Machine-readable performance snapshot.
//!
//! Times a fixed workload — raw simulator event throughput, protocol
//! trials/sec through the parallel runner (sequential vs all-cores), and
//! client operations/sec with the quorum-plan cache — and writes
//! `BENCH_core.json` to the working directory (run it from the repo root).
//! Later PRs regenerate the file on the same machine to track the perf
//! trajectory; the absolute numbers are machine-dependent, the ratios are
//! not. The two headline wall-clock rates (`sim_events_per_sec`, client
//! `ops_per_sec`) are each the **median of 5** runs, so a single noisy
//! run on a shared machine cannot skew the committed baseline.
//!
//! The trial throughput is measured twice over the *same* seeds, pinned to
//! one worker and then to the machine's available parallelism, and the two
//! result vectors are asserted identical — every snapshot doubles as a
//! determinism check. On a single-core runner the two rates coincide; the
//! ≥2× parallel speedup shows up on multi-core hardware.
//!
//! `perf_snapshot --check` is the CI regression guard: it re-measures the
//! two headline medians plus the deterministic cache-tier and multi-suite
//! throughputs and compares them against the committed `BENCH_core.json`,
//! failing only on a >5× drop — coarse enough to ride out runner noise,
//! tight enough to catch an accidental O(n²) or a debug build sneaking
//! into the pipeline.

use std::time::Instant;

use wv_bench::{runner, topo};
use wv_core::client::{ClientOptions, ClientStats};
use wv_core::harness::{HarnessBuilder, SiteSpec};
use wv_core::quorum::QuorumSpec;
use wv_net::NetConfig;
use wv_sim::{LatencyModel, MetricsRegistry, Scheduler, Sim, SimDuration};

/// A fresh measurement may be this many times slower than the committed
/// baseline before `--check` fails the build.
const MAX_REGRESSION: f64 = 5.0;
/// Runs per headline wall-clock rate; the median is reported.
const MEDIAN_RUNS: usize = 5;

/// Per-client op budget for the E15 multi-suite cells the snapshot
/// replays (virtual-time, deterministic). The full E15 budget: at this
/// load the 8-way split's scaling sits well clear of the 4× floor.
const MULTI_SUITE_OPS: usize = 64;

/// Sharding the keyspace into 8 suites must multiply balanced-skew
/// aggregate throughput by at least this factor over one suite. E15
/// measures ≈6× on the same cells; the floor leaves slack so workload
/// retuning doesn't flap the snapshot, while still catching a suite
/// map that quietly stopped sharding the lock tables.
const MIN_SUITE_SCALING: f64 = 4.0;

/// Tracing must not cost more than this factor in client throughput; the
/// real overhead is a few percent (span pushes on an in-memory Vec), the
/// bound is generous because wall-clock rates on shared runners are noisy.
const MAX_TRACE_OVERHEAD: f64 = 3.0;

/// Auditing + telemetry must not cost more than this factor over the
/// traced arm: decisions append to an in-memory Vec and telemetry
/// increments window counters, both strictly cheaper than span
/// recording, so 1.5× already contains plenty of runner noise.
const MAX_AUDIT_OVERHEAD: f64 = 1.5;

/// Chained-event simulator throughput: `CHAINS` self-rescheduling events
/// keep a realistically sized heap busy for `EVENTS` pops.
fn sim_events_per_sec() -> f64 {
    const EVENTS: u64 = 2_000_000;
    const CHAINS: usize = 64;
    fn chain(world: &mut u64, sched: &mut Scheduler<u64>) {
        *world += 1;
        sched.after(SimDuration::from_micros(10), chain);
    }
    let mut sim = Sim::new(0u64);
    for _ in 0..CHAINS {
        sim.scheduler().immediately(chain);
    }
    let t = Instant::now();
    let executed = sim.run_capped(EVENTS);
    executed as f64 / t.elapsed().as_secs_f64()
}

/// One protocol trial: build the paper's Example 1 cluster and drive 25
/// write+read rounds — coarse enough (hundreds of microseconds) that the
/// fan-out's per-thread overhead is noise. Returns data that depends on the
/// whole exchange so the compiler cannot elide any of it.
fn trial(seed: u64) -> (u64, u64) {
    let mut h = topo::example_1(seed);
    let suite = h.suite_id();
    let mut micros = 0u64;
    let mut version = 0u64;
    for i in 0..25 {
        let w = h
            .write(suite, format!("snapshot-{i}").into_bytes())
            .expect("write succeeds");
        h.advance(SimDuration::from_secs(2));
        let r = h.read(suite).expect("read succeeds");
        h.advance(SimDuration::from_secs(2));
        micros += (w.latency + r.latency).as_micros();
        version = r.version.0;
    }
    (version, micros)
}

/// Trials/sec with the runner pinned to `workers` threads.
fn trial_throughput(workers: usize, trials: usize) -> (f64, Vec<(u64, u64)>) {
    std::env::set_var("WV_TRIAL_THREADS", workers.to_string());
    let t = Instant::now();
    let out = runner::run_trials(0xBE7C, trials, trial);
    let rate = trials as f64 / t.elapsed().as_secs_f64();
    std::env::remove_var("WV_TRIAL_THREADS");
    (rate, out)
}

/// Client operations/sec, plan-cache counters, and the virtual-time
/// latency histograms over the E1 measurement workload (write / miss-read
/// / hit-read rounds on one live cluster). With `traced` the same workload
/// runs with span recording on; the final element is the recorded trace
/// (empty untraced). With `audited` the quorum-decision audit log and
/// windowed telemetry ride along too — the fully instrumented arm.
fn client_ops(
    rounds: usize,
    traced: bool,
    audited: bool,
) -> (f64, u64, u64, MetricsRegistry, Vec<wv_sim::SpanRecord>) {
    let mut h = topo::example_1(7);
    if traced {
        h.enable_tracing();
    }
    if audited {
        h.enable_audit();
        h.enable_telemetry(wv_sim::TelemetryOptions::default());
    }
    let suite = h.suite_id();
    let mut reg = MetricsRegistry::new();
    let t = Instant::now();
    let mut ops = 0u64;
    for i in 0..rounds {
        let w = h
            .write(suite, format!("round-{i}").into_bytes())
            .expect("write succeeds");
        reg.observe_ms("write_ms", w.latency.as_micros() as f64 / 1000.0);
        h.advance(SimDuration::from_secs(2));
        // First read after a write misses the weak representative; the
        // second hits it.
        let miss = h.read(suite).expect("read succeeds");
        reg.observe_ms("read_miss_ms", miss.latency.as_micros() as f64 / 1000.0);
        h.advance(SimDuration::from_secs(2));
        let hit = h.read(suite).expect("read succeeds");
        reg.observe_ms("read_hit_ms", hit.latency.as_micros() as f64 / 1000.0);
        h.advance(SimDuration::from_secs(2));
        ops += 3;
    }
    let rate = ops as f64 / t.elapsed().as_secs_f64();
    let stats = h
        .client_stats(h.default_client())
        .expect("default client exists");
    let trace = if traced { h.take_trace() } else { Vec::new() };
    (
        rate,
        stats.plan_cache_hits,
        stats.plan_cache_misses,
        reg,
        trace,
    )
}

/// Critical-path extraction throughput over a real trace: spans consumed
/// per wall-clock second by `wv_analysis::critpath::extract`.
fn critpath_spans_per_sec(trace: &[wv_sim::SpanRecord]) -> f64 {
    const ITERS: usize = 20;
    assert!(!trace.is_empty(), "need a trace to profile");
    let t = Instant::now();
    let mut ops = 0usize;
    for _ in 0..ITERS {
        ops += std::hint::black_box(wv_analysis::critpath::extract(trace))
            .ops
            .len();
    }
    let secs = t.elapsed().as_secs_f64();
    assert!(ops > 0, "extraction found no ops");
    (trace.len() * ITERS) as f64 / secs
}

/// One histogram's fixed percentiles as a JSON object (`null` when the
/// series is too small to have a distribution).
fn pct_json(reg: &MetricsRegistry, name: &str) -> String {
    match reg.percentiles(name) {
        Some(p) => format!(
            "{{\"p50\": {:.3}, \"p90\": {:.3}, \"p99\": {:.3}, \"p999\": {:.3}}}",
            p.p50, p.p90, p.p99, p.p999
        ),
        None => "null".to_string(),
    }
}

/// Retry-path counters under sustained link loss: the same write/read
/// round shape, but every phase can time out, so the snapshot records how
/// often the give-up machinery ran — the counters the chaos campaign
/// aggregates fleet-wide (`timeouts`, `retries`, `attempts_exhausted`).
fn faulted_client(rounds: usize) -> (u64, ClientStats) {
    use wv_core::client::ClientOptions;
    let mut net = NetConfig::uniform(4, LatencyModel::constant_millis(50));
    net.set_drop_all(0.25);
    let mut b = HarnessBuilder::new()
        .seed(0xFA17)
        .quorum(QuorumSpec::majority(3))
        .client_options(ClientOptions {
            phase_timeout: SimDuration::from_millis(800),
            max_attempts: 4,
            ..ClientOptions::default()
        })
        .net(net);
    for _ in 0..3 {
        b = b.site(SiteSpec::server(1));
    }
    let mut h = b.client().build().expect("legal cluster");
    let suite = h.suite_id();
    let mut ok = 0u64;
    for i in 0..rounds {
        if h.write(suite, format!("f{i}").into_bytes()).is_ok() {
            ok += 1;
        }
        h.advance(SimDuration::from_secs(2));
        if h.read(suite).is_ok() {
            ok += 1;
        }
        h.advance(SimDuration::from_secs(2));
    }
    let stats = h
        .client_stats(h.default_client())
        .expect("default client exists");
    (ok, stats)
}

/// Median of [`MEDIAN_RUNS`] samples of a wall-clock rate.
fn median_of_runs(mut sample: impl FnMut() -> f64) -> f64 {
    let mut rates: Vec<f64> = (0..MEDIAN_RUNS).map(|_| sample()).collect();
    rates.sort_by(|a, b| a.partial_cmp(b).expect("rates are finite"));
    rates[rates.len() / 2]
}

/// Closed-loop client throughput in *virtual* time: one example-1 client
/// enqueues `ops` reads at once at window `depth`; returns committed
/// operations per virtual second. Deterministic (no wall clock), so the
/// pipelining speedup it reports is machine-independent.
fn pipelined_ops_per_vsec(depth: usize, ops: usize) -> f64 {
    let mut h = topo::example_1_with_options(
        11,
        ClientOptions {
            pipeline_depth: Some(depth),
            ..ClientOptions::default()
        },
    );
    let suite = h.suite_id();
    h.write(suite, b"throughput-seed".to_vec())
        .expect("seeding write");
    let client = h.default_client();
    let start = h.now();
    for _ in 0..ops {
        h.enqueue_read(client, suite, start);
    }
    h.run_until_quiet(50_000_000);
    let mut ok = 0u64;
    let mut last = start;
    for op in h.drain_completed(client) {
        if op.outcome.is_ok() {
            ok += 1;
            last = last.max(op.finished);
        }
    }
    assert_eq!(ok as usize, ops, "closed-loop reads must all commit");
    ok as f64 / (last.since(start).as_millis_f64() / 1000.0)
}

/// Recovery-scan throughput: commits `RECOVERY_TXS` one-put transactions
/// into a container (three WAL records each), crashes it, and times the
/// checksummed rescan + replay. Wall-clock records/sec; the scan CRCs
/// every frame, so this is the faulty-disk model's hot path — a recovering
/// replica cannot serve (or vote) until it finishes.
fn recovery_scan_records_per_sec() -> f64 {
    use wv_storage::{Container, ObjectId, Version};
    const RECOVERY_TXS: usize = 20_000;
    let mut c = Container::new();
    for i in 0..RECOVERY_TXS {
        let tx = c.begin().expect("healthy disk");
        c.stage_put(
            tx,
            ObjectId(1 + (i as u64 % 16)),
            Version(1 + i as u64),
            format!("recovery-{i}").into_bytes(),
        )
        .expect("healthy disk");
        c.commit(tx).expect("healthy disk");
    }
    c.crash();
    let t = Instant::now();
    let outcome = c.recover();
    let secs = t.elapsed().as_secs_f64();
    assert!(
        !outcome.torn_tail && !outcome.corrupt_interior,
        "an honest crash must rescan clean"
    );
    outcome.replayed_records as f64 / secs
}

/// Pulls `"key": <number>` out of a flat JSON document (first match).
/// Good enough for the snapshot's own output; avoids a JSON dependency.
fn json_number(doc: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let at = doc.find(&needle)? + needle.len();
    let rest = doc[at..].trim_start();
    let end = rest
        .find(|c: char| c != '-' && c != '.' && !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// `--check`: re-measure the two headline medians and fail on a >5× drop
/// against the committed `BENCH_core.json`.
fn check_against_baseline() -> ! {
    let doc = std::fs::read_to_string("BENCH_core.json")
        .expect("--check needs BENCH_core.json in the working directory");
    let mut failed = false;
    let fresh = [
        ("sim_events_per_sec", median_of_runs(sim_events_per_sec)),
        (
            "ops_per_sec",
            median_of_runs(|| client_ops(200, false, false).0),
        ),
        ("critpath_spans_per_sec", {
            let trace = client_ops(200, true, false).4;
            median_of_runs(|| critpath_spans_per_sec(&trace))
        }),
        // Virtual-time, so this one is deterministic: a drop past the
        // floor is a real regression in the cache tier, never noise.
        (
            "cache_lease_ops_per_vsec",
            wv_bench::e13::throughput_summary(64).2,
        ),
        // Also virtual-time: the 8-suite aggregate rate only drops if
        // sharding itself regressed.
        (
            "eight_suite_ops_per_vsec",
            wv_bench::e15::scaling_summary(MULTI_SUITE_OPS).1,
        ),
        (
            "recovery_scan_records_per_sec",
            median_of_runs(recovery_scan_records_per_sec),
        ),
    ];
    for (key, now) in fresh {
        let committed = json_number(&doc, key)
            .unwrap_or_else(|| panic!("BENCH_core.json has no numeric \"{key}\""));
        let floor = committed / MAX_REGRESSION;
        let verdict = if now < floor { "FAIL" } else { "ok" };
        println!(
            "perf-check {key}: committed {committed:.0}, fresh {now:.0}, floor {floor:.0} — {verdict}"
        );
        failed |= now < floor;
    }
    std::process::exit(i32::from(failed));
}

fn main() {
    const TRIALS: usize = 192;
    const ROUNDS: usize = 1_000;
    const FAULT_ROUNDS: usize = 250;
    const HEALING_TRIALS: usize = 4;
    const PIPE_OPS: usize = 64;
    const CACHE_OPS: usize = 64;

    if std::env::args().any(|a| a == "--check") {
        check_against_baseline();
    }

    let events_per_sec = median_of_runs(sim_events_per_sec);
    let (seq_rate, seq_out) = trial_throughput(1, TRIALS);
    let parallel_workers = std::thread::available_parallelism().map_or(1, usize::from);
    let (par_rate, par_out) = trial_throughput(parallel_workers, TRIALS);
    assert_eq!(
        seq_out, par_out,
        "parallel trial results must be bit-identical to sequential"
    );
    let ops_per_sec = median_of_runs(|| client_ops(ROUNDS, false, false).0);
    let (_, hits, misses, reg, _) = client_ops(ROUNDS, false, false);
    let hit_rate = hits as f64 / (hits + misses).max(1) as f64;
    // Virtual-time pipelining curve: deterministic, so the ≥2× window
    // speedup is a hard promise, not a flaky wall-clock observation.
    let depth1_vsec = pipelined_ops_per_vsec(1, PIPE_OPS);
    let depth8_vsec = pipelined_ops_per_vsec(8, PIPE_OPS);
    let pipeline_speedup = depth8_vsec / depth1_vsec;
    assert!(
        pipeline_speedup >= 2.0,
        "depth-8 pipelining must at least double closed-loop throughput, got {pipeline_speedup:.2}x"
    );
    // Cache-tier throughput off the E13 depth-4 cells: virtual-time, so
    // the ≥5× quorum-free speedup is a hard promise of the lease mode.
    let (cache_uncached, cache_validated, cache_lease) =
        wv_bench::e13::throughput_summary(CACHE_OPS);
    let cache_speedup = cache_lease / cache_uncached;
    assert!(
        cache_speedup >= 5.0,
        "lease-mode cache tier must beat the uncached arm 5x, got {cache_speedup:.2}x"
    );
    // Multi-suite sharding off the E15 balanced cells: virtual-time, so
    // the ≥4× aggregate-scaling floor is a hard promise of the sharded
    // lock tables, and the group-commit probe reports how many records
    // (and distinct suites) one durable flush absorbs.
    let (suite1_vsec, suite8_vsec) = wv_bench::e15::scaling_summary(MULTI_SUITE_OPS);
    let suite_scaling = suite8_vsec / suite1_vsec;
    assert!(
        suite_scaling >= MIN_SUITE_SCALING,
        "8-suite sharding must scale aggregate throughput {MIN_SUITE_SCALING}x, got {suite_scaling:.2}x"
    );
    let (wal_records_per_batch, wal_suites_per_batch) =
        wv_bench::e15::wal_batch_summary(MULTI_SUITE_OPS);
    let ops_per_sec_traced = median_of_runs(|| client_ops(ROUNDS, true, false).0);
    let trace = client_ops(ROUNDS, true, false).4;
    let spans_recorded = trace.len();
    let trace_overhead = ops_per_sec / ops_per_sec_traced;
    assert!(
        trace_overhead <= MAX_TRACE_OVERHEAD,
        "tracing overhead ratio {trace_overhead:.2} exceeds the {MAX_TRACE_OVERHEAD}x bound"
    );
    // Analytics layer: full instrumentation (trace + audit + telemetry)
    // vs tracing alone, and critical-path extraction throughput over the
    // trace the workload just produced.
    let ops_per_sec_instrumented = median_of_runs(|| client_ops(ROUNDS, true, true).0);
    let audit_overhead = ops_per_sec_traced / ops_per_sec_instrumented;
    assert!(
        audit_overhead <= MAX_AUDIT_OVERHEAD,
        "audit overhead ratio {audit_overhead:.2} exceeds the {MAX_AUDIT_OVERHEAD}x bound"
    );
    let critpath_rate = median_of_runs(|| critpath_spans_per_sec(&trace));
    let critpath_ops = wv_analysis::critpath::extract(&trace).ops.len();
    let (fault_ok, fault_stats) = faulted_client(FAULT_ROUNDS);
    let recovery_scan = median_of_runs(recovery_scan_records_per_sec);
    // Self-healing layer counters over a slice of the E10 churn workload
    // (healing-on arm): proves the tracker, the reroutes, the hedges and
    // the repair daemon all fire outside the test suite too.
    let (_, healing) = wv_bench::e10::measure(0xE10, HEALING_TRIALS);

    let json = format!(
        "{{\n  \
         \"schema\": \"wv-perf-snapshot/7\",\n  \
         \"median_runs\": {MEDIAN_RUNS},\n  \
         \"sim_events_per_sec\": {events_per_sec:.0},\n  \
         \"trials\": {{\n    \
         \"workload\": \"example-1 cluster, 25 write+read rounds per trial\",\n    \
         \"count\": {TRIALS},\n    \
         \"sequential_per_sec\": {seq_rate:.2},\n    \
         \"parallel_per_sec\": {par_rate:.2},\n    \
         \"parallel_workers\": {parallel_workers},\n    \
         \"speedup\": {speedup:.2},\n    \
         \"bit_identical\": true\n  \
         }},\n  \
         \"client\": {{\n    \
         \"workload\": \"example-1 write/read rounds x{ROUNDS}\",\n    \
         \"ops_per_sec\": {ops_per_sec:.2},\n    \
         \"plan_cache_hits\": {hits},\n    \
         \"plan_cache_misses\": {misses},\n    \
         \"plan_cache_hit_rate\": {hit_rate:.4}\n  \
         }},\n  \
         \"throughput\": {{\n    \
         \"workload\": \"example-1 closed loop, {PIPE_OPS} reads enqueued at once, virtual-time rate\",\n    \
         \"depth1_ops_per_vsec\": {depth1_vsec:.2},\n    \
         \"depth8_ops_per_vsec\": {depth8_vsec:.2},\n    \
         \"pipeline_speedup\": {pipeline_speedup:.2}\n  \
         }},\n  \
         \"cache_tier\": {{\n    \
         \"workload\": \"E13 read-dominant zipfian sweep, depth-4 cells, {CACHE_OPS} ops per client, virtual-time rate\",\n    \
         \"cache_uncached_ops_per_vsec\": {cache_uncached:.2},\n    \
         \"cache_validated_ops_per_vsec\": {cache_validated:.2},\n    \
         \"cache_lease_ops_per_vsec\": {cache_lease:.2},\n    \
         \"cache_speedup\": {cache_speedup:.2}\n  \
         }},\n  \
         \"multi_suite\": {{\n    \
         \"workload\": \"E15 balanced-skew cells, 3 servers, 16 clients, {MULTI_SUITE_OPS} ops per client, virtual-time rate\",\n    \
         \"single_suite_ops_per_vsec\": {suite1_vsec:.2},\n    \
         \"eight_suite_ops_per_vsec\": {suite8_vsec:.2},\n    \
         \"suite_scaling\": {suite_scaling:.2},\n    \
         \"min_suite_scaling\": {MIN_SUITE_SCALING},\n    \
         \"wal_records_per_batch\": {wal_records_per_batch:.2},\n    \
         \"wal_suites_per_batch\": {wal_suites_per_batch:.2}\n  \
         }},\n  \
         \"latency_histograms\": {{\n    \
         \"source\": \"virtual-time op latencies, log-bucketed (MetricsRegistry)\",\n    \
         \"write_ms\": {write_pct},\n    \
         \"read_miss_ms\": {miss_pct},\n    \
         \"read_hit_ms\": {hit_pct}\n  \
         }},\n  \
         \"tracing\": {{\n    \
         \"workload\": \"same client workload with span recording enabled\",\n    \
         \"ops_per_sec\": {ops_per_sec_traced:.2},\n    \
         \"overhead_ratio\": {trace_overhead:.3},\n    \
         \"max_overhead_ratio\": {MAX_TRACE_OVERHEAD},\n    \
         \"spans_recorded\": {spans_recorded}\n  \
         }},\n  \
         \"analytics\": {{\n    \
         \"workload\": \"critical-path extraction + audit/telemetry over the traced client workload\",\n    \
         \"critpath_spans_per_sec\": {critpath_rate:.0},\n    \
         \"critpath_ops_profiled\": {critpath_ops},\n    \
         \"ops_per_sec_instrumented\": {ops_per_sec_instrumented:.2},\n    \
         \"audit_overhead_ratio\": {audit_overhead:.3},\n    \
         \"max_audit_overhead_ratio\": {MAX_AUDIT_OVERHEAD}\n  \
         }},\n  \
         \"disk_faults\": {{\n    \
         \"workload\": \"crash + checksummed rescan of a 20000-transaction WAL (3 records/tx)\",\n    \
         \"recovery_scan_records_per_sec\": {recovery_scan:.0}\n  \
         }},\n  \
         \"faulted_client\": {{\n    \
         \"workload\": \"3-server majority cluster, 25% link loss, write/read rounds x{FAULT_ROUNDS}\",\n    \
         \"ops_ok\": {fault_ok},\n    \
         \"retries\": {retries},\n    \
         \"timeouts\": {timeouts},\n    \
         \"attempts_exhausted\": {attempts_exhausted}\n  \
         }},\n  \
         \"self_healing\": {{\n    \
         \"workload\": \"E10 crash/recovery churn, healing-on arm x{HEALING_TRIALS} trials\",\n    \
         \"suspicions_raised\": {suspicions},\n    \
         \"plans_rerouted\": {reroutes},\n    \
         \"hedges_fired\": {hedges_fired},\n    \
         \"hedge_wins\": {hedge_wins},\n    \
         \"repairs_completed\": {repairs}\n  \
         }}\n}}\n",
        speedup = par_rate / seq_rate,
        write_pct = pct_json(&reg, "write_ms"),
        miss_pct = pct_json(&reg, "read_miss_ms"),
        hit_pct = pct_json(&reg, "read_hit_ms"),
        retries = fault_stats.retries,
        timeouts = fault_stats.timeouts,
        attempts_exhausted = fault_stats.attempts_exhausted,
        suspicions = healing.suspicions,
        reroutes = healing.reroutes,
        hedges_fired = healing.hedges_fired,
        hedge_wins = healing.hedge_wins,
        repairs = healing.repairs,
    );
    print!("{json}");
    std::fs::write("BENCH_core.json", &json).expect("write BENCH_core.json");
    wv_sim::vlog::info("perf_snapshot", "wrote BENCH_core.json");
}
