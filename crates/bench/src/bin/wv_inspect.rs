//! Trace-analytics CLI: critical paths, decision explains, SLO burn,
//! and Chrome-trace export over deterministic run artifacts.
//!
//! ```text
//! wv-inspect capture [--seed N] [--trials N] [--rounds N] [--out DIR]
//! wv-inspect critpath FILE
//! wv-inspect explain FILE [--op ID]
//! wv-inspect slo FILE [--target-ms N] [--window-ms N]
//! wv-inspect chrome FILE
//! ```
//!
//! `FILE` is a replay artifact (one JSON object with `"trace"` /
//! `"audit"` arrays, e.g. `results/e9_repro.json`), raw trace or audit
//! JSONL, or `-` for stdin; the shape is auto-detected. `capture` runs a
//! fresh instrumented Example-1 workload and writes `trace.jsonl`,
//! `audit.jsonl`, and `telemetry.txt` into `--out` (default
//! `inspect_out`). All reports are pure functions of their input, so
//! they are byte-identical across hosts and worker counts.

use std::io::Read as _;
use std::process::exit;

fn usage() -> ! {
    eprintln!(
        "usage: wv-inspect capture [--seed N] [--trials N] [--rounds N] [--out DIR]\n\
         \x20      wv-inspect critpath FILE\n\
         \x20      wv-inspect explain FILE [--op ID]\n\
         \x20      wv-inspect slo FILE [--target-ms N] [--window-ms N]\n\
         \x20      wv-inspect chrome FILE\n\
         FILE: replay artifact or JSONL; '-' reads stdin"
    );
    exit(2);
}

fn read_input(path: &str) -> String {
    if path == "-" {
        let mut buf = String::new();
        std::io::stdin()
            .read_to_string(&mut buf)
            .expect("read stdin");
        buf
    } else {
        std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("wv-inspect: read {path}: {e}");
            exit(1);
        })
    }
}

fn ingest(path: &str) -> wv_bench::inspect::Ingested {
    wv_bench::inspect::ingest(&read_input(path)).unwrap_or_else(|e| {
        eprintln!("wv-inspect: {path}: {e}");
        exit(1);
    })
}

/// Pulls `--flag value` pairs out of the arg list; leftovers are
/// positional.
fn parse_flags(args: &[String], known: &[&str]) -> (Vec<String>, Vec<(String, String)>) {
    let mut positional = Vec::new();
    let mut flags = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if let Some(name) = a.strip_prefix("--") {
            if !known.contains(&name) {
                eprintln!("wv-inspect: unknown flag --{name}");
                usage();
            }
            match it.next() {
                Some(v) => flags.push((name.to_string(), v.clone())),
                None => {
                    eprintln!("wv-inspect: --{name} needs a value");
                    usage();
                }
            }
        } else {
            positional.push(a.clone());
        }
    }
    (positional, flags)
}

fn flag_u64(flags: &[(String, String)], name: &str, default: u64) -> u64 {
    flags
        .iter()
        .rev()
        .find(|(n, _)| n == name)
        .map(|(_, v)| parse_int(v))
        .unwrap_or(default)
}

fn parse_int(v: &str) -> u64 {
    let parsed = match v.strip_prefix("0x") {
        Some(hex) => u64::from_str_radix(hex, 16),
        None => v.parse(),
    };
    parsed.unwrap_or_else(|_| {
        eprintln!("wv-inspect: bad integer {v:?}");
        exit(2);
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first().map(String::as_str) else {
        usage();
    };
    let rest = &args[1..];
    match cmd {
        "capture" => {
            let (pos, flags) = parse_flags(rest, &["seed", "trials", "rounds", "out"]);
            if !pos.is_empty() {
                usage();
            }
            let seed = flag_u64(&flags, "seed", 0x1257EC7);
            let trials = flag_u64(&flags, "trials", 4) as usize;
            let rounds = flag_u64(&flags, "rounds", 5) as u32;
            let out = flags
                .iter()
                .rev()
                .find(|(n, _)| n == "out")
                .map(|(_, v)| v.clone())
                .unwrap_or_else(|| "inspect_out".to_string());
            let cap = wv_bench::inspect::capture_e1(seed, trials, rounds);
            std::fs::create_dir_all(&out).expect("create output dir");
            std::fs::write(format!("{out}/trace.jsonl"), &cap.trace_jsonl).expect("write trace");
            std::fs::write(format!("{out}/audit.jsonl"), &cap.audit_jsonl).expect("write audit");
            std::fs::write(format!("{out}/telemetry.txt"), &cap.telemetry)
                .expect("write telemetry");
            println!(
                "captured {} trial(s): {out}/trace.jsonl {out}/audit.jsonl {out}/telemetry.txt",
                trials
            );
        }
        "critpath" => {
            let (pos, _) = parse_flags(rest, &[]);
            let [file] = pos.as_slice() else { usage() };
            print!(
                "{}",
                wv_bench::inspect::critpath_report(&ingest(file).spans)
            );
        }
        "explain" => {
            let (pos, flags) = parse_flags(rest, &["op"]);
            let [file] = pos.as_slice() else { usage() };
            let op = flags
                .iter()
                .rev()
                .find(|(n, _)| n == "op")
                .map(|(_, v)| parse_int(v));
            print!(
                "{}",
                wv_bench::inspect::explain_report(&ingest(file).audit, op)
            );
        }
        "slo" => {
            let (pos, flags) = parse_flags(rest, &["target-ms", "window-ms"]);
            let [file] = pos.as_slice() else { usage() };
            let target = flag_u64(&flags, "target-ms", 500);
            let window = flag_u64(&flags, "window-ms", 4000);
            print!(
                "{}",
                wv_bench::inspect::slo_report(&ingest(file).spans, target, window)
            );
        }
        "chrome" => {
            let (pos, _) = parse_flags(rest, &[]);
            let [file] = pos.as_slice() else { usage() };
            println!("{}", wv_bench::inspect::chrome_trace(&ingest(file).spans));
        }
        _ => usage(),
    }
}
