//! Criterion bench: the lock manager's hot paths.
//!
//! Uncontended grant/release, contended queueing with promotion, the
//! wait-die vs no-wait policy cost under a conflict storm, and the
//! suite-sharded table's hot paths: suite-map lookup, per-suite lock
//! acquisition as the same storm spreads over more suites, and the
//! multi-shard release of a cross-suite transaction.

use criterion::{criterion_group, criterion_main, Criterion};
use wv_storage::ObjectId;
use wv_txn::lock::{DeadlockPolicy, LockManager, LockMode, TxToken};
use wv_txn::{shard_key, ShardedLockManager};

fn bench_locks(c: &mut Criterion) {
    let mut group = c.benchmark_group("lock_manager");

    group.bench_function("uncontended_grant_release", |b| {
        b.iter(|| {
            let mut lm = LockManager::default();
            for i in 0..100u64 {
                let t = TxToken::new(i, i);
                lm.lock(t, ObjectId(i % 8), LockMode::Exclusive);
                lm.release_all(t);
            }
            criterion::black_box(lm.is_quiescent())
        });
    });

    group.bench_function("shared_readers_pile_on", |b| {
        b.iter(|| {
            let mut lm = LockManager::default();
            for i in 0..100u64 {
                lm.lock(TxToken::new(i, i), ObjectId(1), LockMode::Shared);
            }
            for i in 0..100u64 {
                lm.release_all(TxToken::new(i, i));
            }
            criterion::black_box(lm.stats().granted)
        });
    });

    group.bench_function("contended_queue_promotion", |b| {
        b.iter(|| {
            let mut lm = LockManager::default();
            // Youngest first so elders queue behind it, then promote in
            // a cascade as each holder releases.
            for i in (0..50u64).rev() {
                lm.lock(TxToken::new(i, i), ObjectId(1), LockMode::Exclusive);
            }
            for i in (0..50u64).rev() {
                lm.release_all(TxToken::new(i, i));
            }
            criterion::black_box(lm.stats().promoted)
        });
    });

    for (name, policy) in [
        ("waitdie_conflict_storm", DeadlockPolicy::WaitDie),
        ("nowait_conflict_storm", DeadlockPolicy::NoWait),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut lm = LockManager::new(policy);
                for i in 0..200u64 {
                    let t = TxToken::new(i, i);
                    lm.lock(t, ObjectId(i % 4), LockMode::Exclusive);
                    if i % 3 == 0 {
                        lm.release_all(t);
                    }
                }
                criterion::black_box(lm.stats().aborted)
            });
        });
    }
    group.finish();
}

fn bench_sharded(c: &mut Criterion) {
    /// Mirrors `wv_core::suite::CONFIG_TAG`: the top-bit tag that sends a
    /// suite's config object to the same shard as its data object.
    const CONFIG_TAG: u64 = 1 << 63;

    let mut group = c.benchmark_group("sharded_lock_manager");

    // Suite-map lookup: strip the config tag, hash into the shard map,
    // probe the shard — the path every server request crosses before it
    // can touch a lock, over a 64-suite table.
    group.bench_function("suite_map_lookup", |b| {
        let mut lm = ShardedLockManager::default();
        for s in 1..=64u64 {
            lm.lock(TxToken::new(s, s), ObjectId(s), LockMode::Shared);
        }
        b.iter(|| {
            let mut held = 0usize;
            for s in 1..=64u64 {
                let data = shard_key(criterion::black_box(ObjectId(s)));
                let cfg = shard_key(criterion::black_box(ObjectId(s | CONFIG_TAG)));
                held += lm.holder_count(data) + lm.holder_count(cfg);
            }
            criterion::black_box(held)
        });
    });

    // Per-suite acquisition: the identical 256-grant exclusive storm
    // against one shared suite vs spread over 8 shards. The spread pays
    // extra shard-map entries but each grant works a smaller table.
    for (name, suites) in [
        ("per_suite_acquire_1_suite", 1u64),
        ("per_suite_acquire_8_suites", 8u64),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut lm = ShardedLockManager::default();
                for i in 0..256u64 {
                    let t = TxToken::new(i, i);
                    lm.lock(t, ObjectId(1 + i % suites), LockMode::Exclusive);
                    lm.release_all(t);
                }
                criterion::black_box(lm.shard_count())
            });
        });
    }

    // Cross-suite release: one transaction holding a lock in each of 8
    // shards, with a waiter queued behind every one — release must visit
    // all touched shards and merge the promotions into global order.
    group.bench_function("cross_suite_release", |b| {
        b.iter(|| {
            let mut lm = ShardedLockManager::default();
            let holder = TxToken::new(0, 0);
            for s in 1..=8u64 {
                lm.lock(holder, ObjectId(s), LockMode::Exclusive);
                lm.lock(TxToken::new(s, s), ObjectId(s), LockMode::Shared);
            }
            let granted = lm.release_all(holder);
            criterion::black_box(granted.len())
        });
    });
    group.finish();
}

criterion_group!(benches, bench_locks, bench_sharded);
criterion_main!(benches);
