//! Criterion bench: the lock manager's hot paths.
//!
//! Uncontended grant/release, contended queueing with promotion, and the
//! wait-die vs no-wait policy cost under a conflict storm.

use criterion::{criterion_group, criterion_main, Criterion};
use wv_storage::ObjectId;
use wv_txn::lock::{DeadlockPolicy, LockManager, LockMode, TxToken};

fn bench_locks(c: &mut Criterion) {
    let mut group = c.benchmark_group("lock_manager");

    group.bench_function("uncontended_grant_release", |b| {
        b.iter(|| {
            let mut lm = LockManager::default();
            for i in 0..100u64 {
                let t = TxToken::new(i, i);
                lm.lock(t, ObjectId(i % 8), LockMode::Exclusive);
                lm.release_all(t);
            }
            criterion::black_box(lm.is_quiescent())
        });
    });

    group.bench_function("shared_readers_pile_on", |b| {
        b.iter(|| {
            let mut lm = LockManager::default();
            for i in 0..100u64 {
                lm.lock(TxToken::new(i, i), ObjectId(1), LockMode::Shared);
            }
            for i in 0..100u64 {
                lm.release_all(TxToken::new(i, i));
            }
            criterion::black_box(lm.stats().granted)
        });
    });

    group.bench_function("contended_queue_promotion", |b| {
        b.iter(|| {
            let mut lm = LockManager::default();
            // Youngest first so elders queue behind it, then promote in
            // a cascade as each holder releases.
            for i in (0..50u64).rev() {
                lm.lock(TxToken::new(i, i), ObjectId(1), LockMode::Exclusive);
            }
            for i in (0..50u64).rev() {
                lm.release_all(TxToken::new(i, i));
            }
            criterion::black_box(lm.stats().promoted)
        });
    });

    for (name, policy) in [
        ("waitdie_conflict_storm", DeadlockPolicy::WaitDie),
        ("nowait_conflict_storm", DeadlockPolicy::NoWait),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut lm = LockManager::new(policy);
                for i in 0..200u64 {
                    let t = TxToken::new(i, i);
                    lm.lock(t, ObjectId(i % 4), LockMode::Exclusive);
                    if i % 3 == 0 {
                        lm.release_all(t);
                    }
                }
                criterion::black_box(lm.stats().aborted)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_locks);
criterion_main!(benches);
