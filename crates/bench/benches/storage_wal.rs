//! Criterion bench: container commit throughput and recovery replay.

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use wv_storage::{Container, ObjectId, Version};

fn filled_container(txns: u64, puts_per_txn: u64) -> Container {
    let mut c = Container::new();
    for t in 0..txns {
        let tx = c.begin().expect("begin");
        for p in 0..puts_per_txn {
            c.stage_put(
                tx,
                ObjectId(p % 16),
                Version(t + 1),
                Bytes::from_static(b"some representative contents"),
            )
            .expect("stage");
        }
        c.commit(tx).expect("commit");
    }
    c
}

fn bench_storage(c: &mut Criterion) {
    let mut group = c.benchmark_group("storage_wal");

    group.bench_function("commit_small_txns", |b| {
        b.iter(|| criterion::black_box(filled_container(100, 1).len()));
    });

    group.bench_function("commit_wide_txns", |b| {
        b.iter(|| criterion::black_box(filled_container(10, 50).len()));
    });

    group.bench_function("prepare_commit_2pc_path", |b| {
        b.iter(|| {
            let mut cont = Container::new();
            for t in 0..100u64 {
                let tx = cont.begin().expect("begin");
                cont.stage_put(tx, ObjectId(1), Version(t + 1), Bytes::from_static(b"v"))
                    .expect("stage");
                cont.prepare_with_note(tx, t).expect("prepare");
                cont.commit(tx).expect("commit");
            }
            criterion::black_box(cont.wal().flushes())
        });
    });

    for txns in [100u64, 1000] {
        group.bench_with_input(
            BenchmarkId::new("recovery_replay", txns),
            &txns,
            |b, &txns| {
                let full = filled_container(txns, 4);
                b.iter(|| {
                    let recovered = Container::recover_from(full.wal().clone());
                    criterion::black_box(recovered.len())
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("recovery_replay_checkpointed", txns),
            &txns,
            |b, &txns| {
                let mut full = filled_container(txns, 4);
                full.checkpoint().expect("checkpoint");
                b.iter(|| {
                    let recovered = Container::recover_from(full.wal().clone());
                    criterion::black_box(recovered.len())
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_storage);
criterion_main!(benches);
