//! Criterion bench: end-to-end quorum operations on the simulated cluster.
//!
//! Wall-clock cost of simulating one read / one write on the paper's three
//! example configurations — the number that bounds how many Monte-Carlo
//! trials the availability experiments can afford.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use wv_bench::topo;
use wv_core::client::ClientOptions;
use wv_core::harness::{Harness, SiteSpec};
use wv_core::quorum::QuorumSpec;
use wv_core::ObjectId;
use wv_sim::SimDuration;

/// A three-server majority cluster with one multi-suite pipelined client
/// and (optionally) server-side WAL group commit.
fn batching_cluster(suites: u64, group_commit: bool) -> Harness {
    let mut b = Harness::builder()
        .seed(9)
        .quorum(QuorumSpec::majority(3))
        .suites((1..=suites).map(ObjectId))
        .client_options(ClientOptions {
            pipeline_depth: Some(suites as usize),
            ..ClientOptions::default()
        });
    if group_commit {
        b = b.group_commit(SimDuration::from_millis(5));
    }
    for _ in 0..3 {
        b = b.site(SiteSpec::server(1));
    }
    b.client().build().expect("legal cluster")
}

fn bench_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("quorum_ops");
    for example in 1u32..=3 {
        group.bench_with_input(
            BenchmarkId::new("write_then_read", example),
            &example,
            |b, &example| {
                b.iter(|| {
                    let mut h = match example {
                        1 => topo::example_1(9),
                        2 => topo::example_2(9),
                        _ => topo::example_3(9),
                    };
                    let suite = h.suite_id();
                    h.write(suite, b"bench".to_vec()).expect("write");
                    let r = h.read(suite).expect("read");
                    criterion::black_box(r.version)
                });
            },
        );
    }
    group.bench_function("harness_build_only", |b| {
        b.iter(|| criterion::black_box(topo::example_2(9).suite_id()));
    });
    // Closed-loop pipelined client: 16 reads through an 8-deep window on
    // example 1 — the wall cost of the E11 saturation workload's inner loop.
    group.bench_function("pipelined_reads_depth8", |b| {
        b.iter(|| {
            let mut h = topo::example_1_with_options(
                9,
                ClientOptions {
                    pipeline_depth: Some(8),
                    ..ClientOptions::default()
                },
            );
            let suite = h.suite_id();
            h.write(suite, b"bench".to_vec()).expect("write");
            let client = h.default_client();
            let start = h.now();
            for _ in 0..16 {
                h.enqueue_read(client, suite, start);
            }
            h.run_until_quiet(1_000_000);
            criterion::black_box(h.drain_completed(client).len())
        });
    });
    // Six concurrent single-suite writes, with and without server-side WAL
    // group commit batching the overlapping syncs into one durable write.
    for &group_commit in &[false, true] {
        group.bench_with_input(
            BenchmarkId::new("concurrent_writes_group_commit", group_commit),
            &group_commit,
            |b, &group_commit| {
                b.iter(|| {
                    let mut h = batching_cluster(6, group_commit);
                    let client = h.default_client();
                    for (i, &suite) in h.suite_ids().to_vec().iter().enumerate() {
                        h.enqueue_write(
                            client,
                            suite,
                            format!("w{i}").into_bytes(),
                            wv_sim::SimTime::ZERO,
                        );
                    }
                    h.run_until_quiet(1_000_000);
                    criterion::black_box(h.drain_completed(client).len())
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_ops);
criterion_main!(benches);
