//! Criterion bench: end-to-end quorum operations on the simulated cluster.
//!
//! Wall-clock cost of simulating one read / one write on the paper's three
//! example configurations — the number that bounds how many Monte-Carlo
//! trials the availability experiments can afford.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use wv_bench::topo;

fn bench_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("quorum_ops");
    for example in 1u32..=3 {
        group.bench_with_input(
            BenchmarkId::new("write_then_read", example),
            &example,
            |b, &example| {
                b.iter(|| {
                    let mut h = match example {
                        1 => topo::example_1(9),
                        2 => topo::example_2(9),
                        _ => topo::example_3(9),
                    };
                    let suite = h.suite_id();
                    h.write(suite, b"bench".to_vec()).expect("write");
                    let r = h.read(suite).expect("read");
                    criterion::black_box(r.version)
                });
            },
        );
    }
    group.bench_function("harness_build_only", |b| {
        b.iter(|| criterion::black_box(topo::example_2(9).suite_id()));
    });
    group.finish();
}

criterion_group!(benches, bench_ops);
criterion_main!(benches);
