//! Criterion bench: raw event throughput of the discrete-event kernel and
//! the simulated network.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use wv_net::sim_net::Cluster;
use wv_net::{NetConfig, Node, NodeCtx, SiteId};
use wv_sim::{LatencyModel, Scheduler, Sim, SimDuration, SimTime};

fn bench_kernel(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator");

    for events in [1_000u64, 10_000] {
        group.bench_with_input(
            BenchmarkId::new("event_chain", events),
            &events,
            |b, &events| {
                b.iter(|| {
                    let mut sim = Sim::new(0u64);
                    fn tick(n: u64) -> impl FnOnce(&mut u64, &mut Scheduler<u64>) {
                        move |w, s| {
                            *w += 1;
                            if n > 0 {
                                s.after(SimDuration::from_micros(10), tick(n - 1));
                            }
                        }
                    }
                    sim.scheduler().immediately(tick(events));
                    sim.run();
                    criterion::black_box(sim.world)
                });
            },
        );
    }

    group.bench_function("fan_out_10k_events", |b| {
        b.iter(|| {
            let mut sim = Sim::new(0u64);
            for i in 0..10_000u64 {
                sim.scheduler()
                    .at(SimTime::from_micros(i % 997), |w: &mut u64, _| *w += 1);
            }
            sim.run();
            criterion::black_box(sim.world)
        });
    });

    // A token-ring over the simulated network: message throughput with
    // latency sampling and delivery bookkeeping.
    struct Ring {
        hops_left: u64,
        n: u16,
    }
    impl Node for Ring {
        type Msg = ();
        fn on_message(&mut self, _from: SiteId, _m: (), ctx: &mut NodeCtx<'_, ()>) {
            if self.hops_left > 0 {
                self.hops_left -= 1;
                let next = SiteId((ctx.self_id().0 + 1) % self.n);
                ctx.send(next, ());
            }
        }
    }
    group.bench_function("network_token_ring_5k_hops", |b| {
        b.iter(|| {
            let n = 8u16;
            let nodes: Vec<Ring> = (0..n)
                .map(|_| Ring {
                    hops_left: 5_000 / u64::from(n) + 1,
                    n,
                })
                .collect();
            let cfg = NetConfig::uniform(n as usize, LatencyModel::constant_millis(1));
            let mut sim = Cluster::sim(nodes, cfg, 3);
            Cluster::invoke(sim.scheduler(), SimTime::ZERO, SiteId(0), |_n, ctx| {
                ctx.send(SiteId(1), ());
            });
            sim.run();
            criterion::black_box(sim.world.stats.delivered)
        });
    });

    group.finish();
}

criterion_group!(benches, bench_kernel);
criterion_main!(benches);
