//! Worker-count invariance of the E15 multi-suite sharding report.
//!
//! E15 fans its (servers × skew × suites) sweep over
//! `wv_bench::runner::run_trials_indexed`, whose contract is bit-identical
//! output at any worker count; each cell's workload is drawn from the
//! cell seed before the harness exists and its throughput metric is
//! virtual-time, so the whole report is a pure function of the master
//! seed. One `#[test]` covers the 1/2/8 sweep because the worker
//! override is a process-global environment variable and the test
//! harness runs `#[test]` functions concurrently.

fn with_workers<T>(workers: usize, f: impl FnOnce() -> T) -> T {
    std::env::set_var("WV_TRIAL_THREADS", workers.to_string());
    let out = f();
    std::env::remove_var("WV_TRIAL_THREADS");
    out
}

#[test]
fn the_e15_report_bytes_are_identical_at_1_2_and_8_workers() {
    let one = with_workers(1, || wv_bench::e15::run_with(16));
    let two = with_workers(2, || wv_bench::e15::run_with(16));
    let eight = with_workers(8, || wv_bench::e15::run_with(16));
    assert_eq!(one, two, "2 workers diverged from sequential");
    assert_eq!(one, eight, "8 workers diverged from sequential");
    assert!(one.contains("## E15 — Multi-suite sharded keyspace"));
}
