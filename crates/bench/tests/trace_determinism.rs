//! Trace-level determinism of the parallel trial engine.
//!
//! The span record extends the runner's determinism contract: traces are
//! stamped from virtual time and merged in site order inside each trial,
//! and trials are merged in index order, so the concatenated JSONL export
//! of a traced experiment is **byte-identical for any worker count**.
//!
//! The sweep lives in a single `#[test]` because the worker override is a
//! process-global environment variable (see `determinism.rs`).

use wv_sim::SimDuration;

fn with_workers<T>(workers: usize, f: impl FnOnce() -> T) -> T {
    std::env::set_var("WV_TRIAL_THREADS", workers.to_string());
    let out = f();
    std::env::remove_var("WV_TRIAL_THREADS");
    out
}

/// One traced E1 trial: drive write/read rounds on the paper's Example 1
/// cluster and export the trial's full span record.
fn traced_trial(seed: u64) -> String {
    let mut h = wv_bench::topo::example_1(seed);
    h.enable_tracing();
    let suite = h.suite_id();
    for i in 0..5 {
        h.write(suite, format!("trace-{i}").into_bytes())
            .expect("write succeeds on a healthy cluster");
        h.advance(SimDuration::from_secs(2));
        h.read(suite).expect("read succeeds");
        h.advance(SimDuration::from_secs(2));
    }
    h.take_trace_jsonl()
}

#[test]
fn e1_trace_bytes_are_identical_at_1_2_and_8_workers() {
    let run = || wv_bench::runner::run_trials(0x7ACE, 12, traced_trial).concat();
    let one = with_workers(1, run);
    let two = with_workers(2, run);
    let eight = with_workers(8, run);
    assert_eq!(one, two, "2 workers diverged from sequential trace bytes");
    assert_eq!(one, eight, "8 workers diverged from sequential trace bytes");
    // Sanity: real spans came back and they render.
    assert!(
        one.contains("\"kind\":\"inquiry\""),
        "inquiry spans present"
    );
    assert!(
        one.contains("\"kind\":\"prepare\""),
        "prepare spans present"
    );
    let spans = wv_sim::trace::from_jsonl(&one).expect("export round-trips");
    let rendered = wv_bench::tracefmt::waterfall(&spans);
    assert!(rendered.contains("op "), "waterfall renders the trace");
}
