//! Worker-count invariance of the E10 self-healing report.
//!
//! E10 fans paired trials over `wv_bench::runner::run_trials`, whose
//! contract is bit-identical output at any worker count. One `#[test]`
//! covers the whole 1/2/8 sweep because the worker override is a
//! process-global environment variable and the test harness runs
//! `#[test]` functions concurrently.

fn with_workers<T>(workers: usize, f: impl FnOnce() -> T) -> T {
    std::env::set_var("WV_TRIAL_THREADS", workers.to_string());
    let out = f();
    std::env::remove_var("WV_TRIAL_THREADS");
    out
}

#[test]
fn the_e10_report_bytes_are_identical_at_1_2_and_8_workers() {
    let one = with_workers(1, || wv_bench::e10::run_with(6));
    let two = with_workers(2, || wv_bench::e10::run_with(6));
    let eight = with_workers(8, || wv_bench::e10::run_with(6));
    assert_eq!(one, two, "2 workers diverged from sequential");
    assert_eq!(one, eight, "8 workers diverged from sequential");
    assert!(one.contains("## E10 — Self-healing under crash/recovery churn"));
}
