//! Byte-level determinism of the trace-analytics pipeline.
//!
//! The analytics products — trace JSONL, audit JSONL, telemetry renders,
//! and every `wv-inspect` report derived from them — are pure functions
//! of the simulated execution, which is itself independent of the trial
//! worker count. This test pins the whole chain: a captured instrumented
//! run and all four derived reports must be byte-identical at 1, 2, and
//! 8 workers.
//!
//! One `#[test]` because the worker override is a process-global
//! environment variable (see `determinism.rs`).

use wv_bench::inspect;

fn with_workers<T>(workers: usize, f: impl FnOnce() -> T) -> T {
    std::env::set_var("WV_TRIAL_THREADS", workers.to_string());
    let out = f();
    std::env::remove_var("WV_TRIAL_THREADS");
    out
}

fn reports() -> [String; 6] {
    let cap = inspect::capture_e1(0xA11A, 6, 4);
    let spans = inspect::ingest(&cap.trace_jsonl).expect("trace").spans;
    let audit = inspect::ingest(&cap.audit_jsonl).expect("audit").audit;
    [
        inspect::critpath_report(&spans),
        inspect::explain_report(&audit, None),
        inspect::slo_report(&spans, 500, 4000),
        inspect::chrome_trace(&spans),
        cap.audit_jsonl,
        cap.telemetry,
    ]
}

#[test]
fn analytics_bytes_are_identical_at_1_2_and_8_workers() {
    let one = with_workers(1, reports);
    let two = with_workers(2, reports);
    let eight = with_workers(8, reports);
    let names = ["critpath", "explain", "slo", "chrome", "audit", "telemetry"];
    for (i, name) in names.iter().enumerate() {
        assert_eq!(one[i], two[i], "{name} diverged at 2 workers");
        assert_eq!(one[i], eight[i], "{name} diverged at 8 workers");
    }
    // Sanity: the reports carry real content, not empty sections.
    assert!(one[0].contains("gated_by"), "{}", one[0]);
    assert!(one[1].contains("<- chosen"), "{}", one[1]);
    assert!(one[2].contains("overall:"), "{}", one[2]);
    assert!(one[3].contains("\"traceEvents\""));
    assert!(one[4].contains("\"policy\":\"cheapest_first\""));
    assert!(one[5].contains("window_us="));
}
