//! Report-level determinism of the parallel trial engine.
//!
//! The contract (see `wv_bench::runner`): experiment output is
//! **byte-identical for any worker count**, because every trial's seed is a
//! pure function of `(master_seed, trial_index)` and results are merged in
//! trial order. These tests pin the whole pipeline — report text included —
//! at 1, 2, and 8 workers, and check the seed-derivation function itself
//! for collisions.
//!
//! The worker-count sweeps live in a single `#[test]` each: the override is
//! a process-global environment variable, and the test harness runs `#[test]`
//! functions concurrently.

use std::collections::HashSet;

use wv_bench::runner::trial_seed;

fn with_workers<T>(workers: usize, f: impl FnOnce() -> T) -> T {
    std::env::set_var("WV_TRIAL_THREADS", workers.to_string());
    let out = f();
    std::env::remove_var("WV_TRIAL_THREADS");
    out
}

#[test]
fn e2_report_is_byte_identical_at_1_2_and_8_workers() {
    let one = with_workers(1, wv_bench::e2::run);
    let two = with_workers(2, wv_bench::e2::run);
    let eight = with_workers(8, wv_bench::e2::run);
    assert_eq!(one, two, "2 workers diverged from sequential");
    assert_eq!(one, eight, "8 workers diverged from sequential");
    assert!(one.contains("E2"), "sanity: a real report came back");
}

#[test]
fn e5_trial_set_is_bit_identical_at_1_2_and_8_workers() {
    // `protocol_blocking` exercises `run_trials` proper: each trial builds
    // a live cluster, crashes a sampled subset of representatives, and
    // probes the quorum protocol. Compare the resulting estimates by bits,
    // not by epsilon.
    let run = || wv_bench::e5::protocol_blocking(1, 0.85, 64, 42);
    let (r1, w1) = with_workers(1, run);
    let (r2, w2) = with_workers(2, run);
    let (r8, w8) = with_workers(8, run);
    assert_eq!(r1.to_bits(), r2.to_bits());
    assert_eq!(w1.to_bits(), w2.to_bits());
    assert_eq!(r1.to_bits(), r8.to_bits());
    assert_eq!(w1.to_bits(), w8.to_bits());
}

#[test]
fn seed_derivation_has_no_collisions_over_1e5_consecutive_indices() {
    let mut seen = HashSet::with_capacity(100_000);
    for i in 0..100_000u64 {
        assert!(
            seen.insert(trial_seed(0xD15C0, i)),
            "trial_seed collision at index {i}"
        );
    }
    // The derived seeds must also be distinct from the master itself —
    // a fixed point would correlate a trial with its parent stream.
    assert!(!seen.contains(&0xD15C0));
}
