//! The analytic system model: a suite configuration plus per-site access
//! costs and availabilities.

use wv_core::quorum::QuorumSpec;
use wv_core::votes::VoteAssignment;
use wv_net::SiteId;

/// Inputs to the closed-form models.
#[derive(Clone, Debug)]
pub struct SystemModel {
    /// Votes per hosting site.
    pub assignment: VoteAssignment,
    /// Read/write quorum sizes.
    pub quorum: QuorumSpec,
    /// Mean access latency (ms) per site, indexed by site id. Sites not
    /// hosting a representative may carry any value; they are ignored.
    pub costs: Vec<f64>,
    /// Probability each site is up, indexed by site id.
    pub up: Vec<f64>,
}

impl SystemModel {
    /// Builds a model, validating the quorum against the assignment.
    ///
    /// # Panics
    ///
    /// Panics if the quorum is illegal or a hosting site lacks a cost or
    /// availability entry — all configuration bugs.
    pub fn new(
        assignment: VoteAssignment,
        quorum: QuorumSpec,
        costs: Vec<f64>,
        up: Vec<f64>,
    ) -> Self {
        quorum
            .validate(&assignment)
            .expect("model requires a legal quorum");
        for (site, _) in assignment.entries() {
            assert!(
                site.index() < costs.len() && site.index() < up.len(),
                "site {site} missing cost or availability"
            );
            let p = up[site.index()];
            assert!((0.0..=1.0).contains(&p), "availability must be in [0,1]");
        }
        SystemModel {
            assignment,
            quorum,
            costs,
            up,
        }
    }

    /// Uniform availability for every site.
    pub fn with_uniform_up(
        assignment: VoteAssignment,
        quorum: QuorumSpec,
        costs: Vec<f64>,
        p: f64,
    ) -> Self {
        let n = costs.len();
        SystemModel::new(assignment, quorum, costs, vec![p; n])
    }

    /// The access cost of a site.
    pub fn cost(&self, site: SiteId) -> f64 {
        self.costs[site.index()]
    }

    /// The availability of a site.
    pub fn up(&self, site: SiteId) -> f64 {
        self.up[site.index()]
    }

    /// The paper's Example 1: a file with a high read-to-write ratio used
    /// from one workstation. One voting representative on the local file
    /// system (75 ms), two weak representatives on workstations (65 ms);
    /// `r = 1, w = 1`.
    pub fn paper_example_1(p_up: f64) -> SystemModel {
        SystemModel::with_uniform_up(
            VoteAssignment::new([(SiteId(0), 1), (SiteId(1), 0), (SiteId(2), 0)]),
            QuorumSpec::new(1, 1),
            vec![75.0, 65.0, 65.0],
            p_up,
        )
    }

    /// The paper's Example 2: moderate read-to-write ratio, accessed
    /// mainly from one local network. Votes ⟨2,1,1⟩ with the heavy
    /// representative local (75 ms) and two remote (100 ms, 750 ms);
    /// `r = 2, w = 3`.
    pub fn paper_example_2(p_up: f64) -> SystemModel {
        SystemModel::with_uniform_up(
            VoteAssignment::new([(SiteId(0), 2), (SiteId(1), 1), (SiteId(2), 1)]),
            QuorumSpec::new(2, 3),
            vec![75.0, 100.0, 750.0],
            p_up,
        )
    }

    /// The paper's Example 3: high read-to-write ratio accessed from
    /// several networks. Votes ⟨1,1,1⟩ across one local (75 ms) and two
    /// distant (750 ms) servers; `r = 1, w = 3`.
    pub fn paper_example_3(p_up: f64) -> SystemModel {
        SystemModel::with_uniform_up(
            VoteAssignment::new([(SiteId(0), 1), (SiteId(1), 1), (SiteId(2), 1)]),
            QuorumSpec::new(1, 3),
            vec![75.0, 750.0, 750.0],
            p_up,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_examples_are_legal() {
        for m in [
            SystemModel::paper_example_1(0.99),
            SystemModel::paper_example_2(0.99),
            SystemModel::paper_example_3(0.99),
        ] {
            assert!(m.quorum.validate(&m.assignment).is_ok());
        }
    }

    #[test]
    fn accessors() {
        let m = SystemModel::paper_example_2(0.97);
        assert_eq!(m.cost(SiteId(1)), 100.0);
        assert_eq!(m.up(SiteId(2)), 0.97);
    }

    #[test]
    #[should_panic(expected = "legal quorum")]
    fn illegal_quorum_rejected() {
        let _ = SystemModel::with_uniform_up(
            VoteAssignment::equal(3),
            QuorumSpec::new(1, 1),
            vec![1.0; 3],
            0.9,
        );
    }

    #[test]
    #[should_panic(expected = "availability must be in")]
    fn out_of_range_probability_rejected() {
        let _ = SystemModel::new(
            VoteAssignment::equal(2),
            QuorumSpec::new(1, 2),
            vec![1.0; 2],
            vec![1.5, 0.5],
        );
    }
}
