//! Message-count model: what a quorum operation costs the network.
//!
//! The paper discusses operation cost in representative accesses; on a
//! message-passing substrate each access is a request/response pair. For a
//! suite with `h` hosting sites (strong + weak) and write quorum size
//! `|W|` (sites, not votes):
//!
//! * a **write** exchanges exactly `2h + 4|W|` messages — an inquiry and
//!   answer per host, then prepare/vote and commit/ack per quorum member;
//! * a **read** exchanges `2h + 2` messages when the optimistic fetch wins
//!   and up to `2h + 4` when the inquiry quorum settles first and a
//!   redundant explicit fetch goes out (both fetches are answered).
//!
//! `tests/message_costs.rs` checks these formulas against the transport's
//! actual counters.

/// Exact message count of a successful write.
pub fn write_messages(hosts: usize, write_quorum_sites: usize) -> u64 {
    (2 * hosts + 4 * write_quorum_sites) as u64
}

/// Inclusive bounds on the message count of a successful read with the
/// optimistic parallel fetch enabled.
pub fn read_messages_bounds(hosts: usize) -> (u64, u64) {
    ((2 * hosts + 2) as u64, (2 * hosts + 4) as u64)
}

/// Exact message count of a successful read with the optimistic fetch
/// disabled (sequential inquiry then fetch).
pub fn read_messages_sequential(hosts: usize) -> u64 {
    (2 * hosts + 2) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formulas_scale_linearly() {
        assert_eq!(write_messages(3, 2), 14);
        assert_eq!(write_messages(3, 3), 18);
        assert_eq!(write_messages(5, 3), 22);
        assert_eq!(read_messages_bounds(3), (8, 10));
        assert_eq!(read_messages_sequential(3), 8);
    }

    #[test]
    fn optimistic_read_costs_at_most_two_extra_messages() {
        for h in 1..10 {
            let (lo, hi) = read_messages_bounds(h);
            assert_eq!(hi - lo, 2);
            assert_eq!(lo, read_messages_sequential(h));
        }
    }
}
