//! Critical-path extraction over deterministic span trees.
//!
//! A trace tells you everything that happened; the critical path tells
//! you what *gated* the operation. For each completed op root this module
//! walks the span tree backward from the root's end, repeatedly
//! descending into the latest-finishing completed child: the interval
//! between that child's end and the current cursor is time the parent
//! spent with no child running — its own work — and the child's interior
//! is charged recursively. After a child is consumed the cursor pops back
//! to the child's start, so an earlier sibling chain (say, an inquiry
//! round that preceded the prepare) is credited too. The resulting
//! segments exactly partition `[root.start, root.end]`: every
//! microsecond of operation latency is blamed on exactly one span.
//!
//! Blame is attributed to a **site × phase** cell. For RPC and hedge
//! spans the blamed site is the *peer* (the remote representative whose
//! reply we were waiting on); for everything else it is the recording
//! site. Aggregated over a run this yields a folded-stack profile
//! (flamegraph-compatible: `write;prepare;rpc@s2 350`) and a blame table
//! showing which representative and which protocol phase the latency
//! lives in.
//!
//! Everything here is a pure function of the span slice, which is itself
//! a pure function of the simulated execution — so extracted paths are
//! byte-identical across processes and worker counts.

use std::collections::BTreeMap;

use wv_sim::trace::{SpanKind, SpanOutcome, SpanRecord, NO_PARENT, NO_PEER, OPEN_END};

/// One blamed interval on an operation's critical path.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PathSegment {
    /// Id of the span the interval is charged to.
    pub span_id: u32,
    /// Kind of the blamed span.
    pub kind: SpanKind,
    /// Site the interval is charged to (the peer for RPC/hedge spans).
    pub site: u16,
    /// Interval start, virtual microseconds.
    pub start_us: u64,
    /// Interval length, microseconds.
    pub dur_us: u64,
    /// Ancestor chain from the op root down to (and including) the
    /// blamed span, as stable span-kind names.
    pub stack: Vec<&'static str>,
}

/// The critical path of one client operation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OpPath {
    /// Operation identifier (the raw request id).
    pub op: u64,
    /// Root span kind (read / write / reconfigure / transaction).
    pub root_kind: SpanKind,
    /// How the operation ended.
    pub outcome: SpanOutcome,
    /// Operation start, virtual microseconds.
    pub start_us: u64,
    /// Operation duration, microseconds.
    pub total_us: u64,
    /// Blamed intervals in chronological order; their lengths sum to
    /// `total_us`.
    pub segments: Vec<PathSegment>,
}

impl OpPath {
    /// The single longest blamed interval — the phase that gated the op.
    pub fn gate(&self) -> Option<&PathSegment> {
        // max_by_key returns the *last* maximum; chronological order makes
        // the tie-break deterministic (latest longest segment wins).
        self.segments.iter().max_by_key(|s| s.dur_us)
    }
}

/// Critical paths for every completed operation in a trace.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Profile {
    /// Per-operation paths, ordered by (start time, op id).
    pub ops: Vec<OpPath>,
}

impl Profile {
    /// Total operation time profiled, microseconds.
    pub fn total_us(&self) -> u64 {
        self.ops.iter().map(|o| o.total_us).sum()
    }

    /// Blame aggregated by (site, span kind), microseconds.
    pub fn blame(&self) -> BTreeMap<(u16, SpanKind), u64> {
        let mut out = BTreeMap::new();
        for op in &self.ops {
            for seg in &op.segments {
                *out.entry((seg.site, seg.kind)).or_insert(0) += seg.dur_us;
            }
        }
        out
    }

    /// Folded-stack profile: one `frame;frame;...@sN weight_us` line per
    /// distinct stack, alphabetically sorted (flamegraph input format).
    pub fn folded(&self) -> String {
        let mut stacks: BTreeMap<String, u64> = BTreeMap::new();
        for op in &self.ops {
            for seg in &op.segments {
                let mut key = seg.stack.join(";");
                key.push_str(&format!("@s{}", seg.site));
                *stacks.entry(key).or_insert(0) += seg.dur_us;
            }
        }
        let mut out = String::new();
        for (stack, us) in &stacks {
            out.push_str(&format!("{stack} {us}\n"));
        }
        out
    }

    /// Renders the site × phase blame table, largest share first.
    pub fn render_blame(&self) -> String {
        let total = self.total_us().max(1);
        let mut rows: Vec<((u16, SpanKind), u64)> = self.blame().into_iter().collect();
        rows.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        let mut out = String::from("site  phase           us        share\n");
        for ((site, kind), us) in rows {
            out.push_str(&format!(
                "s{site:<4} {:<14} {us:>9} {:>7}\n",
                kind.name(),
                permille(us, total),
            ));
        }
        out.push_str(&format!(
            "total critical-path time: {} us over {} ops\n",
            self.total_us(),
            self.ops.len()
        ));
        out
    }

    /// Renders the per-op gate table: what each operation waited on.
    pub fn render_ops(&self) -> String {
        let mut out =
            String::from("op         kind          total_us  gated_by            gate_us  share\n");
        for op in &self.ops {
            let (gate_name, gate_us) = op
                .gate()
                .map(|g| (format!("{}@s{}", g.kind.name(), g.site), g.dur_us))
                .unwrap_or_else(|| (String::from("-"), 0));
            out.push_str(&format!(
                "{:<10} {:<13} {:>8}  {gate_name:<18} {gate_us:>8} {:>6}\n",
                op.op,
                op.root_kind.name(),
                op.total_us,
                permille(gate_us, op.total_us.max(1)),
            ));
        }
        out
    }
}

/// Integer permille rendered as a percentage with one decimal — avoids
/// floating point so output is trivially bit-stable.
fn permille(part: u64, whole: u64) -> String {
    let pm = part.saturating_mul(1000) / whole;
    format!("{}.{}%", pm / 10, pm % 10)
}

/// Extracts the critical path of every completed op-root span.
///
/// Spans outside any client operation (repair rounds, background WAL
/// flushes) and operations whose root never closed are skipped. The
/// input order does not matter; ops are returned sorted by
/// (start time, op id).
pub fn extract(spans: &[SpanRecord]) -> Profile {
    // Parent -> children indices. Merged traces have globally unique ids
    // with parents already rebased, so an id-keyed map suffices.
    let by_id: BTreeMap<u32, usize> = spans.iter().enumerate().map(|(i, s)| (s.id, i)).collect();
    let mut children: BTreeMap<u32, Vec<usize>> = BTreeMap::new();
    for (i, s) in spans.iter().enumerate() {
        if s.parent != NO_PARENT && by_id.contains_key(&s.parent) {
            children.entry(s.parent).or_default().push(i);
        }
    }
    // Latest-finishing child first; ties broken by later start, then
    // higher id, so the walk is deterministic for any input order.
    for kids in children.values_mut() {
        kids.sort_by(|&a, &b| {
            let (x, y) = (&spans[a], &spans[b]);
            (y.end_us, y.start_us, y.id).cmp(&(x.end_us, x.start_us, x.id))
        });
    }

    let mut ops = Vec::new();
    for root in spans {
        if !root.kind.is_op_root() || root.end_us == OPEN_END {
            continue;
        }
        let mut segments = Vec::new();
        let mut stack = Vec::new();
        walk(
            spans,
            &children,
            root,
            root.end_us,
            &mut stack,
            &mut segments,
        );
        // The walk emits segments deepest-first; present them in time order.
        segments.sort_by_key(|s: &PathSegment| (s.start_us, s.span_id));
        ops.push(OpPath {
            op: root.op,
            root_kind: root.kind,
            outcome: root.outcome,
            start_us: root.start_us,
            total_us: root.end_us - root.start_us,
            segments,
        });
    }
    ops.sort_by_key(|o| (o.start_us, o.op));
    Profile { ops }
}

/// Charges `[span.start, cursor]` to `span` and its descendants.
fn walk(
    spans: &[SpanRecord],
    children: &BTreeMap<u32, Vec<usize>>,
    span: &SpanRecord,
    mut cursor: u64,
    stack: &mut Vec<&'static str>,
    out: &mut Vec<PathSegment>,
) {
    stack.push(span.kind.name());
    let kids = children.get(&span.id).map(Vec::as_slice).unwrap_or(&[]);
    for &k in kids {
        let child = &spans[k];
        // Only completed children that fit under the cursor participate;
        // an open span never gated anything (it outlived the op).
        if child.end_us == OPEN_END || child.end_us > cursor || child.start_us < span.start_us {
            continue;
        }
        if child.end_us < cursor {
            // No child was running in (child.end, cursor]: parent work.
            out.push(segment(span, child.end_us, cursor - child.end_us, stack));
        }
        walk(spans, children, child, child.end_us, stack, out);
        cursor = child.start_us;
        if cursor <= span.start_us {
            break;
        }
    }
    if cursor > span.start_us {
        out.push(segment(span, span.start_us, cursor - span.start_us, stack));
    }
    stack.pop();
}

fn segment(span: &SpanRecord, start_us: u64, dur_us: u64, stack: &[&'static str]) -> PathSegment {
    let site = match span.kind {
        SpanKind::Rpc | SpanKind::Hedge if span.peer != NO_PEER => span.peer,
        _ => span.site,
    };
    PathSegment {
        span_id: span.id,
        kind: span.kind,
        site,
        start_us,
        dur_us,
        stack: stack.to_vec(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[allow(clippy::too_many_arguments)]
    fn span(
        id: u32,
        parent: u32,
        kind: SpanKind,
        site: u16,
        peer: u16,
        op: u64,
        start_us: u64,
        end_us: u64,
    ) -> SpanRecord {
        SpanRecord {
            id,
            parent,
            kind,
            site,
            suite: 1,
            peer,
            op,
            start_us,
            end_us,
            detail: 0,
            outcome: SpanOutcome::Ok,
        }
    }

    #[test]
    fn segments_partition_the_root_interval() {
        // write [0,110]: inquiry [0,40] with two rpcs, then prepare
        // [50,100] with one rpc; gaps 40-50 and 100-110 are root work.
        let spans = vec![
            span(0, NO_PARENT, SpanKind::Write, 3, NO_PEER, 7, 0, 110),
            span(1, 0, SpanKind::Inquiry, 3, NO_PEER, 7, 0, 40),
            span(2, 1, SpanKind::Rpc, 3, 0, 7, 0, 25),
            span(3, 1, SpanKind::Rpc, 3, 1, 7, 0, 38),
            span(4, 0, SpanKind::Prepare, 3, NO_PEER, 7, 50, 100),
            span(5, 4, SpanKind::Rpc, 3, 1, 7, 50, 95),
        ];
        let profile = extract(&spans);
        assert_eq!(profile.ops.len(), 1);
        let op = &profile.ops[0];
        assert_eq!(op.total_us, 110);
        let sum: u64 = op.segments.iter().map(|s| s.dur_us).sum();
        assert_eq!(sum, op.total_us, "segments partition the root");
        // Chronological and contiguous.
        let mut at = op.start_us;
        for seg in &op.segments {
            assert_eq!(seg.start_us, at, "no holes, no overlaps");
            at += seg.dur_us;
        }
        // The prepare-phase RPC to site 1 gated the op... not quite: the
        // longest single interval is the 45us rpc under prepare.
        let gate = op.gate().expect("nonempty path");
        assert_eq!(gate.kind, SpanKind::Rpc);
        assert_eq!(gate.site, 1, "rpc blame lands on the peer");
        assert_eq!(gate.dur_us, 45);
        assert_eq!(gate.stack, vec!["write", "prepare", "rpc"]);
    }

    #[test]
    fn pop_back_credits_earlier_sibling_chains() {
        // root [0,11]; child A [0,5], child B [6,10]. Backward walk:
        // root 10..11, B 6..10, root 5..6, A 0..5.
        let spans = vec![
            span(0, NO_PARENT, SpanKind::Read, 0, NO_PEER, 1, 0, 11),
            span(1, 0, SpanKind::Rpc, 0, 2, 1, 0, 5),
            span(2, 0, SpanKind::Fetch, 0, NO_PEER, 1, 6, 10),
        ];
        let profile = extract(&spans);
        let op = &profile.ops[0];
        let got: Vec<(SpanKind, u64, u64)> = op
            .segments
            .iter()
            .map(|s| (s.kind, s.start_us, s.dur_us))
            .collect();
        assert_eq!(
            got,
            vec![
                (SpanKind::Rpc, 0, 5),
                (SpanKind::Read, 5, 1),
                (SpanKind::Fetch, 6, 4),
                (SpanKind::Read, 10, 1),
            ]
        );
    }

    #[test]
    fn open_spans_and_background_work_are_skipped() {
        let spans = vec![
            // Root never closed: whole op skipped.
            span(0, NO_PARENT, SpanKind::Read, 0, NO_PEER, 1, 0, OPEN_END),
            // Background repair (op 0, not an op root): ignored.
            span(1, NO_PARENT, SpanKind::RepairPull, 2, NO_PEER, 0, 0, 50),
            // A closed op whose hedge span is still open: the open child
            // cannot appear on the path.
            span(2, NO_PARENT, SpanKind::Read, 0, NO_PEER, 2, 100, 140),
            span(3, 2, SpanKind::Hedge, 0, 1, 2, 110, OPEN_END),
            span(4, 2, SpanKind::Fetch, 0, NO_PEER, 2, 100, 135),
        ];
        let profile = extract(&spans);
        assert_eq!(profile.ops.len(), 1);
        let op = &profile.ops[0];
        assert_eq!(op.op, 2);
        assert!(op.segments.iter().all(|s| s.kind != SpanKind::Hedge));
        let sum: u64 = op.segments.iter().map(|s| s.dur_us).sum();
        assert_eq!(sum, 40);
    }

    #[test]
    fn blame_and_folded_aggregate_across_ops() {
        let spans = vec![
            span(0, NO_PARENT, SpanKind::Read, 0, NO_PEER, 1, 0, 10),
            span(1, 0, SpanKind::Rpc, 0, 2, 1, 0, 10),
            span(2, NO_PARENT, SpanKind::Read, 0, NO_PEER, 2, 20, 35),
            span(3, 2, SpanKind::Rpc, 0, 2, 2, 20, 35),
        ];
        let profile = extract(&spans);
        assert_eq!(profile.total_us(), 25);
        let blame = profile.blame();
        assert_eq!(blame.get(&(2, SpanKind::Rpc)), Some(&25));
        assert_eq!(profile.folded(), "read;rpc@s2 25\n");
        let table = profile.render_blame();
        assert!(table.contains("s2"), "{table}");
        assert!(table.contains("100.0%"), "{table}");
    }
}
