//! Optimal vote-assignment search — the paper's thesis made executable.
//!
//! Gifford's central claim is that one algorithm, parameterised by votes
//! and quorums, spans the whole spectrum from read-one/write-all to
//! primary-site. This module makes the claim quantitative: given per-site
//! costs, availabilities, and a workload read fraction, enumerate every
//! vote assignment (up to a vote cap) and every minimal-intersection
//! quorum pair, and return the configuration with the lowest expected
//! operation latency subject to an availability floor.

use wv_core::quorum::QuorumSpec;
use wv_core::votes::VoteAssignment;
use wv_net::SiteId;

use crate::availability::quorum_availability;
use crate::latency::{read_latency_optimistic, read_latency_verified, write_latency};
use crate::model::SystemModel;

/// Which read-latency figure the search optimises.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum ReadMetric {
    /// The verified read: content fetch overlapped with (and bounded
    /// below by) the version-number quorum. The safe default.
    #[default]
    Verified,
    /// The cache-valid read: the fetch alone, as the paper's table
    /// reports for read-mostly suites. Valuing this lets the search
    /// discover weak-representative (zero-vote cache) placements.
    CacheValid,
}

/// Workload description for the search.
#[derive(Clone, Copy, Debug)]
pub struct Workload {
    /// Fraction of operations that are reads, in `[0, 1]`.
    pub read_fraction: f64,
    /// Reject configurations whose read or write availability falls below
    /// this floor (set 0.0 to disable).
    pub min_availability: f64,
    /// Which read-latency figure to optimise.
    pub read_metric: ReadMetric,
}

impl Workload {
    /// A workload with the default (verified) read metric and no floor.
    pub fn reads(read_fraction: f64) -> Self {
        Workload {
            read_fraction,
            min_availability: 0.0,
            read_metric: ReadMetric::Verified,
        }
    }
}

/// The search result.
#[derive(Clone, Debug)]
pub struct OptimalChoice {
    /// Winning vote assignment.
    pub assignment: VoteAssignment,
    /// Winning quorum sizes.
    pub quorum: QuorumSpec,
    /// Expected per-operation latency (ms) under the workload.
    pub expected_latency: f64,
    /// Read availability of the winner.
    pub read_availability: f64,
    /// Write availability of the winner.
    pub write_availability: f64,
}

/// Expected per-operation latency of a model under a workload.
pub fn expected_latency(model: &SystemModel, workload: &Workload) -> f64 {
    let f = workload.read_fraction.clamp(0.0, 1.0);
    let read = match workload.read_metric {
        ReadMetric::Verified => read_latency_verified(model),
        ReadMetric::CacheValid => read_latency_optimistic(model),
    };
    f * read + (1.0 - f) * write_latency(model)
}

/// Enumerates vote vectors with entries in `0..=max_votes` over `sites`
/// sites, skipping the all-zero vector.
fn vote_vectors(sites: usize, max_votes: u32) -> Vec<Vec<u32>> {
    let mut out = Vec::new();
    let base = max_votes as u64 + 1;
    let combos = base.pow(sites as u32);
    for code in 0..combos {
        let mut c = code;
        let mut v = Vec::with_capacity(sites);
        for _ in 0..sites {
            v.push((c % base) as u32);
            c /= base;
        }
        if v.iter().sum::<u32>() > 0 {
            out.push(v);
        }
    }
    out
}

/// Exhaustive search over assignments and minimal-intersection quorums.
///
/// Only quorum pairs with `r + w = N + 1` are considered: for any fixed
/// assignment, increasing `r + w` beyond the minimum can never reduce
/// either quorum's cost and can never raise availability, so the optimum
/// always lies on the minimal-intersection line.
///
/// # Panics
///
/// Panics if `costs` and `up` don't cover `sites`, or the search space is
/// unreasonably large (`sites * max_votes` capped to keep enumeration
/// tractable).
pub fn search_optimal(
    sites: usize,
    max_votes: u32,
    costs: &[f64],
    up: &[f64],
    workload: &Workload,
) -> Option<OptimalChoice> {
    assert!(costs.len() >= sites && up.len() >= sites, "per-site inputs");
    assert!(
        (max_votes as usize + 1).pow(sites as u32) <= 1_000_000,
        "search space too large"
    );
    let mut best: Option<OptimalChoice> = None;
    for votes in vote_vectors(sites, max_votes) {
        let assignment =
            VoteAssignment::new(votes.iter().enumerate().map(|(i, v)| (SiteId::from(i), *v)));
        let total = assignment.total();
        for r in 1..=total {
            let w = total + 1 - r;
            let quorum = QuorumSpec::new(r, w);
            if quorum.validate(&assignment).is_err() {
                continue;
            }
            let read_availability = quorum_availability(&assignment, r, up);
            let write_availability = quorum_availability(&assignment, w, up);
            if read_availability < workload.min_availability
                || write_availability < workload.min_availability
            {
                continue;
            }
            let model = SystemModel::new(assignment.clone(), quorum, costs.to_vec(), up.to_vec());
            let latency = expected_latency(&model, workload);
            let better = match &best {
                None => true,
                Some(b) => latency < b.expected_latency - 1e-12,
            };
            if better {
                best = Some(OptimalChoice {
                    assignment: assignment.clone(),
                    quorum,
                    expected_latency: latency,
                    read_availability,
                    write_availability,
                });
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform_workload(f: f64) -> Workload {
        Workload::reads(f)
    }

    #[test]
    fn read_only_workload_prefers_read_one() {
        // Three equal sites, all cheap; a pure-read workload should pick
        // r = 1 (any assignment achieving it works).
        let best = search_optimal(
            3,
            1,
            &[100.0, 100.0, 100.0],
            &[0.99; 3],
            &uniform_workload(1.0),
        )
        .expect("found");
        assert_eq!(best.quorum.read, 1);
        assert!((best.expected_latency - 100.0).abs() < 1e-9);
    }

    #[test]
    fn write_only_workload_prefers_write_one() {
        let best = search_optimal(
            3,
            1,
            &[100.0, 100.0, 100.0],
            &[0.99; 3],
            &uniform_workload(0.0),
        )
        .expect("found");
        assert_eq!(best.quorum.write, 1);
    }

    #[test]
    fn single_cheap_site_attracts_all_votes() {
        // Site 0 is far cheaper; the optimum concentrates decisions there
        // (a primary-site flavoured assignment: expected latency 10).
        let best = search_optimal(
            3,
            2,
            &[10.0, 500.0, 500.0],
            &[0.99; 3],
            &uniform_workload(0.5),
        )
        .expect("found");
        assert!((best.expected_latency - 10.0).abs() < 1e-9);
        // Both quorums must be satisfiable by site 0 alone.
        let v0 = best.assignment.votes_of(SiteId(0));
        assert!(v0 >= best.quorum.read && v0 >= best.quorum.write);
    }

    #[test]
    fn availability_floor_forces_replication() {
        // With a strict floor, the all-votes-on-one-site optimum is
        // rejected: one site at p = 0.9 cannot deliver 0.97, but a
        // majority of three (availability 0.972) can.
        let best = search_optimal(
            3,
            2,
            &[10.0, 500.0, 500.0],
            &[0.9; 3],
            &Workload {
                read_fraction: 0.5,
                min_availability: 0.97,
                read_metric: ReadMetric::Verified,
            },
        )
        .expect("found");
        assert!(best.read_availability >= 0.97);
        assert!(best.write_availability >= 0.97);
        // The winner must involve more than one voting site.
        assert!(best.assignment.strong_sites().len() > 1);
    }

    #[test]
    fn impossible_floor_returns_none() {
        let best = search_optimal(
            2,
            1,
            &[10.0, 10.0],
            &[0.5, 0.5],
            &Workload {
                read_fraction: 0.5,
                min_availability: 0.999,
                read_metric: ReadMetric::Verified,
            },
        );
        assert!(best.is_none());
    }

    #[test]
    fn expected_latency_blends_read_and_write() {
        let m = SystemModel::paper_example_2(0.99);
        let all_read = expected_latency(&m, &uniform_workload(1.0));
        let all_write = expected_latency(&m, &uniform_workload(0.0));
        let half = expected_latency(&m, &uniform_workload(0.5));
        assert!((all_read - 75.0).abs() < 1e-9);
        assert!((all_write - 100.0).abs() < 1e-9);
        assert!((half - 87.5).abs() < 1e-9);
    }

    #[test]
    fn vote_vector_enumeration_counts() {
        // 2 sites, votes 0..=2 -> 9 vectors minus the zero vector.
        assert_eq!(vote_vectors(2, 2).len(), 8);
        assert_eq!(vote_vectors(1, 3).len(), 3);
    }
}
