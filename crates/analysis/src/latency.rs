//! Expected operation latency under the quorum structure.
//!
//! The model matches how the protocol actually behaves on constant-latency
//! links:
//!
//! * A **read** inquires all representatives in parallel and fetches the
//!   contents from the cheapest current representative. The *optimistic*
//!   read latency is the cost of that fetch alone — the number the paper
//!   reports, valid when the cheapest representative turns out to be
//!   current (the common case for read-mostly suites). The *verified*
//!   latency also waits for the cheapest read quorum of version answers:
//!   `max(min-max read quorum cost, fetch cost)`.
//! * A **write** learns the current version from the cheapest read quorum
//!   (in parallel with nothing else) and installs at the cheapest write
//!   quorum; with pipelining the paper charges
//!   `max(inquiry, min-max write quorum cost)`.

use wv_core::quorum::minimal_quorums;

use crate::model::SystemModel;

/// The cheapest "assemble `needed` votes in parallel" cost: the minimum
/// over minimal quorums of the maximum member cost.
fn quorum_cost(model: &SystemModel, needed: u32) -> f64 {
    minimal_quorums(&model.assignment, needed)
        .into_iter()
        .map(|q| {
            q.iter()
                .map(|s| model.cost(*s))
                .fold(f64::NEG_INFINITY, f64::max)
        })
        .fold(f64::INFINITY, f64::min)
}

/// The paper's read-latency number: fetching contents from the cheapest
/// representative, weak ones included, assuming it is current.
pub fn read_latency_optimistic(model: &SystemModel) -> f64 {
    model
        .assignment
        .all_sites()
        .into_iter()
        .map(|s| model.cost(s))
        .fold(f64::INFINITY, f64::min)
}

/// Read latency including the wait for a version-number quorum.
pub fn read_latency_verified(model: &SystemModel) -> f64 {
    read_latency_optimistic(model).max(quorum_cost(model, model.quorum.read))
}

/// Write latency: the slower of the version inquiry and the installation
/// at the cheapest write quorum.
pub fn write_latency(model: &SystemModel) -> f64 {
    quorum_cost(model, model.quorum.read).max(quorum_cost(model, model.quorum.write))
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-9;

    #[test]
    fn paper_example_1_latencies() {
        let m = SystemModel::paper_example_1(0.99);
        // Weak representative on the workstation: 65 ms reads.
        assert!((read_latency_optimistic(&m) - 65.0).abs() < EPS);
        // The verified read still waits for the voting rep's answer.
        assert!((read_latency_verified(&m) - 75.0).abs() < EPS);
        // Writes touch only the single voting representative.
        assert!((write_latency(&m) - 75.0).abs() < EPS);
    }

    #[test]
    fn paper_example_2_latencies() {
        let m = SystemModel::paper_example_2(0.99);
        // Representative 0 alone carries r = 2 votes: 75 ms reads.
        assert!((read_latency_optimistic(&m) - 75.0).abs() < EPS);
        assert!((read_latency_verified(&m) - 75.0).abs() < EPS);
        // Cheapest write quorum is {s0, s1} at max(75, 100) = 100 ms.
        assert!((write_latency(&m) - 100.0).abs() < EPS);
    }

    #[test]
    fn paper_example_3_latencies() {
        let m = SystemModel::paper_example_3(0.99);
        assert!((read_latency_optimistic(&m) - 75.0).abs() < EPS);
        assert!((read_latency_verified(&m) - 75.0).abs() < EPS);
        // Write-all over two 750 ms links.
        assert!((write_latency(&m) - 750.0).abs() < EPS);
    }

    #[test]
    fn verified_read_never_beats_optimistic() {
        for m in [
            SystemModel::paper_example_1(0.9),
            SystemModel::paper_example_2(0.9),
            SystemModel::paper_example_3(0.9),
        ] {
            assert!(read_latency_verified(&m) >= read_latency_optimistic(&m) - EPS);
        }
    }

    #[test]
    fn quorum_cost_picks_cheapest_combination() {
        use wv_core::quorum::QuorumSpec;
        use wv_core::votes::VoteAssignment;

        // Votes <1,1,1>, r=2: cheapest pair is {s0, s1} -> max(10, 20).
        let m = SystemModel::with_uniform_up(
            VoteAssignment::equal(3),
            QuorumSpec::new(2, 2),
            vec![10.0, 20.0, 500.0],
            0.99,
        );
        assert!((read_latency_verified(&m) - 20.0).abs() < EPS);
        assert!((write_latency(&m) - 20.0).abs() < EPS);
    }
}
