//! Blocking probability: can a quorum be assembled from the up sites?
//!
//! Exact computation enumerates the `2^n` up/down patterns of the strong
//! sites (weak representatives never matter); a Monte-Carlo estimator
//! cross-checks the enumeration and doubles as the simulated column of the
//! availability experiment.

use wv_core::votes::VoteAssignment;
use wv_net::SiteId;
use wv_sim::DetRng;

use crate::model::SystemModel;

/// Exact probability that the up sites carry at least `needed` votes,
/// with site `s` up independently with probability `up[s]`.
pub fn quorum_availability(assignment: &VoteAssignment, needed: u32, up: &[f64]) -> f64 {
    let strong: Vec<SiteId> = assignment.strong_sites();
    let n = strong.len();
    assert!(
        n <= 24,
        "exact enumeration is exponential; {n} sites is too many"
    );
    let mut total = 0.0;
    for mask in 0u32..(1 << n) {
        let mut p = 1.0;
        let mut votes = 0;
        for (i, site) in strong.iter().enumerate() {
            let pu = up[site.index()];
            if mask & (1 << i) != 0 {
                p *= pu;
                votes += assignment.votes_of(*site);
            } else {
                p *= 1.0 - pu;
            }
        }
        if votes >= needed {
            total += p;
        }
    }
    total
}

impl SystemModel {
    /// Probability a read blocks (no read quorum among up sites).
    pub fn read_blocking(&self) -> f64 {
        1.0 - quorum_availability(&self.assignment, self.quorum.read, &self.up)
    }

    /// Probability a write blocks (no write quorum among up sites).
    pub fn write_blocking(&self) -> f64 {
        1.0 - quorum_availability(&self.assignment, self.quorum.write, &self.up)
    }
}

/// Monte-Carlo estimate of [`quorum_availability`]: sample `trials`
/// up/down patterns and count those admitting a quorum.
pub fn simulate_quorum_availability(
    assignment: &VoteAssignment,
    needed: u32,
    up: &[f64],
    trials: u64,
    rng: &mut DetRng,
) -> f64 {
    assert!(trials > 0, "need at least one trial");
    let strong = assignment.strong_sites();
    let mut ok = 0u64;
    for _ in 0..trials {
        let votes: u32 = strong
            .iter()
            .filter(|s| rng.chance(up[s.index()]))
            .map(|s| assignment.votes_of(*s))
            .sum();
        if votes >= needed {
            ok += 1;
        }
    }
    ok as f64 / trials as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use wv_core::quorum::QuorumSpec;

    const EPS: f64 = 1e-12;

    #[test]
    fn paper_example_1_blocking() {
        let m = SystemModel::paper_example_1(0.99);
        // Single voting site: both read and write block iff it is down.
        assert!((m.read_blocking() - 0.01).abs() < EPS);
        assert!((m.write_blocking() - 0.01).abs() < EPS);
    }

    #[test]
    fn paper_example_2_blocking() {
        let m = SystemModel::paper_example_2(0.99);
        // Read (2 votes): site 0 alone, or sites 1 and 2 together.
        // Blocked: s0 down AND (s1 down OR s2 down):
        //   0.01 * (1 - 0.99^2) = 0.000199.
        assert!((m.read_blocking() - 0.000199).abs() < EPS);
        // Write (3 votes): s0 and at least one of s1, s2.
        // Blocked: s0 down OR (s1 and s2 down):
        //   0.01 + 0.99 * 0.0001 = 0.010099.
        assert!((m.write_blocking() - 0.010099).abs() < EPS);
    }

    #[test]
    fn paper_example_3_blocking() {
        let m = SystemModel::paper_example_3(0.99);
        // Read (1 vote): blocked only if all three are down.
        assert!((m.read_blocking() - 1e-6).abs() < EPS);
        // Write (3 votes): blocked unless all three are up.
        assert!((m.write_blocking() - (1.0 - 0.99f64.powi(3))).abs() < EPS);
    }

    #[test]
    fn weak_representatives_do_not_affect_availability() {
        let with_weak = VoteAssignment::new([
            (SiteId(0), 1),
            (SiteId(1), 1),
            (SiteId(2), 0),
            (SiteId(3), 0),
        ]);
        let without = VoteAssignment::new([(SiteId(0), 1), (SiteId(1), 1)]);
        let up = vec![0.9, 0.8, 0.0, 0.0];
        assert!(
            (quorum_availability(&with_weak, 2, &up) - quorum_availability(&without, 2, &up)).abs()
                < EPS
        );
    }

    #[test]
    fn certain_sites_give_certain_quorums() {
        let a = VoteAssignment::equal(3);
        assert!((quorum_availability(&a, 2, &[1.0; 3]) - 1.0).abs() < EPS);
        assert!(quorum_availability(&a, 1, &[0.0; 3]).abs() < EPS);
    }

    #[test]
    fn heterogeneous_availability() {
        // Two sites: votes 1 each, quorum 1. Available unless both down.
        let a = VoteAssignment::equal(2);
        let up = [0.9, 0.5];
        let expect = 1.0 - 0.1 * 0.5;
        assert!((quorum_availability(&a, 1, &up) - expect).abs() < EPS);
    }

    #[test]
    fn monte_carlo_agrees_with_enumeration() {
        let m = SystemModel::paper_example_2(0.9);
        let exact = quorum_availability(&m.assignment, m.quorum.write, &m.up);
        let mut rng = DetRng::new(41);
        let est =
            simulate_quorum_availability(&m.assignment, m.quorum.write, &m.up, 200_000, &mut rng);
        assert!(
            (est - exact).abs() < 0.005,
            "estimate {est} vs exact {exact}"
        );
    }

    #[test]
    fn majority_five_sites_known_value() {
        // 5 equal votes, majority 3, p = 0.9 each:
        // availability = sum_{k>=3} C(5,k) 0.9^k 0.1^(5-k) = 0.99144.
        let a = VoteAssignment::equal(5);
        let q = QuorumSpec::majority(5);
        let avail = quorum_availability(&a, q.read, &[0.9; 5]);
        assert!((avail - 0.99144).abs() < 1e-9);
    }

    mod props {
        //! Randomized invariant checks over seeded cases (offline stand-in
        //! for the old proptest strategies; every seed reproduces exactly).

        use super::*;

        /// Availability is monotone: lowering the threshold can only
        /// help, and raising per-site availability can only help.
        #[test]
        fn monotonicity() {
            for seed in 0..256u64 {
                let mut rng = DetRng::new(0xa5a1 ^ seed);
                let n = 1 + rng.below(5) as usize;
                let votes: Vec<u32> = (0..n).map(|_| rng.below(4) as u32).collect();
                if votes.iter().sum::<u32>() == 0 {
                    continue;
                }
                let p = rng.f64();
                let needed = 1 + rng.below(5) as u32;
                let a = VoteAssignment::new(
                    votes.iter().enumerate().map(|(i, v)| (SiteId::from(i), *v)),
                );
                let lo = quorum_availability(&a, needed + 1, &vec![p; n]);
                let hi = quorum_availability(&a, needed, &vec![p; n]);
                assert!(lo <= hi + 1e-12, "seed {seed}");
                let better = quorum_availability(&a, needed, &vec![(p + 1.0) / 2.0; n]);
                assert!(hi <= better + 1e-12, "seed {seed}");
            }
        }

        /// Monte-Carlo stays near the exact value.
        #[test]
        fn estimator_is_consistent() {
            let a = VoteAssignment::equal(3);
            let up = [0.8, 0.7, 0.95];
            let exact = quorum_availability(&a, 2, &up);
            for seed in 0..32u64 {
                let mut rng = DetRng::new(seed * 31);
                let est = simulate_quorum_availability(&a, 2, &up, 20_000, &mut rng);
                assert!((est - exact).abs() < 0.03, "seed {seed}: {est} vs {exact}");
            }
        }
    }
}
