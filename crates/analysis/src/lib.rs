//! Closed-form models for weighted voting.
//!
//! Every number in the paper's example table is computable without running
//! the simulator: operation latencies from the per-representative access
//! costs and the quorum structure, blocking probabilities from
//! per-representative availability. This crate provides those models plus
//! a Monte-Carlo cross-check and an optimal-vote-assignment search. The
//! experiment binaries print analytic and simulated columns side by side;
//! agreement between two independent routes to the same number is the
//! repository's substitute for the authors' testbed measurements.

#![warn(missing_docs)]

pub mod availability;
pub mod cost;
pub mod critpath;
pub mod latency;
pub mod model;
pub mod optimal;

pub use availability::{quorum_availability, simulate_quorum_availability};
pub use cost::{read_messages_bounds, read_messages_sequential, write_messages};
pub use critpath::{extract, OpPath, PathSegment, Profile};
pub use latency::{read_latency_optimistic, read_latency_verified, write_latency};
pub use model::SystemModel;
pub use optimal::{search_optimal, OptimalChoice, ReadMetric, Workload};
